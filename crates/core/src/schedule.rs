//! Transition-aware instruction scheduling — compiler cooperation with the
//! encoder (an extension beyond the paper).
//!
//! The encoding exploits vertical regularity across consecutive
//! instructions, so the *order* of independent instructions inside a basic
//! block changes how compressible the block is. This pass reorders each
//! hot block's instructions, subject to data/memory/control dependences
//! ([`imt_isa::effects::Effects`]), to minimise the block's **encoded**
//! transition count; a reorder is kept only when the encoded cost actually
//! improves.
//!
//! Correctness is by construction — every dependence (RAW/WAR/WAW on all
//! register files, HI/LO, the FP flag, conservative memory ordering,
//! barriers, and the pinned control-flow terminator) is preserved, so the
//! reordered program computes bit-identical results (the kernel golden
//! checksums still pass) — and belt-and-braces tests verify exactly that.

use imt_cfg::Cfg;
use imt_isa::decode::decode;
use imt_isa::effects::Effects;
use imt_isa::program::Program;

use crate::config::EncoderConfig;
use crate::error::CoreError;
use crate::pipeline::BUS_WIDTH;
use imt_bitcode::slice::encode_words_sliced;
use imt_bitcode::stream::{StreamCodec, StreamCodecConfig};

/// Outcome of scheduling one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleReport {
    /// Blocks considered (hot-loop blocks with at least 3 instructions).
    pub considered: usize,
    /// Blocks actually reordered (encoded cost improved).
    pub reordered: usize,
    /// Static encoded transitions before scheduling, over considered blocks.
    pub encoded_before: u64,
    /// Static encoded transitions after scheduling, over considered blocks.
    pub encoded_after: u64,
}

/// Reorders the hot-loop blocks of `program` to minimise their encoded
/// transition count under `config`, returning the scheduled program and a
/// report.
///
/// Only instruction order *within* basic blocks changes: block boundaries,
/// sizes and terminators are untouched, so every branch target stays
/// valid. Run the pipeline (`encode_program`) on the returned program.
///
/// # Errors
///
/// [`CoreError::Cfg`] if the text is malformed, [`CoreError::Codec`] on
/// internal misuse.
pub fn schedule_program(
    program: &Program,
    profile: &[u64],
    config: &EncoderConfig,
) -> Result<(Program, ScheduleReport), CoreError> {
    let cfg = Cfg::build(program)?;
    let loops = imt_cfg::hot_loops(&cfg, profile);
    let codec = StreamCodec::new(
        StreamCodecConfig::block_size(config.block_size())
            .map_err(CoreError::Codec)?
            .with_transforms(config.transforms())
            .map_err(CoreError::Codec)?
            .with_overlap(config.overlap())
            .with_strategy(config.strategy()),
    );

    let mut scheduled = program.clone();
    let mut report = ScheduleReport {
        considered: 0,
        reordered: 0,
        encoded_before: 0,
        encoded_after: 0,
    };
    let mut done = std::collections::BTreeSet::new();
    for l in loops.iter().take(config.max_loops()) {
        for &block_id in &l.natural_loop.body {
            if !done.insert(block_id) {
                continue;
            }
            let block = cfg.block(block_id);
            if block.len < 3 {
                continue;
            }
            report.considered += 1;
            let words = &program.text[block.range()];
            let before = encoded_cost(words, &codec)?;
            let reordered = reorder_block(words)?;
            let after = encoded_cost(&reordered, &codec)?;
            report.encoded_before += before;
            if after < before {
                report.reordered += 1;
                report.encoded_after += after;
                scheduled.text[block.range()].copy_from_slice(&reordered);
            } else {
                report.encoded_after += before;
            }
        }
    }
    Ok((scheduled, report))
}

/// Static encoded transition count of a block under the codec.
fn encoded_cost(words: &[u32], codec: &StreamCodec) -> Result<u64, CoreError> {
    let wide: Vec<u64> = words.iter().map(|&w| w as u64).collect();
    let encoding = encode_words_sliced(&wide, BUS_WIDTH, codec).map_err(CoreError::Codec)?;
    Ok(encoding.transitions())
}

/// Greedy dependence-respecting reorder: list scheduling where, among the
/// ready instructions, the one with the smallest Hamming distance to the
/// previously emitted word is chosen (nearest-neighbour on the bus).
///
/// The final instruction is pinned if it is a control transfer; a trailing
/// `syscall` barrier likewise pins itself. Returns the words in the new
/// order (which may equal the input).
///
/// # Errors
///
/// [`CoreError::Cfg`] wrapping is not used here; undecodable words are an
/// internal error surfaced as [`CoreError::Codec`]-free panic in debug —
/// callers pass assembler output, validated by `Cfg::build` beforehand.
fn reorder_block(words: &[u32]) -> Result<Vec<u32>, CoreError> {
    let n = words.len();
    let effects: Vec<Effects> = words
        .iter()
        .map(|&w| decode(w).map(Effects::of))
        .collect::<Result<_, _>>()
        .map_err(|e| {
            CoreError::Cfg(imt_cfg::CfgError::InvalidInstruction {
                index: 0,
                word: e.word,
            })
        })?;

    // Dependence edges: i -> j (i before j) for every original pair with a
    // hazard. The terminator (control or barrier at the end) is pinned by
    // adding an edge from every other instruction.
    let mut predecessors: Vec<u32> = vec![0; n]; // count of unmet deps
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    let pinned_last = effects[n - 1].control || effects[n - 1].barrier;
    for i in 0..n {
        for j in i + 1..n {
            let ordered = effects[i].must_precede(&effects[j]) || (pinned_last && j == n - 1);
            if ordered {
                successors[i].push(j);
                predecessors[j] += 1;
            }
        }
    }

    let mut ready: Vec<usize> = (0..n).filter(|&i| predecessors[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut previous: Option<u32> = None;
    while let Some(&first) = ready.first() {
        // Choose the ready instruction closest to the previous word on the
        // bus; break ties by original position (stability).
        let mut best = first;
        let mut best_key = (u32::MAX, usize::MAX);
        for &candidate in &ready {
            let distance = match previous {
                Some(prev) => (prev ^ words[candidate]).count_ones(),
                None => 0, // first pick: keep original order
            };
            let key = (distance, candidate);
            if key < best_key {
                best_key = key;
                best = candidate;
            }
            if previous.is_none() {
                break; // stability: take the original first instruction
            }
        }
        ready.retain(|&i| i != best);
        order.push(best);
        previous = Some(words[best]);
        for &next in &successors[best] {
            predecessors[next] -= 1;
            if predecessors[next] == 0 {
                ready.push(next);
            }
        }
        ready.sort_unstable();
    }
    debug_assert_eq!(order.len(), n, "dependence graph must be acyclic");
    Ok(order.into_iter().map(|i| words[i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use imt_isa::asm::assemble;
    use imt_sim::Cpu;

    #[test]
    fn reorder_preserves_dependences() {
        // lui/ori pair must stay ordered; independent xors may move.
        let program = assemble(
            r#"
            .text
    main:   lui  $t0, 0x1234
            ori  $t0, $t0, 0x5678
            xor  $t1, $t2, $t3
            xor  $t4, $t5, $t6
            jr   $ra
    "#,
        )
        .unwrap();
        let reordered = reorder_block(&program.text).unwrap();
        let pos = |w: u32| reordered.iter().position(|&x| x == w).unwrap();
        assert!(
            pos(program.text[0]) < pos(program.text[1]),
            "lui before ori"
        );
        assert_eq!(*reordered.last().unwrap(), program.text[4], "jr stays last");
        // Same multiset of words.
        let mut a = reordered.clone();
        let mut b = program.text.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn scheduled_kernels_still_match_their_golden_models() {
        for kernel in imt_kernels::Kernel::ALL {
            let spec = kernel.test_spec();
            let program = spec.assemble();
            let mut cpu = Cpu::new(&program).unwrap();
            cpu.run(spec.max_steps).unwrap();
            let profile = cpu.profile().to_vec();
            let (scheduled, report) =
                schedule_program(&program, &profile, &EncoderConfig::default()).unwrap();
            assert!(report.considered > 0, "{}", spec.name);
            let mut cpu = Cpu::new(&scheduled).unwrap();
            cpu.run(spec.max_steps).unwrap();
            assert_eq!(
                cpu.stdout(),
                spec.expected_output,
                "{}: scheduling changed program behaviour",
                spec.name
            );
        }
    }

    #[test]
    fn scheduling_never_increases_static_encoded_cost() {
        for kernel in imt_kernels::Kernel::ALL {
            let spec = kernel.test_spec();
            let program = spec.assemble();
            let mut cpu = Cpu::new(&program).unwrap();
            cpu.run(spec.max_steps).unwrap();
            let (_, report) =
                schedule_program(&program, cpu.profile(), &EncoderConfig::default()).unwrap();
            assert!(
                report.encoded_after <= report.encoded_before,
                "{}: {} > {}",
                spec.name,
                report.encoded_after,
                report.encoded_before
            );
        }
    }

    #[test]
    fn scheduled_program_survives_the_full_pipeline() {
        let spec = imt_kernels::Kernel::Lu.test_spec();
        let program = spec.assemble();
        let mut cpu = Cpu::new(&program).unwrap();
        cpu.run(spec.max_steps).unwrap();
        let config = EncoderConfig::default();
        let (scheduled, _) = schedule_program(&program, cpu.profile(), &config).unwrap();
        // Re-profile the scheduled program (same counts, but indices moved).
        let mut cpu = Cpu::new(&scheduled).unwrap();
        cpu.run(spec.max_steps).unwrap();
        let encoded = crate::pipeline::encode_program(&scheduled, cpu.profile(), &config).unwrap();
        let eval = crate::eval::evaluate(&scheduled, &encoded, spec.max_steps).unwrap();
        assert_eq!(eval.decode_mismatches, 0);
        assert_eq!(eval.stdout, spec.expected_output);
    }

    #[test]
    fn blocks_without_freedom_are_left_alone() {
        // A fully serial dependence chain cannot be reordered.
        let program = assemble(
            r#"
            .text
    main:   addiu $t0, $zero, 1
            addiu $t0, $t0, 2
            addiu $t0, $t0, 3
            addiu $t0, $t0, 4
            jr    $ra
    "#,
        )
        .unwrap();
        let reordered = reorder_block(&program.text).unwrap();
        assert_eq!(reordered, program.text);
    }
}
