//! The encoder arena: pluggable bus-encoding schemes behind one trait.
//!
//! The paper's TT/BBIT transformation is one point in the low-power
//! instruction-bus encoding design space. This module defines the
//! [`Encoder`] trait — encode, decode, hardware cost, transition delta,
//! plus a serializable [`SchemeDescriptor`] — and implements four
//! competitors behind it:
//!
//! * [`TtBbitScheme`] — the paper's scheme, wrapping the existing
//!   [`crate::encode_program`] / [`evaluate_replay`] pipeline unchanged,
//!   so every number it reports stays byte-identical to the committed
//!   results.
//! * [`GrayScheme`] — memoryless Gray word sequencing
//!   (`w ^ (w >> 1)`), zero storage, a 31-XOR restore ripple.
//! * [`LowWeightScheme`] — a Chee & Colbourn-style memoryless
//!   low-weight codebook: a small CAM maps the hottest words to
//!   light codewords guaranteed absent from the text.
//! * [`BusInvertScheme`] — Stan & Burleson bus-invert: memory is
//!   untouched, the drive decision depends on the live bus state.
//!
//! ## Replay classes
//!
//! The replay engine scores any **static** stored image closed-form:
//! transitions are `Σ weight(e)·popcount(stored[src] ^ stored[dst])`
//! over the recorded edge multiset. What distinguishes schemes is
//! decoder state, captured by [`ReplayClass`]:
//!
//! * `Memoryless` — the stored word is a pure function of the original
//!   word; decode verification is per-word.
//! * `BlockState` — per-block decoder state (TT/BBIT); replayable under
//!   the single-entry span check of [`evaluate_replay`].
//! * `CycleState` — the driven bus depends on unbounded fetch history
//!   (bus-invert); **never** replayable. [`evaluate_scheme_replay`]
//!   refuses with [`CoreError::ReplayInfeasible`], and
//!   [`evaluate_scheme_auto`] routes to full simulation.
//!
//! ## Per-lane auto-selection
//!
//! Nothing stops different bus lines using different τ families — the
//! decode of a TT lane, a Gray lane and a passthrough lane are mutually
//! independent given the PC-driven walker state. [`auto_select`] solves
//! the exact multiple-choice knapsack over a shared bit budget
//! ([`crate::hardware::HardwareBudget`]-style storage bits): per lane it
//! picks the best of {baseline, Gray, TT-lane}, charges the TT fixed
//! cost (BBIT + E/CT columns) once if any lane uses TT, and then takes
//! the better of that composite and the best affordable whole-bus
//! scheme — so the winner is ≥ every single affordable scheme by
//! construction. Word-level schemes (the CAM codebook, bus-invert's
//! majority vote) cannot decode from a lane subset and only compete
//! whole-bus.

use imt_bitcode::businvert::BusInvertState;
use imt_bitcode::gray::{gray_image, ungray_word};
use imt_bitcode::lowweight::LowWeightBook;
use imt_isa::program::Program;
use imt_sim::bus::DataBusMonitor;
use imt_sim::cpu::{Cpu, FetchSink};
use imt_sim::edge::FetchEdgeProfile;

use crate::error::CoreError;
use crate::eval::{
    evaluate, evaluate_replay, pc_to_index, weighted_transitions, EvalNeeds, EvalPath, Evaluation,
    FullSimReason,
};
use crate::hardware::FetchDecoder;
use crate::pipeline::{encode_program, EncodedProgram, BUS_WIDTH};
use crate::EncoderConfig;

/// How a scheme's dynamic cost can be scored from a recorded profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayClass {
    /// Stored word = pure function of the original word. Decode
    /// verification is per-word; transitions replay closed-form.
    Memoryless,
    /// Per-block decoder state (TT/BBIT). Replayable under the
    /// single-entry span check of [`evaluate_replay`].
    BlockState,
    /// The driven bus depends on unbounded cycle history. Never
    /// replayable from a stateless edge profile — full simulation only.
    CycleState,
}

/// Hardware cost of a built scheme instance, in the same currency as
/// [`crate::hardware::HardwareBudget`]: storage bits are what the
/// budget constrains; extra lines and gate counts are reported
/// alongside for the Pareto fronts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchemeCost {
    /// Table/CAM storage bits (counted against the shared budget).
    pub storage_bits: u64,
    /// Extra bus lines beyond the 32 data lanes (bus-invert's invert
    /// line). Their transitions are charged to the scheme's totals.
    pub extra_lines: u32,
    /// Restore-logic gate estimate (NAND2-equivalents).
    pub restore_gates: u64,
}

/// Which scheme to build — the request-level surface carried by
/// `imt-serve` / `imt-net` (defaulting to [`SchemeSpec::TtBbit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeSpec {
    /// The paper's TT/BBIT transformation (the default everywhere).
    TtBbit,
    /// Gray word sequencing.
    Gray,
    /// Memoryless low-weight codebook with this many CAM entries.
    LowWeight {
        /// Maximum CAM entries.
        entries: usize,
    },
    /// Bus-invert coding.
    BusInvert,
}

impl SchemeSpec {
    /// Default CAM size for [`SchemeSpec::LowWeight`].
    pub const DEFAULT_LOW_WEIGHT_ENTRIES: usize = 16;

    /// The wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            SchemeSpec::TtBbit => "tt",
            SchemeSpec::Gray => "gray",
            SchemeSpec::LowWeight { .. } => "lowweight",
            SchemeSpec::BusInvert => "businvert",
        }
    }

    /// Parses a wire/CLI name; the empty string is the TT/BBIT default.
    pub fn parse(name: &str) -> Option<SchemeSpec> {
        match name {
            "" | "tt" | "ttbbit" => Some(SchemeSpec::TtBbit),
            "gray" => Some(SchemeSpec::Gray),
            "lowweight" => Some(SchemeSpec::LowWeight {
                entries: SchemeSpec::DEFAULT_LOW_WEIGHT_ENTRIES,
            }),
            "businvert" => Some(SchemeSpec::BusInvert),
            _ => None,
        }
    }

    /// Every buildable scheme, in arena display order.
    pub const ALL: [SchemeSpec; 4] = [
        SchemeSpec::TtBbit,
        SchemeSpec::Gray,
        SchemeSpec::LowWeight {
            entries: SchemeSpec::DEFAULT_LOW_WEIGHT_ENTRIES,
        },
        SchemeSpec::BusInvert,
    ];
}

/// One full-simulation fetch through a scheme's bus model: what the
/// receiver restores, what physically sits on the data lines, and any
/// extra-control-line activity this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimFetch {
    /// The word the core sees after restore.
    pub restored: u32,
    /// Physical data-line state after this drive (a monitor over these
    /// reproduces the scheme's data transitions exactly).
    pub driven: u32,
    /// Transitions on extra control lines (invert line) this cycle.
    pub extra_transitions: u64,
}

/// A built encoding of one program: the arena's pluggable surface.
///
/// Implementations are constructed by [`build_scheme`]. Evaluation goes
/// through [`evaluate_scheme_replay`] / [`evaluate_scheme_full`] /
/// [`evaluate_scheme_auto`], which route on [`Encoder::replay_class`]
/// and [`Encoder::as_tt`] — the TT/BBIT implementor delegates to the
/// original [`evaluate`] / [`evaluate_replay`] pipeline unchanged, so
/// its numbers stay byte-identical to the pre-arena results.
pub trait Encoder {
    /// Scheme name (matches [`SchemeSpec::name`]).
    fn name(&self) -> &'static str;

    /// How this scheme's dynamic cost can be scored.
    fn replay_class(&self) -> ReplayClass;

    /// Serializable description of this built instance.
    fn descriptor(&self) -> SchemeDescriptor;

    /// Hardware cost of this built instance.
    fn cost(&self) -> SchemeCost;

    /// The stored instruction-memory image (same length as the program
    /// text). Schemes that leave memory untouched (bus-invert) return
    /// the original text.
    fn stored_image(&self) -> &[u32];

    /// Per-word restore for [`ReplayClass::Memoryless`] schemes. Block-
    /// and cycle-state schemes keep the identity default; their decode
    /// is verified by their own paths ([`evaluate_replay`]'s span walk,
    /// the full-simulation drive model).
    fn decode_word(&self, stored: u32) -> u32 {
        stored
    }

    /// Statically verify that the stored image restores to
    /// `program.text` exactly.
    ///
    /// # Errors
    ///
    /// [`CoreError::DecodeMismatch`] on the first word that fails, and
    /// [`CoreError::TableImage`] if the image length is wrong.
    fn verify_decode(&self, program: &Program) -> Result<(), CoreError> {
        if self.stored_image().len() != program.text.len() {
            return Err(CoreError::TableImage {
                detail: "stored image length differs from the program text",
            });
        }
        for (index, (&expected, &stored)) in
            program.text.iter().zip(self.stored_image()).enumerate()
        {
            let decoded = self.decode_word(stored);
            if decoded != expected {
                return Err(CoreError::DecodeMismatch {
                    pc: program.text_base + 4 * index as u32,
                    decoded,
                    expected,
                });
            }
        }
        Ok(())
    }

    /// Full-simulation fetch hook, stateful across a run ([`Encoder::reset`]
    /// returns to power-on state). The default models a static image:
    /// the stored word is driven as-is and restored per-word. Only
    /// cycle-state schemes override it; the TT/BBIT implementor never
    /// reaches it (evaluation routes through [`Encoder::as_tt`]).
    fn sim_fetch(&mut self, pc: u32, stored: u32) -> SimFetch {
        let _ = pc;
        SimFetch {
            restored: self.decode_word(stored),
            driven: stored,
            extra_transitions: 0,
        }
    }

    /// Returns the bus model to power-on state.
    fn reset(&mut self);

    /// The TT/BBIT instance behind this scheme, when it is one — the
    /// evaluation routers delegate to the original (byte-identical)
    /// pipeline evaluators for it.
    fn as_tt(&self) -> Option<&EncodedProgram> {
        None
    }
}

/// Builds a scheme instance over `program`, using the per-index fetch
/// counts `per_index` where the scheme is profile-guided (TT/BBIT block
/// selection, codebook heat ranking).
///
/// # Errors
///
/// Whatever [`encode_program`] reports for the TT/BBIT scheme; the
/// other schemes are total.
pub fn build_scheme(
    spec: SchemeSpec,
    program: &Program,
    per_index: &[u64],
    config: &EncoderConfig,
) -> Result<Box<dyn Encoder>, CoreError> {
    match spec {
        SchemeSpec::TtBbit => Ok(Box::new(TtBbitScheme::new(encode_program(
            program, per_index, config,
        )?))),
        SchemeSpec::Gray => Ok(Box::new(GrayScheme::new(program))),
        SchemeSpec::LowWeight { entries } => {
            Ok(Box::new(LowWeightScheme::new(program, per_index, entries)))
        }
        SchemeSpec::BusInvert => Ok(Box::new(BusInvertScheme::new(program))),
    }
}

/// The paper's TT/BBIT transformation behind the arena trait: a thin
/// wrapper over [`EncodedProgram`] whose evaluation delegates to the
/// original pipeline evaluators (see [`Encoder::as_tt`]).
#[derive(Debug, Clone)]
pub struct TtBbitScheme {
    encoded: EncodedProgram,
}

impl TtBbitScheme {
    /// Wraps an already-encoded program.
    pub fn new(encoded: EncodedProgram) -> TtBbitScheme {
        TtBbitScheme { encoded }
    }

    /// The wrapped pipeline output.
    pub fn encoded(&self) -> &EncodedProgram {
        &self.encoded
    }
}

impl Encoder for TtBbitScheme {
    fn name(&self) -> &'static str {
        "tt"
    }

    fn replay_class(&self) -> ReplayClass {
        ReplayClass::BlockState
    }

    fn descriptor(&self) -> SchemeDescriptor {
        let config = &self.encoded.config;
        SchemeDescriptor::TtBbit {
            block_size: config.block_size() as u32,
            overlap: match config.overlap() {
                imt_bitcode::block::OverlapHistory::Stored => 0,
                imt_bitcode::block::OverlapHistory::Decoded => 1,
            },
            transform_mask: config.transforms().mask(),
            tt_capacity: config.tt_capacity() as u32,
            bbit_capacity: config.bbit_capacity() as u32,
        }
    }

    fn cost(&self) -> SchemeCost {
        let budget = crate::hardware::HardwareBudget::of_schedule(&self.encoded);
        SchemeCost {
            storage_bits: budget.total_bits(),
            extra_lines: 0,
            restore_gates: budget.restore_gates,
        }
    }

    fn stored_image(&self) -> &[u32] {
        &self.encoded.text
    }

    fn verify_decode(&self, program: &Program) -> Result<(), CoreError> {
        // The span walk of the replay evaluator is the decode proof;
        // reuse it via a throwaway profile-free walk.
        verify_tt_image(program, &self.encoded)
    }

    fn reset(&mut self) {}

    fn as_tt(&self) -> Option<&EncodedProgram> {
        Some(&self.encoded)
    }
}

/// Walks every scheduled span of `encoded` through the hardware decoder
/// and checks passthrough equality outside spans — the same static
/// decode proof [`evaluate_replay`] performs.
fn verify_tt_image(program: &Program, encoded: &EncodedProgram) -> Result<(), CoreError> {
    let text_len = program.text.len();
    if encoded.text.len() != text_len {
        return Err(CoreError::TableImage {
            detail: "encoded image length differs from the program text",
        });
    }
    let mut decoder = FetchDecoder::new(
        &encoded.tt,
        &encoded.bbit,
        BUS_WIDTH,
        encoded.config.block_size(),
        encoded.config.overlap(),
    );
    let mut in_span = vec![false; text_len];
    for (start_pc, end_pc) in decoder.scheduled_spans() {
        let start = pc_to_index(start_pc, encoded.text_base, text_len)?;
        let end = pc_to_index(end_pc.wrapping_sub(4), encoded.text_base, text_len)? + 1;
        decoder.reset();
        for (index, inside) in in_span.iter_mut().enumerate().take(end).skip(start) {
            *inside = true;
            let pc = encoded.text_base + 4 * index as u32;
            let decoded = decoder.on_fetch(pc, encoded.text[index]);
            if decoded != program.text[index] {
                return Err(CoreError::DecodeMismatch {
                    pc,
                    decoded,
                    expected: program.text[index],
                });
            }
        }
    }
    for (index, _) in in_span.iter().enumerate().filter(|&(_, &inside)| !inside) {
        if encoded.text[index] != program.text[index] {
            return Err(CoreError::DecodeMismatch {
                pc: encoded.text_base + 4 * index as u32,
                decoded: encoded.text[index],
                expected: program.text[index],
            });
        }
    }
    Ok(())
}

/// Gray word sequencing: stored word `w ^ (w >> 1)`, restored by the
/// MSB-down XOR ripple. Zero storage bits, no decoder state.
#[derive(Debug, Clone)]
pub struct GrayScheme {
    image: Vec<u32>,
}

impl GrayScheme {
    /// Gray-encodes the whole text image.
    pub fn new(program: &Program) -> GrayScheme {
        GrayScheme {
            image: gray_image(&program.text),
        }
    }
}

impl Encoder for GrayScheme {
    fn name(&self) -> &'static str {
        "gray"
    }

    fn replay_class(&self) -> ReplayClass {
        ReplayClass::Memoryless
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor::Gray
    }

    fn cost(&self) -> SchemeCost {
        SchemeCost {
            storage_bits: 0,
            extra_lines: 0,
            // One XOR (≈4 NAND2) per lane except the passthrough MSB.
            restore_gates: 4 * (BUS_WIDTH as u64 - 1),
        }
    }

    fn stored_image(&self) -> &[u32] {
        &self.image
    }

    fn decode_word(&self, stored: u32) -> u32 {
        ungray_word(stored)
    }

    fn reset(&mut self) {}
}

/// Memoryless low-weight codebook: a small CAM over the hottest words.
#[derive(Debug, Clone)]
pub struct LowWeightScheme {
    book: LowWeightBook,
    image: Vec<u32>,
}

impl LowWeightScheme {
    /// Builds the codebook from per-index fetch heat and encodes the
    /// image through it.
    pub fn new(program: &Program, per_index: &[u64], entries: usize) -> LowWeightScheme {
        let book = LowWeightBook::build(&program.text, per_index, entries);
        let image = program.text.iter().map(|&w| book.encode_word(w)).collect();
        LowWeightScheme { book, image }
    }

    /// The built codebook.
    pub fn book(&self) -> &LowWeightBook {
        &self.book
    }
}

impl Encoder for LowWeightScheme {
    fn name(&self) -> &'static str {
        "lowweight"
    }

    fn replay_class(&self) -> ReplayClass {
        ReplayClass::Memoryless
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor::LowWeight {
            pairs: self.book.pairs().to_vec(),
        }
    }

    fn cost(&self) -> SchemeCost {
        SchemeCost {
            storage_bits: self.book.storage_bits(),
            extra_lines: 0,
            // One 32-bit comparator (≈2 NAND2/bit) per CAM entry.
            restore_gates: self.book.pairs().len() as u64 * 64,
        }
    }

    fn stored_image(&self) -> &[u32] {
        &self.image
    }

    fn decode_word(&self, stored: u32) -> u32 {
        self.book.decode_word(stored)
    }

    fn reset(&mut self) {}
}

/// Bus-invert coding: memory untouched, the drive decision depends on
/// the live bus state — the arena's canonical [`ReplayClass::CycleState`]
/// scheme.
#[derive(Debug, Clone)]
pub struct BusInvertScheme {
    text: Vec<u32>,
    state: BusInvertState,
}

impl BusInvertScheme {
    /// Wraps the program text (stored unchanged).
    pub fn new(program: &Program) -> BusInvertScheme {
        BusInvertScheme {
            text: program.text.clone(),
            state: BusInvertState::new(),
        }
    }
}

impl Encoder for BusInvertScheme {
    fn name(&self) -> &'static str {
        "businvert"
    }

    fn replay_class(&self) -> ReplayClass {
        ReplayClass::CycleState
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor::BusInvert {
            width: BUS_WIDTH as u8,
        }
    }

    fn cost(&self) -> SchemeCost {
        SchemeCost {
            storage_bits: 0,
            extra_lines: 1,
            // Majority comparator + conditional complement, ≈6 NAND2/lane.
            restore_gates: 6 * BUS_WIDTH as u64,
        }
    }

    fn stored_image(&self) -> &[u32] {
        &self.text
    }

    fn sim_fetch(&mut self, _pc: u32, stored: u32) -> SimFetch {
        let step = self.state.drive(stored);
        SimFetch {
            restored: BusInvertState::restore(&step),
            driven: step.bus,
            extra_transitions: step.invert_transitions,
        }
    }

    fn reset(&mut self) {
        self.state = BusInvertState::new();
    }
}

/// What a scheme evaluation reports: the common currency every arena
/// row is priced in. `encoded_transitions` includes any extra control
/// lines ([`SchemeEvaluation::extra_line_transitions`]), so per-lane
/// data counts sum to `encoded_transitions - extra_line_transitions`.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeEvaluation {
    /// Instructions fetched.
    pub fetches: u64,
    /// Transitions the unencoded bus would have had.
    pub baseline_transitions: u64,
    /// Transitions under the scheme, extra control lines included.
    pub encoded_transitions: u64,
    /// Per-data-lane baseline transitions (32 entries).
    pub per_lane_baseline: Vec<u64>,
    /// Per-data-lane encoded transitions (32 entries).
    pub per_lane_encoded: Vec<u64>,
    /// Transitions on extra control lines (bus-invert's invert line).
    pub extra_line_transitions: u64,
    /// Fetches whose stored word differed from the original (served by
    /// the restore logic rather than passing through).
    pub decoded_fetches: u64,
    /// Decode failures (always 0 on a successful evaluation — a
    /// mismatch is a typed error, never a silently wrong number).
    pub decode_mismatches: u64,
    /// Program exit code (behaviour must be unchanged).
    pub exit_code: i32,
    /// Program stdout (behaviour must be unchanged).
    pub stdout: String,
}

impl SchemeEvaluation {
    /// Percentage of bus transitions eliminated.
    pub fn reduction_percent(&self) -> f64 {
        if self.baseline_transitions == 0 {
            return 0.0;
        }
        (self.baseline_transitions as f64 - self.encoded_transitions as f64)
            / self.baseline_transitions as f64
            * 100.0
    }

    fn from_evaluation(eval: &Evaluation) -> SchemeEvaluation {
        SchemeEvaluation {
            fetches: eval.fetches,
            baseline_transitions: eval.baseline_transitions,
            encoded_transitions: eval.encoded_transitions,
            per_lane_baseline: eval.per_lane_baseline.clone(),
            per_lane_encoded: eval.per_lane_encoded.clone(),
            extra_line_transitions: 0,
            decoded_fetches: eval.decoded_fetches,
            decode_mismatches: eval.decode_mismatches,
            exit_code: eval.exit_code,
            stdout: eval.stdout.clone(),
        }
    }

    /// Maps into the pipeline [`Evaluation`] shape carried by the serve
    /// and wire layers. `decoded_fetches`/`passthrough_fetches` keep the
    /// stored-word-differs convention; extra-line transitions stay
    /// folded into `encoded_transitions`.
    pub fn to_evaluation(&self) -> Evaluation {
        Evaluation {
            fetches: self.fetches,
            baseline_transitions: self.baseline_transitions,
            encoded_transitions: self.encoded_transitions,
            per_lane_baseline: self.per_lane_baseline.clone(),
            per_lane_encoded: self.per_lane_encoded.clone(),
            decode_mismatches: self.decode_mismatches,
            decoded_fetches: self.decoded_fetches,
            passthrough_fetches: self.fetches - self.decoded_fetches,
            exit_code: self.exit_code,
            stdout: self.stdout.clone(),
        }
    }
}

/// Scores `scheme` closed-form over a recorded edge profile.
///
/// # Errors
///
/// [`CoreError::ReplayInfeasible`] for [`ReplayClass::CycleState`]
/// schemes — their bus state depends on fetch *order*, which the edge
/// multiset does not witness — and whatever [`evaluate_replay`] reports
/// for the TT/BBIT scheme (including its own infeasibility check).
/// Memoryless schemes report [`CoreError::ProfileLength`] on a profile
/// for different text and [`CoreError::DecodeMismatch`] if the image
/// fails its per-word restore proof.
pub fn evaluate_scheme_replay(
    scheme: &dyn Encoder,
    program: &Program,
    profile: &FetchEdgeProfile,
) -> Result<SchemeEvaluation, CoreError> {
    if let Some(encoded) = scheme.as_tt() {
        return Ok(SchemeEvaluation::from_evaluation(&evaluate_replay(
            program, encoded, profile,
        )?));
    }
    match scheme.replay_class() {
        ReplayClass::CycleState => Err(CoreError::ReplayInfeasible {
            pc: program.text_base,
        }),
        ReplayClass::BlockState => Err(CoreError::TableImage {
            detail: "block-state scheme without a TT/BBIT image",
        }),
        ReplayClass::Memoryless => {
            let text_len = program.text.len();
            if profile.text_len() != text_len {
                return Err(CoreError::ProfileLength {
                    text_len,
                    profile_len: profile.text_len(),
                });
            }
            scheme.verify_decode(program)?;
            let stored = scheme.stored_image();
            let (baseline_transitions, per_lane_baseline) =
                weighted_transitions(&program.text, profile);
            let (encoded_transitions, per_lane_encoded) = weighted_transitions(stored, profile);
            let decoded_fetches: u64 = profile
                .per_index_counts()
                .iter()
                .zip(program.text.iter().zip(stored))
                .filter(|&(_, (&orig, &s))| orig != s)
                .map(|(&count, _)| count)
                .sum();
            Ok(SchemeEvaluation {
                fetches: profile.fetches(),
                baseline_transitions,
                encoded_transitions,
                per_lane_baseline,
                per_lane_encoded,
                extra_line_transitions: 0,
                decoded_fetches,
                decode_mismatches: 0,
                exit_code: profile.exit_code(),
                stdout: profile.stdout().to_string(),
            })
        }
    }
}

struct SchemeSink<'a> {
    scheme: &'a mut dyn Encoder,
    stored: &'a [u32],
    text_base: u32,
    baseline: DataBusMonitor,
    driven: DataBusMonitor,
    extra: u64,
    decoded_fetches: u64,
    mismatches: u64,
    first_mismatch: Option<(u32, u32, u32)>,
}

impl FetchSink for SchemeSink<'_> {
    #[inline]
    fn on_fetch(&mut self, pc: u32, word: u32) {
        self.baseline.observe(u64::from(word));
        let index = ((pc - self.text_base) / 4) as usize;
        let stored = self.stored[index];
        let step = self.scheme.sim_fetch(pc, stored);
        self.driven.observe(u64::from(step.driven));
        self.extra += step.extra_transitions;
        if stored != word {
            self.decoded_fetches += 1;
        }
        if step.restored != word {
            self.mismatches += 1;
            self.first_mismatch.get_or_insert((pc, step.restored, word));
        }
    }
}

/// Scores `scheme` by full simulation, verifying the restore on every
/// fetch — the only sound path for [`ReplayClass::CycleState`] schemes.
///
/// # Errors
///
/// [`CoreError::Sim`] if the program faults or exceeds `max_steps`;
/// [`CoreError::DecodeMismatch`] if the restore is ever wrong.
pub fn evaluate_scheme_full(
    scheme: &mut dyn Encoder,
    program: &Program,
    max_steps: u64,
) -> Result<SchemeEvaluation, CoreError> {
    if let Some(encoded) = scheme.as_tt() {
        let encoded = encoded.clone();
        return Ok(SchemeEvaluation::from_evaluation(&evaluate(
            program, &encoded, max_steps,
        )?));
    }
    scheme.reset();
    let stored = scheme.stored_image().to_vec();
    let mut cpu = Cpu::new(program)?;
    let mut sink = SchemeSink {
        scheme,
        stored: &stored,
        text_base: program.text_base,
        baseline: DataBusMonitor::new(BUS_WIDTH),
        driven: DataBusMonitor::new(BUS_WIDTH),
        extra: 0,
        decoded_fetches: 0,
        mismatches: 0,
        first_mismatch: None,
    };
    let summary = cpu.run_with_sink(max_steps, &mut sink)?;
    if let Some((pc, decoded, expected)) = sink.first_mismatch {
        return Err(CoreError::DecodeMismatch {
            pc,
            decoded,
            expected,
        });
    }
    Ok(SchemeEvaluation {
        fetches: summary.instructions,
        baseline_transitions: sink.baseline.total_transitions(),
        encoded_transitions: sink.driven.total_transitions() + sink.extra,
        per_lane_baseline: sink.baseline.per_lane().to_vec(),
        per_lane_encoded: sink.driven.per_lane().to_vec(),
        extra_line_transitions: sink.extra,
        decoded_fetches: sink.decoded_fetches,
        decode_mismatches: sink.mismatches,
        exit_code: summary.exit_code,
        stdout: cpu.stdout().to_string(),
    })
}

/// Scheme-aware analogue of [`crate::eval::evaluate_auto`]: replays when
/// the scheme and the needs allow it, and routes everything else —
/// including every [`ReplayClass::CycleState`] scheme — to full
/// simulation with a typed reason. A per-cycle-state scheme can never be
/// silently scored by the stateless replay path.
///
/// # Errors
///
/// Whatever the chosen path reports (other than
/// [`CoreError::ReplayInfeasible`], which falls back to full
/// simulation).
pub fn evaluate_scheme_auto(
    scheme: &mut dyn Encoder,
    program: &Program,
    max_steps: u64,
    profile: Option<&FetchEdgeProfile>,
    needs: EvalNeeds,
) -> Result<(SchemeEvaluation, EvalPath), CoreError> {
    if let Some(reason) = needs.full_sim_reason() {
        return Ok((
            evaluate_scheme_full(scheme, program, max_steps)?,
            EvalPath::FullSim(reason),
        ));
    }
    let Some(profile) = profile else {
        return Ok((
            evaluate_scheme_full(scheme, program, max_steps)?,
            EvalPath::FullSim(FullSimReason::NoProfile),
        ));
    };
    if scheme.replay_class() == ReplayClass::CycleState {
        return Ok((
            evaluate_scheme_full(scheme, program, max_steps)?,
            EvalPath::FullSim(FullSimReason::ReplayInfeasible),
        ));
    }
    match evaluate_scheme_replay(scheme, program, profile) {
        Ok(eval) => Ok((eval, EvalPath::Replay)),
        Err(CoreError::ReplayInfeasible { .. }) => Ok((
            evaluate_scheme_full(scheme, program, max_steps)?,
            EvalPath::FullSim(FullSimReason::ReplayInfeasible),
        )),
        Err(e) => Err(e),
    }
}

// ---------------------------------------------------------------------
// Scheme descriptors: versioned, magic-prefixed, typed-error parsing.
// ---------------------------------------------------------------------

/// Magic prefix of a serialized [`SchemeDescriptor`].
pub const SCHEME_MAGIC: [u8; 8] = *b"IMTSCHEM";

/// Current descriptor format version.
pub const SCHEME_FORMAT_VERSION: u32 = 1;

/// Largest CAM the low-weight descriptor accepts — a format-level
/// invariant, far above anything the arena builds.
pub const MAX_LOW_WEIGHT_PAIRS: usize = 4096;

/// A malformed serialized scheme descriptor. Every parse failure is one
/// of these — truncation, bit flips and version mismatches are typed
/// errors, never panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeFormatError {
    /// What was wrong.
    pub detail: &'static str,
}

impl std::fmt::Display for SchemeFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed scheme descriptor: {}", self.detail)
    }
}

impl std::error::Error for SchemeFormatError {}

/// Serializable description of a built scheme instance: enough to name
/// the scheme and reconstruct its parameters on the other side of a
/// file or wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeDescriptor {
    /// TT/BBIT encoder parameters.
    TtBbit {
        /// Block size `k`.
        block_size: u32,
        /// 0 = stored-overlap history, 1 = decoded-overlap history.
        overlap: u8,
        /// [`imt_bitcode::TransformSet`] mask.
        transform_mask: u16,
        /// TT capacity (entries).
        tt_capacity: u32,
        /// BBIT capacity (entries).
        bbit_capacity: u32,
    },
    /// Gray sequencing (no parameters).
    Gray,
    /// Low-weight codebook contents, hottest first.
    LowWeight {
        /// `(original, codeword)` CAM pairs.
        pairs: Vec<(u32, u32)>,
    },
    /// Bus-invert over this many data lines.
    BusInvert {
        /// Data-bus width (1..=63).
        width: u8,
    },
    /// A per-lane composite (see [`auto_select`]): one tag per bus
    /// lane, 0 = baseline, 1 = TT, 2 = Gray.
    Composite {
        /// Per-lane choices, lane 0 first.
        lanes: [u8; 32],
    },
}

impl SchemeDescriptor {
    /// Scheme name this descriptor describes.
    pub fn scheme_name(&self) -> &'static str {
        match self {
            SchemeDescriptor::TtBbit { .. } => "tt",
            SchemeDescriptor::Gray => "gray",
            SchemeDescriptor::LowWeight { .. } => "lowweight",
            SchemeDescriptor::BusInvert { .. } => "businvert",
            SchemeDescriptor::Composite { .. } => "auto",
        }
    }

    /// Serializes to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&SCHEME_MAGIC);
        out.extend_from_slice(&SCHEME_FORMAT_VERSION.to_le_bytes());
        match self {
            SchemeDescriptor::TtBbit {
                block_size,
                overlap,
                transform_mask,
                tt_capacity,
                bbit_capacity,
            } => {
                out.push(0);
                out.extend_from_slice(&block_size.to_le_bytes());
                out.push(*overlap);
                out.extend_from_slice(&transform_mask.to_le_bytes());
                out.extend_from_slice(&tt_capacity.to_le_bytes());
                out.extend_from_slice(&bbit_capacity.to_le_bytes());
            }
            SchemeDescriptor::Gray => out.push(1),
            SchemeDescriptor::LowWeight { pairs } => {
                out.push(2);
                out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
                for &(orig, code) in pairs {
                    out.extend_from_slice(&orig.to_le_bytes());
                    out.extend_from_slice(&code.to_le_bytes());
                }
            }
            SchemeDescriptor::BusInvert { width } => {
                out.push(3);
                out.push(*width);
            }
            SchemeDescriptor::Composite { lanes } => {
                out.push(4);
                out.extend_from_slice(lanes);
            }
        }
        out
    }

    /// Parses the versioned binary format.
    ///
    /// # Errors
    ///
    /// [`SchemeFormatError`] naming the first thing wrong: bad magic,
    /// unsupported version, truncation, out-of-range fields, unknown
    /// scheme tags, or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<SchemeDescriptor, SchemeFormatError> {
        let mut r = DescReader { bytes, at: 0 };
        let magic = r.take(8)?;
        if magic != SCHEME_MAGIC {
            return Err(SchemeFormatError {
                detail: "bad magic",
            });
        }
        let version = r.u32()?;
        if version != SCHEME_FORMAT_VERSION {
            return Err(SchemeFormatError {
                detail: "unsupported scheme format version",
            });
        }
        let descriptor = match r.u8()? {
            0 => {
                let block_size = r.u32()?;
                let overlap = r.u8()?;
                let transform_mask = r.u16()?;
                let tt_capacity = r.u32()?;
                let bbit_capacity = r.u32()?;
                if !(2..=32).contains(&block_size) {
                    return Err(SchemeFormatError {
                        detail: "block size outside 2..=32",
                    });
                }
                if overlap > 1 {
                    return Err(SchemeFormatError {
                        detail: "overlap tag outside 0..=1",
                    });
                }
                if transform_mask & 0x1000 == 0 {
                    // Transform::IDENTITY (table 0b1100) must be present,
                    // as EncoderConfig::with_transforms enforces.
                    return Err(SchemeFormatError {
                        detail: "transform set without identity",
                    });
                }
                if tt_capacity > 1 << 20 || bbit_capacity > 1 << 20 {
                    return Err(SchemeFormatError {
                        detail: "table capacity implausibly large",
                    });
                }
                SchemeDescriptor::TtBbit {
                    block_size,
                    overlap,
                    transform_mask,
                    tt_capacity,
                    bbit_capacity,
                }
            }
            1 => SchemeDescriptor::Gray,
            2 => {
                let count = r.u32()? as usize;
                if count > MAX_LOW_WEIGHT_PAIRS {
                    return Err(SchemeFormatError {
                        detail: "codebook implausibly large",
                    });
                }
                let mut pairs = Vec::with_capacity(count);
                for _ in 0..count {
                    let orig = r.u32()?;
                    let code = r.u32()?;
                    if orig == code {
                        return Err(SchemeFormatError {
                            detail: "codebook pair maps a word to itself",
                        });
                    }
                    pairs.push((orig, code));
                }
                SchemeDescriptor::LowWeight { pairs }
            }
            3 => {
                let width = r.u8()?;
                if !(1..=63).contains(&width) {
                    return Err(SchemeFormatError {
                        detail: "bus width outside 1..=63",
                    });
                }
                SchemeDescriptor::BusInvert { width }
            }
            4 => {
                let raw = r.take(32)?;
                let mut lanes = [0u8; 32];
                lanes.copy_from_slice(raw);
                if lanes.iter().any(|&tag| tag > 2) {
                    return Err(SchemeFormatError {
                        detail: "composite lane tag outside 0..=2",
                    });
                }
                SchemeDescriptor::Composite { lanes }
            }
            _ => {
                return Err(SchemeFormatError {
                    detail: "unknown scheme tag",
                })
            }
        };
        if r.at != bytes.len() {
            return Err(SchemeFormatError {
                detail: "trailing bytes",
            });
        }
        Ok(descriptor)
    }
}

struct DescReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> DescReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SchemeFormatError> {
        let end = self.at.checked_add(n).ok_or(SchemeFormatError {
            detail: "truncated scheme descriptor",
        })?;
        if end > self.bytes.len() {
            return Err(SchemeFormatError {
                detail: "truncated scheme descriptor",
            });
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SchemeFormatError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SchemeFormatError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, SchemeFormatError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

// ---------------------------------------------------------------------
// Per-lane auto-selection under a shared hardware budget.
// ---------------------------------------------------------------------

/// What one bus lane runs in a composite selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneChoice {
    /// Unencoded passthrough (0 bits).
    Baseline,
    /// The lane's column of the TT/BBIT image (per-lane control bits,
    /// plus the shared fixed cost once).
    Tt,
    /// The lane's column of the Gray image (0 bits, one XOR).
    Gray,
}

impl LaneChoice {
    /// Descriptor tag (see [`SchemeDescriptor::Composite`]).
    pub fn tag(self) -> u8 {
        match self {
            LaneChoice::Baseline => 0,
            LaneChoice::Tt => 1,
            LaneChoice::Gray => 2,
        }
    }
}

/// Per-lane transition counts and TT storage prices feeding
/// [`auto_select`].
#[derive(Debug, Clone)]
pub struct LaneCosts {
    /// Per-lane baseline transitions (32 entries).
    pub baseline: Vec<u64>,
    /// Per-lane transitions of the TT/BBIT image (32 entries).
    pub tt: Vec<u64>,
    /// Per-lane transitions of the Gray image (32 entries).
    pub gray: Vec<u64>,
    /// Storage bits charged per lane that uses TT (control bits ×
    /// TT entries used).
    pub tt_lane_bits: u64,
    /// Storage bits charged once if *any* lane uses TT (BBIT entries
    /// plus the E/CT columns of the TT).
    pub tt_fixed_bits: u64,
}

/// A whole-bus competitor in the auto-selection (schemes whose decode
/// cannot be restricted to a lane subset).
#[derive(Debug, Clone)]
pub struct WholeBusCandidate {
    /// Scheme name.
    pub name: &'static str,
    /// Storage bits (counted against the budget).
    pub storage_bits: u64,
    /// Total encoded transitions, extra lines included.
    pub transitions: u64,
}

/// The auto-selector's answer: either a per-lane composite or a
/// whole-bus scheme, whichever transitions least within budget.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoSelection {
    /// Per-lane choices (meaningful when `whole_bus` is `None`).
    pub lanes: Vec<LaneChoice>,
    /// Winning whole-bus scheme, if one beat the composite.
    pub whole_bus: Option<&'static str>,
    /// Storage bits the winner consumes (≤ the budget).
    pub bits_used: u64,
    /// Predicted total transitions of the winner.
    pub transitions: u64,
    /// Total baseline transitions (for reduction arithmetic).
    pub baseline_transitions: u64,
}

impl AutoSelection {
    /// Percentage of bus transitions eliminated by the selection.
    pub fn reduction_percent(&self) -> f64 {
        if self.baseline_transitions == 0 {
            return 0.0;
        }
        (self.baseline_transitions as f64 - self.transitions as f64)
            / self.baseline_transitions as f64
            * 100.0
    }

    /// The composite's descriptor (whole-bus winners are described by
    /// their own scheme's descriptor).
    pub fn descriptor(&self) -> SchemeDescriptor {
        let mut lanes = [0u8; 32];
        for (slot, choice) in lanes.iter_mut().zip(&self.lanes) {
            *slot = choice.tag();
        }
        SchemeDescriptor::Composite { lanes }
    }
}

/// Splits a TT/BBIT schedule's storage bill into the per-lane price and
/// the fixed overhead for [`LaneCosts`]: each lane that keeps its TT
/// column pays `tt_entries × ⌈log₂ transforms⌉` control bits; the BBIT
/// and the E/CT delimiter columns are charged once if any lane does.
/// Returns `(tt_lane_bits, tt_fixed_bits)`; the two satisfy
/// `tt_fixed_bits + 32 × tt_lane_bits == HardwareBudget::total_bits()`.
pub fn tt_lane_split(encoded: &EncodedProgram) -> (u64, u64) {
    let budget = crate::hardware::HardwareBudget::of_schedule(encoded);
    let transforms = encoded.config.transforms().len();
    let control_bits = u64::from(usize::BITS - transforms.saturating_sub(1).leading_zeros());
    let tt_lane_bits = budget.tt_entries as u64 * control_bits;
    let tt_fixed_bits = budget.total_bits() - BUS_WIDTH as u64 * tt_lane_bits;
    (tt_lane_bits, tt_fixed_bits)
}

/// Exact multiple-choice knapsack over the per-lane options, compared
/// against every affordable whole-bus candidate. Ties prefer the
/// composite, then fewer storage bits.
///
/// The composite side runs the bit-budget DP twice — once without TT
/// lanes (no fixed cost) and once with the TT fixed cost pre-charged —
/// and keeps the better; whole-bus candidates with `storage_bits` over
/// budget are excluded. The result never exceeds `budget_bits`.
pub fn auto_select(
    costs: &LaneCosts,
    whole_bus: &[WholeBusCandidate],
    budget_bits: u64,
) -> AutoSelection {
    let baseline_transitions: u64 = costs.baseline.iter().sum();
    // Pass 1: no TT anywhere — every option is free, pick per-lane min.
    let free: Vec<LaneChoice> = costs
        .baseline
        .iter()
        .zip(&costs.gray)
        .map(|(&base, &gray)| {
            if gray < base {
                LaneChoice::Gray
            } else {
                LaneChoice::Baseline
            }
        })
        .collect();
    let free_transitions: u64 = free
        .iter()
        .zip(costs.baseline.iter().zip(&costs.gray))
        .map(|(choice, (&base, &gray))| match choice {
            LaneChoice::Gray => gray,
            _ => base,
        })
        .sum();
    let mut best_lanes = free;
    let mut best_transitions = free_transitions;
    let mut best_bits = 0u64;

    // Pass 2: TT active — pay the fixed cost, then a 0/1 choice per
    // lane between the free floor and the TT column, solved exactly by
    // a dense DP over the remaining bit budget.
    if budget_bits >= costs.tt_fixed_bits && costs.tt_lane_bits > 0 {
        let cap_bits = budget_bits - costs.tt_fixed_bits;
        // Beyond 32 TT lanes there is nothing left to buy.
        let cap = usize::try_from(cap_bits.min(32 * costs.tt_lane_bits)).unwrap_or(usize::MAX);
        let lane_bits = usize::try_from(costs.tt_lane_bits).unwrap_or(usize::MAX);
        if lane_bits <= cap {
            let lanes = costs.baseline.len();
            // dp[c] = min transitions achievable with ≤ c bits.
            let mut dp = vec![0u64; cap + 1];
            let mut picked = vec![vec![false; cap + 1]; lanes];
            for (lane, lane_picked) in picked.iter_mut().enumerate() {
                let floor = costs.baseline[lane].min(costs.gray[lane]);
                let tt = costs.tt[lane];
                let prev = dp.clone();
                for c in 0..=cap {
                    let without = prev[c] + floor;
                    let with = if c >= lane_bits {
                        prev[c - lane_bits].saturating_add(tt)
                    } else {
                        u64::MAX
                    };
                    if with < without {
                        dp[c] = with;
                        lane_picked[c] = true;
                    } else {
                        dp[c] = without;
                    }
                }
            }
            let mut lanes_choice = Vec::with_capacity(lanes);
            let mut c = cap;
            for lane in (0..lanes).rev() {
                if picked[lane][c] {
                    lanes_choice.push(LaneChoice::Tt);
                    c -= lane_bits;
                } else if costs.gray[lane] < costs.baseline[lane] {
                    lanes_choice.push(LaneChoice::Gray);
                } else {
                    lanes_choice.push(LaneChoice::Baseline);
                }
            }
            lanes_choice.reverse();
            let tt_lanes = lanes_choice
                .iter()
                .filter(|&&ch| ch == LaneChoice::Tt)
                .count() as u64;
            if tt_lanes > 0 && dp[cap] < best_transitions {
                best_lanes = lanes_choice;
                best_transitions = dp[cap];
                best_bits = costs.tt_fixed_bits + tt_lanes * costs.tt_lane_bits;
            }
        }
    }

    // Whole-bus candidates: strictly better transitions win (composite
    // preferred on ties).
    let mut selection = AutoSelection {
        lanes: best_lanes,
        whole_bus: None,
        bits_used: best_bits,
        transitions: best_transitions,
        baseline_transitions,
    };
    for candidate in whole_bus {
        if candidate.storage_bits <= budget_bits && candidate.transitions < selection.transitions {
            selection.whole_bus = Some(candidate.name);
            selection.bits_used = candidate.storage_bits;
            selection.transitions = candidate.transitions;
        }
    }
    selection
}

/// Assembles the composite stored image: each lane's column comes from
/// its chosen donor image.
pub fn composite_image(
    text: &[u32],
    tt_image: &[u32],
    gray: &[u32],
    lanes: &[LaneChoice],
) -> Vec<u32> {
    let mut tt_mask = 0u32;
    let mut gray_mask = 0u32;
    for (lane, choice) in lanes.iter().enumerate() {
        match choice {
            LaneChoice::Tt => tt_mask |= 1 << lane,
            LaneChoice::Gray => gray_mask |= 1 << lane,
            LaneChoice::Baseline => {}
        }
    }
    text.iter()
        .zip(tt_image.iter().zip(gray))
        .map(|(&orig, (&tt, &g))| {
            (orig & !(tt_mask | gray_mask)) | (tt & tt_mask) | (g & gray_mask)
        })
        .collect()
}

/// Statically verifies that the composite image decodes to the original
/// text through the real hardware models: TT lanes run the
/// [`FetchDecoder`] span walk over the *composite* words (per-lane
/// decode is lane-local given the PC-driven walker), Gray lanes ripple
/// from the already-restored higher lane, baseline lanes pass through.
///
/// Sound under the same precondition as [`evaluate_replay`]: every
/// dynamic entry into a scheduled block lands on its start PC, which
/// the donor TT evaluation has already checked against the profile.
///
/// # Errors
///
/// [`CoreError::DecodeMismatch`] on the first word that fails;
/// [`CoreError::TableImage`] on length mismatches.
pub fn verify_composite_decode(
    program: &Program,
    encoded: &EncodedProgram,
    composite: &[u32],
    lanes: &[LaneChoice],
) -> Result<(), CoreError> {
    let text_len = program.text.len();
    if composite.len() != text_len {
        return Err(CoreError::TableImage {
            detail: "composite image length differs from the program text",
        });
    }
    // TT-decode every composite word along the span walk; outside spans
    // the decoder passes words through untouched.
    let mut tt_decoded = composite.to_vec();
    let mut decoder = FetchDecoder::new(
        &encoded.tt,
        &encoded.bbit,
        BUS_WIDTH,
        encoded.config.block_size(),
        encoded.config.overlap(),
    );
    for (start_pc, end_pc) in decoder.scheduled_spans() {
        let start = pc_to_index(start_pc, encoded.text_base, text_len)?;
        let end = pc_to_index(end_pc.wrapping_sub(4), encoded.text_base, text_len)? + 1;
        decoder.reset();
        for (index, slot) in tt_decoded.iter_mut().enumerate().take(end).skip(start) {
            let pc = encoded.text_base + 4 * index as u32;
            *slot = decoder.on_fetch(pc, composite[index]);
        }
    }
    for index in 0..text_len {
        let stored = composite[index];
        let mut decoded = 0u32;
        for lane in (0..lanes.len().min(32)).rev() {
            let bit = match lanes[lane] {
                LaneChoice::Tt => (tt_decoded[index] >> lane) & 1,
                LaneChoice::Baseline => (stored >> lane) & 1,
                LaneChoice::Gray => {
                    let higher = if lane == 31 {
                        0
                    } else {
                        (decoded >> (lane + 1)) & 1
                    };
                    ((stored >> lane) & 1) ^ higher
                }
            };
            decoded |= bit << lane;
        }
        if decoded != program.text[index] {
            return Err(CoreError::DecodeMismatch {
                pc: program.text_base + 4 * index as u32,
                decoded,
                expected: program.text[index],
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_auto;
    use imt_isa::asm::assemble;
    use proptest::prelude::*;

    const LOOP_PROGRAM: &str = r#"
            .text
    main:   li   $t0, 500
    loop:   xor  $t1, $t1, $t0
            sll  $t2, $t1, 3
            srl  $t3, $t1, 7
            addu $t4, $t2, $t3
            subu $t5, $t3, $t2
            and  $t6, $t4, $t5
            addiu $t0, $t0, -1
            bgtz $t0, loop
            move $a0, $t6
            li   $v0, 1
            syscall
            li   $v0, 10
            syscall
    "#;

    const MAX_STEPS: u64 = 10_000_000;

    fn fixture() -> (Program, FetchEdgeProfile) {
        let program = assemble(LOOP_PROGRAM).expect("assembly failed");
        let profile = FetchEdgeProfile::record(&program, MAX_STEPS).expect("record failed");
        (program, profile)
    }

    #[test]
    fn bus_invert_replay_is_refused() {
        let (program, profile) = fixture();
        let scheme = BusInvertScheme::new(&program);
        let err = evaluate_scheme_replay(&scheme, &program, &profile)
            .expect_err("cycle-state replay must be refused");
        assert!(
            matches!(err, CoreError::ReplayInfeasible { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn bus_invert_auto_routes_to_full_sim() {
        let (program, profile) = fixture();
        let mut scheme = BusInvertScheme::new(&program);
        let (eval, path) = evaluate_scheme_auto(
            &mut scheme,
            &program,
            MAX_STEPS,
            Some(&profile),
            EvalNeeds::transitions_only(),
        )
        .expect("full sim succeeds");
        assert_eq!(path, EvalPath::FullSim(FullSimReason::ReplayInfeasible));
        assert_eq!(eval.decode_mismatches, 0);
        // Bus-invert never *adds* data transitions; with the invert line
        // charged it stays within one flip per word of baseline.
        assert!(eval.encoded_transitions <= eval.baseline_transitions + eval.fetches);
    }

    #[test]
    fn memoryless_schemes_replay_equals_full_sim() {
        let (program, profile) = fixture();
        let per_index = profile.per_index_counts();
        for spec in [
            SchemeSpec::Gray,
            SchemeSpec::LowWeight {
                entries: SchemeSpec::DEFAULT_LOW_WEIGHT_ENTRIES,
            },
        ] {
            let mut scheme = build_scheme(spec, &program, &per_index, &EncoderConfig::default())
                .expect("build succeeds");
            let replayed = evaluate_scheme_replay(scheme.as_ref(), &program, &profile)
                .expect("replay succeeds");
            let full = evaluate_scheme_full(scheme.as_mut(), &program, MAX_STEPS)
                .expect("full sim succeeds");
            assert_eq!(replayed, full, "{}", spec.name());
        }
    }

    #[test]
    fn tt_under_the_trait_is_bit_identical_to_the_pipeline() {
        let (program, profile) = fixture();
        let per_index = profile.per_index_counts();
        let config = EncoderConfig::default();
        let scheme = build_scheme(SchemeSpec::TtBbit, &program, &per_index, &config)
            .expect("build succeeds");
        let via_trait =
            evaluate_scheme_replay(scheme.as_ref(), &program, &profile).expect("replay succeeds");
        let encoded = encode_program(&program, &per_index, &config).expect("encode succeeds");
        let (direct, path) = evaluate_auto(
            &program,
            &encoded,
            MAX_STEPS,
            Some(&profile),
            EvalNeeds::transitions_only(),
        )
        .expect("direct eval succeeds");
        assert_eq!(path, EvalPath::Replay);
        assert_eq!(via_trait, SchemeEvaluation::from_evaluation(&direct));
    }

    #[test]
    fn composite_decodes_and_scores_exactly() {
        let (program, profile) = fixture();
        let per_index = profile.per_index_counts();
        let config = EncoderConfig::default();
        let encoded = encode_program(&program, &per_index, &config).expect("encode succeeds");
        let tt_eval = evaluate_replay(&program, &encoded, &profile).expect("replay succeeds");
        let gray = GrayScheme::new(&program);
        let (_, gray_lanes) = weighted_transitions(gray.stored_image(), &profile);
        let budget = crate::hardware::HardwareBudget::of_schedule(&encoded);
        let (tt_lane_bits, tt_fixed_bits) = tt_lane_split(&encoded);
        assert_eq!(
            tt_fixed_bits + BUS_WIDTH as u64 * tt_lane_bits,
            budget.total_bits()
        );
        let costs = LaneCosts {
            baseline: tt_eval.per_lane_baseline.clone(),
            tt: tt_eval.per_lane_encoded.clone(),
            gray: gray_lanes,
            tt_lane_bits,
            tt_fixed_bits,
        };
        let selection = auto_select(&costs, &[], budget.total_bits());
        assert!(selection.bits_used <= budget.total_bits());
        let composite = composite_image(
            &program.text,
            &encoded.text,
            gray.stored_image(),
            &selection.lanes,
        );
        verify_composite_decode(&program, &encoded, &composite, &selection.lanes)
            .expect("composite decodes");
        let (measured, _) = weighted_transitions(&composite, &profile);
        assert_eq!(measured, selection.transitions, "DP prediction is exact");
        // With the full budget the composite is at least as good as the
        // whole-bus TT image.
        assert!(selection.transitions <= tt_eval.encoded_transitions);
    }

    #[test]
    fn knapsack_budget_zero_buys_only_free_lanes() {
        let costs = LaneCosts {
            baseline: vec![100; 32],
            tt: vec![10; 32],
            gray: vec![120; 32],
            tt_lane_bits: 3,
            tt_fixed_bits: 50,
        };
        let selection = auto_select(&costs, &[], 0);
        assert_eq!(selection.bits_used, 0);
        assert!(selection.lanes.iter().all(|&c| c == LaneChoice::Baseline));
        assert_eq!(selection.transitions, 3200);
    }

    #[test]
    fn knapsack_budget_for_exactly_one_lane() {
        let mut baseline = vec![100u64; 32];
        baseline[7] = 500; // lane 7 has the biggest TT gain
        let costs = LaneCosts {
            baseline,
            tt: vec![10; 32],
            gray: vec![u64::MAX >> 1; 32],
            tt_lane_bits: 3,
            tt_fixed_bits: 50,
        };
        let selection = auto_select(&costs, &[], 53);
        assert_eq!(selection.bits_used, 53);
        let tt_lanes: Vec<usize> = selection
            .lanes
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == LaneChoice::Tt)
            .map(|(l, _)| l)
            .collect();
        assert_eq!(tt_lanes, vec![7]);
    }

    #[test]
    fn knapsack_all_lanes_affordable_takes_every_win() {
        let costs = LaneCosts {
            baseline: vec![100; 32],
            tt: vec![10; 32],
            gray: vec![90; 32],
            tt_lane_bits: 3,
            tt_fixed_bits: 50,
        };
        let selection = auto_select(&costs, &[], 1_000_000);
        assert!(selection.lanes.iter().all(|&c| c == LaneChoice::Tt));
        assert_eq!(selection.bits_used, 50 + 32 * 3);
        assert_eq!(selection.transitions, 320);
    }

    #[test]
    fn whole_bus_candidate_wins_only_when_strictly_better_and_affordable() {
        let costs = LaneCosts {
            baseline: vec![100; 32],
            tt: vec![50; 32],
            gray: vec![100; 32],
            tt_lane_bits: 3,
            tt_fixed_bits: 50,
        };
        let cheap_win = WholeBusCandidate {
            name: "lowweight",
            storage_bits: 10,
            transitions: 1_000,
        };
        let unaffordable = WholeBusCandidate {
            name: "huge",
            storage_bits: 10_000,
            transitions: 0,
        };
        let selection = auto_select(&costs, &[cheap_win, unaffordable], 200);
        assert_eq!(selection.whole_bus, Some("lowweight"));
        assert_eq!(selection.bits_used, 10);
        assert_eq!(selection.transitions, 1_000);
    }

    proptest! {
        #[test]
        fn selection_never_exceeds_budget(
            baseline in proptest::collection::vec(0u64..10_000, 32),
            tt in proptest::collection::vec(0u64..10_000, 32),
            gray in proptest::collection::vec(0u64..10_000, 32),
            tt_bits in (1u64..64, 0u64..512),
            budget in 0u64..4096,
            wb in (0u64..4096, 0u64..100_000),
        ) {
            let (tt_lane_bits, tt_fixed_bits) = tt_bits;
            let costs = LaneCosts { baseline, tt, gray, tt_lane_bits, tt_fixed_bits };
            let candidate = WholeBusCandidate {
                name: "wb", storage_bits: wb.0, transitions: wb.1,
            };
            let selection = auto_select(&costs, &[candidate], budget);
            prop_assert!(selection.bits_used <= budget);
            // The free floor is always available, so the selection can
            // never be worse than it.
            let floor: u64 = costs.baseline.iter().zip(&costs.gray)
                .map(|(&b, &g)| b.min(g)).sum();
            prop_assert!(selection.transitions <= floor);
        }
    }

    #[test]
    fn descriptor_round_trips() {
        let descriptors = [
            SchemeDescriptor::TtBbit {
                block_size: 5,
                overlap: 0,
                transform_mask: imt_bitcode::TransformSet::CANONICAL_EIGHT.mask(),
                tt_capacity: 16,
                bbit_capacity: 16,
            },
            SchemeDescriptor::Gray,
            SchemeDescriptor::LowWeight {
                pairs: vec![(0xDEAD_BEEF, 1), (0xFFFF_0000, 2)],
            },
            SchemeDescriptor::BusInvert { width: 32 },
            SchemeDescriptor::Composite { lanes: [1; 32] },
        ];
        for descriptor in descriptors {
            let bytes = descriptor.to_bytes();
            let back = SchemeDescriptor::from_bytes(&bytes).expect("round trip parses");
            assert_eq!(back, descriptor);
        }
    }

    #[test]
    fn descriptor_rejects_bad_magic_and_version() {
        let mut bytes = SchemeDescriptor::Gray.to_bytes();
        bytes[0] ^= 1;
        assert_eq!(
            SchemeDescriptor::from_bytes(&bytes)
                .expect_err("bad magic")
                .detail,
            "bad magic"
        );
        let mut bytes = SchemeDescriptor::Gray.to_bytes();
        bytes[8] = 99;
        assert_eq!(
            SchemeDescriptor::from_bytes(&bytes)
                .expect_err("bad version")
                .detail,
            "unsupported scheme format version"
        );
    }
}
