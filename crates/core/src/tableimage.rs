//! Bit-packed TT/BBIT firmware images.
//!
//! §7.1 of the paper describes two ways the transformation information
//! reaches the hardware: loaded "at the same time as the application code
//! upload" (firmware) or written "by software prior to entering the loop"
//! through a peripheral interface. Either way, what travels is a packed
//! table image. This module defines that image precisely, at the bit
//! granularity the hardware would store:
//!
//! ```text
//! header:  magic "TTB1" (32) | lanes (8) | control_bits (8) |
//!          block_size (8) | overlap (8) | tt_count (16) | bbit_count (16)
//! TT:      per entry: lanes × control_bits of τ selectors (preference-
//!          order index into the transform set), 1 E bit, 8 CT bits
//! BBIT:    per entry: 32-bit PC, 16-bit TT index
//! ```
//!
//! All fields are little-endian bit order within a contiguous bit stream;
//! the stream is padded to a byte boundary at the end of each section.
//! The round trip is exact, and the image size matches
//! [`HardwareBudget`](crate::hardware::HardwareBudget) up to the declared
//! field widths.

use imt_bitcode::block::OverlapHistory;
use imt_bitcode::{Transform, TransformSet};

use crate::error::CoreError;
use crate::hardware::{Bbit, BbitEntry, TransformationTable, TtEntry};
use crate::pipeline::EncodedProgram;

const MAGIC: u32 = u32::from_le_bytes(*b"TTB1");

/// A little-endian bit-stream writer.
#[derive(Debug, Default)]
struct BitWriter {
    bytes: Vec<u8>,
    bit: usize,
}

impl BitWriter {
    fn push(&mut self, value: u64, bits: usize) {
        for i in 0..bits {
            if self.bit == 0 {
                self.bytes.push(0);
            }
            let byte = self.bytes.last_mut().expect("pushed above");
            *byte |= (((value >> i) & 1) as u8) << self.bit;
            self.bit = (self.bit + 1) % 8;
        }
    }

    fn align(&mut self) {
        self.bit = 0;
    }
}

/// A little-endian bit-stream reader.
#[derive(Debug)]
struct BitReader<'a> {
    bytes: &'a [u8],
    position: usize,
}

impl BitReader<'_> {
    fn pull(&mut self, bits: usize) -> Result<u64, CoreError> {
        let mut value = 0u64;
        for i in 0..bits {
            let byte = self.position / 8;
            let bit = self.position % 8;
            let Some(&b) = self.bytes.get(byte) else {
                return Err(CoreError::TableImage {
                    detail: "truncated image",
                });
            };
            value |= u64::from(b >> bit & 1) << i;
            self.position += 1;
        }
        Ok(value)
    }

    fn align(&mut self) {
        self.position = self.position.div_ceil(8) * 8;
    }
}

/// Serialises an encoded program's tables into the packed firmware image.
///
/// The transform selectors are indices into the configured transform set's
/// preference-order members ([`TransformSet::iter`]), exactly the compact
/// encoding the paper's 3-control-bit argument assumes.
///
/// # Errors
///
/// [`CoreError::TableImage`] if a TT entry uses a transform outside the
/// configured set (cannot happen for pipeline output).
pub fn pack_tables(encoded: &EncodedProgram) -> Result<Vec<u8>, CoreError> {
    let set = encoded.config.transforms();
    let members: Vec<Transform> = set.iter().collect();
    let control_bits = set.control_bits().max(1) as usize;
    let lanes = crate::pipeline::BUS_WIDTH;

    let mut w = BitWriter::default();
    w.push(u64::from(MAGIC), 32);
    w.push(lanes as u64, 8);
    w.push(control_bits as u64, 8);
    w.push(encoded.config.block_size() as u64, 8);
    w.push(
        matches!(encoded.config.overlap(), OverlapHistory::Decoded) as u64,
        8,
    );
    w.push(encoded.tt.len() as u64, 16);
    w.push(encoded.bbit.len() as u64, 16);
    w.align();

    for entry in encoded.tt.entries() {
        for &transform in &entry.lane_transforms {
            let index =
                members
                    .iter()
                    .position(|&t| t == transform)
                    .ok_or(CoreError::TableImage {
                        detail: "transform outside the configured set",
                    })?;
            w.push(index as u64, control_bits);
        }
        w.push(entry.end as u64, 1);
        w.push(entry.covers as u64, 8);
    }
    w.align();

    for entry in encoded.bbit.entries() {
        w.push(u64::from(entry.pc), 32);
        w.push(entry.tt_index as u64, 16);
    }
    w.align();
    Ok(w.bytes)
}

/// The tables and configuration recovered from a packed image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnpackedTables {
    /// The Transformation Table contents.
    pub tt: TransformationTable,
    /// The BBIT contents.
    pub bbit: Bbit,
    /// Block size the schedule was built for.
    pub block_size: usize,
    /// Overlap-history semantics.
    pub overlap: OverlapHistory,
}

/// Parses a packed firmware image produced by [`pack_tables`].
///
/// `set` must be the transform set the image was packed against (its
/// preference order defines the selector meaning), as the hardware's gate
/// wiring would.
///
/// # Errors
///
/// [`CoreError::TableImage`] for a bad magic, truncation, or out-of-range
/// selectors.
pub fn unpack_tables(bytes: &[u8], set: TransformSet) -> Result<UnpackedTables, CoreError> {
    let members: Vec<Transform> = set.iter().collect();
    let mut r = BitReader { bytes, position: 0 };
    if r.pull(32)? != u64::from(MAGIC) {
        return Err(CoreError::TableImage {
            detail: "bad magic",
        });
    }
    let lanes = r.pull(8)? as usize;
    let control_bits = r.pull(8)? as usize;
    let block_size = r.pull(8)? as usize;
    let overlap = if r.pull(8)? == 1 {
        OverlapHistory::Decoded
    } else {
        OverlapHistory::Stored
    };
    let tt_count = r.pull(16)? as usize;
    let bbit_count = r.pull(16)? as usize;
    if control_bits != set.control_bits().max(1) as usize {
        return Err(CoreError::TableImage {
            detail: "selector width does not match the set",
        });
    }
    r.align();

    let mut tt = TransformationTable::new();
    for _ in 0..tt_count {
        let mut lane_transforms = Vec::with_capacity(lanes);
        for _ in 0..lanes {
            let index = r.pull(control_bits)? as usize;
            let transform = members.get(index).copied().ok_or(CoreError::TableImage {
                detail: "selector outside the configured set",
            })?;
            lane_transforms.push(transform);
        }
        let end = r.pull(1)? == 1;
        let covers = r.pull(8)? as usize;
        tt.push(TtEntry {
            lane_transforms,
            end,
            covers,
        });
    }
    r.align();

    let mut bbit = Bbit::new();
    for _ in 0..bbit_count {
        let pc = r.pull(32)? as u32;
        let tt_index = r.pull(16)? as usize;
        if tt_index >= tt.len().max(1) && tt_count > 0 {
            return Err(CoreError::TableImage {
                detail: "BBIT index outside the TT",
            });
        }
        bbit.push(BbitEntry { pc, tt_index });
    }
    Ok(UnpackedTables {
        tt,
        bbit,
        block_size,
        overlap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EncoderConfig;
    use crate::pipeline::encode_program;
    use imt_sim::Cpu;

    fn encoded_fixture(config: &EncoderConfig) -> (imt_isa::Program, EncodedProgram) {
        let program = imt_isa::asm::assemble(
            r#"
            .text
    main:   li   $t0, 400
    loop:   xor  $t1, $t1, $t0
            sll  $t2, $t1, 3
            srl  $t3, $t1, 7
            addu $t4, $t2, $t3
            addiu $t0, $t0, -1
            bgtz $t0, loop
            li   $v0, 10
            syscall
    "#,
        )
        .unwrap();
        let mut cpu = Cpu::new(&program).unwrap();
        cpu.run(100_000).unwrap();
        let encoded = encode_program(&program, cpu.profile(), config).unwrap();
        (program, encoded)
    }

    #[test]
    fn pack_unpack_round_trip() {
        for config in [
            EncoderConfig::default(),
            EncoderConfig::default()
                .with_transforms(imt_bitcode::TransformSet::ALL_SIXTEEN)
                .unwrap()
                .with_overlap(OverlapHistory::Decoded),
            EncoderConfig::default().with_block_size(7).unwrap(),
        ] {
            let (_, encoded) = encoded_fixture(&config);
            let image = pack_tables(&encoded).unwrap();
            let unpacked = unpack_tables(&image, config.transforms()).unwrap();
            assert_eq!(unpacked.tt, encoded.tt);
            assert_eq!(unpacked.bbit, encoded.bbit);
            assert_eq!(unpacked.block_size, config.block_size());
            assert_eq!(unpacked.overlap, config.overlap());
        }
    }

    #[test]
    fn unpacked_tables_drive_the_decoder_identically() {
        let config = EncoderConfig::default();
        let (program, encoded) = encoded_fixture(&config);
        let image = pack_tables(&encoded).unwrap();
        let unpacked = unpack_tables(&image, config.transforms()).unwrap();
        // Rebuild an EncodedProgram around the unpacked tables and verify
        // the dynamic replay end to end.
        let rebuilt = EncodedProgram {
            tt: unpacked.tt,
            bbit: unpacked.bbit,
            ..encoded.clone()
        };
        let eval = crate::eval::evaluate(&program, &rebuilt, 100_000).unwrap();
        assert_eq!(eval.decode_mismatches, 0);
    }

    #[test]
    fn image_size_matches_the_hardware_budget_shape() {
        let (_, encoded) = encoded_fixture(&EncoderConfig::default());
        let image = pack_tables(&encoded).unwrap();
        // Header 12 bytes + per-entry payloads; the paper's point is that
        // this is tiny. 16-entry budget: 16 × (96 + 9) bits ≈ 210 bytes.
        assert!(image.len() < 300, "image is {} bytes", image.len());
        // TT section: entries × (32×3 + 1 + 8) bits.
        let tt_bits = encoded.tt.len() * (32 * 3 + 1 + 8);
        let bbit_bits = encoded.bbit.len() * 48;
        let expected = 12 + tt_bits.div_ceil(8) + bbit_bits.div_ceil(8);
        assert_eq!(image.len(), expected);
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let (_, encoded) = encoded_fixture(&EncoderConfig::default());
        let image = pack_tables(&encoded).unwrap();
        let set = encoded.config.transforms();
        // Bad magic.
        let mut bad = image.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            unpack_tables(&bad, set),
            Err(CoreError::TableImage {
                detail: "bad magic"
            })
        ));
        // Truncation.
        assert!(unpack_tables(&image[..image.len() - 4], set).is_err());
        // Wrong set (selector width mismatch: 8-fn image vs identity-only).
        assert!(unpack_tables(&image, imt_bitcode::TransformSet::IDENTITY_ONLY).is_err());
    }
}
