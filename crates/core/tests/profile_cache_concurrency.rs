//! Concurrency tests for the on-disk profile cache.
//!
//! The serve layer (and any parallel experiment runner) can race many
//! threads through a cold miss on the same content key: each records the
//! profile itself, then calls `store_in`. The contract: however many
//! writers collide, the directory ends up with exactly one valid entry
//! per key, every concurrent `load_from` sees either a miss or a
//! *complete, bit-identical* profile — never a torn file — and no
//! writer's rename errors out from a shared temp path.
//!
//! These tests use `store_in`/`load_from` against private temp
//! directories rather than the `IMT_PROFILE_CACHE_DIR` environment
//! variable, so they are safe under any `--test-threads` setting
//! (env vars are process-global; directories are not).

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use imt_core::profile_cache::{content_key, load_from, store_in};
use imt_isa::asm::assemble;
use imt_isa::program::Program;
use imt_sim::edge::FetchEdgeProfile;

const MAX_STEPS: u64 = 100_000;

fn test_program() -> Program {
    assemble(
        r#"
        .text
main:   li   $t0, 200
loop:   xor  $t1, $t1, $t0
        sll  $t2, $t1, 3
        addiu $t0, $t0, -1
        bgtz $t0, loop
        li   $v0, 10
        syscall
"#,
    )
    .expect("test program assembles")
}

/// A second program (different key) for the mixed-key race.
fn other_program() -> Program {
    assemble(
        r#"
        .text
main:   li   $t0, 100
loop:   addiu $t0, $t0, -1
        bgtz $t0, loop
        li   $v0, 10
        syscall
"#,
    )
    .expect("test program assembles")
}

/// A fresh private cache directory under the target tmpdir.
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "imt-cache-test-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn racing_cold_miss_writers_leave_one_valid_entry() {
    let dir = scratch_dir("cold-miss");
    let program = test_program();
    let reference = FetchEdgeProfile::record(&program, MAX_STEPS).expect("recording succeeds");

    const WRITERS: usize = 8;
    thread::scope(|s| {
        for _ in 0..WRITERS {
            s.spawn(|| {
                // Each thread plays a full cold-miss client: probe (a
                // racing winner's entry may already be visible — either
                // answer is fine), record its own copy, store. All
                // stores hit the same key.
                let _ = load_from(&dir, &program, MAX_STEPS);
                let profile =
                    FetchEdgeProfile::record(&program, MAX_STEPS).expect("recording succeeds");
                store_in(&dir, &program, MAX_STEPS, &profile)
                    .expect("a racing store must not error");
            });
        }
    });

    // Exactly one entry file, zero leftover temp files.
    let mut entries = Vec::new();
    let mut leftovers = Vec::new();
    for item in fs::read_dir(&dir).expect("cache dir exists") {
        let name = item.unwrap().file_name().to_string_lossy().into_owned();
        if name.ends_with(".edges") {
            entries.push(name);
        } else {
            leftovers.push(name);
        }
    }
    assert_eq!(
        entries.len(),
        1,
        "one key must map to one entry: {entries:?}"
    );
    assert_eq!(leftovers, Vec::<String>::new(), "temp files must not leak");
    assert_eq!(
        entries[0],
        format!("{}.edges", content_key(&program, MAX_STEPS))
    );

    // The surviving entry is complete and bit-identical to a fresh
    // recording (recording is deterministic, so every writer wrote the
    // same bytes — any torn interleaving would diverge).
    let loaded = load_from(&dir, &program, MAX_STEPS).expect("entry loads");
    assert_eq!(loaded, reference);
    let on_disk = fs::read(dir.join(&entries[0])).unwrap();
    assert_eq!(on_disk, reference.to_bytes());

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_readers_see_complete_profiles_or_misses() {
    let dir = scratch_dir("read-write");
    let program = test_program();
    let reference = FetchEdgeProfile::record(&program, MAX_STEPS).expect("recording succeeds");

    // Pre-populate so every read races an *overwrite*, the worst case
    // for tearing: rename must swap complete files, never expose a
    // partial write.
    store_in(&dir, &program, MAX_STEPS, &reference).expect("initial store");

    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const READS: usize = 200;
    let torn = AtomicUsize::new(0);

    thread::scope(|s| {
        for _ in 0..WRITERS {
            s.spawn(|| {
                for _ in 0..25 {
                    store_in(&dir, &program, MAX_STEPS, &reference)
                        .expect("store must not error while readers poll");
                }
            });
        }
        for _ in 0..READERS {
            s.spawn(|| {
                for _ in 0..READS {
                    // The entry exists before the scope starts, so every
                    // read must hit — and hit a bit-identical profile.
                    match load_from(&dir, &program, MAX_STEPS) {
                        Some(profile) if profile == reference => {}
                        _ => {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    assert_eq!(
        torn.load(Ordering::Relaxed),
        0,
        "a reader saw a torn or missing profile during overwrites"
    );

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn racing_writers_on_distinct_keys_do_not_interfere() {
    let dir = scratch_dir("mixed-keys");
    let a = test_program();
    let b = other_program();
    assert_ne!(
        content_key(&a, MAX_STEPS),
        content_key(&b, MAX_STEPS),
        "the two fixture programs must hash to different keys"
    );
    let ref_a = FetchEdgeProfile::record(&a, MAX_STEPS).unwrap();
    let ref_b = FetchEdgeProfile::record(&b, MAX_STEPS).unwrap();

    thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| store_in(&dir, &a, MAX_STEPS, &ref_a).expect("store a"));
            s.spawn(|| store_in(&dir, &b, MAX_STEPS, &ref_b).expect("store b"));
        }
    });

    assert_eq!(
        load_from(&dir, &a, MAX_STEPS).expect("entry a loads"),
        ref_a
    );
    assert_eq!(
        load_from(&dir, &b, MAX_STEPS).expect("entry b loads"),
        ref_b
    );
    let entries = fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .ends_with(".edges")
        })
        .count();
    assert_eq!(entries, 2);

    let _ = fs::remove_dir_all(&dir);
}
