//! Seeded Monte-Carlo upset campaigns.
//!
//! A campaign fixes one (schedule, protection) cell, then runs `trials`
//! independent replays of the recorded fetch trace, each with one (or a
//! burst of) uniformly sampled upset(s) at a uniformly sampled trigger.
//! Per-trial RNGs are derived from the campaign seed, so a cell is
//! reproducible bit-for-bit and trials can run in parallel without
//! changing the result.
//!
//! Every trial lands in exactly one bucket:
//!
//! * **benign** — nothing observable: the flipped bit was never used, or
//!   was repaired before use with no block ever refused;
//! * **corrected** — the check code repaired the upset and the full
//!   transition reduction survived;
//! * **degraded** — the upset was detected, the affected block(s) fell
//!   back to original words, and not one wrong instruction was executed;
//! * **silent** — at least one wrong word reached the core: silent data
//!   corruption, the outcome protection exists to prevent.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use imt_core::{EncodedProgram, Protection};

use crate::plan::{Fault, FaultPlan, FaultSurface, TargetClass};
use crate::trace::{replay, FetchTrace};
use crate::FaultError;

/// Campaign parameters for one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Independent injection trials.
    pub trials: usize,
    /// Campaign seed; trial `t` uses a seed derived from `(seed, t)`.
    pub seed: u64,
    /// Check code on the table SRAM.
    pub protection: Protection,
    /// Bit class the upsets are drawn from.
    pub targets: TargetClass,
    /// Upset bits per trial (1 = single-event upset; >1 models a burst
    /// striking the same structure).
    pub bits_per_trial: usize,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            trials: 32,
            seed: 0x1317_2003,
            protection: Protection::None,
            targets: TargetClass::Tables,
            bits_per_trial: 1,
        }
    }
}

/// Aggregated outcome of one campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// Trials run.
    pub trials: usize,
    /// Trials with no observable effect.
    pub benign: usize,
    /// Trials fully repaired by the check code.
    pub corrected: usize,
    /// Trials detected and degraded with zero wrong words.
    pub degraded: usize,
    /// Trials where a wrong word reached the core.
    pub silent: usize,
    /// Faults injected across all trials.
    pub injected: u64,
    /// Transition reduction of the clean (fault-free) replay, percent.
    pub clean_reduction_percent: f64,
    /// Mean transition reduction retained across non-silent trials,
    /// percent (silent trials execute wrong instructions; their bus
    /// figure is meaningless and excluded).
    pub retained_reduction_percent: f64,
}

impl CampaignSummary {
    /// Silent-data-corruption rate: silent trials over all trials.
    pub fn sdc_rate(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.silent as f64 / self.trials as f64
    }

    /// Detection coverage: fraction of trials that did *not* end in
    /// silent corruption.
    pub fn coverage(&self) -> f64 {
        1.0 - self.sdc_rate()
    }
}

/// Derives trial `t`'s RNG seed from the campaign seed (splitmix-style
/// spread so consecutive trials land far apart).
fn trial_seed(seed: u64, trial: usize) -> u64 {
    seed ^ (trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs one campaign cell over a recorded trace.
///
/// # Errors
///
/// [`FaultError::EmptySurface`] if the target class has no bits (e.g.
/// table upsets against an empty schedule);
/// [`FaultError::Core`] if the decoder cannot be built.
pub fn run_campaign(
    trace: &FetchTrace,
    encoded: &EncodedProgram,
    spec: &CampaignSpec,
) -> Result<CampaignSummary, FaultError> {
    // Clean replay: the reduction the cell starts from, and the fault
    // surface dimensions.
    let clean = replay(trace, encoded, spec.protection, &FaultPlan::none())?;
    debug_assert_eq!(clean.wrong_words, 0);
    let probe = imt_core::hardware::FetchDecoder::with_protection(
        &encoded.tt,
        &encoded.bbit,
        imt_core::pipeline::BUS_WIDTH,
        encoded.config.block_size(),
        encoded.config.overlap(),
        encoded.config.transforms(),
        spec.protection,
    )?;
    let surface = FaultSurface::of(&probe, encoded.text.len());
    drop(probe);
    if trace.is_empty() {
        return Err(FaultError::EmptySurface);
    }
    // Sample every trial's plan up front (cheap, deterministic), then
    // replay trials in parallel — per-trial seeds make the fan-out
    // order-independent.
    let mut plans = Vec::with_capacity(spec.trials);
    for trial in 0..spec.trials {
        let mut rng = StdRng::seed_from_u64(trial_seed(spec.seed, trial));
        let mut faults = Vec::with_capacity(spec.bits_per_trial);
        for _ in 0..spec.bits_per_trial.max(1) {
            let at_fetch = rng.gen_range(0..trace.len() as u64);
            let target = surface.sample(&mut rng, spec.targets)?;
            faults.push(Fault { at_fetch, target });
        }
        plans.push(FaultPlan::new(faults));
    }
    let outcomes = imt_bitcode::par::par_map(&plans, 4, |_, plan| {
        replay(trace, encoded, spec.protection, plan)
    });

    let mut summary = CampaignSummary {
        trials: spec.trials,
        benign: 0,
        corrected: 0,
        degraded: 0,
        silent: 0,
        injected: 0,
        clean_reduction_percent: clean.reduction_percent(),
        retained_reduction_percent: 0.0,
    };
    let mut retained_sum = 0.0;
    let mut retained_n = 0usize;
    for outcome in outcomes {
        let outcome = outcome?;
        summary.injected += outcome.injected;
        if outcome.wrong_words > 0 {
            summary.silent += 1;
        } else if outcome.degraded_fetches > 0 || outcome.detected > 0 {
            summary.degraded += 1;
            retained_sum += outcome.reduction_percent();
            retained_n += 1;
        } else if outcome.corrected > 0 {
            summary.corrected += 1;
            retained_sum += outcome.reduction_percent();
            retained_n += 1;
        } else {
            summary.benign += 1;
            retained_sum += outcome.reduction_percent();
            retained_n += 1;
        }
    }
    summary.retained_reduction_percent = if retained_n == 0 {
        0.0
    } else {
        retained_sum / retained_n as f64
    };
    if imt_obs::enabled() {
        imt_obs::counter!("fault.silent").add(summary.silent as u64);
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imt_core::{encode_program, EncoderConfig};
    use imt_isa::asm::assemble;
    use imt_sim::Cpu;

    fn fixture() -> (EncodedProgram, FetchTrace) {
        let source = r#"
                .text
        main:   li   $t0, 250
        loop:   xor  $t1, $t1, $t0
                sll  $t2, $t1, 3
                srl  $t3, $t1, 7
                addu $t4, $t2, $t3
                subu $t5, $t3, $t2
                addiu $t0, $t0, -1
                bgtz $t0, loop
                li   $v0, 10
                syscall
        "#;
        let program = assemble(source).expect("assemble");
        let mut cpu = Cpu::new(&program).expect("load");
        cpu.run(1_000_000).expect("run");
        let encoded =
            encode_program(&program, cpu.profile(), &EncoderConfig::default()).expect("encode");
        let trace = FetchTrace::record(&program, &encoded, 1_000_000, 4_000).expect("trace");
        (encoded, trace)
    }

    #[test]
    fn campaigns_are_deterministic_per_seed() {
        let (encoded, trace) = fixture();
        let spec = CampaignSpec {
            trials: 12,
            ..CampaignSpec::default()
        };
        let a = run_campaign(&trace, &encoded, &spec).unwrap();
        let b = run_campaign(&trace, &encoded, &spec).unwrap();
        assert_eq!(a, b);
        let c = run_campaign(
            &trace,
            &encoded,
            &CampaignSpec {
                seed: spec.seed + 1,
                ..spec
            },
        )
        .unwrap();
        // Different seed, same bookkeeping: trial count preserved.
        assert_eq!(c.trials, a.trials);
    }

    #[test]
    fn unprotected_tables_show_silent_corruption_and_parity_stops_it() {
        let (encoded, trace) = fixture();
        let base = CampaignSpec {
            trials: 48,
            ..CampaignSpec::default()
        };
        let none = run_campaign(&trace, &encoded, &base).unwrap();
        assert!(
            none.silent > 0,
            "unprotected TT upsets must produce silent corruption: {none:?}"
        );
        let parity = run_campaign(
            &trace,
            &encoded,
            &CampaignSpec {
                protection: Protection::Parity,
                ..base
            },
        )
        .unwrap();
        assert_eq!(
            parity.silent, 0,
            "parity must detect every single-bit table upset: {parity:?}"
        );
        assert!(parity.coverage() >= 0.99);
        let sec = run_campaign(
            &trace,
            &encoded,
            &CampaignSpec {
                protection: Protection::Sec,
                ..base
            },
        )
        .unwrap();
        assert_eq!(sec.silent, 0);
        assert!(
            sec.corrected >= parity.corrected,
            "SEC corrects where parity can only degrade"
        );
        // Correction preserves more of the reduction than degradation.
        assert!(sec.retained_reduction_percent >= parity.retained_reduction_percent);
    }

    #[test]
    fn bucket_counts_always_sum_to_trials() {
        let (encoded, trace) = fixture();
        for targets in [TargetClass::Tables, TargetClass::Text, TargetClass::Bus] {
            for protection in Protection::ALL {
                let spec = CampaignSpec {
                    trials: 10,
                    protection,
                    targets,
                    ..CampaignSpec::default()
                };
                let s = run_campaign(&trace, &encoded, &spec).unwrap();
                assert_eq!(s.benign + s.corrected + s.degraded + s.silent, s.trials);
                assert_eq!(s.injected, 10);
                assert!((0.0..=1.0).contains(&s.sdc_rate()));
            }
        }
    }

    #[test]
    fn empty_schedule_has_no_table_surface() {
        let source = r#"
                .text
        main:   li   $v0, 10
                syscall
        "#;
        let program = assemble(source).expect("assemble");
        let mut cpu = Cpu::new(&program).expect("load");
        cpu.run(1_000).expect("run");
        let encoded =
            encode_program(&program, cpu.profile(), &EncoderConfig::default()).expect("encode");
        let trace = FetchTrace::record(&program, &encoded, 1_000, 100).expect("trace");
        let err = run_campaign(&trace, &encoded, &CampaignSpec::default()).unwrap_err();
        assert_eq!(err, FaultError::EmptySurface);
    }
}
