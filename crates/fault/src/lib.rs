//! # imt-fault — fault injection and resilience measurement
//!
//! The paper's whole mechanism lives in two tiny fetch-stage SRAM arrays
//! (the TT and the BBIT) and a stateful per-lane decoder: one flipped
//! selector bit silently corrupts every later decoded word of its block.
//! This crate asks the ASIC-evaluation question the reproduction was
//! missing — *what happens when that state goes bad?* — deterministically
//! and at campaign scale:
//!
//! * [`plan`] — named fault targets (`tt:ENTRY:BIT`, `bbit:ENTRY:BIT`,
//!   `text:WORD:BIT`, `bus:BIT`), single- and multi-bit [`plan::FaultPlan`]s
//!   triggered at exact fetch counts, and the sampling surface campaigns
//!   draw from;
//! * [`trace`] — records a program's fetch stream once (PC, stored word,
//!   original word) and replays it through a
//!   [`imt_core::hardware::FetchDecoder`] with faults applied, measuring
//!   wrong-word deliveries, degradations, corrections and the bus
//!   transition cost of the fallback path;
//! * [`campaign`] — seeded Monte-Carlo upset campaigns over a kernel ×
//!   protection cell, classifying every trial as benign / corrected /
//!   degraded / silent and reporting SDC rate, detection coverage and the
//!   transition reduction retained under degradation.
//!
//! Everything is deterministic: campaigns use the compat
//! [`rand::rngs::StdRng`] with per-trial seeds derived from the campaign
//! seed, and replay never consults wall-clock state, so a (kernel, block
//! size, protection, seed) cell always reproduces bit-identically.
//!
//! ```
//! use imt_core::{encode_program, EncoderConfig, Protection};
//! use imt_fault::plan::{FaultPlan, FaultTarget};
//! use imt_fault::trace::FetchTrace;
//! use imt_isa::asm::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(r#"
//!         .text
//! main:   li   $t0, 200
//! loop:   xor  $t1, $t1, $t0
//!         sll  $t2, $t1, 3
//!         addiu $t0, $t0, -1
//!         bgtz $t0, loop
//!         li   $v0, 10
//!         syscall
//! "#)?;
//! let mut cpu = imt_sim::Cpu::new(&program)?;
//! cpu.run(100_000)?;
//! let encoded = encode_program(&program, cpu.profile(), &EncoderConfig::default())?;
//! let trace = FetchTrace::record(&program, &encoded, 100_000, 10_000)?;
//!
//! // Hit TT entry 0, stored bit 5, at fetch 50 — under parity the block
//! // degrades and not one wrong word reaches the core.
//! let plan = FaultPlan::single(50, FaultTarget::Tt { entry: 0, bit: 5 });
//! let outcome = imt_fault::trace::replay(&trace, &encoded, Protection::Parity, &plan)?;
//! assert_eq!(outcome.wrong_words, 0);
//! assert!(outcome.degraded_fetches > 0);
//! # Ok(())
//! # }
//! ```

#![warn(clippy::unwrap_used)]

pub mod campaign;
pub mod plan;
pub mod trace;

use std::error::Error;
use std::fmt;

use imt_core::CoreError;

/// Errors raised by fault planning, replay and campaigns.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// The underlying encode/decode machinery failed.
    Core(CoreError),
    /// A fault specification could not be parsed or addresses a target
    /// outside the configured hardware.
    Plan {
        /// What was wrong with the specification.
        detail: String,
    },
    /// The campaign's target class has no bits to hit (e.g. table upsets
    /// against an empty schedule).
    EmptySurface,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Core(e) => write!(f, "fault replay failed: {e}"),
            FaultError::Plan { detail } => write!(f, "bad fault plan: {detail}"),
            FaultError::EmptySurface => {
                write!(f, "fault campaign has no target bits (empty schedule?)")
            }
        }
    }
}

impl Error for FaultError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FaultError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for FaultError {
    fn from(e: CoreError) -> Self {
        FaultError::Core(e)
    }
}
