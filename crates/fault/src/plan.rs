//! Fault targets, plans, and the sampling surface campaigns draw from.
//!
//! A fault names *where* an upset lands and *when* it strikes, in units
//! the hardware model understands: a stored bit of a TT or BBIT entry
//! (check bits included — real SEUs do not respect field boundaries), a
//! bit of an encoded word in instruction memory, or a transient flip on
//! one bus line for a single fetch. Triggers are exact fetch counts, so a
//! plan replays identically every time.

use std::fmt;

use rand::Rng;

use crate::FaultError;
use imt_core::hardware::FetchDecoder;

/// One injectable fault location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// Stored bit `bit` of TT entry `entry` (selectors, `E`, `CT`, then
    /// check bits, in [`imt_core::protect::EntryLayout`] order).
    Tt {
        /// Entry index in the Transformation Table.
        entry: usize,
        /// Bit position within the stored code word.
        bit: usize,
    },
    /// Stored bit `bit` of BBIT entry `entry` (PC tag, TT index, check
    /// bits).
    Bbit {
        /// Entry index in the BBIT.
        entry: usize,
        /// Bit position within the stored code word.
        bit: usize,
    },
    /// Bit `bit` of encoded text word `word` — a persistent upset in
    /// instruction memory.
    Text {
        /// Word index into the encoded text image.
        word: usize,
        /// Bit position within the 32-bit word.
        bit: u32,
    },
    /// A transient flip of bus line `bit` during exactly one fetch.
    Bus {
        /// The affected bus line.
        bit: u32,
    },
}

impl FaultTarget {
    /// Parses a target specification: `tt:ENTRY:BIT`, `bbit:ENTRY:BIT`,
    /// `text:WORD:BIT` or `bus:BIT`.
    ///
    /// # Errors
    ///
    /// [`FaultError::Plan`] on unknown kinds or malformed numbers.
    pub fn parse(spec: &str) -> Result<FaultTarget, FaultError> {
        let bad = |detail: String| FaultError::Plan { detail };
        let fields: Vec<&str> = spec.split(':').collect();
        let number = |s: &str| -> Result<usize, FaultError> {
            s.parse()
                .map_err(|_| bad(format!("`{s}` is not a number in target `{spec}`")))
        };
        match fields.as_slice() {
            ["tt", entry, bit] => Ok(FaultTarget::Tt {
                entry: number(entry)?,
                bit: number(bit)?,
            }),
            ["bbit", entry, bit] => Ok(FaultTarget::Bbit {
                entry: number(entry)?,
                bit: number(bit)?,
            }),
            ["text", word, bit] => {
                let bit = number(bit)?;
                if bit >= 32 {
                    return Err(bad(format!("text bit {bit} outside 0..32 in `{spec}`")));
                }
                Ok(FaultTarget::Text {
                    word: number(word)?,
                    bit: bit as u32,
                })
            }
            ["bus", bit] => {
                let bit = number(bit)?;
                if bit >= 32 {
                    return Err(bad(format!("bus line {bit} outside 0..32 in `{spec}`")));
                }
                Ok(FaultTarget::Bus { bit: bit as u32 })
            }
            _ => Err(bad(format!(
                "target `{spec}` is not tt:E:B, bbit:E:B, text:W:B or bus:B"
            ))),
        }
    }
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTarget::Tt { entry, bit } => write!(f, "tt:{entry}:{bit}"),
            FaultTarget::Bbit { entry, bit } => write!(f, "bbit:{entry}:{bit}"),
            FaultTarget::Text { word, bit } => write!(f, "text:{word}:{bit}"),
            FaultTarget::Bus { bit } => write!(f, "bus:{bit}"),
        }
    }
}

/// One scheduled upset: strike `target` just before fetch `at_fetch`
/// (0-based) of the replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The fetch count at which the upset lands.
    pub at_fetch: u64,
    /// Where it lands.
    pub target: FaultTarget,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.at_fetch, self.target)
    }
}

/// A deterministic injection schedule: faults sorted by trigger.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan (a clean replay).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan of one fault.
    pub fn single(at_fetch: u64, target: FaultTarget) -> Self {
        FaultPlan::new(vec![Fault { at_fetch, target }])
    }

    /// Builds a plan, sorting by trigger (stable: same-trigger faults
    /// apply in the order given).
    pub fn new(mut faults: Vec<Fault>) -> Self {
        faults.sort_by_key(|f| f.at_fetch);
        FaultPlan { faults }
    }

    /// Parses a comma-separated plan: `AT:TARGET[,AT:TARGET...]`, e.g.
    /// `1200:tt:0:5,9000:bus:14`.
    ///
    /// # Errors
    ///
    /// [`FaultError::Plan`] on any malformed element.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultError> {
        let mut faults = Vec::new();
        for element in spec.split(',').filter(|s| !s.is_empty()) {
            let (at, target) = element.split_once(':').ok_or_else(|| FaultError::Plan {
                detail: format!("fault `{element}` is missing its AT: trigger"),
            })?;
            let at_fetch = at.parse().map_err(|_| FaultError::Plan {
                detail: format!("`{at}` is not a fetch count in `{element}`"),
            })?;
            faults.push(Fault {
                at_fetch,
                target: FaultTarget::parse(target)?,
            });
        }
        Ok(FaultPlan::new(faults))
    }

    /// The faults, sorted by trigger.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Which bits a sampled campaign draws its upsets from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetClass {
    /// TT and BBIT stored bits (weighted by array size) — the class the
    /// protection codes cover.
    Tables,
    /// Encoded words in instruction memory.
    Text,
    /// Transient single-fetch bus-line flips.
    Bus,
}

impl TargetClass {
    /// The class's canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            TargetClass::Tables => "tables",
            TargetClass::Text => "text",
            TargetClass::Bus => "bus",
        }
    }

    /// Parses a class name.
    pub fn parse(s: &str) -> Option<TargetClass> {
        match s {
            "tables" => Some(TargetClass::Tables),
            "text" => Some(TargetClass::Text),
            "bus" => Some(TargetClass::Bus),
            _ => None,
        }
    }
}

impl fmt::Display for TargetClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The injectable bit surface of one configuration — what a campaign's
/// uniform sampling is uniform *over*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSurface {
    /// TT entries in the schedule.
    pub tt_entries: usize,
    /// Stored bits per TT entry (check bits included).
    pub tt_bits_per_entry: usize,
    /// BBIT entries in the schedule.
    pub bbit_entries: usize,
    /// Stored bits per BBIT entry (check bits included).
    pub bbit_bits_per_entry: usize,
    /// Words in the encoded text image.
    pub text_words: usize,
}

impl FaultSurface {
    /// Reads the surface off a constructed decoder and its text image.
    pub fn of(decoder: &FetchDecoder, text_words: usize) -> Self {
        let tables = decoder.tables();
        FaultSurface {
            tt_entries: tables.tt_len(),
            tt_bits_per_entry: tables.tt_stored_bits(),
            bbit_entries: tables.bbit_len(),
            bbit_bits_per_entry: tables.bbit_stored_bits(),
            text_words,
        }
    }

    /// Total injectable table bits.
    pub fn table_bits(&self) -> usize {
        self.tt_entries * self.tt_bits_per_entry + self.bbit_entries * self.bbit_bits_per_entry
    }

    /// Draws one target uniformly from `class`.
    ///
    /// # Errors
    ///
    /// [`FaultError::EmptySurface`] if the class has no bits here.
    pub fn sample<R: Rng>(
        &self,
        rng: &mut R,
        class: TargetClass,
    ) -> Result<FaultTarget, FaultError> {
        match class {
            TargetClass::Tables => {
                let total = self.table_bits();
                if total == 0 {
                    return Err(FaultError::EmptySurface);
                }
                let flat = rng.gen_range(0..total);
                let tt_total = self.tt_entries * self.tt_bits_per_entry;
                if flat < tt_total {
                    Ok(FaultTarget::Tt {
                        entry: flat / self.tt_bits_per_entry,
                        bit: flat % self.tt_bits_per_entry,
                    })
                } else {
                    let flat = flat - tt_total;
                    Ok(FaultTarget::Bbit {
                        entry: flat / self.bbit_bits_per_entry,
                        bit: flat % self.bbit_bits_per_entry,
                    })
                }
            }
            TargetClass::Text => {
                if self.text_words == 0 {
                    return Err(FaultError::EmptySurface);
                }
                Ok(FaultTarget::Text {
                    word: rng.gen_range(0..self.text_words),
                    bit: rng.gen_range(0..32u32),
                })
            }
            TargetClass::Bus => Ok(FaultTarget::Bus {
                bit: rng.gen_range(0..32u32),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn targets_parse_and_round_trip() {
        for spec in ["tt:0:5", "bbit:3:37", "text:120:7", "bus:14"] {
            let target = FaultTarget::parse(spec).unwrap();
            assert_eq!(target.to_string(), spec);
        }
        assert!(FaultTarget::parse("tt:0").is_err());
        assert!(FaultTarget::parse("cache:0:1").is_err());
        assert!(FaultTarget::parse("bus:32").is_err());
        assert!(FaultTarget::parse("tt:x:1").is_err());
    }

    #[test]
    fn plans_parse_and_sort() {
        let plan = FaultPlan::parse("900:bus:3,100:tt:0:5").unwrap();
        assert_eq!(plan.faults().len(), 2);
        assert_eq!(plan.faults()[0].at_fetch, 100);
        assert_eq!(plan.faults()[1].target, FaultTarget::Bus { bit: 3 });
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("abc:tt:0:1").is_err());
    }

    #[test]
    fn surface_sampling_is_uniform_and_in_range() {
        let surface = FaultSurface {
            tt_entries: 4,
            tt_bits_per_entry: 101,
            bbit_entries: 3,
            bbit_bits_per_entry: 37,
            text_words: 256,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut saw_tt = false;
        let mut saw_bbit = false;
        for _ in 0..200 {
            match surface.sample(&mut rng, TargetClass::Tables).unwrap() {
                FaultTarget::Tt { entry, bit } => {
                    assert!(entry < 4 && bit < 101);
                    saw_tt = true;
                }
                FaultTarget::Bbit { entry, bit } => {
                    assert!(entry < 3 && bit < 37);
                    saw_bbit = true;
                }
                other => panic!("tables class sampled {other}"),
            }
        }
        assert!(saw_tt && saw_bbit);
        match surface.sample(&mut rng, TargetClass::Text).unwrap() {
            FaultTarget::Text { word, bit } => assert!(word < 256 && bit < 32),
            other => panic!("text class sampled {other}"),
        }
        let empty = FaultSurface {
            tt_entries: 0,
            tt_bits_per_entry: 0,
            bbit_entries: 0,
            bbit_bits_per_entry: 0,
            text_words: 0,
        };
        assert_eq!(
            empty.sample(&mut rng, TargetClass::Tables),
            Err(FaultError::EmptySurface)
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let surface = FaultSurface {
            tt_entries: 8,
            tt_bits_per_entry: 108,
            bbit_entries: 5,
            bbit_bits_per_entry: 43,
            text_words: 64,
        };
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..16)
                .map(|_| surface.sample(&mut rng, TargetClass::Tables).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }
}
