//! Fetch-trace recording and fault replay.
//!
//! Campaigns need many replays of the same execution, so the fetch stream
//! is recorded once — `(pc, stored word, original word)` per fetch — and
//! each trial replays the records through a fresh
//! [`FetchDecoder`], applying its [`FaultPlan`] at the
//! scheduled fetch counts. Replay is pure table/decoder work (no
//! simulator), which keeps paper-scale campaigns tractable, and the
//! bounded window keeps a single trial's cost independent of kernel run
//! length.
//!
//! Degradation semantics: a fetch the decoder flags
//! [`FetchKind::Degraded`] is refused, and the memory system delivers the
//! *original* word through the fallback path — modelled here by charging
//! the original word's transitions to the bus and handing the original
//! word to the core. A degraded block can therefore never execute wrong
//! instructions; it only gives back its share of the transition
//! reduction.

use std::collections::HashMap;

use imt_core::hardware::{FetchDecoder, FetchKind};
use imt_core::pipeline::BUS_WIDTH;
use imt_core::protect::FaultOutcome;
use imt_core::{EncodedProgram, Protection};
use imt_isa::program::Program;
use imt_sim::bus::DataBusMonitor;
use imt_sim::cpu::{Cpu, FetchSink};

use crate::plan::{FaultPlan, FaultTarget};
use crate::FaultError;

/// One recorded fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchRecord {
    /// Fetch address.
    pub pc: u32,
    /// Word the encoded image holds at `pc`.
    pub stored: u32,
    /// Word the original program holds at `pc`.
    pub original: u32,
}

/// A recorded fetch stream, capped at a replay window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchTrace {
    records: Vec<FetchRecord>,
    /// Fetches the execution performed beyond the window.
    pub truncated_fetches: u64,
}

struct TraceSink<'a> {
    encoded_text: &'a [u32],
    text_base: u32,
    window: usize,
    records: Vec<FetchRecord>,
    overflow: u64,
}

impl FetchSink for TraceSink<'_> {
    #[inline]
    fn on_fetch(&mut self, pc: u32, word: u32) {
        if self.records.len() < self.window {
            let index = (pc.wrapping_sub(self.text_base) / 4) as usize;
            self.records.push(FetchRecord {
                pc,
                stored: self.encoded_text[index],
                original: word,
            });
        } else {
            self.overflow += 1;
        }
    }
}

impl FetchTrace {
    /// Runs `program` for up to `max_steps` instructions and records its
    /// first `window` fetches against `encoded`'s image.
    ///
    /// # Errors
    ///
    /// [`FaultError::Core`] if the program faults or exceeds `max_steps`.
    pub fn record(
        program: &Program,
        encoded: &EncodedProgram,
        max_steps: u64,
        window: usize,
    ) -> Result<FetchTrace, FaultError> {
        let mut cpu = Cpu::new(program).map_err(imt_core::CoreError::from)?;
        let mut sink = TraceSink {
            encoded_text: &encoded.text,
            text_base: encoded.text_base,
            window,
            records: Vec::with_capacity(window.min(1 << 20)),
            overflow: 0,
        };
        cpu.run_with_sink(max_steps, &mut sink)
            .map_err(imt_core::CoreError::from)?;
        Ok(FetchTrace {
            records: sink.records,
            truncated_fetches: sink.overflow,
        })
    }

    /// The recorded fetches, in execution order.
    pub fn records(&self) -> &[FetchRecord] {
        &self.records
    }

    /// Fetches inside the replay window.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// What one replay of a trace (clean or faulted) measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Fetches replayed.
    pub fetches: u64,
    /// Faults actually applied (triggers inside the window).
    pub injected: u64,
    /// Fetches whose delivered word differed from the original — silent
    /// data corruption reaching the core.
    pub wrong_words: u64,
    /// Fetches refused and served through the fallback path.
    pub degraded_fetches: u64,
    /// Table entries the check code repaired.
    pub corrected: u64,
    /// Table entries detected as bad (check code or structure) and
    /// quarantined.
    pub detected: u64,
    /// Bus transitions with the original image — the paper's baseline.
    pub baseline_transitions: u64,
    /// Bus transitions actually paid: encoded words where decode held,
    /// original words over the fallback path where it degraded.
    pub bus_transitions: u64,
}

impl ReplayOutcome {
    /// Transition reduction achieved by this replay, in percent of the
    /// baseline — the clean value of the paper's Figure 6 metric, and
    /// under faults the reduction *retained* through degradation.
    pub fn reduction_percent(&self) -> f64 {
        if self.baseline_transitions == 0 {
            return 0.0;
        }
        (self.baseline_transitions as f64 - self.bus_transitions as f64)
            / self.baseline_transitions as f64
            * 100.0
    }
}

/// Replays `trace` through a fresh decoder under `protection`, applying
/// `plan`'s faults at their trigger fetch counts.
///
/// # Errors
///
/// [`FaultError::Plan`] if a fault addresses a target outside the
/// configured hardware (entry/bit out of range, text word out of image);
/// [`FaultError::Core`] if the decoder cannot be built for `encoded`'s
/// configuration.
pub fn replay(
    trace: &FetchTrace,
    encoded: &EncodedProgram,
    protection: Protection,
    plan: &FaultPlan,
) -> Result<ReplayOutcome, FaultError> {
    let mut decoder = FetchDecoder::with_protection(
        &encoded.tt,
        &encoded.bbit,
        BUS_WIDTH,
        encoded.config.block_size(),
        encoded.config.overlap(),
        encoded.config.transforms(),
        protection,
    )?;
    let mut baseline = DataBusMonitor::new(BUS_WIDTH);
    let mut bus = DataBusMonitor::new(BUS_WIDTH);
    let mut text_overlay: HashMap<usize, u32> = HashMap::new();
    let faults = plan.faults();
    let mut next_fault = 0usize;
    let mut injected = 0u64;
    let mut wrong_words = 0u64;

    for (n, record) in trace.records.iter().enumerate() {
        let mut bus_mask = 0u32;
        while next_fault < faults.len() && faults[next_fault].at_fetch == n as u64 {
            let fault = faults[next_fault];
            next_fault += 1;
            injected += 1;
            if imt_obs::enabled() {
                imt_obs::counter!("fault.injected").inc();
            }
            match fault.target {
                FaultTarget::Tt { entry, bit } => {
                    decoder
                        .inject_tt_bit(entry, bit)
                        .map_err(|e| FaultError::Plan {
                            detail: format!("{}: {e}", fault.target),
                        })?;
                }
                FaultTarget::Bbit { entry, bit } => {
                    decoder
                        .inject_bbit_bit(entry, bit)
                        .map_err(|e| FaultError::Plan {
                            detail: format!("{}: {e}", fault.target),
                        })?;
                }
                FaultTarget::Text { word, bit } => {
                    if word >= encoded.text.len() {
                        return Err(FaultError::Plan {
                            detail: format!(
                                "{}: word outside the {}-word text image",
                                fault.target,
                                encoded.text.len()
                            ),
                        });
                    }
                    *text_overlay.entry(word).or_insert(0) ^= 1 << bit;
                }
                FaultTarget::Bus { bit } => bus_mask ^= 1 << bit,
            }
        }
        let word_index = (record.pc.wrapping_sub(encoded.text_base) / 4) as usize;
        let stored = record.stored ^ text_overlay.get(&word_index).copied().unwrap_or(0) ^ bus_mask;
        let (decoded, kind) = decoder.on_fetch_classified(record.pc, stored);
        baseline.observe(record.original as u64);
        // The fallback path refetches the original word; otherwise the
        // stored (possibly corrupted) word was on the bus.
        let (delivered, on_bus) = match kind {
            FetchKind::Degraded => (record.original, record.original),
            _ => (decoded, stored),
        };
        bus.observe(on_bus as u64);
        if delivered != record.original {
            wrong_words += 1;
        }
    }

    let mut corrected = 0u64;
    let mut detected = 0u64;
    for event in decoder.take_events() {
        match event.outcome {
            FaultOutcome::Corrected { .. } => corrected += 1,
            FaultOutcome::Detected | FaultOutcome::Structural => detected += 1,
        }
    }
    Ok(ReplayOutcome {
        fetches: trace.records.len() as u64,
        injected,
        wrong_words,
        degraded_fetches: decoder.degraded_fetches(),
        corrected,
        detected,
        baseline_transitions: baseline.total_transitions(),
        bus_transitions: bus.total_transitions(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use imt_core::{encode_program, EncoderConfig};
    use imt_isa::asm::assemble;

    const LOOP_SRC: &str = r#"
            .text
    main:   li   $t0, 300
    loop:   xor  $t1, $t1, $t0
            sll  $t2, $t1, 3
            srl  $t3, $t1, 7
            addu $t4, $t2, $t3
            addiu $t0, $t0, -1
            bgtz $t0, loop
            li   $v0, 10
            syscall
    "#;

    fn fixture() -> (Program, EncodedProgram, FetchTrace) {
        let program = assemble(LOOP_SRC).expect("assemble");
        let mut cpu = Cpu::new(&program).expect("load");
        cpu.run(1_000_000).expect("run");
        let encoded =
            encode_program(&program, cpu.profile(), &EncoderConfig::default()).expect("encode");
        let trace = FetchTrace::record(&program, &encoded, 1_000_000, 5_000).expect("trace");
        (program, encoded, trace)
    }

    #[test]
    fn clean_replay_matches_the_paper_metric_and_delivers_no_wrong_words() {
        let (_, encoded, trace) = fixture();
        for protection in Protection::ALL {
            let out = replay(&trace, &encoded, protection, &FaultPlan::none()).unwrap();
            assert_eq!(out.wrong_words, 0, "{protection}");
            assert_eq!(out.degraded_fetches, 0);
            assert_eq!(out.injected, 0);
            assert!(out.reduction_percent() > 5.0, "{protection}");
        }
    }

    #[test]
    fn unprotected_tt_upset_corrupts_silently() {
        let (_, encoded, trace) = fixture();
        let plan = FaultPlan::single(40, FaultTarget::Tt { entry: 0, bit: 4 });
        let out = replay(&trace, &encoded, Protection::None, &plan).unwrap();
        assert_eq!(out.injected, 1);
        assert!(out.wrong_words > 0, "selector flip must corrupt the stream");
        assert_eq!(out.detected, 0);
    }

    #[test]
    fn parity_degrades_the_same_upset_with_zero_wrong_words() {
        let (_, encoded, trace) = fixture();
        let plan = FaultPlan::single(40, FaultTarget::Tt { entry: 0, bit: 4 });
        let out = replay(&trace, &encoded, Protection::Parity, &plan).unwrap();
        assert_eq!(out.wrong_words, 0);
        assert_eq!(out.detected, 1);
        assert!(out.degraded_fetches > 0);
        // Degradation keeps execution correct but gives back reduction.
        let clean = replay(&trace, &encoded, Protection::Parity, &FaultPlan::none()).unwrap();
        assert!(out.reduction_percent() < clean.reduction_percent());
    }

    #[test]
    fn sec_corrects_the_same_upset_and_keeps_the_reduction() {
        let (_, encoded, trace) = fixture();
        let plan = FaultPlan::single(40, FaultTarget::Tt { entry: 0, bit: 4 });
        let out = replay(&trace, &encoded, Protection::Sec, &plan).unwrap();
        assert_eq!(out.wrong_words, 0);
        assert_eq!(out.corrected, 1);
        assert_eq!(out.degraded_fetches, 0);
        let clean = replay(&trace, &encoded, Protection::Sec, &FaultPlan::none()).unwrap();
        assert_eq!(out.bus_transitions, clean.bus_transitions);
    }

    #[test]
    fn bus_transient_is_a_single_fetch_upset() {
        let (_, encoded, trace) = fixture();
        let plan = FaultPlan::single(10, FaultTarget::Bus { bit: 7 });
        let out = replay(&trace, &encoded, Protection::Sec, &plan).unwrap();
        // One flipped line for one fetch: at most a handful of wrong
        // words (the flip plus history pollution until the end of its
        // basic block), and no table event — the codes do not cover the
        // bus.
        assert!(out.wrong_words >= 1);
        assert!(out.wrong_words <= 16, "wrong={}", out.wrong_words);
        assert_eq!(out.detected + out.corrected, 0);
    }

    #[test]
    fn text_upset_is_persistent() {
        let (_, encoded, trace) = fixture();
        // Find the word index of the first recorded fetch inside the
        // encoded region (a decoded one), then corrupt it early.
        let hot = encoded.report.encoded[0].clone();
        let word = ((hot.start_pc - encoded.text_base) / 4) as usize;
        let plan = FaultPlan::single(0, FaultTarget::Text { word, bit: 3 });
        let out = replay(&trace, &encoded, Protection::None, &plan).unwrap();
        // The block is fetched every loop iteration; a persistent image
        // fault corrupts many fetches, not one.
        assert!(out.wrong_words > 10, "wrong={}", out.wrong_words);
    }

    #[test]
    fn out_of_range_targets_are_plan_errors() {
        let (_, encoded, trace) = fixture();
        for target in [
            FaultTarget::Tt { entry: 999, bit: 0 },
            FaultTarget::Bbit {
                entry: 0,
                bit: 9999,
            },
            FaultTarget::Text {
                word: usize::MAX,
                bit: 0,
            },
        ] {
            let plan = FaultPlan::single(0, target);
            let err = replay(&trace, &encoded, Protection::None, &plan).unwrap_err();
            assert!(matches!(err, FaultError::Plan { .. }), "{target}: {err}");
        }
    }
}
