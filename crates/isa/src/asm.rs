//! The two-pass assembler.
//!
//! Accepts a SPIM-flavoured dialect:
//!
//! * `.text` / `.data` segments, `main:` entry label;
//! * directives `.word`, `.half`, `.byte`, `.double`, `.space`, `.align`,
//!   `.asciiz`, `.globl` (ignored);
//! * the full hardware instruction set of [`crate::inst::Inst`];
//! * the usual pseudo-instructions: `nop`, `move`, `li`, `la`, `neg`,
//!   `negu`, `not`, `b`, `beqz`, `bnez`, `blt`, `ble`, `bgt`, `bge`,
//!   `bltu`, `bleu`, `bgtu`, `bgeu`, three-operand `div`/`rem`, and the
//!   `l.d`/`s.d`/`l.s`/`s.s` memory aliases;
//! * `#` line comments, labels sharing a line with an instruction.
//!
//! Branches have **no delay slot** (see the crate docs). Pseudo-instructions
//! expand deterministically, so pass one can lay out addresses exactly.

use std::collections::BTreeMap;

use crate::encode::encode;
use crate::error::AsmError;
use crate::inst::Inst;
use crate::program::{Program, DATA_BASE, TEXT_BASE};
use crate::reg::{FReg, Reg};

/// Assembles source text into a loadable [`Program`].
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line number for syntax errors,
/// unknown mnemonics or labels, duplicate labels, out-of-range immediates
/// and misaligned or out-of-range branch targets.
///
/// ```
/// use imt_isa::asm::assemble;
///
/// # fn main() -> Result<(), imt_isa::AsmError> {
/// let program = assemble(r#"
///         .data
/// value:  .word 41
///         .text
/// main:   la   $t0, value
///         lw   $t1, 0($t0)
///         addiu $t1, $t1, 1
///         jr   $ra
/// "#)?;
/// assert_eq!(program.text.len(), 5); // la expands to lui + ori
/// # Ok(())
/// # }
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    Assembler::new().assemble(source)
}

/// Which segment the location counter is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Text,
    Data,
}

/// How a pending 16-bit immediate is derived from a resolved address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reloc {
    /// Plain high half, paired with zero-extending `ori` (`la`, `%hi`).
    High,
    /// High half adjusted for a sign-extending low part (`lw label`).
    HighAdjusted,
    /// Low half (`%lo`, the second half of `la`, memory displacements).
    Low,
}

impl Reloc {
    fn apply(self, address: u32) -> u16 {
        match self {
            Reloc::High => (address >> 16) as u16,
            Reloc::HighAdjusted => (address.wrapping_add(0x8000) >> 16) as u16,
            Reloc::Low => (address & 0xFFFF) as u16,
        }
    }
}

/// An instruction slot awaiting symbol resolution.
#[derive(Debug, Clone)]
enum Slot {
    /// Fully encoded already.
    Ready(Inst),
    /// PC-relative branch to a label; `make` receives the resolved offset.
    Branch {
        label: String,
        make: fn(Reg, Reg, i16) -> Inst,
        rs: Reg,
        rt: Reg,
    },
    /// `bc1t`/`bc1f` to a label.
    BranchC1 { label: String, taken: bool },
    /// `j`/`jal` to a label.
    Jump { label: String, link: bool },
    /// An instruction whose 16-bit immediate is a relocated symbol
    /// address: `make(a, b, reloc(label + offset))`.
    RelocImm {
        make: fn(Reg, Reg, u16) -> Inst,
        a: Reg,
        b: Reg,
        reloc: Reloc,
        label: String,
        offset: i32,
    },
    /// `.word label` in the text segment (jump tables).
    WordSym { label: String },
}

/// A pending `.word label` in the data segment.
#[derive(Debug, Clone)]
struct DataFixup {
    offset: usize,
    label: String,
    line: usize,
}

#[derive(Debug)]
struct Assembler {
    segment: Segment,
    text: Vec<(Slot, usize)>,
    data: Vec<u8>,
    symbols: BTreeMap<String, u32>,
    data_fixups: Vec<DataFixup>,
    /// `name = value` equates, usable wherever an immediate is expected.
    constants: BTreeMap<String, i64>,
    /// Deduplicated `li.d`/`li.s` literal pool: value bits → pool label.
    literal_pool: Vec<(u64, usize, String)>,
}

impl Assembler {
    fn new() -> Self {
        Assembler {
            segment: Segment::Text,
            text: Vec::new(),
            data: Vec::new(),
            symbols: BTreeMap::new(),
            data_fixups: Vec::new(),
            constants: BTreeMap::new(),
            literal_pool: Vec::new(),
        }
    }

    /// Finds or creates the literal-pool entry for `bits` of `size` bytes.
    fn pool_label(&mut self, bits: u64, size: usize) -> String {
        if let Some((_, _, label)) = self
            .literal_pool
            .iter()
            .find(|(b, s, _)| *b == bits && *s == size)
        {
            return label.clone();
        }
        let label = format!("__lit_{}", self.literal_pool.len());
        self.literal_pool.push((bits, size, label.clone()));
        label
    }

    fn here(&self) -> u32 {
        match self.segment {
            Segment::Text => TEXT_BASE + (self.text.len() as u32) * 4,
            Segment::Data => DATA_BASE + self.data.len() as u32,
        }
    }

    fn define_label(&mut self, name: &str, line: usize) -> Result<(), AsmError> {
        let address = self.here();
        if self.symbols.insert(name.to_string(), address).is_some() {
            return Err(AsmError::new(line, format!("duplicate label `{name}`")));
        }
        Ok(())
    }

    fn assemble(mut self, source: &str) -> Result<Program, AsmError> {
        for (index, raw_line) in source.lines().enumerate() {
            let line = index + 1;
            let mut rest = strip_comment(raw_line).trim();
            // Labels, possibly several, possibly followed by a statement.
            while let Some(colon) = find_label_colon(rest) {
                let name = rest[..colon].trim();
                if !is_identifier(name) {
                    return Err(AsmError::new(line, format!("invalid label `{name}`")));
                }
                self.define_label(name, line)?;
                rest = rest[colon + 1..].trim();
            }
            if rest.is_empty() {
                continue;
            }
            if let Some((name, value)) = parse_equate(rest) {
                let value = parse_int(value, line)?;
                if self.constants.insert(name.to_string(), value).is_some() {
                    return Err(AsmError::new(line, format!("duplicate equate `{name}`")));
                }
                continue;
            }
            if let Some(directive) = rest.strip_prefix('.') {
                self.directive(directive, line)?;
            } else {
                self.instruction(rest, line)?;
            }
        }
        self.finish()
    }

    // ---- directives ----

    fn directive(&mut self, text: &str, line: usize) -> Result<(), AsmError> {
        let (name, args) = match text.find(char::is_whitespace) {
            Some(pos) => (&text[..pos], text[pos..].trim()),
            None => (text, ""),
        };
        match name {
            "text" => self.segment = Segment::Text,
            "data" => self.segment = Segment::Data,
            "globl" | "global" | "ent" | "end" => {}
            "align" => {
                let n: u32 = parse_int(args, line)?
                    .try_into()
                    .map_err(|_| AsmError::new(line, "negative .align"))?;
                if n > 12 {
                    return Err(AsmError::new(line, ".align exponent too large"));
                }
                self.align(1usize << n, line)?;
            }
            "space" => {
                let n = parse_int(args, line)?;
                if !(0..=(1 << 26)).contains(&n) {
                    return Err(AsmError::new(line, ".space size out of range"));
                }
                self.require_data(line)?;
                self.data.extend(std::iter::repeat_n(0u8, n as usize));
            }
            "word" => self.emit_words(args, line)?,
            "half" => {
                self.require_data(line)?;
                self.align(2, line)?;
                for item in split_args(args) {
                    let v = parse_int(&item, line)?;
                    if !(-32768..=65535).contains(&v) {
                        return Err(AsmError::new(line, format!("half value {v} out of range")));
                    }
                    self.data.extend((v as u16).to_le_bytes());
                }
            }
            "byte" => {
                self.require_data(line)?;
                for item in split_args(args) {
                    let v = parse_int(&item, line)?;
                    if !(-128..=255).contains(&v) {
                        return Err(AsmError::new(line, format!("byte value {v} out of range")));
                    }
                    self.data.push(v as u8);
                }
            }
            "double" => {
                self.require_data(line)?;
                self.align(8, line)?;
                for item in split_args(args) {
                    let v: f64 = item
                        .parse()
                        .map_err(|_| AsmError::new(line, format!("invalid double `{item}`")))?;
                    self.data.extend(v.to_le_bytes());
                }
            }
            "float" => {
                self.require_data(line)?;
                self.align(4, line)?;
                for item in split_args(args) {
                    let v: f32 = item
                        .parse()
                        .map_err(|_| AsmError::new(line, format!("invalid float `{item}`")))?;
                    self.data.extend(v.to_le_bytes());
                }
            }
            "asciiz" | "ascii" => {
                self.require_data(line)?;
                let bytes = parse_string(args, line)?;
                self.data.extend(&bytes);
                if name == "asciiz" {
                    self.data.push(0);
                }
            }
            _ => return Err(AsmError::new(line, format!("unknown directive `.{name}`"))),
        }
        Ok(())
    }

    fn require_data(&self, line: usize) -> Result<(), AsmError> {
        if self.segment != Segment::Data {
            return Err(AsmError::new(line, "data directive outside .data segment"));
        }
        Ok(())
    }

    fn align(&mut self, to: usize, _line: usize) -> Result<(), AsmError> {
        if self.segment == Segment::Data {
            while !self.data.len().is_multiple_of(to) {
                self.data.push(0);
            }
        }
        Ok(())
    }

    fn emit_words(&mut self, args: &str, line: usize) -> Result<(), AsmError> {
        match self.segment {
            Segment::Data => {
                self.align(4, line)?;
                for item in split_args(args) {
                    if let Ok(v) = parse_int(&item, line) {
                        if !(-(1i64 << 31)..(1i64 << 32)).contains(&v) {
                            return Err(AsmError::new(
                                line,
                                format!("word value {v} out of range"),
                            ));
                        }
                        self.data.extend((v as u32).to_le_bytes());
                    } else if is_identifier(&item) {
                        self.data_fixups.push(DataFixup {
                            offset: self.data.len(),
                            label: item.clone(),
                            line,
                        });
                        self.data.extend(0u32.to_le_bytes());
                    } else {
                        return Err(AsmError::new(line, format!("invalid word `{item}`")));
                    }
                }
            }
            Segment::Text => {
                for item in split_args(args) {
                    if let Ok(v) = parse_int(&item, line) {
                        let inst = crate::decode::decode(v as u32).map_err(|_| {
                            AsmError::new(line, format!("text .word {v:#x} is not an instruction"))
                        })?;
                        self.text.push((Slot::Ready(inst), line));
                    } else if is_identifier(&item) {
                        self.text.push((
                            Slot::WordSym {
                                label: item.clone(),
                            },
                            line,
                        ));
                    } else {
                        return Err(AsmError::new(line, format!("invalid word `{item}`")));
                    }
                }
            }
        }
        Ok(())
    }

    // ---- instructions ----

    fn push(&mut self, inst: Inst, line: usize) {
        self.text.push((Slot::Ready(inst), line));
    }

    fn instruction(&mut self, text: &str, line: usize) -> Result<(), AsmError> {
        if self.segment != Segment::Text {
            return Err(AsmError::new(line, "instruction outside .text segment"));
        }
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(pos) => (&text[..pos], text[pos..].trim()),
            None => (text, ""),
        };
        let args: Vec<String> = split_args(rest)
            .into_iter()
            .map(|arg| self.substitute_constants(arg))
            .collect();
        let a = Operands { args: &args, line };
        self.dispatch(mnemonic, a, line)
    }

    /// Replaces a leading equate name in an operand with its value, so
    /// `li $t0, N` and `lw $t1, OFF($t2)` work with `N = 100`-style
    /// equates. Labels are unaffected unless they share a name with an
    /// equate (don't do that).
    fn substitute_constants(&self, arg: String) -> String {
        let head_end = arg.find('(').unwrap_or(arg.len());
        let head = arg[..head_end].trim();
        match self.constants.get(head) {
            Some(value) => format!("{value}{}", &arg[head_end..]),
            None => arg,
        }
    }

    #[allow(clippy::too_many_lines)] // one arm per mnemonic; splitting hurts readability
    fn dispatch(&mut self, m: &str, a: Operands<'_>, line: usize) -> Result<(), AsmError> {
        use Inst::*;
        match m {
            // R-format three-register.
            "add" | "addu" | "sub" | "subu" | "and" | "or" | "xor" | "nor" | "slt" | "sltu"
            | "mul" => {
                let (rd, rs, rt) = (a.reg(0)?, a.reg(1)?, a.reg(2)?);
                a.exactly(3)?;
                let inst = match m {
                    "add" => Add { rd, rs, rt },
                    "addu" => Addu { rd, rs, rt },
                    "sub" => Sub { rd, rs, rt },
                    "subu" => Subu { rd, rs, rt },
                    "and" => And { rd, rs, rt },
                    "or" => Or { rd, rs, rt },
                    "xor" => Xor { rd, rs, rt },
                    "nor" => Nor { rd, rs, rt },
                    "slt" => Slt { rd, rs, rt },
                    "sltu" => Sltu { rd, rs, rt },
                    _ => Mul { rd, rs, rt },
                };
                self.push(inst, line);
            }
            // Shifts by immediate.
            "sll" | "srl" | "sra" => {
                let (rd, rt) = (a.reg(0)?, a.reg(1)?);
                let sh = a.imm(2)?;
                a.exactly(3)?;
                if !(0..32).contains(&sh) {
                    return Err(AsmError::new(
                        line,
                        format!("shift amount {sh} out of range"),
                    ));
                }
                let shamt = sh as u8;
                let inst = match m {
                    "sll" => Sll { rd, rt, shamt },
                    "srl" => Srl { rd, rt, shamt },
                    _ => Sra { rd, rt, shamt },
                };
                self.push(inst, line);
            }
            "sllv" | "srlv" | "srav" => {
                let (rd, rt, rs) = (a.reg(0)?, a.reg(1)?, a.reg(2)?);
                a.exactly(3)?;
                let inst = match m {
                    "sllv" => Sllv { rd, rt, rs },
                    "srlv" => Srlv { rd, rt, rs },
                    _ => Srav { rd, rt, rs },
                };
                self.push(inst, line);
            }
            // HI/LO unit.
            "mult" | "multu" => {
                let (rs, rt) = (a.reg(0)?, a.reg(1)?);
                a.exactly(2)?;
                self.push(
                    if m == "mult" {
                        Mult { rs, rt }
                    } else {
                        Multu { rs, rt }
                    },
                    line,
                );
            }
            "div" | "divu" if a.len() == 2 => {
                let (rs, rt) = (a.reg(0)?, a.reg(1)?);
                self.push(
                    if m == "div" {
                        Div { rs, rt }
                    } else {
                        Divu { rs, rt }
                    },
                    line,
                );
            }
            "div" | "divu" | "rem" | "remu" => {
                // Three-operand pseudo: div/rem rd, rs, rt.
                let (rd, rs, rt) = (a.reg(0)?, a.reg(1)?, a.reg(2)?);
                a.exactly(3)?;
                let signed = !m.ends_with('u');
                self.push(
                    if signed {
                        Div { rs, rt }
                    } else {
                        Divu { rs, rt }
                    },
                    line,
                );
                let takes_lo = m.starts_with("div");
                self.push(if takes_lo { Mflo { rd } } else { Mfhi { rd } }, line);
            }
            "mfhi" => {
                let rd = a.reg(0)?;
                a.exactly(1)?;
                self.push(Mfhi { rd }, line);
            }
            "mflo" => {
                let rd = a.reg(0)?;
                a.exactly(1)?;
                self.push(Mflo { rd }, line);
            }
            "mthi" => {
                let rs = a.reg(0)?;
                a.exactly(1)?;
                self.push(Mthi { rs }, line);
            }
            "mtlo" => {
                let rs = a.reg(0)?;
                a.exactly(1)?;
                self.push(Mtlo { rs }, line);
            }
            // I-format arithmetic.
            "addi" | "addiu" | "slti" | "sltiu" => {
                let (rt, rs) = (a.reg(0)?, a.reg(1)?);
                a.exactly(3)?;
                if m == "addiu" {
                    if let Some((reloc, label, offset)) = parse_reloc(a.raw(2)?, line)? {
                        self.text.push((
                            Slot::RelocImm {
                                make: |rt, rs, imm| Inst::Addiu {
                                    rt,
                                    rs,
                                    imm: imm as i16,
                                },
                                a: rt,
                                b: rs,
                                reloc,
                                label,
                                offset,
                            },
                            line,
                        ));
                        return Ok(());
                    }
                }
                let imm = signed16(a.imm(2)?, line)?;
                let inst = match m {
                    "addi" => Addi { rt, rs, imm },
                    "addiu" => Addiu { rt, rs, imm },
                    "slti" => Slti { rt, rs, imm },
                    _ => Sltiu { rt, rs, imm },
                };
                self.push(inst, line);
            }
            "andi" | "ori" | "xori" => {
                let (rt, rs) = (a.reg(0)?, a.reg(1)?);
                a.exactly(3)?;
                if m == "ori" {
                    if let Some((reloc, label, offset)) = parse_reloc(a.raw(2)?, line)? {
                        self.text.push((
                            Slot::RelocImm {
                                make: |rt, rs, imm| Inst::Ori { rt, rs, imm },
                                a: rt,
                                b: rs,
                                reloc,
                                label,
                                offset,
                            },
                            line,
                        ));
                        return Ok(());
                    }
                }
                let imm = unsigned16(a.imm(2)?, line)?;
                let inst = match m {
                    "andi" => Andi { rt, rs, imm },
                    "ori" => Ori { rt, rs, imm },
                    _ => Xori { rt, rs, imm },
                };
                self.push(inst, line);
            }
            "lui" => {
                let rt = a.reg(0)?;
                a.exactly(2)?;
                if let Some((reloc, label, offset)) = parse_reloc(a.raw(1)?, line)? {
                    self.text.push((
                        Slot::RelocImm {
                            make: |rt, _, imm| Inst::Lui { rt, imm },
                            a: rt,
                            b: Reg::ZERO,
                            reloc,
                            label,
                            offset,
                        },
                        line,
                    ));
                    return Ok(());
                }
                let imm = a.imm(1)?;
                self.push(
                    Lui {
                        rt,
                        imm: unsigned16(imm, line)?,
                    },
                    line,
                );
            }
            // Branches.
            "beq" | "bne" => {
                let (rs, rt) = (a.reg(0)?, a.reg(1)?);
                let label = a.label(2)?;
                a.exactly(3)?;
                let make: fn(Reg, Reg, i16) -> Inst = if m == "beq" {
                    |rs, rt, o| Beq { rs, rt, offset: o }
                } else {
                    |rs, rt, o| Bne { rs, rt, offset: o }
                };
                self.text.push((
                    Slot::Branch {
                        label,
                        make,
                        rs,
                        rt,
                    },
                    line,
                ));
            }
            "beqz" | "bnez" => {
                let rs = a.reg(0)?;
                let label = a.label(1)?;
                a.exactly(2)?;
                let make: fn(Reg, Reg, i16) -> Inst = if m == "beqz" {
                    |rs, rt, o| Beq { rs, rt, offset: o }
                } else {
                    |rs, rt, o| Bne { rs, rt, offset: o }
                };
                self.text.push((
                    Slot::Branch {
                        label,
                        make,
                        rs,
                        rt: Reg::ZERO,
                    },
                    line,
                ));
            }
            "blez" | "bgtz" | "bltz" | "bgez" => {
                let rs = a.reg(0)?;
                let label = a.label(1)?;
                a.exactly(2)?;
                let make: fn(Reg, Reg, i16) -> Inst = match m {
                    "blez" => |rs, _, o| Blez { rs, offset: o },
                    "bgtz" => |rs, _, o| Bgtz { rs, offset: o },
                    "bltz" => |rs, _, o| Bltz { rs, offset: o },
                    _ => |rs, _, o| Bgez { rs, offset: o },
                };
                self.text.push((
                    Slot::Branch {
                        label,
                        make,
                        rs,
                        rt: Reg::ZERO,
                    },
                    line,
                ));
            }
            "b" => {
                let label = a.label(0)?;
                a.exactly(1)?;
                self.text.push((
                    Slot::Branch {
                        label,
                        make: |rs, rt, o| Beq { rs, rt, offset: o },
                        rs: Reg::ZERO,
                        rt: Reg::ZERO,
                    },
                    line,
                ));
            }
            // Compare-and-branch pseudos via $at.
            "blt" | "bge" | "bgt" | "ble" | "bltu" | "bgeu" | "bgtu" | "bleu" => {
                let (rs, rt) = (a.reg(0)?, a.reg(1)?);
                let label = a.label(2)?;
                a.exactly(3)?;
                let unsigned = m.ends_with('u');
                let base = m.trim_end_matches('u');
                // blt: slt $at, rs, rt ; bne $at, $0
                // bge: slt $at, rs, rt ; beq $at, $0
                // bgt: slt $at, rt, rs ; bne $at, $0
                // ble: slt $at, rt, rs ; beq $at, $0
                let (first, second) = match base {
                    "blt" => ((rs, rt), true),
                    "bge" => ((rs, rt), false),
                    "bgt" => ((rt, rs), true),
                    _ => ((rt, rs), false),
                };
                let slt = if unsigned {
                    Sltu {
                        rd: Reg::AT,
                        rs: first.0,
                        rt: first.1,
                    }
                } else {
                    Slt {
                        rd: Reg::AT,
                        rs: first.0,
                        rt: first.1,
                    }
                };
                self.push(slt, line);
                let make: fn(Reg, Reg, i16) -> Inst = if second {
                    |rs, rt, o| Bne { rs, rt, offset: o }
                } else {
                    |rs, rt, o| Beq { rs, rt, offset: o }
                };
                self.text.push((
                    Slot::Branch {
                        label,
                        make,
                        rs: Reg::AT,
                        rt: Reg::ZERO,
                    },
                    line,
                ));
            }
            "bc1t" | "bc1f" => {
                let label = a.label(0)?;
                a.exactly(1)?;
                self.text.push((
                    Slot::BranchC1 {
                        label,
                        taken: m == "bc1t",
                    },
                    line,
                ));
            }
            "j" | "jal" => {
                let label = a.label(0)?;
                a.exactly(1)?;
                self.text.push((
                    Slot::Jump {
                        label,
                        link: m == "jal",
                    },
                    line,
                ));
            }
            "jr" => {
                let rs = a.reg(0)?;
                a.exactly(1)?;
                self.push(Jr { rs }, line);
            }
            "jalr" => {
                // jalr rs  or  jalr rd, rs
                if a.len() == 1 {
                    self.push(
                        Jalr {
                            rd: Reg::RA,
                            rs: a.reg(0)?,
                        },
                        line,
                    );
                } else {
                    let (rd, rs) = (a.reg(0)?, a.reg(1)?);
                    a.exactly(2)?;
                    self.push(Jalr { rd, rs }, line);
                }
            }
            // Memory. `rt, offset(base)` directly; `rt, label` expands to a
            // lui/$at-relative access (the classic global form).
            "lb" | "lbu" | "lh" | "lhu" | "lw" | "sb" | "sh" | "sw" => {
                let rt = a.reg(0)?;
                a.exactly(2)?;
                let make: fn(Reg, Reg, u16) -> Inst = match m {
                    "lb" => |rt, base, lo| Lb {
                        rt,
                        base,
                        offset: lo as i16,
                    },
                    "lbu" => |rt, base, lo| Lbu {
                        rt,
                        base,
                        offset: lo as i16,
                    },
                    "lh" => |rt, base, lo| Lh {
                        rt,
                        base,
                        offset: lo as i16,
                    },
                    "lhu" => |rt, base, lo| Lhu {
                        rt,
                        base,
                        offset: lo as i16,
                    },
                    "lw" => |rt, base, lo| Lw {
                        rt,
                        base,
                        offset: lo as i16,
                    },
                    "sb" => |rt, base, lo| Sb {
                        rt,
                        base,
                        offset: lo as i16,
                    },
                    "sh" => |rt, base, lo| Sh {
                        rt,
                        base,
                        offset: lo as i16,
                    },
                    _ => |rt, base, lo| Sw {
                        rt,
                        base,
                        offset: lo as i16,
                    },
                };
                let operand = a.raw(1)?;
                if !operand.contains('(') && Reg::from_name(operand).is_none() {
                    // Global form: lui $at, %hi_adj(label); op rt, %lo($at).
                    let (label, offset) = a.label_offset(1)?;
                    self.text.push((
                        Slot::RelocImm {
                            make: |rd, _, imm| Inst::Lui { rt: rd, imm },
                            a: Reg::AT,
                            b: Reg::ZERO,
                            reloc: Reloc::HighAdjusted,
                            label: label.clone(),
                            offset,
                        },
                        line,
                    ));
                    self.text.push((
                        Slot::RelocImm {
                            make,
                            a: rt,
                            b: Reg::AT,
                            reloc: Reloc::Low,
                            label,
                            offset,
                        },
                        line,
                    ));
                } else {
                    let (offset, base) = a.mem(1)?;
                    self.push(make(rt, base, offset as u16), line);
                }
            }
            "lwc1" | "swc1" | "ldc1" | "sdc1" | "l.s" | "s.s" | "l.d" | "s.d" => {
                let ft = a.freg(0)?;
                let (offset, base) = a.mem(1)?;
                a.exactly(2)?;
                let double = matches!(m, "ldc1" | "sdc1" | "l.d" | "s.d");
                if double && !ft.is_even() {
                    return Err(AsmError::new(
                        line,
                        format!("{ft} is odd; doubles need an even register"),
                    ));
                }
                let inst = match m {
                    "lwc1" | "l.s" => Lwc1 { ft, base, offset },
                    "swc1" | "s.s" => Swc1 { ft, base, offset },
                    "ldc1" | "l.d" => Ldc1 { ft, base, offset },
                    _ => Sdc1 { ft, base, offset },
                };
                self.push(inst, line);
            }
            // FP arithmetic.
            "add.d" | "sub.d" | "mul.d" | "div.d" => {
                let (fd, fs, ft) = (a.freg(0)?, a.freg(1)?, a.freg(2)?);
                a.exactly(3)?;
                check_even(&[fd, fs, ft], line)?;
                let inst = match m {
                    "add.d" => AddD { fd, fs, ft },
                    "sub.d" => SubD { fd, fs, ft },
                    "mul.d" => MulD { fd, fs, ft },
                    _ => DivD { fd, fs, ft },
                };
                self.push(inst, line);
            }
            "sqrt.d" | "abs.d" | "mov.d" | "neg.d" => {
                let (fd, fs) = (a.freg(0)?, a.freg(1)?);
                a.exactly(2)?;
                check_even(&[fd, fs], line)?;
                let inst = match m {
                    "sqrt.d" => SqrtD { fd, fs },
                    "abs.d" => AbsD { fd, fs },
                    "mov.d" => MovD { fd, fs },
                    _ => NegD { fd, fs },
                };
                self.push(inst, line);
            }
            "cvt.d.w" => {
                let (fd, fs) = (a.freg(0)?, a.freg(1)?);
                a.exactly(2)?;
                if !fd.is_even() {
                    return Err(AsmError::new(
                        line,
                        format!("{fd} is odd; doubles need an even register"),
                    ));
                }
                self.push(CvtDW { fd, fs }, line);
            }
            "cvt.w.d" => {
                let (fd, fs) = (a.freg(0)?, a.freg(1)?);
                a.exactly(2)?;
                if !fs.is_even() {
                    return Err(AsmError::new(
                        line,
                        format!("{fs} is odd; doubles need an even register"),
                    ));
                }
                self.push(CvtWD { fd, fs }, line);
            }
            "c.eq.d" | "c.lt.d" | "c.le.d" => {
                let (fs, ft) = (a.freg(0)?, a.freg(1)?);
                a.exactly(2)?;
                check_even(&[fs, ft], line)?;
                let inst = match m {
                    "c.eq.d" => CEqD { fs, ft },
                    "c.lt.d" => CLtD { fs, ft },
                    _ => CLeD { fs, ft },
                };
                self.push(inst, line);
            }
            "mfc1" => {
                let (rt, fs) = (a.reg(0)?, a.freg(1)?);
                a.exactly(2)?;
                self.push(Mfc1 { rt, fs }, line);
            }
            "mtc1" => {
                let (rt, fs) = (a.reg(0)?, a.freg(1)?);
                a.exactly(2)?;
                self.push(Mtc1 { rt, fs }, line);
            }
            // System and pseudo.
            "syscall" => {
                a.exactly(0)?;
                self.push(Syscall, line);
            }
            "break" => {
                a.exactly(0)?;
                self.push(Break, line);
            }
            "nop" => {
                a.exactly(0)?;
                self.push(Inst::NOP, line);
            }
            "move" => {
                let (rd, rs) = (a.reg(0)?, a.reg(1)?);
                a.exactly(2)?;
                self.push(
                    Addu {
                        rd,
                        rs,
                        rt: Reg::ZERO,
                    },
                    line,
                );
            }
            "neg" => {
                let (rd, rs) = (a.reg(0)?, a.reg(1)?);
                a.exactly(2)?;
                self.push(
                    Sub {
                        rd,
                        rs: Reg::ZERO,
                        rt: rs,
                    },
                    line,
                );
            }
            "negu" => {
                let (rd, rs) = (a.reg(0)?, a.reg(1)?);
                a.exactly(2)?;
                self.push(
                    Subu {
                        rd,
                        rs: Reg::ZERO,
                        rt: rs,
                    },
                    line,
                );
            }
            "not" => {
                let (rd, rs) = (a.reg(0)?, a.reg(1)?);
                a.exactly(2)?;
                self.push(
                    Nor {
                        rd,
                        rs,
                        rt: Reg::ZERO,
                    },
                    line,
                );
            }
            "li" => {
                let rd = a.reg(0)?;
                let value = a.imm(1)?;
                a.exactly(2)?;
                self.expand_li(rd, value, line)?;
            }
            "la" => {
                let rd = a.reg(0)?;
                let (label, offset) = a.label_offset(1)?;
                a.exactly(2)?;
                self.text.push((
                    Slot::RelocImm {
                        make: |rd, _, imm| Inst::Lui { rt: rd, imm },
                        a: rd,
                        b: Reg::ZERO,
                        reloc: Reloc::High,
                        label: label.clone(),
                        offset,
                    },
                    line,
                ));
                self.text.push((
                    Slot::RelocImm {
                        make: |rd, rs, imm| Inst::Ori { rt: rd, rs, imm },
                        a: rd,
                        b: rd,
                        reloc: Reloc::Low,
                        label,
                        offset,
                    },
                    line,
                ));
            }
            "li.d" | "li.s" => {
                // Load an FP literal from a deduplicated constant pool via
                // $at (3 instructions: lui/ori/load).
                let ft = a.freg(0)?;
                let text = a.raw(1)?;
                a.exactly(2)?;
                let double = m == "li.d";
                if double && !ft.is_even() {
                    return Err(AsmError::new(
                        line,
                        format!("{ft} is odd; doubles need an even register"),
                    ));
                }
                let (bits, size) = if double {
                    let value: f64 = text
                        .parse()
                        .map_err(|_| AsmError::new(line, format!("invalid double `{text}`")))?;
                    (value.to_bits(), 8usize)
                } else {
                    let value: f32 = text
                        .parse()
                        .map_err(|_| AsmError::new(line, format!("invalid float `{text}`")))?;
                    (u64::from(value.to_bits()), 4usize)
                };
                let label = self.pool_label(bits, size);
                self.text.push((
                    Slot::RelocImm {
                        make: |rd, _, imm| Inst::Lui { rt: rd, imm },
                        a: Reg::AT,
                        b: Reg::ZERO,
                        reloc: Reloc::HighAdjusted,
                        label: label.clone(),
                        offset: 0,
                    },
                    line,
                ));
                let make: fn(Reg, Reg, u16) -> Inst = if double {
                    |ft, base, lo| Inst::Ldc1 {
                        ft: FReg::new(ft.number()),
                        base,
                        offset: lo as i16,
                    }
                } else {
                    |ft, base, lo| Inst::Lwc1 {
                        ft: FReg::new(ft.number()),
                        base,
                        offset: lo as i16,
                    }
                };
                // Smuggle the FP register number through the integer slot.
                self.text.push((
                    Slot::RelocImm {
                        make,
                        a: Reg::new(ft.number()),
                        b: Reg::AT,
                        reloc: Reloc::Low,
                        label,
                        offset: 0,
                    },
                    line,
                ));
            }
            _ => return Err(AsmError::new(line, format!("unknown mnemonic `{m}`"))),
        }
        Ok(())
    }

    fn expand_li(&mut self, rd: Reg, value: i64, line: usize) -> Result<(), AsmError> {
        use Inst::*;
        if !(-(1i64 << 31)..(1i64 << 32)).contains(&value) {
            return Err(AsmError::new(
                line,
                format!("li value {value} does not fit in 32 bits"),
            ));
        }
        let v = value;
        if (-32768..=32767).contains(&v) {
            self.push(
                Addiu {
                    rt: rd,
                    rs: Reg::ZERO,
                    imm: v as i16,
                },
                line,
            );
        } else if (0..=0xFFFF).contains(&v) {
            self.push(
                Ori {
                    rt: rd,
                    rs: Reg::ZERO,
                    imm: v as u16,
                },
                line,
            );
        } else {
            let bits = v as u32;
            self.push(
                Lui {
                    rt: rd,
                    imm: (bits >> 16) as u16,
                },
                line,
            );
            let lo = (bits & 0xFFFF) as u16;
            if lo != 0 {
                self.push(
                    Ori {
                        rt: rd,
                        rs: rd,
                        imm: lo,
                    },
                    line,
                );
            }
        }
        Ok(())
    }

    // ---- resolution ----

    fn finish(mut self) -> Result<Program, AsmError> {
        // Materialise the li.d/li.s literal pool at the end of the data
        // segment (synthetic labels get line 0 in any duplicate-error,
        // which cannot happen for the reserved `__lit_` prefix).
        let pool = std::mem::take(&mut self.literal_pool);
        if !pool.is_empty() {
            self.segment = Segment::Data;
            for (bits, size, label) in pool {
                self.align(size, 0)?;
                self.define_label(&label, 0)?;
                if size == 8 {
                    self.data.extend(bits.to_le_bytes());
                } else {
                    self.data.extend((bits as u32).to_le_bytes());
                }
            }
        }
        let Assembler {
            text,
            mut data,
            symbols,
            data_fixups,
            ..
        } = self;
        let mut words = Vec::with_capacity(text.len());
        let mut source_lines = Vec::with_capacity(text.len());
        let lookup = |label: &str, line: usize| -> Result<u32, AsmError> {
            symbols
                .get(label)
                .copied()
                .ok_or_else(|| AsmError::new(line, format!("undefined label `{label}`")))
        };
        for (index, (slot, line)) in text.iter().enumerate() {
            let pc = TEXT_BASE + (index as u32) * 4;
            let line = *line;
            let word = match slot {
                Slot::Ready(inst) => encode(*inst),
                Slot::Branch {
                    label,
                    make,
                    rs,
                    rt,
                } => {
                    let target = lookup(label, line)?;
                    encode(make(*rs, *rt, branch_offset(pc, target, line)?))
                }
                Slot::BranchC1 { label, taken } => {
                    let target = lookup(label, line)?;
                    let offset = branch_offset(pc, target, line)?;
                    encode(if *taken {
                        Inst::Bc1t { offset }
                    } else {
                        Inst::Bc1f { offset }
                    })
                }
                Slot::Jump { label, link } => {
                    let target = lookup(label, line)?;
                    if target % 4 != 0 {
                        return Err(AsmError::new(line, "jump target is not word-aligned"));
                    }
                    let field = (target >> 2) & 0x03FF_FFFF;
                    encode(if *link {
                        Inst::Jal { target: field }
                    } else {
                        Inst::J { target: field }
                    })
                }
                Slot::RelocImm {
                    make,
                    a,
                    b,
                    reloc,
                    label,
                    offset,
                } => {
                    let address = lookup(label, line)?.wrapping_add(*offset as u32);
                    encode(make(*a, *b, reloc.apply(address)))
                }
                Slot::WordSym { label } => lookup(label, line)?,
            };
            words.push(word);
            source_lines.push(line);
        }
        for fixup in data_fixups {
            let address = lookup(&fixup.label, fixup.line)?;
            data[fixup.offset..fixup.offset + 4].copy_from_slice(&address.to_le_bytes());
        }
        let entry = symbols.get("main").copied().unwrap_or(TEXT_BASE);
        Ok(Program {
            text: words,
            data,
            text_base: TEXT_BASE,
            data_base: DATA_BASE,
            entry,
            symbols,
            source_lines,
        })
    }
}

fn branch_offset(pc: u32, target: u32, line: usize) -> Result<i16, AsmError> {
    if !target.is_multiple_of(4) {
        return Err(AsmError::new(line, "branch target is not word-aligned"));
    }
    let delta = (i64::from(target) - i64::from(pc) - 4) / 4;
    i16::try_from(delta).map_err(|_| {
        AsmError::new(
            line,
            format!("branch target {delta} instructions away is out of range"),
        )
    })
}

fn check_even(regs: &[FReg], line: usize) -> Result<(), AsmError> {
    for r in regs {
        if !r.is_even() {
            return Err(AsmError::new(
                line,
                format!("{r} is odd; doubles need an even register"),
            ));
        }
    }
    Ok(())
}

fn signed16(value: i64, line: usize) -> Result<i16, AsmError> {
    i16::try_from(value).map_err(|_| {
        AsmError::new(
            line,
            format!("immediate {value} does not fit in 16 signed bits"),
        )
    })
}

fn unsigned16(value: i64, line: usize) -> Result<u16, AsmError> {
    u16::try_from(value).map_err(|_| {
        AsmError::new(
            line,
            format!("immediate {value} does not fit in 16 unsigned bits"),
        )
    })
}

// ---- lexical helpers ----

fn strip_comment(line: &str) -> &str {
    // A '#' inside a string literal must not start a comment.
    let mut in_string = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Finds the colon ending a leading label, if the line starts with one.
fn find_label_colon(line: &str) -> Option<usize> {
    let colon = line.find(':')?;
    let head = &line[..colon];
    is_identifier(head.trim()).then_some(colon)
}

/// Parses a `name = expr` equate line, returning the parts.
fn parse_equate(line: &str) -> Option<(&str, &str)> {
    let eq = line.find('=')?;
    let name = line[..eq].trim();
    let value = line[eq + 1..].trim();
    (is_identifier(name) && !value.is_empty()).then_some((name, value))
}

/// Parses a `%hi(label)`, `%lo(label)` or `%hi(label+off)` relocation
/// operand. Returns `Ok(None)` when the text is not a relocation at all.
///
/// `%hi` here is the plain high half (pair it with zero-extending `ori`);
/// use the `lw rt, label` global form when a sign-extending low half is
/// involved.
fn parse_reloc(text: &str, line: usize) -> Result<Option<(Reloc, String, i32)>, AsmError> {
    let Some(rest) = text.strip_prefix('%') else {
        return Ok(None);
    };
    let (reloc, body) = if let Some(body) = rest.strip_prefix("hi(") {
        (Reloc::High, body)
    } else if let Some(body) = rest.strip_prefix("lo(") {
        (Reloc::Low, body)
    } else {
        return Err(AsmError::new(
            line,
            format!("unknown relocation operator `{text}`"),
        ));
    };
    let inner = body
        .strip_suffix(')')
        .ok_or_else(|| AsmError::new(line, format!("unterminated relocation `{text}`")))?
        .trim();
    // label or label±offset.
    for (pos, ch) in inner.char_indices() {
        if (ch == '+' || ch == '-') && pos > 0 {
            let label = inner[..pos].trim();
            if !is_identifier(label) {
                break;
            }
            let offset = parse_int(&inner[pos..], line)?;
            let offset = i32::try_from(offset)
                .map_err(|_| AsmError::new(line, "relocation offset out of range"))?;
            return Ok(Some((reloc, label.to_string(), offset)));
        }
    }
    if !is_identifier(inner) {
        return Err(AsmError::new(
            line,
            format!("invalid relocation target `{inner}`"),
        ));
    }
    Ok(Some((reloc, inner.to_string(), 0)))
}

fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// Splits an operand list on commas that are outside string literals.
fn split_args(text: &str) -> Vec<String> {
    let text = text.trim();
    if text.is_empty() {
        return Vec::new();
    }
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    for ch in text.chars() {
        match ch {
            '"' => {
                in_string = !in_string;
                current.push(ch);
            }
            ',' if !in_string => {
                parts.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(ch),
        }
    }
    parts.push(current.trim().to_string());
    parts
}

fn parse_int(text: &str, line: usize) -> Result<i64, AsmError> {
    let text = text.trim();
    let (negative, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let magnitude =
        if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
            i64::from_str_radix(hex, 16)
        } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
            i64::from_str_radix(bin, 2)
        } else {
            body.parse::<i64>()
        }
        .map_err(|_| AsmError::new(line, format!("invalid integer `{text}`")))?;
    Ok(if negative { -magnitude } else { magnitude })
}

fn parse_string(text: &str, line: usize) -> Result<Vec<u8>, AsmError> {
    let text = text.trim();
    let inner = text
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| AsmError::new(line, "expected a double-quoted string"))?;
    let mut bytes = Vec::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(ch) = chars.next() {
        if ch == '\\' {
            match chars.next() {
                Some('n') => bytes.push(b'\n'),
                Some('t') => bytes.push(b'\t'),
                Some('0') => bytes.push(0),
                Some('\\') => bytes.push(b'\\'),
                Some('"') => bytes.push(b'"'),
                other => {
                    return Err(AsmError::new(
                        line,
                        format!("unknown escape `\\{}`", other.unwrap_or(' ')),
                    ))
                }
            }
        } else {
            let mut buf = [0u8; 4];
            bytes.extend(ch.encode_utf8(&mut buf).as_bytes());
        }
    }
    Ok(bytes)
}

/// Typed accessors over a parsed operand list.
struct Operands<'a> {
    args: &'a [String],
    line: usize,
}

impl Operands<'_> {
    fn len(&self) -> usize {
        self.args.len()
    }

    fn exactly(&self, n: usize) -> Result<(), AsmError> {
        if self.args.len() != n {
            return Err(AsmError::new(
                self.line,
                format!("expected {n} operands, found {}", self.args.len()),
            ));
        }
        Ok(())
    }

    fn raw(&self, i: usize) -> Result<&str, AsmError> {
        self.args
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| AsmError::new(self.line, format!("missing operand {}", i + 1)))
    }

    fn reg(&self, i: usize) -> Result<Reg, AsmError> {
        let text = self.raw(i)?;
        // Require the `$` sigil: a bare number in a register position is
        // almost always a forgotten `sll`/immediate, not register $N.
        if !text.starts_with('$') {
            return Err(AsmError::new(
                self.line,
                format!("invalid register `{text}`"),
            ));
        }
        Reg::from_name(text)
            .ok_or_else(|| AsmError::new(self.line, format!("invalid register `{text}`")))
    }

    fn freg(&self, i: usize) -> Result<FReg, AsmError> {
        let text = self.raw(i)?;
        FReg::from_name(text)
            .ok_or_else(|| AsmError::new(self.line, format!("invalid fp register `{text}`")))
    }

    fn imm(&self, i: usize) -> Result<i64, AsmError> {
        parse_int(self.raw(i)?, self.line)
    }

    fn label(&self, i: usize) -> Result<String, AsmError> {
        let text = self.raw(i)?;
        if !is_identifier(text) {
            return Err(AsmError::new(self.line, format!("invalid label `{text}`")));
        }
        Ok(text.to_string())
    }

    /// `label`, `label+imm` or `label-imm`.
    fn label_offset(&self, i: usize) -> Result<(String, i32), AsmError> {
        let text = self.raw(i)?;
        for (pos, ch) in text.char_indices() {
            if (ch == '+' || ch == '-') && pos > 0 {
                let label = text[..pos].trim();
                if !is_identifier(label) {
                    break;
                }
                let offset = parse_int(&text[pos..], self.line)?;
                let offset = i32::try_from(offset)
                    .map_err(|_| AsmError::new(self.line, "label offset out of range"))?;
                return Ok((label.to_string(), offset));
            }
        }
        if !is_identifier(text) {
            return Err(AsmError::new(
                self.line,
                format!("invalid address `{text}`"),
            ));
        }
        Ok((text.to_string(), 0))
    }

    /// `offset($reg)`, `($reg)` or a bare register meaning offset 0.
    fn mem(&self, i: usize) -> Result<(i16, Reg), AsmError> {
        let text = self.raw(i)?;
        if let Some(open) = text.find('(') {
            let close = text.rfind(')').ok_or_else(|| {
                AsmError::new(self.line, format!("unterminated memory operand `{text}`"))
            })?;
            let offset_text = text[..open].trim();
            let offset = if offset_text.is_empty() {
                0
            } else {
                signed16(parse_int(offset_text, self.line)?, self.line)?
            };
            let reg_text = text[open + 1..close].trim();
            let base = Reg::from_name(reg_text).ok_or_else(|| {
                AsmError::new(self.line, format!("invalid base register `{reg_text}`"))
            })?;
            return Ok((offset, base));
        }
        if let Some(base) = Reg::from_name(text) {
            return Ok((0, base));
        }
        Err(AsmError::new(
            self.line,
            format!("invalid memory operand `{text}`"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use crate::program::{DATA_BASE, TEXT_BASE};

    fn decode_all(program: &Program) -> Vec<Inst> {
        program.text.iter().map(|&w| decode(w).unwrap()).collect()
    }

    #[test]
    fn minimal_program() {
        let p = assemble(".text\nmain: jr $ra\n").unwrap();
        assert_eq!(p.text.len(), 1);
        assert_eq!(decode(p.text[0]), Ok(Inst::Jr { rs: Reg::RA }));
        assert_eq!(p.entry, TEXT_BASE);
        assert_eq!(p.source_lines, vec![2]);
    }

    #[test]
    fn labels_and_branches() {
        let p = assemble(
            r#"
            .text
    main:   li   $t0, 3
    loop:   addiu $t0, $t0, -1
            bne  $t0, $zero, loop
            jr   $ra
    "#,
        )
        .unwrap();
        let insts = decode_all(&p);
        // bne offset: loop is one instruction back from pc+4 of the bne.
        assert_eq!(
            insts[2],
            Inst::Bne {
                rs: Reg::new(8),
                rt: Reg::ZERO,
                offset: -2
            }
        );
        assert_eq!(p.symbols["loop"], TEXT_BASE + 4);
    }

    #[test]
    fn forward_branches_resolve() {
        let p = assemble(
            r#"
            .text
    main:   beq $zero, $zero, done
            nop
            nop
    done:   jr $ra
    "#,
        )
        .unwrap();
        let insts = decode_all(&p);
        assert_eq!(
            insts[0],
            Inst::Beq {
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                offset: 2
            }
        );
    }

    #[test]
    fn li_expansion_sizes() {
        let p = assemble(".text\nli $t0, 5\nli $t1, 70000\nli $t2, 0x12340000\nli $t3, 40000\n")
            .unwrap();
        let insts = decode_all(&p);
        assert_eq!(
            insts[0],
            Inst::Addiu {
                rt: Reg::new(8),
                rs: Reg::ZERO,
                imm: 5
            }
        );
        // 70000 = 0x11170 needs lui+ori.
        assert_eq!(
            insts[1],
            Inst::Lui {
                rt: Reg::new(9),
                imm: 1
            }
        );
        assert_eq!(
            insts[2],
            Inst::Ori {
                rt: Reg::new(9),
                rs: Reg::new(9),
                imm: 0x1170
            }
        );
        // 0x12340000 has zero low half: lui only.
        assert_eq!(
            insts[3],
            Inst::Lui {
                rt: Reg::new(10),
                imm: 0x1234
            }
        );
        // 40000 fits unsigned 16: single ori.
        assert_eq!(
            insts[4],
            Inst::Ori {
                rt: Reg::new(11),
                rs: Reg::ZERO,
                imm: 40000
            }
        );
    }

    #[test]
    fn la_points_into_data() {
        let p = assemble(
            r#"
            .data
    x:      .word 1, 2, 3
    y:      .word 4
            .text
    main:   la $t0, y
            la $t1, x+8
    "#,
        )
        .unwrap();
        let insts = decode_all(&p);
        let y = DATA_BASE + 12;
        assert_eq!(
            insts[0],
            Inst::Lui {
                rt: Reg::new(8),
                imm: (y >> 16) as u16
            }
        );
        assert_eq!(
            insts[1],
            Inst::Ori {
                rt: Reg::new(8),
                rs: Reg::new(8),
                imm: (y & 0xFFFF) as u16
            }
        );
        // x+8 = third word of x = address of the 3.
        assert_eq!(
            insts[3],
            Inst::Ori {
                rt: Reg::new(9),
                rs: Reg::new(9),
                imm: ((DATA_BASE + 8) & 0xFFFF) as u16
            }
        );
        assert_eq!(p.data.len(), 16);
        assert_eq!(&p.data[0..4], &1u32.to_le_bytes());
    }

    #[test]
    fn data_directives_lay_out_correctly() {
        let p = assemble(
            r#"
            .data
    b:      .byte 1, 2
    h:      .half 3
    w:      .word 4
    d:      .double 2.5
    s:      .asciiz "hi"
    sp:     .space 3
            .align 2
    end:    .word 5
    "#,
        )
        .unwrap();
        assert_eq!(p.symbols["b"], DATA_BASE);
        assert_eq!(p.symbols["h"], DATA_BASE + 2); // aligned to 2
        assert_eq!(p.symbols["w"], DATA_BASE + 4);
        assert_eq!(p.symbols["d"], DATA_BASE + 8);
        assert_eq!(p.symbols["s"], DATA_BASE + 16);
        assert_eq!(p.symbols["sp"], DATA_BASE + 19);
        assert_eq!(p.symbols["end"], DATA_BASE + 24);
        assert_eq!(&p.data[8..16], &2.5f64.to_le_bytes());
        assert_eq!(&p.data[16..19], b"hi\0");
    }

    #[test]
    fn word_label_fixups_in_data() {
        let p = assemble(
            r#"
            .data
    table:  .word main, main
            .text
    main:   jr $ra
    "#,
        )
        .unwrap();
        assert_eq!(&p.data[0..4], &TEXT_BASE.to_le_bytes());
        assert_eq!(&p.data[4..8], &TEXT_BASE.to_le_bytes());
    }

    #[test]
    fn pseudo_instructions_expand() {
        let p = assemble(
            r#"
            .text
    main:   move $t0, $t1
            not  $t2, $t3
            neg  $t4, $t5
            div  $t6, $t0, $t1
            rem  $t7, $t0, $t1
    "#,
        )
        .unwrap();
        let insts = decode_all(&p);
        assert_eq!(
            insts[0],
            Inst::Addu {
                rd: Reg::new(8),
                rs: Reg::new(9),
                rt: Reg::ZERO
            }
        );
        assert_eq!(
            insts[1],
            Inst::Nor {
                rd: Reg::new(10),
                rs: Reg::new(11),
                rt: Reg::ZERO
            }
        );
        assert_eq!(
            insts[2],
            Inst::Sub {
                rd: Reg::new(12),
                rs: Reg::ZERO,
                rt: Reg::new(13)
            }
        );
        assert_eq!(
            insts[3],
            Inst::Div {
                rs: Reg::new(8),
                rt: Reg::new(9)
            }
        );
        assert_eq!(insts[4], Inst::Mflo { rd: Reg::new(14) });
        assert_eq!(
            insts[5],
            Inst::Div {
                rs: Reg::new(8),
                rt: Reg::new(9)
            }
        );
        assert_eq!(insts[6], Inst::Mfhi { rd: Reg::new(15) });
    }

    #[test]
    fn compare_branch_pseudos() {
        let p = assemble(
            r#"
            .text
    main:   blt $t0, $t1, main
            bge $t0, $t1, main
            bgt $t0, $t1, main
            ble $t0, $t1, main
    "#,
        )
        .unwrap();
        let insts = decode_all(&p);
        let (t0, t1, at) = (Reg::new(8), Reg::new(9), Reg::AT);
        assert_eq!(
            insts[0],
            Inst::Slt {
                rd: at,
                rs: t0,
                rt: t1
            }
        );
        assert_eq!(
            insts[1],
            Inst::Bne {
                rs: at,
                rt: Reg::ZERO,
                offset: -2
            }
        );
        assert_eq!(
            insts[2],
            Inst::Slt {
                rd: at,
                rs: t0,
                rt: t1
            }
        );
        assert_eq!(
            insts[3],
            Inst::Beq {
                rs: at,
                rt: Reg::ZERO,
                offset: -4
            }
        );
        assert_eq!(
            insts[4],
            Inst::Slt {
                rd: at,
                rs: t1,
                rt: t0
            }
        );
        assert_eq!(
            insts[5],
            Inst::Bne {
                rs: at,
                rt: Reg::ZERO,
                offset: -6
            }
        );
        assert_eq!(
            insts[6],
            Inst::Slt {
                rd: at,
                rs: t1,
                rt: t0
            }
        );
        assert_eq!(
            insts[7],
            Inst::Beq {
                rs: at,
                rt: Reg::ZERO,
                offset: -8
            }
        );
    }

    #[test]
    fn fp_instructions_and_aliases() {
        let p = assemble(
            r#"
            .text
    main:   l.d   $f2, 8($t0)
            add.d $f4, $f2, $f2
            c.lt.d $f2, $f4
            bc1t  main
            s.d   $f4, ($t0)
    "#,
        )
        .unwrap();
        let insts = decode_all(&p);
        assert_eq!(
            insts[0],
            Inst::Ldc1 {
                ft: FReg::new(2),
                base: Reg::new(8),
                offset: 8
            }
        );
        assert_eq!(
            insts[1],
            Inst::AddD {
                fd: FReg::new(4),
                fs: FReg::new(2),
                ft: FReg::new(2)
            }
        );
        assert_eq!(
            insts[2],
            Inst::CLtD {
                fs: FReg::new(2),
                ft: FReg::new(4)
            }
        );
        assert_eq!(insts[3], Inst::Bc1t { offset: -4 });
        assert_eq!(
            insts[4],
            Inst::Sdc1 {
                ft: FReg::new(4),
                base: Reg::new(8),
                offset: 0
            }
        );
    }

    #[test]
    fn error_diagnostics() {
        let cases: &[(&str, &str)] = &[
            ("frobnicate $t0", "unknown mnemonic"),
            (".text\nbne $t0, $t1, nowhere", "undefined label"),
            ("lw $t0, 100000($t1)", "does not fit"),
            ("addi $t0, $t1, 99999", "does not fit"),
            ("sll $t0, $t1, 32", "out of range"),
            ("main: nop\nmain: nop", "duplicate label"),
            ("add $t0, $t1", "missing operand 3"),
            ("add.d $f1, $f2, $f4", "odd"),
            (".data\n.word zzz\n.text\nnop", "undefined label"),
            (".quux 3", "unknown directive"),
            (".data\nnop", "instruction outside .text"),
            (".word 0xffffffff", "not an instruction"),
        ];
        for (src, needle) in cases {
            let err = assemble(src).expect_err(src);
            assert!(
                err.to_string().contains(needle),
                "source {src:?}: got `{err}`, wanted `{needle}`"
            );
        }
    }

    #[test]
    fn comments_and_blank_lines() {
        let p =
            assemble("# leading comment\n\n.text\nmain: nop # trailing\n  # indented comment\n")
                .unwrap();
        assert_eq!(p.text.len(), 1);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let p = assemble(".data\ns: .asciiz \"a#b\"\n.text\nnop").unwrap();
        assert_eq!(&p.data, b"a#b\0");
    }

    #[test]
    fn equates_substitute_in_immediates_and_offsets() {
        let p = assemble(
            r#"
    N = 40
    STRIDE = 0x10
            .text
    main:   li   $t0, N
            addiu $t1, $t0, STRIDE
            lw   $t2, STRIDE($t0)
    "#,
        )
        .unwrap();
        let insts = decode_all(&p);
        assert_eq!(
            insts[0],
            Inst::Addiu {
                rt: Reg::new(8),
                rs: Reg::ZERO,
                imm: 40
            }
        );
        assert_eq!(
            insts[1],
            Inst::Addiu {
                rt: Reg::new(9),
                rs: Reg::new(8),
                imm: 16
            }
        );
        assert_eq!(
            insts[2],
            Inst::Lw {
                rt: Reg::new(10),
                base: Reg::new(8),
                offset: 16
            }
        );
        let err = assemble("N = 1\nN = 2\n.text\nnop").unwrap_err();
        assert!(err.to_string().contains("duplicate equate"));
    }

    #[test]
    fn hi_lo_relocations() {
        let p = assemble(
            r#"
            .data
    x:      .word 1
            .text
    main:   lui  $t0, %hi(x)
            ori  $t0, $t0, %lo(x)
            addiu $t1, $zero, %lo(x+4)
    "#,
        )
        .unwrap();
        let insts = decode_all(&p);
        assert_eq!(
            insts[0],
            Inst::Lui {
                rt: Reg::new(8),
                imm: (DATA_BASE >> 16) as u16
            }
        );
        assert_eq!(
            insts[1],
            Inst::Ori {
                rt: Reg::new(8),
                rs: Reg::new(8),
                imm: (DATA_BASE & 0xFFFF) as u16
            }
        );
        assert_eq!(
            insts[2],
            Inst::Addiu {
                rt: Reg::new(9),
                rs: Reg::ZERO,
                imm: ((DATA_BASE + 4) & 0xFFFF) as i16
            }
        );
        let err = assemble(".text\nlui $t0, %mid(x)").unwrap_err();
        assert!(err.to_string().contains("unknown relocation"));
    }

    #[test]
    fn global_memory_form_expands_via_at() {
        let p = assemble(
            r#"
            .data
    val:    .word 9
            .text
    main:   lw $t0, val
            sw $t0, val+4
    "#,
        )
        .unwrap();
        let insts = decode_all(&p);
        // lui $at, %hi_adj(val); lw $t0, %lo(val)($at)
        assert_eq!(
            insts[0],
            Inst::Lui {
                rt: Reg::AT,
                imm: (DATA_BASE.wrapping_add(0x8000) >> 16) as u16
            }
        );
        assert_eq!(
            insts[1],
            Inst::Lw {
                rt: Reg::new(8),
                base: Reg::AT,
                offset: (DATA_BASE & 0xFFFF) as i16
            }
        );
        assert_eq!(
            insts[3],
            Inst::Sw {
                rt: Reg::new(8),
                base: Reg::AT,
                offset: ((DATA_BASE + 4) & 0xFFFF) as i16
            }
        );
    }

    #[test]
    fn global_memory_form_executes_correctly() {
        // End-to-end through the simulator, including a data address whose
        // low half is sign-extended (exercises the %hi adjustment).
        let p = assemble(
            r#"
            .data
            .space 0x8000
    far:    .word 1234
            .text
    main:   lw   $a0, far
            li   $v0, 1
            syscall
            li   $v0, 10
            syscall
    "#,
        )
        .unwrap();
        let mut cpu = imt_sim_stub::run(&p);
        assert_eq!(cpu.remove(0), "1234");
    }

    /// Minimal local runner so these unit tests do not depend on imt-sim
    /// (which depends on this crate). Interprets just enough instructions.
    mod imt_sim_stub {
        use super::super::*;
        use crate::decode::decode as dec;
        use crate::inst::Inst;

        /// Runs a program with lui/ori/lw/addiu/syscall semantics and
        /// returns printed items.
        pub fn run(p: &Program) -> Vec<String> {
            let mut regs = [0u32; 32];
            let mut out = Vec::new();
            let mut pc = p.entry;
            let mut mem = std::collections::HashMap::<u32, u8>::new();
            for (i, b) in p.data.iter().enumerate() {
                mem.insert(p.data_base + i as u32, *b);
            }
            let read32 = |mem: &std::collections::HashMap<u32, u8>, a: u32| -> u32 {
                u32::from_le_bytes([
                    *mem.get(&a).unwrap_or(&0),
                    *mem.get(&(a + 1)).unwrap_or(&0),
                    *mem.get(&(a + 2)).unwrap_or(&0),
                    *mem.get(&(a + 3)).unwrap_or(&0),
                ])
            };
            for _ in 0..1000 {
                let idx = p.index_of_address(pc).expect("pc in text");
                let inst = dec(p.text[idx]).expect("valid text");
                match inst {
                    Inst::Lui { rt, imm } => regs[rt.number() as usize] = (imm as u32) << 16,
                    Inst::Ori { rt, rs, imm } => {
                        regs[rt.number() as usize] = regs[rs.number() as usize] | imm as u32
                    }
                    Inst::Addiu { rt, rs, imm } => {
                        regs[rt.number() as usize] =
                            regs[rs.number() as usize].wrapping_add(imm as i32 as u32)
                    }
                    Inst::Lw { rt, base, offset } => {
                        let a = regs[base.number() as usize].wrapping_add(offset as i32 as u32);
                        regs[rt.number() as usize] = read32(&mem, a);
                    }
                    Inst::Syscall => match regs[2] {
                        1 => out.push(format!("{}", regs[4] as i32)),
                        10 => return out,
                        n => panic!("stub syscall {n}"),
                    },
                    other => panic!("stub cannot run {other:?}"),
                }
                pc += 4;
            }
            panic!("stub ran away");
        }
    }

    #[test]
    fn li_d_uses_a_shared_literal_pool() {
        let p = assemble(
            r#"
            .text
    main:   li.d $f2, 2.5
            li.d $f4, 2.5
            li.d $f6, -1.25
            li.s $f8, 0.5
    "#,
        )
        .unwrap();
        let insts = decode_all(&p);
        // Each li.d is lui + ldc1; the two 2.5 loads share one pool slot.
        assert!(matches!(insts[1], Inst::Ldc1 { ft, .. } if ft == FReg::new(2)));
        assert!(matches!(insts[3], Inst::Ldc1 { ft, .. } if ft == FReg::new(4)));
        assert!(matches!(insts[5], Inst::Ldc1 { ft, .. } if ft == FReg::new(6)));
        assert!(matches!(insts[7], Inst::Lwc1 { ft, .. } if ft == FReg::new(8)));
        // Pool: 2.5 (8B) + -1.25 (8B) + 0.5f (4B) = 20 bytes.
        assert_eq!(p.data.len(), 20);
        assert_eq!(&p.data[0..8], &2.5f64.to_le_bytes());
        assert_eq!(&p.data[8..16], &(-1.25f64).to_le_bytes());
        assert_eq!(&p.data[16..20], &0.5f32.to_le_bytes());
        // Both 2.5 loads resolve to the same address.
        assert_eq!(p.text[1], p.text[3] & !(0x1F << 16) | (2 << 16));
        let err = assemble(".text\nli.d $f3, 1.0").unwrap_err();
        assert!(err.to_string().contains("odd"));
    }

    #[test]
    fn branch_range_is_enforced() {
        let mut src = String::from(".text\nmain: b far\n");
        for _ in 0..40_000 {
            src.push_str("nop\n");
        }
        src.push_str("far: nop\n");
        let err = assemble(&src).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn disassembly_of_assembled_text_roundtrips() {
        let p = assemble(
            r#"
            .text
    main:   addu $t0, $t1, $t2
            lw   $s0, 12($sp)
            mul.d $f2, $f4, $f6
            syscall
    "#,
        )
        .unwrap();
        let rendered: Vec<String> = p
            .text
            .iter()
            .map(|&w| crate::disasm::disassemble_word(w))
            .collect();
        assert_eq!(rendered[0], "addu $t0, $t1, $t2");
        assert_eq!(rendered[1], "lw $s0, 12($sp)");
        assert_eq!(rendered[2], "mul.d $f2, $f4, $f6");
        assert_eq!(rendered[3], "syscall");
    }
}
