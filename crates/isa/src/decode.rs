//! Instruction decoding: 32-bit machine word → [`Inst`].

use crate::encode::*;
use crate::error::DecodeError;
use crate::inst::Inst;
use crate::reg::{FReg, Reg};

/// Decodes a 32-bit machine word.
///
/// # Errors
///
/// Returns [`DecodeError`] for words that do not correspond to any
/// instruction of this ISA (reserved opcodes, unknown funct fields, or
/// unsupported coprocessor selectors).
///
/// ```
/// use imt_isa::decode::decode;
/// use imt_isa::{Inst, Reg};
///
/// # fn main() -> Result<(), imt_isa::DecodeError> {
/// let inst = decode(0x0109_5021)?; // addu $t2, $t0, $t1
/// assert_eq!(inst, Inst::Addu { rd: Reg::new(10), rs: Reg::new(8), rt: Reg::new(9) });
/// # Ok(())
/// # }
/// ```
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let op = word >> 26;
    let rs = Reg::from_field(word >> 21);
    let rt = Reg::from_field(word >> 16);
    let rd = Reg::from_field(word >> 11);
    let shamt = (word >> 6 & 0x1F) as u8;
    let funct = word & 0x3F;
    let imm = word as u16;
    let simm = imm as i16;
    let target = word & 0x03FF_FFFF;

    let inst = match op {
        OP_SPECIAL => match funct {
            F_SLL => Inst::Sll { rd, rt, shamt },
            F_SRL => Inst::Srl { rd, rt, shamt },
            F_SRA => Inst::Sra { rd, rt, shamt },
            F_SLLV => Inst::Sllv { rd, rt, rs },
            F_SRLV => Inst::Srlv { rd, rt, rs },
            F_SRAV => Inst::Srav { rd, rt, rs },
            F_JR => Inst::Jr { rs },
            F_JALR => Inst::Jalr { rd, rs },
            F_SYSCALL => Inst::Syscall,
            F_BREAK => Inst::Break,
            F_MFHI => Inst::Mfhi { rd },
            F_MTHI => Inst::Mthi { rs },
            F_MFLO => Inst::Mflo { rd },
            F_MTLO => Inst::Mtlo { rs },
            F_MULT => Inst::Mult { rs, rt },
            F_MULTU => Inst::Multu { rs, rt },
            F_DIV => Inst::Div { rs, rt },
            F_DIVU => Inst::Divu { rs, rt },
            F_ADD => Inst::Add { rd, rs, rt },
            F_ADDU => Inst::Addu { rd, rs, rt },
            F_SUB => Inst::Sub { rd, rs, rt },
            F_SUBU => Inst::Subu { rd, rs, rt },
            F_AND => Inst::And { rd, rs, rt },
            F_OR => Inst::Or { rd, rs, rt },
            F_XOR => Inst::Xor { rd, rs, rt },
            F_NOR => Inst::Nor { rd, rs, rt },
            F_SLT => Inst::Slt { rd, rs, rt },
            F_SLTU => Inst::Sltu { rd, rs, rt },
            _ => return Err(DecodeError { word }),
        },
        OP_SPECIAL2 => match funct {
            F2_MUL => Inst::Mul { rd, rs, rt },
            _ => return Err(DecodeError { word }),
        },
        OP_REGIMM => match rt.number() {
            0 => Inst::Bltz { rs, offset: simm },
            1 => Inst::Bgez { rs, offset: simm },
            _ => return Err(DecodeError { word }),
        },
        OP_J => Inst::J { target },
        OP_JAL => Inst::Jal { target },
        OP_BEQ => Inst::Beq {
            rs,
            rt,
            offset: simm,
        },
        OP_BNE => Inst::Bne {
            rs,
            rt,
            offset: simm,
        },
        OP_BLEZ => Inst::Blez { rs, offset: simm },
        OP_BGTZ => Inst::Bgtz { rs, offset: simm },
        OP_ADDI => Inst::Addi { rt, rs, imm: simm },
        OP_ADDIU => Inst::Addiu { rt, rs, imm: simm },
        OP_SLTI => Inst::Slti { rt, rs, imm: simm },
        OP_SLTIU => Inst::Sltiu { rt, rs, imm: simm },
        OP_ANDI => Inst::Andi { rt, rs, imm },
        OP_ORI => Inst::Ori { rt, rs, imm },
        OP_XORI => Inst::Xori { rt, rs, imm },
        OP_LUI => Inst::Lui { rt, imm },
        OP_COP1 => {
            let sel = word >> 21 & 0x1F;
            let fs = FReg::from_field(word >> 11);
            let ft = FReg::from_field(word >> 16);
            let fd = FReg::from_field(word >> 6);
            match sel {
                C1_MFC1 => Inst::Mfc1 { rt, fs },
                C1_MTC1 => Inst::Mtc1 { rt, fs },
                C1_BC => match rt.number() {
                    0 => Inst::Bc1f { offset: simm },
                    1 => Inst::Bc1t { offset: simm },
                    _ => return Err(DecodeError { word }),
                },
                FMT_D => match funct {
                    FC_ADD => Inst::AddD { fd, fs, ft },
                    FC_SUB => Inst::SubD { fd, fs, ft },
                    FC_MUL => Inst::MulD { fd, fs, ft },
                    FC_DIV => Inst::DivD { fd, fs, ft },
                    FC_SQRT => Inst::SqrtD { fd, fs },
                    FC_ABS => Inst::AbsD { fd, fs },
                    FC_MOV => Inst::MovD { fd, fs },
                    FC_NEG => Inst::NegD { fd, fs },
                    FC_CVT_W => Inst::CvtWD { fd, fs },
                    FC_C_EQ => Inst::CEqD { fs, ft },
                    FC_C_LT => Inst::CLtD { fs, ft },
                    FC_C_LE => Inst::CLeD { fs, ft },
                    _ => return Err(DecodeError { word }),
                },
                FMT_W => match funct {
                    FC_CVT_D => Inst::CvtDW { fd, fs },
                    _ => return Err(DecodeError { word }),
                },
                _ => return Err(DecodeError { word }),
            }
        }
        OP_LB => Inst::Lb {
            rt,
            base: rs,
            offset: simm,
        },
        OP_LBU => Inst::Lbu {
            rt,
            base: rs,
            offset: simm,
        },
        OP_LH => Inst::Lh {
            rt,
            base: rs,
            offset: simm,
        },
        OP_LHU => Inst::Lhu {
            rt,
            base: rs,
            offset: simm,
        },
        OP_LW => Inst::Lw {
            rt,
            base: rs,
            offset: simm,
        },
        OP_SB => Inst::Sb {
            rt,
            base: rs,
            offset: simm,
        },
        OP_SH => Inst::Sh {
            rt,
            base: rs,
            offset: simm,
        },
        OP_SW => Inst::Sw {
            rt,
            base: rs,
            offset: simm,
        },
        OP_LWC1 => Inst::Lwc1 {
            ft: FReg::from_field(word >> 16),
            base: rs,
            offset: simm,
        },
        OP_SWC1 => Inst::Swc1 {
            ft: FReg::from_field(word >> 16),
            base: rs,
            offset: simm,
        },
        OP_LDC1 => Inst::Ldc1 {
            ft: FReg::from_field(word >> 16),
            base: rs,
            offset: simm,
        },
        OP_SDC1 => Inst::Sdc1 {
            ft: FReg::from_field(word >> 16),
            base: rs,
            offset: simm,
        },
        _ => return Err(DecodeError { word }),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    /// Enumerates a representative instruction of every variant with
    /// non-trivial operand values.
    pub(crate) fn sample_instructions() -> Vec<Inst> {
        use Inst::*;
        let r1 = Reg::new(8);
        let r2 = Reg::new(9);
        let r3 = Reg::new(10);
        let f1 = FReg::new(2);
        let f2 = FReg::new(4);
        let f3 = FReg::new(6);
        vec![
            Add {
                rd: r3,
                rs: r1,
                rt: r2,
            },
            Addu {
                rd: r3,
                rs: r1,
                rt: r2,
            },
            Sub {
                rd: r3,
                rs: r1,
                rt: r2,
            },
            Subu {
                rd: r3,
                rs: r1,
                rt: r2,
            },
            And {
                rd: r3,
                rs: r1,
                rt: r2,
            },
            Or {
                rd: r3,
                rs: r1,
                rt: r2,
            },
            Xor {
                rd: r3,
                rs: r1,
                rt: r2,
            },
            Nor {
                rd: r3,
                rs: r1,
                rt: r2,
            },
            Slt {
                rd: r3,
                rs: r1,
                rt: r2,
            },
            Sltu {
                rd: r3,
                rs: r1,
                rt: r2,
            },
            Mul {
                rd: r3,
                rs: r1,
                rt: r2,
            },
            Sll {
                rd: r3,
                rt: r2,
                shamt: 5,
            },
            Srl {
                rd: r3,
                rt: r2,
                shamt: 31,
            },
            Sra {
                rd: r3,
                rt: r2,
                shamt: 1,
            },
            Sllv {
                rd: r3,
                rt: r2,
                rs: r1,
            },
            Srlv {
                rd: r3,
                rt: r2,
                rs: r1,
            },
            Srav {
                rd: r3,
                rt: r2,
                rs: r1,
            },
            Mult { rs: r1, rt: r2 },
            Multu { rs: r1, rt: r2 },
            Div { rs: r1, rt: r2 },
            Divu { rs: r1, rt: r2 },
            Mfhi { rd: r3 },
            Mflo { rd: r3 },
            Mthi { rs: r1 },
            Mtlo { rs: r1 },
            Addi {
                rt: r2,
                rs: r1,
                imm: -7,
            },
            Addiu {
                rt: r2,
                rs: r1,
                imm: 1234,
            },
            Slti {
                rt: r2,
                rs: r1,
                imm: -1,
            },
            Sltiu {
                rt: r2,
                rs: r1,
                imm: 99,
            },
            Andi {
                rt: r2,
                rs: r1,
                imm: 0xFF00,
            },
            Ori {
                rt: r2,
                rs: r1,
                imm: 0x00FF,
            },
            Xori {
                rt: r2,
                rs: r1,
                imm: 0xAAAA,
            },
            Lui {
                rt: r2,
                imm: 0x1001,
            },
            Beq {
                rs: r1,
                rt: r2,
                offset: -5,
            },
            Bne {
                rs: r1,
                rt: r2,
                offset: 12,
            },
            Blez { rs: r1, offset: 3 },
            Bgtz { rs: r1, offset: -3 },
            Bltz { rs: r1, offset: 2 },
            Bgez { rs: r1, offset: -2 },
            J {
                target: 0x0010_0000,
            },
            Jal {
                target: 0x0010_0004,
            },
            Jr { rs: Reg::RA },
            Jalr {
                rd: Reg::RA,
                rs: r1,
            },
            Lb {
                rt: r2,
                base: r1,
                offset: -4,
            },
            Lbu {
                rt: r2,
                base: r1,
                offset: 4,
            },
            Lh {
                rt: r2,
                base: r1,
                offset: -2,
            },
            Lhu {
                rt: r2,
                base: r1,
                offset: 2,
            },
            Lw {
                rt: r2,
                base: r1,
                offset: 8,
            },
            Sb {
                rt: r2,
                base: r1,
                offset: 1,
            },
            Sh {
                rt: r2,
                base: r1,
                offset: 2,
            },
            Sw {
                rt: r2,
                base: r1,
                offset: -8,
            },
            Lwc1 {
                ft: f1,
                base: r1,
                offset: 16,
            },
            Swc1 {
                ft: f1,
                base: r1,
                offset: -16,
            },
            Ldc1 {
                ft: f2,
                base: r1,
                offset: 24,
            },
            Sdc1 {
                ft: f2,
                base: r1,
                offset: -24,
            },
            AddD {
                fd: f3,
                fs: f1,
                ft: f2,
            },
            SubD {
                fd: f3,
                fs: f1,
                ft: f2,
            },
            MulD {
                fd: f3,
                fs: f1,
                ft: f2,
            },
            DivD {
                fd: f3,
                fs: f1,
                ft: f2,
            },
            SqrtD { fd: f3, fs: f1 },
            AbsD { fd: f3, fs: f1 },
            MovD { fd: f3, fs: f1 },
            NegD { fd: f3, fs: f1 },
            CvtDW { fd: f3, fs: f1 },
            CvtWD { fd: f3, fs: f1 },
            CEqD { fs: f1, ft: f2 },
            CLtD { fs: f1, ft: f2 },
            CLeD { fs: f1, ft: f2 },
            Bc1t { offset: 7 },
            Bc1f { offset: -7 },
            Mfc1 { rt: r2, fs: f1 },
            Mtc1 { rt: r2, fs: f1 },
            Syscall,
            Break,
        ]
    }

    #[test]
    fn encode_decode_round_trip_every_variant() {
        for inst in sample_instructions() {
            let word = encode(inst);
            assert_eq!(decode(word), Ok(inst), "word {word:#010x}");
        }
    }

    #[test]
    fn round_trip_over_operand_space() {
        // Sweep register fields and immediates for a few shapes.
        for a in 0..32u8 {
            for b in [0u8, 1, 15, 31] {
                let inst = Inst::Addu {
                    rd: Reg::new(a),
                    rs: Reg::new(b),
                    rt: Reg::new(a ^ b),
                };
                assert_eq!(decode(encode(inst)), Ok(inst));
                let inst = Inst::Lw {
                    rt: Reg::new(a),
                    base: Reg::new(b),
                    offset: -32768,
                };
                assert_eq!(decode(encode(inst)), Ok(inst));
                let inst = Inst::Ldc1 {
                    ft: FReg::new(a),
                    base: Reg::new(b),
                    offset: 32767,
                };
                assert_eq!(decode(encode(inst)), Ok(inst));
            }
        }
    }

    #[test]
    fn rejects_reserved_words() {
        assert!(decode(0xFFFF_FFFF).is_err()); // opcode 0x3F
        assert!(decode(0x0000_003F).is_err()); // SPECIAL funct 0x3F
        assert!(decode(0x7000_0000).is_err()); // SPECIAL2 funct 0
        let err = decode(0xFC00_0000).unwrap_err();
        assert_eq!(err.word, 0xFC00_0000);
        assert!(err.to_string().contains("fc000000"));
    }

    #[test]
    fn nop_decodes_to_sll_zero() {
        assert_eq!(decode(0), Ok(Inst::NOP));
    }
}
