//! Textual disassembly of decoded instructions.

use crate::inst::Inst;

/// Renders an instruction in assembler syntax.
///
/// The output of `disassemble` re-assembles to the same machine word
/// (branch/jump targets are printed numerically, which the assembler
/// accepts for jumps via `.word`-free absolute targets is *not* supported —
/// the disassembly is intended for diagnostics, dumps and tests of
/// non-control instructions).
///
/// ```
/// use imt_isa::disasm::disassemble;
/// use imt_isa::{Inst, Reg};
///
/// let inst = Inst::Addu { rd: Reg::new(10), rs: Reg::new(8), rt: Reg::new(9) };
/// assert_eq!(disassemble(inst), "addu $t2, $t0, $t1");
/// ```
pub fn disassemble(inst: Inst) -> String {
    use Inst::*;
    match inst {
        Sll { rd, rt, shamt } if inst == Inst::NOP => {
            let _ = (rd, rt, shamt);
            "nop".to_string()
        }
        Add { rd, rs, rt } => format!("add {rd}, {rs}, {rt}"),
        Addu { rd, rs, rt } => format!("addu {rd}, {rs}, {rt}"),
        Sub { rd, rs, rt } => format!("sub {rd}, {rs}, {rt}"),
        Subu { rd, rs, rt } => format!("subu {rd}, {rs}, {rt}"),
        And { rd, rs, rt } => format!("and {rd}, {rs}, {rt}"),
        Or { rd, rs, rt } => format!("or {rd}, {rs}, {rt}"),
        Xor { rd, rs, rt } => format!("xor {rd}, {rs}, {rt}"),
        Nor { rd, rs, rt } => format!("nor {rd}, {rs}, {rt}"),
        Slt { rd, rs, rt } => format!("slt {rd}, {rs}, {rt}"),
        Sltu { rd, rs, rt } => format!("sltu {rd}, {rs}, {rt}"),
        Mul { rd, rs, rt } => format!("mul {rd}, {rs}, {rt}"),
        Sll { rd, rt, shamt } => format!("sll {rd}, {rt}, {shamt}"),
        Srl { rd, rt, shamt } => format!("srl {rd}, {rt}, {shamt}"),
        Sra { rd, rt, shamt } => format!("sra {rd}, {rt}, {shamt}"),
        Sllv { rd, rt, rs } => format!("sllv {rd}, {rt}, {rs}"),
        Srlv { rd, rt, rs } => format!("srlv {rd}, {rt}, {rs}"),
        Srav { rd, rt, rs } => format!("srav {rd}, {rt}, {rs}"),
        Mult { rs, rt } => format!("mult {rs}, {rt}"),
        Multu { rs, rt } => format!("multu {rs}, {rt}"),
        Div { rs, rt } => format!("div {rs}, {rt}"),
        Divu { rs, rt } => format!("divu {rs}, {rt}"),
        Mfhi { rd } => format!("mfhi {rd}"),
        Mflo { rd } => format!("mflo {rd}"),
        Mthi { rs } => format!("mthi {rs}"),
        Mtlo { rs } => format!("mtlo {rs}"),
        Addi { rt, rs, imm } => format!("addi {rt}, {rs}, {imm}"),
        Addiu { rt, rs, imm } => format!("addiu {rt}, {rs}, {imm}"),
        Slti { rt, rs, imm } => format!("slti {rt}, {rs}, {imm}"),
        Sltiu { rt, rs, imm } => format!("sltiu {rt}, {rs}, {imm}"),
        Andi { rt, rs, imm } => format!("andi {rt}, {rs}, {imm:#x}"),
        Ori { rt, rs, imm } => format!("ori {rt}, {rs}, {imm:#x}"),
        Xori { rt, rs, imm } => format!("xori {rt}, {rs}, {imm:#x}"),
        Lui { rt, imm } => format!("lui {rt}, {imm:#x}"),
        Beq { rs, rt, offset } => format!("beq {rs}, {rt}, {offset}"),
        Bne { rs, rt, offset } => format!("bne {rs}, {rt}, {offset}"),
        Blez { rs, offset } => format!("blez {rs}, {offset}"),
        Bgtz { rs, offset } => format!("bgtz {rs}, {offset}"),
        Bltz { rs, offset } => format!("bltz {rs}, {offset}"),
        Bgez { rs, offset } => format!("bgez {rs}, {offset}"),
        J { target } => format!("j {:#x}", target << 2),
        Jal { target } => format!("jal {:#x}", target << 2),
        Jr { rs } => format!("jr {rs}"),
        Jalr { rd, rs } => format!("jalr {rd}, {rs}"),
        Lb { rt, base, offset } => format!("lb {rt}, {offset}({base})"),
        Lbu { rt, base, offset } => format!("lbu {rt}, {offset}({base})"),
        Lh { rt, base, offset } => format!("lh {rt}, {offset}({base})"),
        Lhu { rt, base, offset } => format!("lhu {rt}, {offset}({base})"),
        Lw { rt, base, offset } => format!("lw {rt}, {offset}({base})"),
        Sb { rt, base, offset } => format!("sb {rt}, {offset}({base})"),
        Sh { rt, base, offset } => format!("sh {rt}, {offset}({base})"),
        Sw { rt, base, offset } => format!("sw {rt}, {offset}({base})"),
        Lwc1 { ft, base, offset } => format!("lwc1 {ft}, {offset}({base})"),
        Swc1 { ft, base, offset } => format!("swc1 {ft}, {offset}({base})"),
        Ldc1 { ft, base, offset } => format!("ldc1 {ft}, {offset}({base})"),
        Sdc1 { ft, base, offset } => format!("sdc1 {ft}, {offset}({base})"),
        AddD { fd, fs, ft } => format!("add.d {fd}, {fs}, {ft}"),
        SubD { fd, fs, ft } => format!("sub.d {fd}, {fs}, {ft}"),
        MulD { fd, fs, ft } => format!("mul.d {fd}, {fs}, {ft}"),
        DivD { fd, fs, ft } => format!("div.d {fd}, {fs}, {ft}"),
        SqrtD { fd, fs } => format!("sqrt.d {fd}, {fs}"),
        AbsD { fd, fs } => format!("abs.d {fd}, {fs}"),
        MovD { fd, fs } => format!("mov.d {fd}, {fs}"),
        NegD { fd, fs } => format!("neg.d {fd}, {fs}"),
        CvtDW { fd, fs } => format!("cvt.d.w {fd}, {fs}"),
        CvtWD { fd, fs } => format!("cvt.w.d {fd}, {fs}"),
        CEqD { fs, ft } => format!("c.eq.d {fs}, {ft}"),
        CLtD { fs, ft } => format!("c.lt.d {fs}, {ft}"),
        CLeD { fs, ft } => format!("c.le.d {fs}, {ft}"),
        Bc1t { offset } => format!("bc1t {offset}"),
        Bc1f { offset } => format!("bc1f {offset}"),
        Mfc1 { rt, fs } => format!("mfc1 {rt}, {fs}"),
        Mtc1 { rt, fs } => format!("mtc1 {rt}, {fs}"),
        Syscall => "syscall".to_string(),
        Break => "break".to_string(),
    }
}

/// Disassembles a machine word, rendering undecodable words as `.word`.
pub fn disassemble_word(word: u32) -> String {
    match crate::decode::decode(word) {
        Ok(inst) => disassemble(inst),
        Err(_) => format!(".word {word:#010x}"),
    }
}

/// Produces an assembler-style listing of a whole program: addresses,
/// machine words, labels from the symbol table, disassembly, and a data
/// segment hex dump.
///
/// ```
/// use imt_isa::asm::assemble;
/// use imt_isa::disasm::listing;
///
/// # fn main() -> Result<(), imt_isa::AsmError> {
/// let program = assemble(".data\nx: .word 7\n.text\nmain: jr $ra\n")?;
/// let text = listing(&program);
/// assert!(text.contains("main:"));
/// assert!(text.contains("jr $ra"));
/// assert!(text.contains("x:"));
/// # Ok(())
/// # }
/// ```
pub fn listing(program: &crate::Program) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let labels_at = |address: u32, out: &mut String| {
        for (name, &sym) in &program.symbols {
            if sym == address {
                writeln!(out, "{name}:").expect("write to String");
            }
        }
    };
    writeln!(out, "        .text  # {} instructions", program.text.len()).expect("write to String");
    for (index, &word) in program.text.iter().enumerate() {
        let address = program.address_of_index(index);
        labels_at(address, &mut out);
        writeln!(
            out,
            "  {address:#010x}  {word:08x}  {}",
            disassemble_word(word)
        )
        .expect("write to String");
    }
    if !program.data.is_empty() {
        writeln!(out, "        .data  # {} bytes", program.data.len()).expect("write to String");
        for (row_start, row) in program.data.chunks(16).enumerate() {
            let address = program.data_base + (row_start as u32) * 16;
            labels_at(address, &mut out);
            let hex: Vec<String> = row.iter().map(|b| format!("{b:02x}")).collect();
            writeln!(out, "  {address:#010x}  {}", hex.join(" ")).expect("write to String");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{FReg, Reg};

    #[test]
    fn listing_covers_text_and_data() {
        let program = crate::asm::assemble(
            ".data\nval: .word 0x01020304\n.text\nmain: lw $t0, val\nloop: b loop\n",
        )
        .unwrap();
        let text = listing(&program);
        assert!(text.contains("main:"));
        assert!(text.contains("loop:"));
        assert!(text.contains("val:"));
        assert!(text.contains("04 03 02 01")); // little-endian dump
        assert!(text.contains(".data  # 4 bytes"));
    }

    #[test]
    fn representative_renderings() {
        assert_eq!(disassemble(Inst::NOP), "nop");
        assert_eq!(
            disassemble(Inst::Lw {
                rt: Reg::new(8),
                base: Reg::SP,
                offset: -4
            }),
            "lw $t0, -4($sp)"
        );
        assert_eq!(
            disassemble(Inst::MulD {
                fd: FReg::new(2),
                fs: FReg::new(4),
                ft: FReg::new(6)
            }),
            "mul.d $f2, $f4, $f6"
        );
        assert_eq!(disassemble(Inst::Bc1t { offset: -3 }), "bc1t -3");
        assert_eq!(disassemble_word(0xFFFF_FFFF), ".word 0xffffffff");
    }
}
