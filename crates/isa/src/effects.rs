//! Architectural read/write effects of instructions.
//!
//! Used for dependence analysis (e.g. the transition-aware block scheduler
//! in `imt-core`): two instructions may be reordered iff neither writes
//! state the other reads or writes. Effects are conservative — memory
//! accesses carry no address information, so loads and stores conflict
//! pairwise except load/load.

use crate::inst::Inst;
use crate::reg::Reg;

/// The architectural state an instruction reads and writes.
///
/// Register sets are bit masks (`1 << number`). Double-precision FP
/// operands mark **both** registers of their even/odd pair.
///
/// ```
/// use imt_isa::effects::Effects;
/// use imt_isa::{Inst, Reg};
///
/// let add = Inst::Addu { rd: Reg::new(10), rs: Reg::new(8), rt: Reg::new(9) };
/// let e = Effects::of(add);
/// assert!(e.reads_int(Reg::new(8)));
/// assert!(e.writes_int(Reg::new(10)));
/// assert!(!e.memory_load && !e.memory_store && !e.barrier);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Effects {
    /// Integer registers read.
    pub int_reads: u32,
    /// Integer registers written.
    pub int_writes: u32,
    /// FP registers read.
    pub fp_reads: u32,
    /// FP registers written.
    pub fp_writes: u32,
    /// Reads HI/LO.
    pub hilo_read: bool,
    /// Writes HI/LO.
    pub hilo_write: bool,
    /// Reads the FP condition flag.
    pub fcc_read: bool,
    /// Writes the FP condition flag.
    pub fcc_write: bool,
    /// Loads from memory.
    pub memory_load: bool,
    /// Stores to memory.
    pub memory_store: bool,
    /// Control transfer (must stay at its block position).
    pub control: bool,
    /// Full barrier (syscall/break): nothing moves across it.
    pub barrier: bool,
}

fn int(reg: Reg) -> u32 {
    // $zero is neither a real read nor a real write dependency.
    if reg == Reg::ZERO {
        0
    } else {
        1u32 << reg.number()
    }
}

fn fp_pair(reg: crate::reg::FReg) -> u32 {
    let even = reg.number() & !1;
    0b11u32 << even
}

fn fp_single(reg: crate::reg::FReg) -> u32 {
    1u32 << reg.number()
}

impl Effects {
    /// Computes the effects of an instruction.
    #[allow(clippy::too_many_lines)] // one arm per opcode family
    pub fn of(inst: Inst) -> Effects {
        use Inst::*;
        let mut e = Effects::default();
        match inst {
            Add { rd, rs, rt }
            | Addu { rd, rs, rt }
            | Sub { rd, rs, rt }
            | Subu { rd, rs, rt }
            | And { rd, rs, rt }
            | Or { rd, rs, rt }
            | Xor { rd, rs, rt }
            | Nor { rd, rs, rt }
            | Slt { rd, rs, rt }
            | Sltu { rd, rs, rt }
            | Mul { rd, rs, rt } => {
                e.int_reads = int(rs) | int(rt);
                e.int_writes = int(rd);
            }
            Sll { rd, rt, .. } | Srl { rd, rt, .. } | Sra { rd, rt, .. } => {
                e.int_reads = int(rt);
                e.int_writes = int(rd);
            }
            Sllv { rd, rt, rs } | Srlv { rd, rt, rs } | Srav { rd, rt, rs } => {
                e.int_reads = int(rt) | int(rs);
                e.int_writes = int(rd);
            }
            Mult { rs, rt } | Multu { rs, rt } | Div { rs, rt } | Divu { rs, rt } => {
                e.int_reads = int(rs) | int(rt);
                e.hilo_write = true;
            }
            Mfhi { rd } | Mflo { rd } => {
                e.hilo_read = true;
                e.int_writes = int(rd);
            }
            Mthi { rs } | Mtlo { rs } => {
                e.int_reads = int(rs);
                e.hilo_write = true;
            }
            Addi { rt, rs, .. }
            | Addiu { rt, rs, .. }
            | Slti { rt, rs, .. }
            | Sltiu { rt, rs, .. }
            | Andi { rt, rs, .. }
            | Ori { rt, rs, .. }
            | Xori { rt, rs, .. } => {
                e.int_reads = int(rs);
                e.int_writes = int(rt);
            }
            Lui { rt, .. } => e.int_writes = int(rt),
            Beq { rs, rt, .. } | Bne { rs, rt, .. } => {
                e.int_reads = int(rs) | int(rt);
                e.control = true;
            }
            Blez { rs, .. } | Bgtz { rs, .. } | Bltz { rs, .. } | Bgez { rs, .. } => {
                e.int_reads = int(rs);
                e.control = true;
            }
            J { .. } => e.control = true,
            Jal { .. } => {
                e.int_writes = int(Reg::RA);
                e.control = true;
            }
            Jr { rs } => {
                e.int_reads = int(rs);
                e.control = true;
            }
            Jalr { rd, rs } => {
                e.int_reads = int(rs);
                e.int_writes = int(rd);
                e.control = true;
            }
            Lb { rt, base, .. }
            | Lbu { rt, base, .. }
            | Lh { rt, base, .. }
            | Lhu { rt, base, .. }
            | Lw { rt, base, .. } => {
                e.int_reads = int(base);
                e.int_writes = int(rt);
                e.memory_load = true;
            }
            Sb { rt, base, .. } | Sh { rt, base, .. } | Sw { rt, base, .. } => {
                e.int_reads = int(base) | int(rt);
                e.memory_store = true;
            }
            Lwc1 { ft, base, .. } => {
                e.int_reads = int(base);
                e.fp_writes = fp_single(ft);
                e.memory_load = true;
            }
            Swc1 { ft, base, .. } => {
                e.int_reads = int(base);
                e.fp_reads = fp_single(ft);
                e.memory_store = true;
            }
            Ldc1 { ft, base, .. } => {
                e.int_reads = int(base);
                e.fp_writes = fp_pair(ft);
                e.memory_load = true;
            }
            Sdc1 { ft, base, .. } => {
                e.int_reads = int(base);
                e.fp_reads = fp_pair(ft);
                e.memory_store = true;
            }
            AddD { fd, fs, ft }
            | SubD { fd, fs, ft }
            | MulD { fd, fs, ft }
            | DivD { fd, fs, ft } => {
                e.fp_reads = fp_pair(fs) | fp_pair(ft);
                e.fp_writes = fp_pair(fd);
            }
            SqrtD { fd, fs } | AbsD { fd, fs } | MovD { fd, fs } | NegD { fd, fs } => {
                e.fp_reads = fp_pair(fs);
                e.fp_writes = fp_pair(fd);
            }
            CvtDW { fd, fs } => {
                e.fp_reads = fp_single(fs);
                e.fp_writes = fp_pair(fd);
            }
            CvtWD { fd, fs } => {
                e.fp_reads = fp_pair(fs);
                e.fp_writes = fp_single(fd);
            }
            CEqD { fs, ft } | CLtD { fs, ft } | CLeD { fs, ft } => {
                e.fp_reads = fp_pair(fs) | fp_pair(ft);
                e.fcc_write = true;
            }
            Bc1t { .. } | Bc1f { .. } => {
                e.fcc_read = true;
                e.control = true;
            }
            Mfc1 { rt, fs } => {
                e.fp_reads = fp_single(fs);
                e.int_writes = int(rt);
            }
            Mtc1 { rt, fs } => {
                e.int_reads = int(rt);
                e.fp_writes = fp_single(fs);
            }
            Syscall | Break => e.barrier = true,
        }
        e
    }

    /// Whether this instruction reads integer register `reg`.
    pub fn reads_int(&self, reg: Reg) -> bool {
        self.int_reads & int(reg) != 0
    }

    /// Whether this instruction writes integer register `reg`.
    pub fn writes_int(&self, reg: Reg) -> bool {
        self.int_writes & int(reg) != 0
    }

    /// Whether `self` must stay ordered before `later` if it originally
    /// preceded it (any RAW, WAR or WAW hazard between them, memory
    /// conflicts, barriers, or control placement).
    pub fn must_precede(&self, later: &Effects) -> bool {
        if self.barrier || later.barrier || self.control {
            return true;
        }
        // Register hazards, all three kinds, on every register file.
        let raw = self.int_writes & later.int_reads != 0
            || self.fp_writes & later.fp_reads != 0
            || (self.hilo_write && later.hilo_read)
            || (self.fcc_write && later.fcc_read);
        let war = self.int_reads & later.int_writes != 0
            || self.fp_reads & later.fp_writes != 0
            || (self.hilo_read && later.hilo_write)
            || (self.fcc_read && later.fcc_write);
        let waw = self.int_writes & later.int_writes != 0
            || self.fp_writes & later.fp_writes != 0
            || (self.hilo_write && later.hilo_write)
            || (self.fcc_write && later.fcc_write);
        // Memory: conservative — only load/load commutes.
        let memory = (self.memory_store && (later.memory_load || later.memory_store))
            || (self.memory_load && later.memory_store);
        raw || war || waw || memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::FReg;

    #[test]
    fn zero_register_is_no_dependency() {
        let a = Effects::of(Inst::Addu {
            rd: Reg::ZERO,
            rs: Reg::new(8),
            rt: Reg::ZERO,
        });
        assert_eq!(a.int_writes, 0);
        assert_eq!(a.int_reads, 1 << 8);
    }

    #[test]
    fn double_ops_mark_register_pairs() {
        let e = Effects::of(Inst::AddD {
            fd: FReg::new(4),
            fs: FReg::new(2),
            ft: FReg::new(6),
        });
        assert_eq!(e.fp_writes, 0b11 << 4);
        assert_eq!(e.fp_reads, (0b11 << 2) | (0b11 << 6));
        // mtc1 to the odd half of a pair conflicts with the pair's use.
        let m = Effects::of(Inst::Mtc1 {
            rt: Reg::new(8),
            fs: FReg::new(3),
        });
        assert!(m.fp_writes & e.fp_reads != 0);
    }

    #[test]
    fn hazard_classification() {
        let producer = Effects::of(Inst::Addiu {
            rt: Reg::new(8),
            rs: Reg::ZERO,
            imm: 1,
        });
        let consumer = Effects::of(Inst::Addiu {
            rt: Reg::new(9),
            rs: Reg::new(8),
            imm: 1,
        });
        let unrelated = Effects::of(Inst::Addiu {
            rt: Reg::new(10),
            rs: Reg::new(11),
            imm: 1,
        });
        assert!(producer.must_precede(&consumer)); // RAW
        assert!(consumer.must_precede(&producer)); // WAR the other way
        assert!(!producer.must_precede(&unrelated));
        assert!(!unrelated.must_precede(&producer));
        // WAW
        let rewriter = Effects::of(Inst::Addiu {
            rt: Reg::new(8),
            rs: Reg::ZERO,
            imm: 2,
        });
        assert!(producer.must_precede(&rewriter));
    }

    #[test]
    fn memory_ordering_rules() {
        let load = Effects::of(Inst::Lw {
            rt: Reg::new(8),
            base: Reg::SP,
            offset: 0,
        });
        let load2 = Effects::of(Inst::Lw {
            rt: Reg::new(9),
            base: Reg::SP,
            offset: 4,
        });
        let store = Effects::of(Inst::Sw {
            rt: Reg::new(10),
            base: Reg::SP,
            offset: 8,
        });
        assert!(!load.must_precede(&load2)); // loads commute
        assert!(load.must_precede(&store)); // load before store stays
        assert!(store.must_precede(&load)); // store before load stays
        assert!(store.must_precede(&store)); // stores never commute
    }

    #[test]
    fn hilo_and_fcc_are_tracked() {
        let mult = Effects::of(Inst::Mult {
            rs: Reg::new(8),
            rt: Reg::new(9),
        });
        let mflo = Effects::of(Inst::Mflo { rd: Reg::new(10) });
        assert!(mult.must_precede(&mflo));
        assert!(mflo.must_precede(&mult)); // WAR on HI/LO
        let cmp = Effects::of(Inst::CLtD {
            fs: FReg::new(2),
            ft: FReg::new(4),
        });
        let br = Effects::of(Inst::Bc1t { offset: 1 });
        assert!(cmp.must_precede(&br));
        assert!(br.control);
    }

    #[test]
    fn barriers_pin_everything() {
        let sys = Effects::of(Inst::Syscall);
        let alu = Effects::of(Inst::Addiu {
            rt: Reg::new(8),
            rs: Reg::ZERO,
            imm: 1,
        });
        assert!(sys.must_precede(&alu));
        assert!(alu.must_precede(&sys));
    }
}
