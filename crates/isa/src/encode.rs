//! Instruction encoding: [`Inst`] → 32-bit machine word.
//!
//! Field layout is classic MIPS:
//!
//! ```text
//! R: | op 6 | rs 5 | rt 5 | rd 5 | shamt 5 | funct 6 |
//! I: | op 6 | rs 5 | rt 5 |        imm 16           |
//! J: | op 6 |              target 26                |
//! ```

use crate::inst::Inst;
use crate::reg::{FReg, Reg};

// Opcode field values.
pub(crate) const OP_SPECIAL: u32 = 0x00;
pub(crate) const OP_REGIMM: u32 = 0x01;
pub(crate) const OP_J: u32 = 0x02;
pub(crate) const OP_JAL: u32 = 0x03;
pub(crate) const OP_BEQ: u32 = 0x04;
pub(crate) const OP_BNE: u32 = 0x05;
pub(crate) const OP_BLEZ: u32 = 0x06;
pub(crate) const OP_BGTZ: u32 = 0x07;
pub(crate) const OP_ADDI: u32 = 0x08;
pub(crate) const OP_ADDIU: u32 = 0x09;
pub(crate) const OP_SLTI: u32 = 0x0A;
pub(crate) const OP_SLTIU: u32 = 0x0B;
pub(crate) const OP_ANDI: u32 = 0x0C;
pub(crate) const OP_ORI: u32 = 0x0D;
pub(crate) const OP_XORI: u32 = 0x0E;
pub(crate) const OP_LUI: u32 = 0x0F;
pub(crate) const OP_COP1: u32 = 0x11;
pub(crate) const OP_SPECIAL2: u32 = 0x1C;
pub(crate) const OP_LB: u32 = 0x20;
pub(crate) const OP_LH: u32 = 0x21;
pub(crate) const OP_LW: u32 = 0x23;
pub(crate) const OP_LBU: u32 = 0x24;
pub(crate) const OP_LHU: u32 = 0x25;
pub(crate) const OP_SB: u32 = 0x28;
pub(crate) const OP_SH: u32 = 0x29;
pub(crate) const OP_SW: u32 = 0x2B;
pub(crate) const OP_LWC1: u32 = 0x31;
pub(crate) const OP_LDC1: u32 = 0x35;
pub(crate) const OP_SWC1: u32 = 0x39;
pub(crate) const OP_SDC1: u32 = 0x3D;

// SPECIAL funct field values.
pub(crate) const F_SLL: u32 = 0x00;
pub(crate) const F_SRL: u32 = 0x02;
pub(crate) const F_SRA: u32 = 0x03;
pub(crate) const F_SLLV: u32 = 0x04;
pub(crate) const F_SRLV: u32 = 0x06;
pub(crate) const F_SRAV: u32 = 0x07;
pub(crate) const F_JR: u32 = 0x08;
pub(crate) const F_JALR: u32 = 0x09;
pub(crate) const F_SYSCALL: u32 = 0x0C;
pub(crate) const F_BREAK: u32 = 0x0D;
pub(crate) const F_MFHI: u32 = 0x10;
pub(crate) const F_MTHI: u32 = 0x11;
pub(crate) const F_MFLO: u32 = 0x12;
pub(crate) const F_MTLO: u32 = 0x13;
pub(crate) const F_MULT: u32 = 0x18;
pub(crate) const F_MULTU: u32 = 0x19;
pub(crate) const F_DIV: u32 = 0x1A;
pub(crate) const F_DIVU: u32 = 0x1B;
pub(crate) const F_ADD: u32 = 0x20;
pub(crate) const F_ADDU: u32 = 0x21;
pub(crate) const F_SUB: u32 = 0x22;
pub(crate) const F_SUBU: u32 = 0x23;
pub(crate) const F_AND: u32 = 0x24;
pub(crate) const F_OR: u32 = 0x25;
pub(crate) const F_XOR: u32 = 0x26;
pub(crate) const F_NOR: u32 = 0x27;
pub(crate) const F_SLT: u32 = 0x2A;
pub(crate) const F_SLTU: u32 = 0x2B;

// SPECIAL2 funct.
pub(crate) const F2_MUL: u32 = 0x02;

// COP1 rs-field selectors.
pub(crate) const C1_MFC1: u32 = 0x00;
pub(crate) const C1_MTC1: u32 = 0x04;
pub(crate) const C1_BC: u32 = 0x08;
pub(crate) const FMT_D: u32 = 0x11;
pub(crate) const FMT_W: u32 = 0x14;

// COP1 funct field values.
pub(crate) const FC_ADD: u32 = 0x00;
pub(crate) const FC_SUB: u32 = 0x01;
pub(crate) const FC_MUL: u32 = 0x02;
pub(crate) const FC_DIV: u32 = 0x03;
pub(crate) const FC_SQRT: u32 = 0x04;
pub(crate) const FC_ABS: u32 = 0x05;
pub(crate) const FC_MOV: u32 = 0x06;
pub(crate) const FC_NEG: u32 = 0x07;
pub(crate) const FC_CVT_D: u32 = 0x21;
pub(crate) const FC_CVT_W: u32 = 0x24;
pub(crate) const FC_C_EQ: u32 = 0x32;
pub(crate) const FC_C_LT: u32 = 0x3C;
pub(crate) const FC_C_LE: u32 = 0x3E;

fn r(op: u32, rs: u32, rt: u32, rd: u32, shamt: u32, funct: u32) -> u32 {
    op << 26 | rs << 21 | rt << 16 | rd << 11 | shamt << 6 | funct
}

fn i(op: u32, rs: u32, rt: u32, imm: u16) -> u32 {
    op << 26 | rs << 21 | rt << 16 | imm as u32
}

fn g(reg: Reg) -> u32 {
    reg.number() as u32
}

fn f(reg: FReg) -> u32 {
    reg.number() as u32
}

/// Encodes an instruction into its 32-bit machine word.
///
/// Every [`Inst`] has exactly one encoding, and [`crate::decode::decode`]
/// inverts this function (round-trip tested exhaustively over the operand
/// space).
///
/// ```
/// use imt_isa::encode::encode;
/// use imt_isa::{Inst, Reg};
///
/// // addu $t2, $t0, $t1
/// let word = encode(Inst::Addu { rd: Reg::new(10), rs: Reg::new(8), rt: Reg::new(9) });
/// assert_eq!(word, 0x0109_5021);
/// ```
pub fn encode(inst: Inst) -> u32 {
    use Inst::*;
    match inst {
        Add { rd, rs, rt } => r(OP_SPECIAL, g(rs), g(rt), g(rd), 0, F_ADD),
        Addu { rd, rs, rt } => r(OP_SPECIAL, g(rs), g(rt), g(rd), 0, F_ADDU),
        Sub { rd, rs, rt } => r(OP_SPECIAL, g(rs), g(rt), g(rd), 0, F_SUB),
        Subu { rd, rs, rt } => r(OP_SPECIAL, g(rs), g(rt), g(rd), 0, F_SUBU),
        And { rd, rs, rt } => r(OP_SPECIAL, g(rs), g(rt), g(rd), 0, F_AND),
        Or { rd, rs, rt } => r(OP_SPECIAL, g(rs), g(rt), g(rd), 0, F_OR),
        Xor { rd, rs, rt } => r(OP_SPECIAL, g(rs), g(rt), g(rd), 0, F_XOR),
        Nor { rd, rs, rt } => r(OP_SPECIAL, g(rs), g(rt), g(rd), 0, F_NOR),
        Slt { rd, rs, rt } => r(OP_SPECIAL, g(rs), g(rt), g(rd), 0, F_SLT),
        Sltu { rd, rs, rt } => r(OP_SPECIAL, g(rs), g(rt), g(rd), 0, F_SLTU),
        Mul { rd, rs, rt } => r(OP_SPECIAL2, g(rs), g(rt), g(rd), 0, F2_MUL),

        Sll { rd, rt, shamt } => r(OP_SPECIAL, 0, g(rt), g(rd), shamt as u32 & 0x1F, F_SLL),
        Srl { rd, rt, shamt } => r(OP_SPECIAL, 0, g(rt), g(rd), shamt as u32 & 0x1F, F_SRL),
        Sra { rd, rt, shamt } => r(OP_SPECIAL, 0, g(rt), g(rd), shamt as u32 & 0x1F, F_SRA),
        Sllv { rd, rt, rs } => r(OP_SPECIAL, g(rs), g(rt), g(rd), 0, F_SLLV),
        Srlv { rd, rt, rs } => r(OP_SPECIAL, g(rs), g(rt), g(rd), 0, F_SRLV),
        Srav { rd, rt, rs } => r(OP_SPECIAL, g(rs), g(rt), g(rd), 0, F_SRAV),

        Mult { rs, rt } => r(OP_SPECIAL, g(rs), g(rt), 0, 0, F_MULT),
        Multu { rs, rt } => r(OP_SPECIAL, g(rs), g(rt), 0, 0, F_MULTU),
        Div { rs, rt } => r(OP_SPECIAL, g(rs), g(rt), 0, 0, F_DIV),
        Divu { rs, rt } => r(OP_SPECIAL, g(rs), g(rt), 0, 0, F_DIVU),
        Mfhi { rd } => r(OP_SPECIAL, 0, 0, g(rd), 0, F_MFHI),
        Mflo { rd } => r(OP_SPECIAL, 0, 0, g(rd), 0, F_MFLO),
        Mthi { rs } => r(OP_SPECIAL, g(rs), 0, 0, 0, F_MTHI),
        Mtlo { rs } => r(OP_SPECIAL, g(rs), 0, 0, 0, F_MTLO),

        Addi { rt, rs, imm } => i(OP_ADDI, g(rs), g(rt), imm as u16),
        Addiu { rt, rs, imm } => i(OP_ADDIU, g(rs), g(rt), imm as u16),
        Slti { rt, rs, imm } => i(OP_SLTI, g(rs), g(rt), imm as u16),
        Sltiu { rt, rs, imm } => i(OP_SLTIU, g(rs), g(rt), imm as u16),
        Andi { rt, rs, imm } => i(OP_ANDI, g(rs), g(rt), imm),
        Ori { rt, rs, imm } => i(OP_ORI, g(rs), g(rt), imm),
        Xori { rt, rs, imm } => i(OP_XORI, g(rs), g(rt), imm),
        Lui { rt, imm } => i(OP_LUI, 0, g(rt), imm),

        Beq { rs, rt, offset } => i(OP_BEQ, g(rs), g(rt), offset as u16),
        Bne { rs, rt, offset } => i(OP_BNE, g(rs), g(rt), offset as u16),
        Blez { rs, offset } => i(OP_BLEZ, g(rs), 0, offset as u16),
        Bgtz { rs, offset } => i(OP_BGTZ, g(rs), 0, offset as u16),
        Bltz { rs, offset } => i(OP_REGIMM, g(rs), 0, offset as u16),
        Bgez { rs, offset } => i(OP_REGIMM, g(rs), 1, offset as u16),
        J { target } => OP_J << 26 | (target & 0x03FF_FFFF),
        Jal { target } => OP_JAL << 26 | (target & 0x03FF_FFFF),
        Jr { rs } => r(OP_SPECIAL, g(rs), 0, 0, 0, F_JR),
        Jalr { rd, rs } => r(OP_SPECIAL, g(rs), 0, g(rd), 0, F_JALR),

        Lb { rt, base, offset } => i(OP_LB, g(base), g(rt), offset as u16),
        Lbu { rt, base, offset } => i(OP_LBU, g(base), g(rt), offset as u16),
        Lh { rt, base, offset } => i(OP_LH, g(base), g(rt), offset as u16),
        Lhu { rt, base, offset } => i(OP_LHU, g(base), g(rt), offset as u16),
        Lw { rt, base, offset } => i(OP_LW, g(base), g(rt), offset as u16),
        Sb { rt, base, offset } => i(OP_SB, g(base), g(rt), offset as u16),
        Sh { rt, base, offset } => i(OP_SH, g(base), g(rt), offset as u16),
        Sw { rt, base, offset } => i(OP_SW, g(base), g(rt), offset as u16),
        Lwc1 { ft, base, offset } => i(OP_LWC1, g(base), f(ft), offset as u16),
        Swc1 { ft, base, offset } => i(OP_SWC1, g(base), f(ft), offset as u16),
        Ldc1 { ft, base, offset } => i(OP_LDC1, g(base), f(ft), offset as u16),
        Sdc1 { ft, base, offset } => i(OP_SDC1, g(base), f(ft), offset as u16),

        AddD { fd, fs, ft } => r(OP_COP1, FMT_D, f(ft), f(fs), f(fd), FC_ADD),
        SubD { fd, fs, ft } => r(OP_COP1, FMT_D, f(ft), f(fs), f(fd), FC_SUB),
        MulD { fd, fs, ft } => r(OP_COP1, FMT_D, f(ft), f(fs), f(fd), FC_MUL),
        DivD { fd, fs, ft } => r(OP_COP1, FMT_D, f(ft), f(fs), f(fd), FC_DIV),
        SqrtD { fd, fs } => r(OP_COP1, FMT_D, 0, f(fs), f(fd), FC_SQRT),
        AbsD { fd, fs } => r(OP_COP1, FMT_D, 0, f(fs), f(fd), FC_ABS),
        MovD { fd, fs } => r(OP_COP1, FMT_D, 0, f(fs), f(fd), FC_MOV),
        NegD { fd, fs } => r(OP_COP1, FMT_D, 0, f(fs), f(fd), FC_NEG),
        CvtDW { fd, fs } => r(OP_COP1, FMT_W, 0, f(fs), f(fd), FC_CVT_D),
        CvtWD { fd, fs } => r(OP_COP1, FMT_D, 0, f(fs), f(fd), FC_CVT_W),
        CEqD { fs, ft } => r(OP_COP1, FMT_D, f(ft), f(fs), 0, FC_C_EQ),
        CLtD { fs, ft } => r(OP_COP1, FMT_D, f(ft), f(fs), 0, FC_C_LT),
        CLeD { fs, ft } => r(OP_COP1, FMT_D, f(ft), f(fs), 0, FC_C_LE),
        Bc1t { offset } => i(OP_COP1, C1_BC, 1, offset as u16),
        Bc1f { offset } => i(OP_COP1, C1_BC, 0, offset as u16),
        Mfc1 { rt, fs } => r(OP_COP1, C1_MFC1, g(rt), f(fs), 0, 0),
        Mtc1 { rt, fs } => r(OP_COP1, C1_MTC1, g(rt), f(fs), 0, 0),

        Syscall => r(OP_SPECIAL, 0, 0, 0, 0, F_SYSCALL),
        Break => r(OP_SPECIAL, 0, 0, 0, 0, F_BREAK),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_encodings() {
        // Spot-checked against the MIPS32 manual.
        // addu $t2, $t0, $t1 = 000000 01000 01001 01010 00000 100001
        assert_eq!(
            encode(Inst::Addu {
                rd: Reg::new(10),
                rs: Reg::new(8),
                rt: Reg::new(9)
            }),
            0x0109_5021
        );
        // lw $t0, 4($sp) = 100011 11101 01000 0000000000000100
        assert_eq!(
            encode(Inst::Lw {
                rt: Reg::new(8),
                base: Reg::SP,
                offset: 4
            }),
            0x8FA8_0004
        );
        // beq $zero, $zero, -1 = 000100 00000 00000 1111111111111111
        assert_eq!(
            encode(Inst::Beq {
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                offset: -1
            }),
            0x1000_FFFF
        );
        // syscall
        assert_eq!(encode(Inst::Syscall), 0x0000_000C);
        // add.d $f4, $f2, $f0 = 010001 10001 00000 00010 00100 000000
        assert_eq!(
            encode(Inst::AddD {
                fd: FReg::new(4),
                fs: FReg::new(2),
                ft: FReg::new(0)
            }),
            0x4620_1100
        );
        // jal 0x0040_0000 → target field 0x0010_0000
        assert_eq!(
            encode(Inst::Jal {
                target: 0x0040_0000 >> 2
            }),
            0x0C10_0000
        );
    }
}
