use std::error::Error;
use std::fmt;

/// A machine word that does not decode to any instruction of this ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "word {:08x} is not a valid instruction", self.word)
    }
}

impl Error for DecodeError {}

/// An error raised while assembling source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line the error was found on.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl AsmError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DecodeError>();
        assert_send_sync::<AsmError>();
        assert_eq!(
            DecodeError { word: 0xDEADBEEF }.to_string(),
            "word deadbeef is not a valid instruction"
        );
        assert_eq!(
            AsmError::new(3, "no such mnemonic").to_string(),
            "line 3: no such mnemonic"
        );
    }
}
