//! The decoded instruction form: one enum variant per machine instruction.
//!
//! Field naming follows MIPS conventions: `rs`/`rt` are source registers,
//! `rd` the destination of R-format instructions, `imm` a 16-bit immediate,
//! `offset` a signed 16-bit branch displacement in *instructions* relative
//! to the next PC, and `target` the 26-bit pseudo-absolute jump field.

use crate::reg::{FReg, Reg};

/// A decoded instruction.
///
/// Every variant corresponds to exactly one binary encoding (see
/// [`crate::encode`] and [`crate::decode`]); pseudo-instructions such as
/// `li` or `move` are expanded by the assembler and never appear here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field meanings are uniform; documented at module level
pub enum Inst {
    // ---- integer arithmetic, R-format ----
    Add {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Addu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Sub {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Subu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    And {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Or {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Xor {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Nor {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Slt {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Sltu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// Three-operand multiply (SPECIAL2), low 32 bits of the product.
    Mul {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },

    // ---- shifts ----
    Sll {
        rd: Reg,
        rt: Reg,
        shamt: u8,
    },
    Srl {
        rd: Reg,
        rt: Reg,
        shamt: u8,
    },
    Sra {
        rd: Reg,
        rt: Reg,
        shamt: u8,
    },
    Sllv {
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },
    Srlv {
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },
    Srav {
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },

    // ---- HI/LO multiply-divide unit ----
    Mult {
        rs: Reg,
        rt: Reg,
    },
    Multu {
        rs: Reg,
        rt: Reg,
    },
    Div {
        rs: Reg,
        rt: Reg,
    },
    Divu {
        rs: Reg,
        rt: Reg,
    },
    Mfhi {
        rd: Reg,
    },
    Mflo {
        rd: Reg,
    },
    Mthi {
        rs: Reg,
    },
    Mtlo {
        rs: Reg,
    },

    // ---- integer arithmetic, I-format ----
    Addi {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Addiu {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Slti {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Sltiu {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Andi {
        rt: Reg,
        rs: Reg,
        imm: u16,
    },
    Ori {
        rt: Reg,
        rs: Reg,
        imm: u16,
    },
    Xori {
        rt: Reg,
        rs: Reg,
        imm: u16,
    },
    Lui {
        rt: Reg,
        imm: u16,
    },

    // ---- control flow ----
    Beq {
        rs: Reg,
        rt: Reg,
        offset: i16,
    },
    Bne {
        rs: Reg,
        rt: Reg,
        offset: i16,
    },
    Blez {
        rs: Reg,
        offset: i16,
    },
    Bgtz {
        rs: Reg,
        offset: i16,
    },
    Bltz {
        rs: Reg,
        offset: i16,
    },
    Bgez {
        rs: Reg,
        offset: i16,
    },
    J {
        target: u32,
    },
    Jal {
        target: u32,
    },
    Jr {
        rs: Reg,
    },
    Jalr {
        rd: Reg,
        rs: Reg,
    },

    // ---- memory ----
    Lb {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Lbu {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Lh {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Lhu {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Lw {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Sb {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Sh {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Sw {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Lwc1 {
        ft: FReg,
        base: Reg,
        offset: i16,
    },
    Swc1 {
        ft: FReg,
        base: Reg,
        offset: i16,
    },
    Ldc1 {
        ft: FReg,
        base: Reg,
        offset: i16,
    },
    Sdc1 {
        ft: FReg,
        base: Reg,
        offset: i16,
    },

    // ---- coprocessor 1: double-precision arithmetic ----
    AddD {
        fd: FReg,
        fs: FReg,
        ft: FReg,
    },
    SubD {
        fd: FReg,
        fs: FReg,
        ft: FReg,
    },
    MulD {
        fd: FReg,
        fs: FReg,
        ft: FReg,
    },
    DivD {
        fd: FReg,
        fs: FReg,
        ft: FReg,
    },
    SqrtD {
        fd: FReg,
        fs: FReg,
    },
    AbsD {
        fd: FReg,
        fs: FReg,
    },
    MovD {
        fd: FReg,
        fs: FReg,
    },
    NegD {
        fd: FReg,
        fs: FReg,
    },
    /// Convert the 32-bit integer in `fs` to double.
    CvtDW {
        fd: FReg,
        fs: FReg,
    },
    /// Convert (truncate) the double in `fs` to a 32-bit integer.
    CvtWD {
        fd: FReg,
        fs: FReg,
    },
    /// Set the FP condition flag if `fs == ft`.
    CEqD {
        fs: FReg,
        ft: FReg,
    },
    /// Set the FP condition flag if `fs < ft`.
    CLtD {
        fs: FReg,
        ft: FReg,
    },
    /// Set the FP condition flag if `fs <= ft`.
    CLeD {
        fs: FReg,
        ft: FReg,
    },
    /// Branch if the FP condition flag is set.
    Bc1t {
        offset: i16,
    },
    /// Branch if the FP condition flag is clear.
    Bc1f {
        offset: i16,
    },
    Mfc1 {
        rt: Reg,
        fs: FReg,
    },
    Mtc1 {
        rt: Reg,
        fs: FReg,
    },

    // ---- system ----
    Syscall,
    Break,
}

impl Inst {
    /// The canonical no-op, `sll $zero, $zero, 0` (encoding `0x0000_0000`).
    pub const NOP: Inst = Inst::Sll {
        rd: Reg::ZERO,
        rt: Reg::ZERO,
        shamt: 0,
    };

    /// Whether this instruction can redirect control flow (conditional
    /// branch, jump, or indirect jump).
    ///
    /// `syscall` is *not* counted even though an `exit` syscall stops the
    /// machine; basic-block construction treats it separately.
    pub fn is_control_flow(self) -> bool {
        matches!(
            self,
            Inst::Beq { .. }
                | Inst::Bne { .. }
                | Inst::Blez { .. }
                | Inst::Bgtz { .. }
                | Inst::Bltz { .. }
                | Inst::Bgez { .. }
                | Inst::J { .. }
                | Inst::Jal { .. }
                | Inst::Jr { .. }
                | Inst::Jalr { .. }
                | Inst::Bc1t { .. }
                | Inst::Bc1f { .. }
        )
    }

    /// Whether this is an unconditional transfer (the next sequential
    /// instruction can never execute after it).
    pub fn is_unconditional_jump(self) -> bool {
        matches!(self, Inst::J { .. } | Inst::Jr { .. })
    }

    /// The signed branch displacement in instructions, if this is a
    /// PC-relative branch.
    pub fn branch_offset(self) -> Option<i16> {
        match self {
            Inst::Beq { offset, .. }
            | Inst::Bne { offset, .. }
            | Inst::Blez { offset, .. }
            | Inst::Bgtz { offset, .. }
            | Inst::Bltz { offset, .. }
            | Inst::Bgez { offset, .. }
            | Inst::Bc1t { offset }
            | Inst::Bc1f { offset } => Some(offset),
            _ => None,
        }
    }

    /// The branch or jump target address, given the address of this
    /// instruction, if statically known.
    ///
    /// Branch targets are `pc + 4 + offset * 4` (MIPS semantics); jump
    /// targets splice the 26-bit field into the top of `pc + 4`. Indirect
    /// jumps (`jr`, `jalr`) return `None`.
    pub fn static_target(self, pc: u32) -> Option<u32> {
        if let Some(offset) = self.branch_offset() {
            return Some(pc.wrapping_add(4).wrapping_add((offset as i32 as u32) << 2));
        }
        match self {
            Inst::J { target } | Inst::Jal { target } => {
                Some((pc.wrapping_add(4) & 0xF000_0000) | (target << 2))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_is_sll_zero() {
        assert_eq!(crate::encode::encode(Inst::NOP), 0);
    }

    #[test]
    fn control_flow_classification() {
        assert!(Inst::Beq {
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            offset: -1
        }
        .is_control_flow());
        assert!(Inst::Jr { rs: Reg::RA }.is_control_flow());
        assert!(Inst::Bc1t { offset: 2 }.is_control_flow());
        assert!(!Inst::Syscall.is_control_flow());
        assert!(!Inst::Addu {
            rd: Reg::V0,
            rs: Reg::A0,
            rt: Reg::A1
        }
        .is_control_flow());
        assert!(Inst::J { target: 0 }.is_unconditional_jump());
        assert!(Inst::Jr { rs: Reg::RA }.is_unconditional_jump());
        assert!(!Inst::Jal { target: 0 }.is_unconditional_jump());
        assert!(!Inst::Bne {
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            offset: 0
        }
        .is_unconditional_jump());
    }

    #[test]
    fn branch_targets() {
        // A backward branch by 3 instructions from 0x0040_0010 lands on
        // 0x0040_0008: pc + 4 - 12.
        let inst = Inst::Bne {
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            offset: -3,
        };
        assert_eq!(inst.static_target(0x0040_0010), Some(0x0040_0008));
        // Jump targets splice into the current 256 MiB region.
        let jump = Inst::J {
            target: 0x0010_0000 >> 2,
        };
        assert_eq!(jump.static_target(0x0040_0000), Some(0x0010_0000));
        assert_eq!(Inst::Jr { rs: Reg::RA }.static_target(0), None);
    }
}
