//! # imt-isa — a 32-bit MIPS-like instruction set architecture
//!
//! The DATE 2003 paper evaluates its instruction-memory encoding on a
//! SimpleScalar (PISA, MIPS-like) processor model. This crate is the
//! from-scratch substitute: a classic 32-bit RISC ISA with R/I/J instruction
//! formats, a coprocessor-1 double-precision FP unit, a two-pass assembler
//! with the usual pseudo-instructions, and a disassembler.
//!
//! The encoding is deliberately dense and MIPS-I-shaped: the power encoding
//! under study operates on the *bit patterns* of stored instructions, so a
//! realistic field layout (opcode in the top six bits, register numbers in
//! fixed fields, 16-bit immediates at the bottom) is what gives the vertical
//! bit-line sequences their realistic structure.
//!
//! * [`reg`] — integer and floating-point register names.
//! * [`inst`] — the decoded instruction form, one enum variant per opcode.
//! * [`encode`] / [`decode`] — binary instruction words.
//! * [`disasm`] — textual disassembly.
//! * [`asm`] — the two-pass assembler producing a loadable [`Program`].
//! * [`effects`] — architectural read/write sets for dependence analysis.
//!
//! Unlike historical MIPS I, branches and jumps have **no delay slot**
//! (SimpleScalar's PISA made the same choice); the front-end model in
//! `imt-sim` fetches and executes one instruction at a time.
//!
//! ## Quick example
//!
//! ```
//! use imt_isa::asm::assemble;
//!
//! # fn main() -> Result<(), imt_isa::AsmError> {
//! let program = assemble(r#"
//!         .text
//! main:   li   $t0, 7
//!         li   $t1, 35
//!         addu $t2, $t0, $t1
//!         jr   $ra
//! "#)?;
//! assert_eq!(program.text.len(), 4);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod decode;
pub mod disasm;
pub mod effects;
pub mod encode;
pub mod inst;
pub mod reg;

pub mod program;

mod error;

pub use error::{AsmError, DecodeError};
pub use inst::Inst;
pub use program::Program;
pub use reg::{FReg, Reg};
