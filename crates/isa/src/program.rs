//! The loadable program image produced by the assembler.

use std::collections::BTreeMap;

/// Default base address of the text segment (SPIM convention).
pub const TEXT_BASE: u32 = 0x0040_0000;

/// Default base address of the data segment (SPIM convention).
pub const DATA_BASE: u32 = 0x1001_0000;

/// Initial stack pointer handed to programs by the simulator.
pub const STACK_TOP: u32 = 0x7FFF_EFFC;

/// An assembled program: text and data images plus the symbol table.
///
/// ```
/// use imt_isa::asm::assemble;
/// use imt_isa::program::TEXT_BASE;
///
/// # fn main() -> Result<(), imt_isa::AsmError> {
/// let program = assemble(".text\nmain: jr $ra\n");
/// let program = program?;
/// assert_eq!(program.entry, TEXT_BASE);
/// assert_eq!(program.symbols["main"], TEXT_BASE);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Encoded instructions, in address order from `text_base`.
    pub text: Vec<u32>,
    /// Raw data segment bytes, from `data_base`.
    pub data: Vec<u8>,
    /// Address of `text[0]`.
    pub text_base: u32,
    /// Address of `data[0]`.
    pub data_base: u32,
    /// Program entry point: the address of the `main` label if present,
    /// otherwise `text_base`.
    pub entry: u32,
    /// Every label and its address.
    pub symbols: BTreeMap<String, u32>,
    /// 1-based source line of each instruction in `text` (pseudo-expansion
    /// maps all emitted instructions to the pseudo's line).
    pub source_lines: Vec<usize>,
}

impl Program {
    /// The address of the instruction at `text[index]`.
    pub fn address_of_index(&self, index: usize) -> u32 {
        self.text_base + (index as u32) * 4
    }

    /// The `text` index of the instruction at `address`, if it lies inside
    /// the text segment and is word-aligned.
    pub fn index_of_address(&self, address: u32) -> Option<usize> {
        if address < self.text_base || !address.is_multiple_of(4) {
            return None;
        }
        let index = ((address - self.text_base) / 4) as usize;
        (index < self.text.len()).then_some(index)
    }

    /// One past the last text address.
    pub fn text_end(&self) -> u32 {
        self.text_base + (self.text.len() as u32) * 4
    }

    /// Looks up a label address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Program {
        Program {
            text: vec![0, 0, 0],
            data: vec![],
            text_base: TEXT_BASE,
            data_base: DATA_BASE,
            entry: TEXT_BASE,
            symbols: BTreeMap::new(),
            source_lines: vec![1, 2, 3],
        }
    }

    #[test]
    fn address_index_round_trip() {
        let p = tiny();
        assert_eq!(p.address_of_index(2), TEXT_BASE + 8);
        assert_eq!(p.index_of_address(TEXT_BASE + 8), Some(2));
        assert_eq!(p.index_of_address(TEXT_BASE + 12), None); // past end
        assert_eq!(p.index_of_address(TEXT_BASE + 2), None); // unaligned
        assert_eq!(p.index_of_address(0), None); // below base
        assert_eq!(p.text_end(), TEXT_BASE + 12);
    }
}
