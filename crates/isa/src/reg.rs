//! Integer and floating-point register names.

use std::fmt;

/// One of the 32 general-purpose integer registers.
///
/// Register 0 is hardwired to zero, as on MIPS. The conventional ABI names
/// (`$t0`, `$sp`, …) are available through [`Reg::name`] and accepted by the
/// assembler.
///
/// ```
/// use imt_isa::Reg;
///
/// assert_eq!(Reg::ZERO.number(), 0);
/// assert_eq!(Reg::new(8).name(), "$t0");
/// assert_eq!(Reg::from_name("$sp"), Some(Reg::SP));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// `$zero` — hardwired zero.
    pub const ZERO: Reg = Reg(0);
    /// `$at` — assembler temporary, used by pseudo-instruction expansion.
    pub const AT: Reg = Reg(1);
    /// `$v0` — result / syscall number.
    pub const V0: Reg = Reg(2);
    /// `$v1`.
    pub const V1: Reg = Reg(3);
    /// `$a0` — first argument.
    pub const A0: Reg = Reg(4);
    /// `$a1`.
    pub const A1: Reg = Reg(5);
    /// `$a2`.
    pub const A2: Reg = Reg(6);
    /// `$a3`.
    pub const A3: Reg = Reg(7);
    /// `$gp` — global pointer.
    pub const GP: Reg = Reg(28);
    /// `$sp` — stack pointer.
    pub const SP: Reg = Reg(29);
    /// `$fp` — frame pointer.
    pub const FP: Reg = Reg(30);
    /// `$ra` — return address.
    pub const RA: Reg = Reg(31);

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `number >= 32`.
    pub fn new(number: u8) -> Self {
        assert!(number < 32, "integer register number {number} out of range");
        Reg(number)
    }

    /// Creates a register from the low five bits of an instruction field.
    pub(crate) fn from_field(field: u32) -> Self {
        Reg((field & 0x1F) as u8)
    }

    /// The register number, 0–31.
    pub fn number(self) -> u8 {
        self.0
    }

    /// The conventional ABI name (`$zero`, `$t0`, …).
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3", "$t0", "$t1", "$t2", "$t3",
            "$t4", "$t5", "$t6", "$t7", "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
            "$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
        ];
        NAMES[self.0 as usize]
    }

    /// Parses an ABI name (`$t0`), numeric name (`$8`), or bare number
    /// (`8`). Returns `None` for anything else.
    pub fn from_name(name: &str) -> Option<Self> {
        let body = name.strip_prefix('$').unwrap_or(name);
        if let Ok(number) = body.parse::<u8>() {
            return (number < 32).then_some(Reg(number));
        }
        (0u8..32).map(Reg).find(|r| &r.name()[1..] == body)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One of the 32 coprocessor-1 floating-point registers.
///
/// Doubles occupy an even/odd register pair, as on MIPS I: `$f0` names the
/// pair `($f0, $f1)` when used by a double-precision instruction. The
/// assembler rejects odd registers in double-precision contexts.
///
/// ```
/// use imt_isa::FReg;
///
/// assert_eq!(FReg::new(12).name(), "$f12");
/// assert!(FReg::new(12).is_even());
/// assert_eq!(FReg::from_name("$f31"), Some(FReg::new(31)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// `$f0` — conventional FP result register.
    pub const F0: FReg = FReg(0);
    /// `$f12` — conventional first FP argument register.
    pub const F12: FReg = FReg(12);

    /// Creates an FP register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `number >= 32`.
    pub fn new(number: u8) -> Self {
        assert!(number < 32, "fp register number {number} out of range");
        FReg(number)
    }

    /// Creates an FP register from the low five bits of an instruction field.
    pub(crate) fn from_field(field: u32) -> Self {
        FReg((field & 0x1F) as u8)
    }

    /// The register number, 0–31.
    pub fn number(self) -> u8 {
        self.0
    }

    /// Whether this register can anchor a double-precision pair.
    pub fn is_even(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// The register name (`$f0` … `$f31`).
    pub fn name(self) -> String {
        format!("$f{}", self.0)
    }

    /// Parses `$fN` or `fN`. Returns `None` for anything else.
    pub fn from_name(name: &str) -> Option<Self> {
        let body = name.strip_prefix('$').unwrap_or(name);
        let digits = body.strip_prefix('f')?;
        let number: u8 = digits.parse().ok()?;
        (number < 32).then_some(FReg(number))
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for n in 0..32u8 {
            let r = Reg::new(n);
            assert_eq!(Reg::from_name(r.name()), Some(r));
            assert_eq!(Reg::from_name(&format!("${n}")), Some(r));
            let f = FReg::new(n);
            assert_eq!(FReg::from_name(&f.name()), Some(f));
        }
    }

    #[test]
    fn conventional_aliases() {
        assert_eq!(Reg::from_name("$zero"), Some(Reg::ZERO));
        assert_eq!(Reg::from_name("$t0"), Some(Reg::new(8)));
        assert_eq!(Reg::from_name("$t8"), Some(Reg::new(24)));
        assert_eq!(Reg::from_name("$s0"), Some(Reg::new(16)));
        assert_eq!(Reg::from_name("$ra"), Some(Reg::new(31)));
    }

    #[test]
    fn rejects_bad_names() {
        assert_eq!(Reg::from_name("$t10"), None);
        assert_eq!(Reg::from_name("$32"), None);
        assert_eq!(Reg::from_name("nonsense"), None);
        assert_eq!(FReg::from_name("$f32"), None);
        assert_eq!(FReg::from_name("$t0"), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_large_numbers() {
        Reg::new(32);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Reg::SP.to_string(), "$sp");
        assert_eq!(FReg::F12.to_string(), "$f12");
    }
}
