//! Three additional DSP/embedded kernels beyond the paper's six.
//!
//! The paper's intro motivates the technique with "numerical and DSP
//! codes" generally; these kernels probe generality on shapes the original
//! six do not cover:
//!
//! * [`fir`] — a direct-form FIR filter: the archetypal DSP inner loop
//!   (multiply–accumulate over a sliding window);
//! * [`dct`] — 8×8 two-dimensional DCT-II with a cosine ROM, the heart of
//!   JPEG/MPEG-era embedded media code;
//! * [`crc32`] — bitwise CRC-32 over a buffer: a pure-integer, branchy
//!   inner loop (no FP at all), the adversarial case for a technique tuned
//!   on regular numeric code.
//!
//! Same validation contract as the main suite: inputs from the shared
//! [`crate::lcg`] generator, a checksum printed on exit, and a host golden
//! model with bit-identical operation order.

use crate::lcg::Lcg;
use crate::sources::{epilogue, fill_array, lcg_prologue, lcg_step, sum_array, zero_double};
use crate::KernelSpec;

/// The extra kernels, analogous to [`crate::Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtraKernel {
    /// Direct-form FIR filter.
    Fir,
    /// 8×8 two-dimensional DCT-II.
    Dct,
    /// Bitwise CRC-32.
    Crc32,
}

impl ExtraKernel {
    /// All extra kernels.
    pub const ALL: [ExtraKernel; 3] = [ExtraKernel::Fir, ExtraKernel::Dct, ExtraKernel::Crc32];

    /// Short name.
    pub fn name(self) -> &'static str {
        match self {
            ExtraKernel::Fir => "fir",
            ExtraKernel::Dct => "dct",
            ExtraKernel::Crc32 => "crc32",
        }
    }

    /// A realistically sized instance.
    pub fn paper_spec(self) -> KernelSpec {
        match self {
            ExtraKernel::Fir => fir(64, 4096),
            ExtraKernel::Dct => dct(64),
            ExtraKernel::Crc32 => crc32(16384),
        }
    }

    /// A small instance for tests.
    pub fn test_spec(self) -> KernelSpec {
        match self {
            ExtraKernel::Fir => fir(8, 64),
            ExtraKernel::Dct => dct(2),
            ExtraKernel::Crc32 => crc32(128),
        }
    }
}

impl std::fmt::Display for ExtraKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Direct-form FIR: `out[i] = Σⱼ coeff[j] · sample[i + j]` for
/// `i < samples − taps`, checksummed.
pub fn fir(taps: usize, samples: usize) -> KernelSpec {
    assert!(
        taps >= 2 && samples > taps,
        "fir needs taps >= 2 and samples > taps"
    );
    let outputs = samples - taps;
    let source = format!(
        r#"# fir: {taps}-tap direct-form FIR over {samples} samples
        .data
        .align 3
COEF:   .space {coef_bytes}
SAMP:   .space {samp_bytes}
OUT:    .space {out_bytes}
        .text
main:
{prologue}{fill_coef}{fill_samp}
        li    $s0, {outputs}       # output count
        li    $s1, 0               # i
        la    $s2, OUT
f_i:    la    $t0, COEF
        sll   $t1, $s1, 3
        la    $t2, SAMP
        addu  $t1, $t1, $t2        # &samp[i]
        li    $t3, {taps}
{zero_f4}f_j:    ldc1  $f2, 0($t0)
        ldc1  $f6, 0($t1)
        mul.d $f8, $f2, $f6
        add.d $f4, $f4, $f8
        addiu $t0, $t0, 8
        addiu $t1, $t1, 8
        addiu $t3, $t3, -1
        bgtz  $t3, f_j
        sdc1  $f4, 0($s2)
        addiu $s2, $s2, 8
        addiu $s1, $s1, 1
        blt   $s1, $s0, f_i
{zero_f12}{sum_out}{epilogue}"#,
        coef_bytes = taps * 8,
        samp_bytes = samples * 8,
        out_bytes = outputs * 8,
        prologue = lcg_prologue(),
        fill_coef = fill_array("coef", "COEF", taps),
        fill_samp = fill_array("samp", "SAMP", samples),
        zero_f4 = zero_double("$f4", "$f5"),
        zero_f12 = zero_double("$f12", "$f13"),
        sum_out = sum_array("out", "OUT", outputs),
        epilogue = epilogue(),
    );
    KernelSpec {
        name: format!("fir-{taps}x{samples}"),
        source,
        max_steps: (20 * taps * outputs + 40 * (taps + samples) + 10_000) as u64,
        expected_output: golden_fir(taps, samples),
    }
}

fn golden_fir(taps: usize, samples: usize) -> String {
    let mut lcg = Lcg::new();
    let coeff: Vec<f64> = (0..taps).map(|_| lcg.next_value()).collect();
    let samp: Vec<f64> = (0..samples).map(|_| lcg.next_value()).collect();
    let outputs = samples - taps;
    let mut sum = 0.0f64;
    let mut outs = Vec::with_capacity(outputs);
    for i in 0..outputs {
        let mut acc = 0.0f64;
        for j in 0..taps {
            acc += coeff[j] * samp[i + j];
        }
        outs.push(acc);
    }
    for v in &outs {
        sum += v;
    }
    format!("{sum:.6}\n")
}

/// The 8×8 DCT-II basis matrix `C[u][x] = c(u)/2 · cos((2x+1)uπ/16)`.
pub fn dct_basis() -> [[f64; 8]; 8] {
    let mut c = [[0.0f64; 8]; 8];
    for (u, row) in c.iter_mut().enumerate() {
        let scale = if u == 0 { (0.125f64).sqrt() } else { 0.5 };
        for (x, cell) in row.iter_mut().enumerate() {
            *cell = scale * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos();
        }
    }
    c
}

/// 2-D 8×8 DCT-II over `blocks` consecutive pixel blocks: `Y = C·X·Cᵀ`
/// computed as two 1-D passes through a temporary, checksummed over all
/// coefficients.
pub fn dct(blocks: usize) -> KernelSpec {
    assert!(blocks >= 1, "dct needs at least one block");
    let basis = dct_basis();
    let basis_rows: String = basis
        .iter()
        .map(|row| {
            let items: Vec<String> = row.iter().map(|v| format!("{v:?}")).collect();
            format!("        .double {}\n", items.join(", "))
        })
        .collect();
    let pixels = blocks * 64;
    let source = format!(
        r#"# dct: 2-D 8x8 DCT-II over {blocks} blocks, cosine ROM in .data
        .data
        .align 3
CMAT:
{basis_rows}X:      .space {pix_bytes}
TMP:    .space 512
Y:      .space {pix_bytes}
        .text
main:
{prologue}{fill_x}
        li    $s0, {blocks}
        li    $s1, 0               # block index
d_blk:  sll   $s2, $s1, 9         # byte offset of this block (x512)
        # ---- pass 1: TMP = C * X  (tmp[u][x] = sum_k c[u][k]*X[k][x]) ----
        li    $s3, 0               # u
d1_u:   li    $s4, 0               # x (column)
d1_x:
{zero_f4}        sll   $t0, $s3, 6
        la    $t1, CMAT
        addu  $t0, $t0, $t1        # &c[u][0]
        la    $t1, X
        addu  $t1, $t1, $s2
        sll   $t2, $s4, 3
        addu  $t1, $t1, $t2        # &X[0][x]
        li    $t3, 8
d1_k:   ldc1  $f2, 0($t0)
        ldc1  $f6, 0($t1)
        mul.d $f8, $f2, $f6
        add.d $f4, $f4, $f8
        addiu $t0, $t0, 8
        addiu $t1, $t1, 64
        addiu $t3, $t3, -1
        bgtz  $t3, d1_k
        sll   $t4, $s3, 6
        la    $t5, TMP
        addu  $t4, $t4, $t5
        sll   $t6, $s4, 3
        addu  $t4, $t4, $t6
        sdc1  $f4, 0($t4)          # tmp[u][x]
        addiu $s4, $s4, 1
        li    $t7, 8
        blt   $s4, $t7, d1_x
        addiu $s3, $s3, 1
        li    $t7, 8
        blt   $s3, $t7, d1_u
        # ---- pass 2: Y = TMP * C^T  (y[u][v] = sum_k tmp[u][k]*c[v][k]) ----
        li    $s3, 0               # u
d2_u:   li    $s4, 0               # v
d2_v:
{zero_f4_2}        sll   $t0, $s3, 6
        la    $t1, TMP
        addu  $t0, $t0, $t1        # &tmp[u][0]
        sll   $t1, $s4, 6
        la    $t2, CMAT
        addu  $t1, $t1, $t2        # &c[v][0]
        li    $t3, 8
d2_k:   ldc1  $f2, 0($t0)
        ldc1  $f6, 0($t1)
        mul.d $f8, $f2, $f6
        add.d $f4, $f4, $f8
        addiu $t0, $t0, 8
        addiu $t1, $t1, 8
        addiu $t3, $t3, -1
        bgtz  $t3, d2_k
        sll   $t4, $s3, 6
        la    $t5, Y
        addu  $t4, $t4, $t5
        addu  $t4, $t4, $s2
        sll   $t6, $s4, 3
        addu  $t4, $t4, $t6
        sdc1  $f4, 0($t4)          # y[u][v]
        addiu $s4, $s4, 1
        li    $t7, 8
        blt   $s4, $t7, d2_v
        addiu $s3, $s3, 1
        li    $t7, 8
        blt   $s3, $t7, d2_u
        addiu $s1, $s1, 1
        blt   $s1, $s0, d_blk
{zero_f12}{sum_y}{epilogue}"#,
        pix_bytes = pixels * 8,
        prologue = lcg_prologue(),
        fill_x = fill_array("x", "X", pixels),
        zero_f4 = zero_double("$f4", "$f5"),
        zero_f4_2 = zero_double("$f4", "$f5"),
        zero_f12 = zero_double("$f12", "$f13"),
        sum_y = sum_array("y", "Y", pixels),
        epilogue = epilogue(),
    );
    KernelSpec {
        name: format!("dct-{blocks}"),
        source,
        max_steps: (3000 * 64 * blocks + 40 * pixels + 10_000) as u64,
        expected_output: golden_dct(blocks),
    }
}

fn golden_dct(blocks: usize) -> String {
    let basis = dct_basis();
    let mut lcg = Lcg::new();
    let pixels: Vec<f64> = (0..blocks * 64).map(|_| lcg.next_value()).collect();
    let mut sum = 0.0f64;
    let mut out = vec![0.0f64; blocks * 64];
    for b in 0..blocks {
        let x = &pixels[b * 64..(b + 1) * 64];
        let mut tmp = [0.0f64; 64];
        for u in 0..8 {
            for col in 0..8 {
                let mut acc = 0.0f64;
                for k in 0..8 {
                    acc += basis[u][k] * x[k * 8 + col];
                }
                tmp[u * 8 + col] = acc;
            }
        }
        for u in 0..8 {
            for v in 0..8 {
                let mut acc = 0.0f64;
                for k in 0..8 {
                    acc += tmp[u * 8 + k] * basis[v][k];
                }
                out[b * 64 + u * 8 + v] = acc;
            }
        }
    }
    for v in &out {
        sum += v;
    }
    format!("{sum:.6}\n")
}

/// Bitwise (table-free) CRC-32 over `bytes` LCG-generated bytes, printing
/// the final CRC as a signed integer.
pub fn crc32(bytes: usize) -> KernelSpec {
    assert!(bytes >= 1, "crc32 needs at least one byte");
    let source = format!(
        r#"# crc32: bitwise CRC-32 (poly 0xEDB88320) over {bytes} bytes
        .data
BUF:    .space {bytes}
        .text
main:
{prologue}        # fill the buffer with LCG bytes
        la    $t0, BUF
        li    $t1, {bytes}
c_fill:
{step}        sb    $t8, 0($t0)
        addiu $t0, $t0, 1
        addiu $t1, $t1, -1
        bgtz  $t1, c_fill
        # crc loop
        li    $s0, -1              # crc = 0xFFFFFFFF
        li    $s1, 0xEDB88320
        la    $t0, BUF
        li    $t1, {bytes}
c_byte: lbu   $t2, 0($t0)
        xor   $s0, $s0, $t2
        li    $t3, 8
c_bit:  andi  $t4, $s0, 1
        srl   $s0, $s0, 1
        beq   $t4, $zero, c_skip
        xor   $s0, $s0, $s1
c_skip: addiu $t3, $t3, -1
        bgtz  $t3, c_bit
        addiu $t0, $t0, 1
        addiu $t1, $t1, -1
        bgtz  $t1, c_byte
        nor   $a0, $s0, $zero      # final complement
        li    $v0, 1
        syscall
        li    $v0, 11
        li    $a0, 10
        syscall
        li    $v0, 10
        syscall
"#,
        prologue = lcg_prologue(),
        step = lcg_step(),
    );
    KernelSpec {
        name: format!("crc32-{bytes}"),
        source,
        max_steps: (60 * bytes + 10_000) as u64,
        expected_output: golden_crc32(bytes),
    }
}

fn golden_crc32(bytes: usize) -> String {
    let mut lcg = Lcg::new();
    let buffer: Vec<u8> = (0..bytes).map(|_| lcg.next_int() as u8).collect();
    let mut crc = u32::MAX;
    for &byte in &buffer {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    format!("{}\n", !crc as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra_kernels_match_their_golden_models() {
        for kernel in ExtraKernel::ALL {
            let spec = kernel.test_spec();
            let run = spec.run().unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(run.stdout, spec.expected_output, "{}", spec.name);
        }
    }

    #[test]
    fn dct_basis_is_orthonormal() {
        let c = dct_basis();
        for u in 0..8 {
            for v in 0..8 {
                let dot: f64 = (0..8).map(|k| c[u][k] * c[v][k]).sum();
                let expected = if u == v { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-12, "({u},{v}): {dot}");
            }
        }
    }

    #[test]
    fn crc32_matches_a_known_vector() {
        // Independent check of the golden model's CRC core against the
        // well-known value for "123456789".
        let mut crc = u32::MAX;
        for &byte in b"123456789" {
            crc ^= u32::from(byte);
            for _ in 0..8 {
                let lsb = crc & 1;
                crc >>= 1;
                if lsb != 0 {
                    crc ^= 0xEDB8_8320;
                }
            }
        }
        assert_eq!(!crc, 0xCBF4_3926);
    }

    #[test]
    fn names_and_specs() {
        assert_eq!(ExtraKernel::Fir.name(), "fir");
        assert_eq!(ExtraKernel::Dct.to_string(), "dct");
        for kernel in ExtraKernel::ALL {
            assert!(kernel.paper_spec().source.len() > kernel.test_spec().source.len() / 2);
        }
    }
}
