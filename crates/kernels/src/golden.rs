//! Host reference implementations of the six kernels.
//!
//! Each function performs *exactly* the floating-point operations of its
//! assembly twin in [`crate::sources`], in the same order, on the same
//! LCG-generated inputs. IEEE-754 double arithmetic is deterministic, so
//! the checksums match bit for bit, and the expected output is the same
//! `format!("{:.6}\n", checksum)` string the simulated `print_double`
//! syscall produces.

use crate::lcg::Lcg;

fn render(checksum: f64) -> String {
    format!("{checksum:.6}\n")
}

/// Expected output of [`crate::sources::mmul`].
pub fn mmul(n: usize) -> String {
    let mut lcg = Lcg::new();
    let a: Vec<f64> = (0..n * n).map(|_| lcg.next_value()).collect();
    let b: Vec<f64> = (0..n * n).map(|_| lcg.next_value()).collect();
    let mut c = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut sum = 0.0f64;
            for k in 0..n {
                sum += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = sum;
        }
    }
    render(c.iter().sum())
}

/// Expected output of [`crate::sources::sor`].
pub fn sor(n: usize, sweeps: usize) -> String {
    let mut lcg = Lcg::new();
    let mut u: Vec<f64> = (0..n * n).map(|_| lcg.next_value()).collect();
    for _ in 0..sweeps {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let c = u[i * n + j];
                let vertical = u[(i - 1) * n + j] + u[(i + 1) * n + j];
                let horizontal = u[i * n + j - 1] + u[i * n + j + 1];
                let neighbours = vertical + horizontal;
                let residual = neighbours - c * 4.0;
                u[i * n + j] = c + residual * 0.375;
            }
        }
    }
    render(u.iter().sum())
}

/// Expected output of [`crate::sources::ej`].
pub fn ej(n: usize, iters: usize) -> String {
    let mut lcg = Lcg::new();
    let mut u: Vec<f64> = (0..n * n).map(|_| lcg.next_value()).collect();
    let mut v = u.clone();
    for _ in 0..iters {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let c = u[i * n + j];
                let vertical = u[(i - 1) * n + j] + u[(i + 1) * n + j];
                let horizontal = u[i * n + j - 1] + u[i * n + j + 1];
                let neighbours = vertical + horizontal;
                let average = neighbours * 0.25;
                let correction = average - c;
                v[i * n + j] = c + correction * 1.25;
            }
        }
        std::mem::swap(&mut u, &mut v);
    }
    render(u.iter().sum())
}

/// The twiddle-factor tables (`cos`, `sin` of `-2πj/n` for
/// `j = 0..n/2`) shared by the FFT kernel's ROM and the golden model.
pub fn fft_twiddles(n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut wre = Vec::with_capacity(n / 2);
    let mut wim = Vec::with_capacity(n / 2);
    for j in 0..n / 2 {
        let angle = -2.0 * std::f64::consts::PI * j as f64 / n as f64;
        wre.push(angle.cos());
        wim.push(angle.sin());
    }
    (wre, wim)
}

/// Expected output of [`crate::sources::fft`].
pub fn fft(log2n: usize) -> String {
    let n = 1usize << log2n;
    let (wre, wim) = fft_twiddles(n);
    let mut lcg = Lcg::new();
    let mut re: Vec<f64> = (0..n).map(|_| lcg.next_value()).collect();
    let mut im: Vec<f64> = (0..n).map(|_| lcg.next_value()).collect();

    // Bit-reverse permutation (identical control structure to the asm).
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j ^= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }

    // Butterfly stages.
    let mut len = 2usize;
    while len <= n {
        let half = len / 2;
        let step = n / len;
        let mut i = 0usize;
        while i < n {
            for j in 0..half {
                let idx = j * step;
                let wr = wre[idx];
                let wi = wim[idx];
                let p = i + j;
                let q = p + half;
                let tr = re[q] * wr - im[q] * wi;
                let ti = re[q] * wi + im[q] * wr;
                let rp = re[p];
                let ip = im[p];
                re[q] = rp - tr;
                im[q] = ip - ti;
                re[p] = rp + tr;
                im[p] = ip + ti;
            }
            i += len;
        }
        len <<= 1;
    }

    let mut sum = 0.0f64;
    for value in &re {
        sum += value;
    }
    for value in &im {
        sum += value;
    }
    render(sum)
}

/// Expected output of [`crate::sources::tri`].
pub fn tri(n: usize, reps: usize) -> String {
    let mut lcg = Lcg::new();
    let mut total = 0.0f64;
    for _ in 0..reps {
        let mut a = vec![0.0f64; n];
        let mut b = vec![0.0f64; n];
        let mut c = vec![0.0f64; n];
        let mut d = vec![0.0f64; n];
        for i in 0..n {
            a[i] = lcg.next_value();
            b[i] = lcg.next_diagonal();
            c[i] = lcg.next_value();
            d[i] = lcg.next_value();
        }
        // Forward elimination.
        for i in 1..n {
            let m = a[i] / b[i - 1];
            b[i] -= m * c[i - 1];
            d[i] -= m * d[i - 1];
        }
        // Back substitution.
        let mut x = vec![0.0f64; n];
        x[n - 1] = d[n - 1] / b[n - 1];
        for i in (0..n - 1).rev() {
            let t = c[i] * x[i + 1];
            x[i] = (d[i] - t) / b[i];
        }
        let mut sum = 0.0f64;
        for value in &x {
            sum += value;
        }
        total += sum;
    }
    render(total)
}

/// Expected output of [`crate::sources::lu`].
pub fn lu(n: usize) -> String {
    let mut lcg = Lcg::new();
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = if i == j {
                lcg.next_diagonal()
            } else {
                lcg.next_value()
            };
        }
    }
    for k in 0..n {
        let pivot = a[k * n + k];
        for i in k + 1..n {
            let m = a[i * n + k] / pivot;
            a[i * n + k] = m;
            for j in k + 1..n {
                let t = m * a[k * n + j];
                a[i * n + j] -= t;
            }
        }
    }
    render(a.iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_are_deterministic() {
        assert_eq!(mmul(6), mmul(6));
        assert_eq!(fft(4), fft(4));
        assert_eq!(tri(8, 2), tri(8, 2));
    }

    #[test]
    fn outputs_end_with_newline_and_six_decimals() {
        for out in [mmul(4), sor(4, 1), ej(4, 1), fft(3), tri(4, 1), lu(4)] {
            assert!(out.ends_with('\n'));
            let body = out.trim_end();
            let dot = body.find('.').expect("decimal point");
            assert_eq!(body.len() - dot - 1, 6, "{body}");
        }
    }

    #[test]
    fn fft_twiddle_identities() {
        let (wre, wim) = fft_twiddles(8);
        assert_eq!(wre[0], 1.0);
        assert_eq!(wim[0], 0.0);
        // w_2 of an 8-point FFT is -i: cos = ~0, sin = -1.
        assert!(wre[2].abs() < 1e-15);
        assert!((wim[2] + 1.0).abs() < 1e-15);
    }

    #[test]
    fn fft_of_constant_concentrates_in_bin_zero() {
        // Independent sanity of the butterfly code itself: a DC input has
        // all its energy in re[0] = n * value.
        let n = 8;
        let (wre, wim) = fft_twiddles(n);
        let mut re = vec![3.0f64; n];
        let mut im = vec![0.0f64; n];
        // (Inline the same loops as `fft`, on a fixed input.)
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j ^= bit;
            if i < j {
                re.swap(i, j);
                im.swap(i, j);
            }
        }
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            let mut i = 0usize;
            while i < n {
                for j in 0..half {
                    let idx = j * step;
                    let (wr, wi) = (wre[idx], wim[idx]);
                    let (p, q) = (i + j, i + j + half);
                    let tr = re[q] * wr - im[q] * wi;
                    let ti = re[q] * wi + im[q] * wr;
                    let (rp, ip) = (re[p], im[p]);
                    re[q] = rp - tr;
                    im[q] = ip - ti;
                    re[p] = rp + tr;
                    im[p] = ip + ti;
                }
                i += len;
            }
            len <<= 1;
        }
        assert!((re[0] - 24.0).abs() < 1e-12);
        for k in 1..n {
            assert!(re[k].abs() < 1e-12 && im[k].abs() < 1e-12, "bin {k}");
        }
    }

    #[test]
    fn tri_solves_the_system() {
        // Independent check: reconstruct A·x and compare with d.
        let n = 6;
        let mut lcg = Lcg::new();
        let mut a = vec![0.0f64; n];
        let mut b = vec![0.0f64; n];
        let mut c = vec![0.0f64; n];
        let mut d = vec![0.0f64; n];
        for i in 0..n {
            a[i] = lcg.next_value();
            b[i] = lcg.next_diagonal();
            c[i] = lcg.next_value();
            d[i] = lcg.next_value();
        }
        let (a0, b0, c0, d0) = (a.clone(), b.clone(), c.clone(), d.clone());
        for i in 1..n {
            let m = a[i] / b[i - 1];
            b[i] -= m * c[i - 1];
            d[i] -= m * d[i - 1];
        }
        let mut x = vec![0.0f64; n];
        x[n - 1] = d[n - 1] / b[n - 1];
        for i in (0..n - 1).rev() {
            x[i] = (d[i] - c[i] * x[i + 1]) / b[i];
        }
        for i in 0..n {
            let mut lhs = b0[i] * x[i];
            if i > 0 {
                lhs += a0[i] * x[i - 1];
            }
            if i < n - 1 {
                lhs += c0[i] * x[i + 1];
            }
            assert!((lhs - d0[i]).abs() < 1e-6, "row {i}: {lhs} vs {}", d0[i]);
        }
    }

    #[test]
    fn lu_reconstructs_the_matrix() {
        // L·U must reproduce the original (diagonally dominant) matrix.
        let n = 5;
        let mut lcg = Lcg::new();
        let mut original = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                original[i * n + j] = if i == j {
                    lcg.next_diagonal()
                } else {
                    lcg.next_value()
                };
            }
        }
        let mut a = original.clone();
        for k in 0..n {
            let pivot = a[k * n + k];
            for i in k + 1..n {
                let m = a[i * n + k] / pivot;
                a[i * n + k] = m;
                for j in k + 1..n {
                    a[i * n + j] -= m * a[k * n + j];
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { a[i * n + k] };
                    let u = a[k * n + j];
                    if k < i && k > j {
                        continue;
                    }
                    sum += l * u;
                }
                assert!(
                    (sum - original[i * n + j]).abs() < 1e-6,
                    "({i},{j}): {sum} vs {}",
                    original[i * n + j]
                );
            }
        }
    }
}
