//! The deterministic input generator shared by the assembly kernels and
//! their host golden models.
//!
//! Both sides step the same 32-bit linear congruential generator
//! (`x ← 1103515245·x + 12345`, the classic `rand(3)` multiplier) with
//! identical wrapping semantics: the assembly uses `mul` (low 32 bits of
//! the product) and `addiu`, the host uses `wrapping_mul`/`wrapping_add`.
//! Values are mapped to small positive integers and converted to `f64`
//! exactly, so every generated input is bit-identical on both sides.

/// The LCG multiplier (`rand(3)`'s ANSI constant).
pub const MULTIPLIER: u32 = 1_103_515_245;

/// The LCG increment.
pub const INCREMENT: u32 = 12_345;

/// The seed every kernel starts from.
pub const SEED: u32 = 2003;

/// Offset added to diagonal entries by `tri` and `lu` to guarantee
/// diagonal dominance (no pivoting needed, bounded error growth).
pub const DIAGONAL_BOOST: i32 = 8192;

/// A host-side copy of the in-simulator generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lcg {
    state: u32,
}

impl Default for Lcg {
    fn default() -> Self {
        Self::new()
    }
}

impl Lcg {
    /// Starts from [`SEED`], like every kernel.
    pub fn new() -> Self {
        Lcg { state: SEED }
    }

    /// Starts from an explicit state.
    pub fn with_seed(seed: u32) -> Self {
        Lcg { state: seed }
    }

    /// Advances the generator and returns the raw 11-bit draw
    /// `((x >> 16) & 0x3FF) + 1`, i.e. an integer in `1..=1024`.
    ///
    /// The assembly twin is:
    ///
    /// ```text
    /// mul   $s7, $s7, 1103515245   # (li into a scratch register first)
    /// addiu $s7, $s7, 12345
    /// srl   $t8, $s7, 16
    /// andi  $t8, $t8, 0x3ff
    /// addiu $t8, $t8, 1
    /// ```
    pub fn next_int(&mut self) -> i32 {
        self.state = self.state.wrapping_mul(MULTIPLIER).wrapping_add(INCREMENT);
        ((self.state >> 16) & 0x3FF) as i32 + 1
    }

    /// The next input value as the kernels consume it: the integer draw
    /// converted exactly to `f64` (matching `mtc1` + `cvt.d.w`).
    pub fn next_value(&mut self) -> f64 {
        f64::from(self.next_int())
    }

    /// The next *diagonal* value: draw plus [`DIAGONAL_BOOST`], converted
    /// to `f64`.
    pub fn next_diagonal(&mut self) -> f64 {
        f64::from(self.next_int() + DIAGONAL_BOOST)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_is_deterministic_and_in_range() {
        let mut a = Lcg::new();
        let mut b = Lcg::new();
        for _ in 0..1000 {
            let v = a.next_int();
            assert_eq!(v, b.next_int());
            assert!((1..=1024).contains(&v));
        }
    }

    #[test]
    fn first_draws_are_pinned() {
        // Regression pin: if these change, every kernel's expected output
        // changes with them.
        let mut lcg = Lcg::new();
        let first: Vec<i32> = (0..4).map(|_| lcg.next_int()).collect();
        assert_eq!(first, [664, 539, 720, 826]);
    }

    #[test]
    fn diagonal_boost_dominates() {
        let mut lcg = Lcg::new();
        for _ in 0..100 {
            assert!(lcg.next_diagonal() > 8192.0);
        }
    }

    #[test]
    fn values_convert_exactly() {
        let mut lcg = Lcg::with_seed(7);
        let i = lcg.next_int();
        let mut again = Lcg::with_seed(7);
        assert_eq!(again.next_value(), f64::from(i));
    }
}
