//! Assembly source generators for the six kernels.
//!
//! Each generator returns a [`KernelSpec`] whose `source` is a complete
//! assembly program and whose `expected_output` comes from the matching
//! [`crate::golden`] model. The floating-point **operation order** in the
//! assembly and in the golden model is kept identical statement for
//! statement — IEEE-754 doubles then guarantee bit-equal results, so the
//! printed checksums compare with `==`.
//!
//! Conventions shared by all kernels:
//!
//! * `$s6` holds the LCG multiplier, `$s7` the LCG state (see
//!   [`crate::lcg`]); the generator may be re-used mid-program as long as
//!   `$s7` is preserved.
//! * `$f20` is never clobbered by helpers and may hold a long-lived
//!   accumulator.
//! * Every kernel ends by printing its checksum from `$f12` (`print_double`
//!   syscall), a newline, then exiting.

use crate::golden;
use crate::lcg;
use crate::KernelSpec;

/// Emits the standard prologue: load the LCG constants.
pub(crate) fn lcg_prologue() -> String {
    format!(
        "        li   $s6, {}\n        li   $s7, {}\n",
        lcg::MULTIPLIER,
        lcg::SEED
    )
}

/// Emits one LCG step leaving the draw (an integer in 1..=1024) in `$t8`.
pub(crate) fn lcg_step() -> &'static str {
    "        mul   $s7, $s7, $s6\n\
     \x20       addiu $s7, $s7, 12345\n\
     \x20       srl   $t8, $s7, 16\n\
     \x20       andi  $t8, $t8, 0x3ff\n\
     \x20       addiu $t8, $t8, 1\n"
}

/// Emits the conversion of the `$t8` draw into the double register `freg`
/// (which must be even), via `$f0`.
pub(crate) fn draw_to_double(freg: &str) -> String {
    format!("        mtc1  $t8, $f0\n        cvt.d.w {freg}, $f0\n")
}

/// Emits a loop filling `count` doubles at label `array` with LCG values.
/// Clobbers `$t0`, `$t1`, `$t8`, `$f0`, `$f2`. `tag` uniquifies labels.
pub(crate) fn fill_array(tag: &str, array: &str, count: usize) -> String {
    format!(
        "        la    $t0, {array}\n\
         \x20       li    $t1, {count}\n\
         fill_{tag}:\n\
         {step}{conv}\
         \x20       sdc1  $f2, 0($t0)\n\
         \x20       addiu $t0, $t0, 8\n\
         \x20       addiu $t1, $t1, -1\n\
         \x20       bgtz  $t1, fill_{tag}\n",
        step = lcg_step(),
        conv = draw_to_double("$f2"),
    )
}

/// Emits a loop summing `count` doubles at `array` into `$f12`
/// (accumulating onto its current value). Clobbers `$t0`, `$t1`, `$f2`.
pub(crate) fn sum_array(tag: &str, array: &str, count: usize) -> String {
    format!(
        "        la    $t0, {array}\n\
         \x20       li    $t1, {count}\n\
         sum_{tag}:\n\
         \x20       ldc1  $f2, 0($t0)\n\
         \x20       add.d $f12, $f12, $f2\n\
         \x20       addiu $t0, $t0, 8\n\
         \x20       addiu $t1, $t1, -1\n\
         \x20       bgtz  $t1, sum_{tag}\n",
    )
}

/// Emits "zero the double register `freg`" (freg must be even; `fodd` is
/// its odd pair).
pub(crate) fn zero_double(freg: &str, fodd: &str) -> String {
    format!("        mtc1  $zero, {freg}\n        mtc1  $zero, {fodd}\n")
}

/// Emits the epilogue: print `$f12` as a double, newline, exit.
pub(crate) fn epilogue() -> &'static str {
    "        li    $v0, 3\n\
     \x20       syscall\n\
     \x20       li    $v0, 11\n\
     \x20       li    $a0, 10\n\
     \x20       syscall\n\
     \x20       li    $v0, 10\n\
     \x20       syscall\n"
}

/// Matrix multiplication `C = A·B` of `n×n` doubles (paper: `n = 100`).
pub fn mmul(n: usize) -> KernelSpec {
    assert!(n >= 2, "mmul needs n >= 2");
    let nn = n * n;
    let source = format!(
        r#"# mmul: C = A * B on {n}x{n} doubles
        .data
        .align 3
A:      .space {bytes}
B:      .space {bytes}
C:      .space {bytes}
        .text
main:
{prologue}{fill_a}{fill_b}
        li    $s0, {n}
        sll   $s5, $s0, 3          # row stride in bytes
        li    $s1, 0               # i
mm_i:   li    $s2, 0               # j
mm_j:
{zero_f4}        mul   $t0, $s1, $s5
        la    $t3, A
        addu  $t0, $t0, $t3        # &A[i][0]
        la    $t3, B
        sll   $t4, $s2, 3
        addu  $t1, $t3, $t4        # &B[0][j]
        li    $s3, 0               # k
mm_k:   ldc1  $f2, 0($t0)
        ldc1  $f6, 0($t1)
        mul.d $f8, $f2, $f6
        add.d $f4, $f4, $f8
        addiu $t0, $t0, 8
        addu  $t1, $t1, $s5
        addiu $s3, $s3, 1
        blt   $s3, $s0, mm_k
        mul   $t5, $s1, $s5
        la    $t3, C
        addu  $t5, $t5, $t3
        sll   $t6, $s2, 3
        addu  $t5, $t5, $t6
        sdc1  $f4, 0($t5)          # C[i][j]
        addiu $s2, $s2, 1
        blt   $s2, $s0, mm_j
        addiu $s1, $s1, 1
        blt   $s1, $s0, mm_i
{zero_f12}{sum_c}{epilogue}"#,
        bytes = nn * 8,
        prologue = lcg_prologue(),
        fill_a = fill_array("a", "A", nn),
        fill_b = fill_array("b", "B", nn),
        zero_f4 = zero_double("$f4", "$f5"),
        zero_f12 = zero_double("$f12", "$f13"),
        sum_c = sum_array("c", "C", nn),
        epilogue = epilogue(),
    );
    KernelSpec {
        name: format!("mmul-{n}"),
        source,
        max_steps: (20 * nn * n + 40 * nn + 10_000) as u64,
        expected_output: golden::mmul(n),
    }
}

/// Successive over-relaxation with ω = 1.5 on an `n×n` grid, `sweeps`
/// in-place Gauss–Seidel sweeps (paper: `n = 256`).
pub fn sor(n: usize, sweeps: usize) -> KernelSpec {
    assert!(n >= 3 && sweeps >= 1, "sor needs n >= 3 and sweeps >= 1");
    let nn = n * n;
    let source = format!(
        r#"# sor: {sweeps} SOR sweeps (omega = 1.5) on a {n}x{n} grid
        .data
        .align 3
four:   .double 4.0
factor: .double 0.375              # omega / 4
U:      .space {bytes}
        .text
main:
{prologue}{fill_u}
        li    $s0, {n}
        sll   $s5, $s0, 3          # row stride
        addiu $s3, $s0, -1         # n - 1
        li    $s4, {sweeps}
        la    $t0, four
        ldc1  $f28, 0($t0)
        la    $t0, factor
        ldc1  $f30, 0($t0)
sweep:  li    $s1, 1               # i
so_i:   li    $s2, 1               # j
        mul   $t0, $s1, $s5
        la    $t3, U
        addu  $t0, $t0, $t3
        addiu $t0, $t0, 8          # &U[i][1]
so_j:   ldc1  $f2, 0($t0)          # c
        subu  $t4, $t0, $s5
        ldc1  $f4, 0($t4)          # up
        addu  $t4, $t0, $s5
        ldc1  $f6, 0($t4)          # down
        ldc1  $f8, -8($t0)         # left
        ldc1  $f10, 8($t0)         # right
        add.d $f4, $f4, $f6        # up + down
        add.d $f8, $f8, $f10       # left + right
        add.d $f4, $f4, $f8        # neighbour sum
        mul.d $f6, $f2, $f28       # 4c
        sub.d $f4, $f4, $f6        # residual
        mul.d $f4, $f4, $f30       # (omega/4) * residual
        add.d $f2, $f2, $f4
        sdc1  $f2, 0($t0)
        addiu $t0, $t0, 8
        addiu $s2, $s2, 1
        blt   $s2, $s3, so_j
        addiu $s1, $s1, 1
        blt   $s1, $s3, so_i
        addiu $s4, $s4, -1
        bgtz  $s4, sweep
{zero_f12}{sum_u}{epilogue}"#,
        bytes = nn * 8,
        prologue = lcg_prologue(),
        fill_u = fill_array("u", "U", nn),
        zero_f12 = zero_double("$f12", "$f13"),
        sum_u = sum_array("u", "U", nn),
        epilogue = epilogue(),
    );
    KernelSpec {
        name: format!("sor-{n}x{sweeps}"),
        source,
        max_steps: (30 * nn * sweeps + 40 * nn + 10_000) as u64,
        expected_output: golden::sor(n, sweeps),
    }
}

/// Extrapolated Jacobi iteration with ω = 1.25 on an `n×n` grid for
/// `iters` sweeps, ping-ponging between two arrays (paper: `n = 128`).
pub fn ej(n: usize, iters: usize) -> KernelSpec {
    assert!(n >= 3 && iters >= 1, "ej needs n >= 3 and iters >= 1");
    let nn = n * n;
    let source = format!(
        r#"# ej: {iters} extrapolated-Jacobi sweeps (omega = 1.25) on {n}x{n}
        .data
        .align 3
quarter: .double 0.25
omega:  .double 1.25
U:      .space {bytes}
V:      .space {bytes}
        .text
main:
{prologue}{fill_u}
        # copy U to V so the fixed boundary matches
        la    $t0, U
        la    $t1, V
        li    $t2, {nn}
copyv:  ldc1  $f2, 0($t0)
        sdc1  $f2, 0($t1)
        addiu $t0, $t0, 8
        addiu $t1, $t1, 8
        addiu $t2, $t2, -1
        bgtz  $t2, copyv
        li    $s0, {n}
        sll   $s5, $s0, 3          # row stride
        addiu $s3, $s0, -1
        li    $s4, {iters}
        la    $t0, quarter
        ldc1  $f28, 0($t0)
        la    $t0, omega
        ldc1  $f30, 0($t0)
        la    $s6, U               # src (LCG done; $s6 is free now)
        la    $s7, V               # dst
ej_it:  li    $s1, 1               # i
ej_i:   li    $s2, 1               # j
        mul   $t0, $s1, $s5
        addu  $t1, $t0, $s7
        addu  $t0, $t0, $s6
        addiu $t0, $t0, 8          # &src[i][1]
        addiu $t1, $t1, 8          # &dst[i][1]
ej_j:   ldc1  $f2, 0($t0)          # c
        subu  $t4, $t0, $s5
        ldc1  $f4, 0($t4)          # up
        addu  $t4, $t0, $s5
        ldc1  $f6, 0($t4)          # down
        ldc1  $f8, -8($t0)         # left
        ldc1  $f10, 8($t0)         # right
        add.d $f4, $f4, $f6
        add.d $f8, $f8, $f10
        add.d $f4, $f4, $f8        # neighbour sum
        mul.d $f4, $f4, $f28       # Jacobi average
        sub.d $f4, $f4, $f2        # correction
        mul.d $f4, $f4, $f30       # extrapolated
        add.d $f4, $f2, $f4
        sdc1  $f4, 0($t1)
        addiu $t0, $t0, 8
        addiu $t1, $t1, 8
        addiu $s2, $s2, 1
        blt   $s2, $s3, ej_j
        addiu $s1, $s1, 1
        blt   $s1, $s3, ej_i
        move  $t4, $s6             # swap src/dst
        move  $s6, $s7
        move  $s7, $t4
        addiu $s4, $s4, -1
        bgtz  $s4, ej_it
        # checksum over the final src array
{zero_f12}        move  $t0, $s6
        li    $t1, {nn}
sum_e:  ldc1  $f2, 0($t0)
        add.d $f12, $f12, $f2
        addiu $t0, $t0, 8
        addiu $t1, $t1, -1
        bgtz  $t1, sum_e
{epilogue}"#,
        bytes = nn * 8,
        prologue = lcg_prologue(),
        fill_u = fill_array("u", "U", nn),
        zero_f12 = zero_double("$f12", "$f13"),
        epilogue = epilogue(),
    );
    KernelSpec {
        name: format!("ej-{n}x{iters}"),
        source,
        max_steps: (30 * nn * iters + 60 * nn + 10_000) as u64,
        expected_output: golden::ej(n, iters),
    }
}

/// Iterative radix-2 decimation-in-time FFT on `2^log2n` complex samples
/// (paper: 256 samples, `log2n = 8`). Twiddle factors live in a ROM table,
/// as DSP firmware does.
pub fn fft(log2n: usize) -> KernelSpec {
    assert!((2..=14).contains(&log2n), "fft needs 2 <= log2n <= 14");
    let n = 1usize << log2n;
    let (wre, wim) = golden::fft_twiddles(n);
    let format_table = |values: &[f64]| -> String {
        values
            .chunks(4)
            .map(|chunk| {
                let items: Vec<String> = chunk.iter().map(|v| format!("{v:?}")).collect();
                format!("        .double {}\n", items.join(", "))
            })
            .collect()
    };
    let source = format!(
        r#"# fft: {n}-point radix-2 DIT FFT with a twiddle ROM
        .data
        .align 3
WR:
{wr_table}WI:
{wi_table}RE:     .space {bytes}
IM:     .space {bytes}
        .text
main:
{prologue}{fill_re}{fill_im}
        li    $s0, {n}
        # ---- bit-reverse permutation ----
        li    $s1, 1               # i
        li    $s2, 0               # j
brev:   srl   $t0, $s0, 1          # bit
brev_w: and   $t1, $s2, $t0
        beq   $t1, $zero, brev_x
        xor   $s2, $s2, $t0
        srl   $t0, $t0, 1
        b     brev_w
brev_x: xor   $s2, $s2, $t0
        slt   $t1, $s1, $s2
        beq   $t1, $zero, brev_n
        sll   $t2, $s1, 3
        sll   $t3, $s2, 3
        la    $t4, RE
        addu  $t5, $t4, $t2
        addu  $t6, $t4, $t3
        ldc1  $f2, 0($t5)
        ldc1  $f4, 0($t6)
        sdc1  $f4, 0($t5)
        sdc1  $f2, 0($t6)
        la    $t4, IM
        addu  $t5, $t4, $t2
        addu  $t6, $t4, $t3
        ldc1  $f2, 0($t5)
        ldc1  $f4, 0($t6)
        sdc1  $f4, 0($t5)
        sdc1  $f2, 0($t6)
brev_n: addiu $s1, $s1, 1
        blt   $s1, $s0, brev
        # ---- butterfly stages ----
        li    $s3, 2               # len
f_len:  srl   $s4, $s3, 1          # half
        div   $s5, $s0, $s3        # twiddle stride
        li    $s1, 0               # i
f_i:    li    $s2, 0               # j
f_j:    mul   $t0, $s2, $s5
        sll   $t0, $t0, 3
        la    $t1, WR
        addu  $t1, $t1, $t0
        ldc1  $f2, 0($t1)          # wr
        la    $t1, WI
        addu  $t1, $t1, $t0
        ldc1  $f4, 0($t1)          # wi
        addu  $t2, $s1, $s2        # p
        sll   $t3, $t2, 3
        addu  $t4, $t2, $s4        # q
        sll   $t5, $t4, 3
        la    $t6, RE
        addu  $t7, $t6, $t3        # &re[p]
        addu  $t8, $t6, $t5        # &re[q]
        la    $t6, IM
        addu  $t9, $t6, $t3        # &im[p]
        addu  $t6, $t6, $t5        # &im[q]
        ldc1  $f6, 0($t8)          # reQ
        ldc1  $f8, 0($t6)          # imQ
        mul.d $f10, $f6, $f2
        mul.d $f12, $f8, $f4
        sub.d $f10, $f10, $f12     # tr
        mul.d $f12, $f6, $f4
        mul.d $f14, $f8, $f2
        add.d $f12, $f12, $f14     # ti
        ldc1  $f6, 0($t7)          # reP
        ldc1  $f8, 0($t9)          # imP
        sub.d $f16, $f6, $f10
        sdc1  $f16, 0($t8)         # re[q]
        sub.d $f16, $f8, $f12
        sdc1  $f16, 0($t6)         # im[q]
        add.d $f16, $f6, $f10
        sdc1  $f16, 0($t7)         # re[p]
        add.d $f16, $f8, $f12
        sdc1  $f16, 0($t9)         # im[p]
        addiu $s2, $s2, 1
        blt   $s2, $s4, f_j
        addu  $s1, $s1, $s3
        blt   $s1, $s0, f_i
        sll   $s3, $s3, 1
        ble   $s3, $s0, f_len
{zero_f12}{sum_re}{sum_im}{epilogue}"#,
        wr_table = format_table(&wre),
        wi_table = format_table(&wim),
        bytes = n * 8,
        prologue = lcg_prologue(),
        fill_re = fill_array("re", "RE", n),
        fill_im = fill_array("im", "IM", n),
        zero_f12 = zero_double("$f12", "$f13"),
        sum_re = sum_array("re", "RE", n),
        sum_im = sum_array("im", "IM", n),
        epilogue = epilogue(),
    );
    KernelSpec {
        name: format!("fft-{n}"),
        source,
        max_steps: (200 * n * log2n + 100 * n + 10_000) as u64,
        expected_output: golden::fft(log2n),
    }
}

/// Thomas-algorithm tridiagonal solver on `n` unknowns, repeated over
/// `reps` freshly generated diagonally dominant systems (paper: `n = 128`).
pub fn tri(n: usize, reps: usize) -> KernelSpec {
    assert!(n >= 3 && reps >= 1, "tri needs n >= 3 and reps >= 1");
    let source = format!(
        r#"# tri: Thomas algorithm on {reps} random {n}-unknown systems
        .data
        .align 3
TA:     .space {bytes}
TB:     .space {bytes}
TC:     .space {bytes}
TD:     .space {bytes}
TX:     .space {bytes}
        .text
main:
{prologue}        li    $s0, {n}
        li    $s2, {reps}
{zero_f20}
t_rep:  # ---- generate one diagonally dominant system ----
        la    $t0, TA
        la    $t1, TB
        la    $t2, TC
        la    $t3, TD
        li    $t4, {n}
t_gen:
{draw_a}        sdc1  $f2, 0($t0)
{step_b}        addiu $t8, $t8, {boost}
{conv_b}        sdc1  $f2, 0($t1)
{draw_c}        sdc1  $f2, 0($t2)
{draw_d}        sdc1  $f2, 0($t3)
        addiu $t0, $t0, 8
        addiu $t1, $t1, 8
        addiu $t2, $t2, 8
        addiu $t3, $t3, 8
        addiu $t4, $t4, -1
        bgtz  $t4, t_gen
        # ---- forward elimination ----
        la    $t0, TA
        la    $t1, TB
        la    $t2, TC
        la    $t3, TD
        li    $s1, 1
t_fwd:  ldc1  $f2, 8($t0)          # a[i]
        ldc1  $f4, 0($t1)          # b[i-1]
        div.d $f2, $f2, $f4        # m
        ldc1  $f4, 0($t2)          # c[i-1]
        mul.d $f4, $f2, $f4
        ldc1  $f6, 8($t1)          # b[i]
        sub.d $f6, $f6, $f4
        sdc1  $f6, 8($t1)
        ldc1  $f4, 0($t3)          # d[i-1]
        mul.d $f4, $f2, $f4
        ldc1  $f6, 8($t3)          # d[i]
        sub.d $f6, $f6, $f4
        sdc1  $f6, 8($t3)
        addiu $t0, $t0, 8
        addiu $t1, $t1, 8
        addiu $t2, $t2, 8
        addiu $t3, $t3, 8
        addiu $s1, $s1, 1
        blt   $s1, $s0, t_fwd
        # ---- back substitution ----
        # The forward loop advanced the pointers to index n-1.
        ldc1  $f2, 0($t3)          # d[n-1]
        ldc1  $f4, 0($t1)          # b[n-1]
        div.d $f2, $f2, $f4
        la    $t5, TX
        addiu $t6, $s0, -1
        sll   $t7, $t6, 3
        addu  $t5, $t5, $t7        # &x[n-1]
        sdc1  $f2, 0($t5)
        addiu $t1, $t1, -8         # step b/c/d pointers to index n-2
        addiu $t2, $t2, -8
        addiu $t3, $t3, -8
        addiu $s1, $s0, -2         # i = n - 2
t_back: bltz  $s1, t_done
        ldc1  $f2, 0($t2)          # c[i]
        ldc1  $f4, 0($t5)          # x[i+1]
        mul.d $f2, $f2, $f4
        ldc1  $f4, 0($t3)          # d[i]
        sub.d $f4, $f4, $f2
        ldc1  $f2, 0($t1)          # b[i]
        div.d $f4, $f4, $f2
        addiu $t5, $t5, -8         # &x[i]
        sdc1  $f4, 0($t5)
        addiu $t1, $t1, -8
        addiu $t2, $t2, -8
        addiu $t3, $t3, -8
        addiu $s1, $s1, -1
        b     t_back
t_done:
{zero_f12}{sum_x}{epilogue_inner}
        addiu $s2, $s2, -1
        bgtz  $s2, t_rep
        mov.d $f12, $f20
{epilogue}"#,
        bytes = n * 8,
        boost = lcg::DIAGONAL_BOOST,
        prologue = lcg_prologue(),
        zero_f20 = zero_double("$f20", "$f21"),
        draw_a = [lcg_step().to_string(), draw_to_double("$f2")].concat(),
        step_b = lcg_step(),
        conv_b = draw_to_double("$f2"),
        draw_c = [lcg_step().to_string(), draw_to_double("$f2")].concat(),
        draw_d = [lcg_step().to_string(), draw_to_double("$f2")].concat(),
        zero_f12 = zero_double("$f12", "$f13"),
        sum_x = sum_array("x", "TX", n),
        epilogue_inner = "        add.d $f20, $f20, $f12\n",
        epilogue = epilogue(),
    );
    KernelSpec {
        name: format!("tri-{n}x{reps}"),
        source,
        max_steps: (120 * n * reps + 10_000) as u64,
        expected_output: golden::tri(n, reps),
    }
}

/// Doolittle LU decomposition without pivoting on a diagonally dominant
/// `n×n` matrix (paper: `n = 128`).
pub fn lu(n: usize) -> KernelSpec {
    assert!(n >= 2, "lu needs n >= 2");
    let nn = n * n;
    let source = format!(
        r#"# lu: in-place Doolittle LU on a diagonally dominant {n}x{n} matrix
        .data
        .align 3
LA:     .space {bytes}
        .text
main:
{prologue}        li    $s0, {n}
        # ---- fill, boosting the diagonal ----
        la    $t0, LA
        li    $s1, 0               # i
l_fi:   li    $s2, 0               # j
l_fj:
{step}        bne   $s1, $s2, l_nd
        addiu $t8, $t8, {boost}
l_nd:
{conv}        sdc1  $f2, 0($t0)
        addiu $t0, $t0, 8
        addiu $s2, $s2, 1
        blt   $s2, $s0, l_fj
        addiu $s1, $s1, 1
        blt   $s1, $s0, l_fi
        # ---- elimination ----
        sll   $s5, $s0, 3          # row stride
        li    $s3, 0               # k
l_k:    mul   $t0, $s3, $s5
        la    $t1, LA
        addu  $t0, $t0, $t1
        sll   $t2, $s3, 3
        addu  $t0, $t0, $t2        # &A[k][k]
        ldc1  $f2, 0($t0)          # pivot
        addiu $s1, $s3, 1          # i
l_i:    blt   $s1, $s0, l_i_body
        b     l_k_next
l_i_body:
        mul   $t3, $s1, $s5
        la    $t1, LA
        addu  $t3, $t3, $t1
        sll   $t2, $s3, 3
        addu  $t3, $t3, $t2        # &A[i][k]
        ldc1  $f4, 0($t3)
        div.d $f4, $f4, $f2        # m
        sdc1  $f4, 0($t3)
        # row update: A[i][k+1..n] -= m * A[k][k+1..n]
        addiu $t4, $t3, 8          # &A[i][k+1]
        addiu $t5, $t0, 8          # &A[k][k+1]
        subu  $t6, $s0, $s3
        addiu $t6, $t6, -1         # count = n - k - 1
        blez  $t6, l_row_done
l_j:    ldc1  $f6, 0($t5)
        mul.d $f8, $f4, $f6
        ldc1  $f10, 0($t4)
        sub.d $f10, $f10, $f8
        sdc1  $f10, 0($t4)
        addiu $t4, $t4, 8
        addiu $t5, $t5, 8
        addiu $t6, $t6, -1
        bgtz  $t6, l_j
l_row_done:
        addiu $s1, $s1, 1
        b     l_i
l_k_next:
        addiu $s3, $s3, 1
        blt   $s3, $s0, l_k
{zero_f12}{sum_a}{epilogue}"#,
        bytes = nn * 8,
        boost = lcg::DIAGONAL_BOOST,
        prologue = lcg_prologue(),
        step = lcg_step(),
        conv = draw_to_double("$f2"),
        zero_f12 = zero_double("$f12", "$f13"),
        sum_a = sum_array("a", "LA", nn),
        epilogue = epilogue(),
    );
    KernelSpec {
        name: format!("lu-{n}"),
        source,
        max_steps: (15 * nn * n + 60 * nn + 10_000) as u64,
        expected_output: golden::lu(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_assemble() {
        for spec in [mmul(4), sor(4, 1), ej(4, 1), fft(3), tri(4, 2), lu(4)] {
            let program = spec.assemble();
            assert!(!program.text.is_empty(), "{}", spec.name);
        }
    }

    #[test]
    fn paper_sizes_produce_large_data_segments() {
        let spec = mmul(100);
        let program = spec.assemble();
        assert_eq!(program.data.len(), 3 * 100 * 100 * 8);
    }

    #[test]
    #[should_panic(expected = "needs n >= 2")]
    fn mmul_rejects_degenerate_sizes() {
        mmul(1);
    }
}
