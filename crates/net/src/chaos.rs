//! Deterministic frame corruption for the transport-fault harness.
//!
//! `exp_net` and the protocol tests don't trust the codec's own tests
//! to cover the wire — they take *well-formed* frames and break them
//! the ways networks and hostile peers do, then assert the server
//! answers every single one with a typed error (or a clean disconnect)
//! and zero panics. The corruption vocabulary lives here so the
//! harness, the proptests, and the CI chaos smoke all speak the same
//! injections with the same seeded randomness.

use crate::wire::HEADER_BYTES;

/// A seeded xorshift64* stream — the same generator family the exp
/// harnesses use, so chaos runs replay exactly from their seed.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the stream (zero is mapped to a fixed odd constant —
    /// xorshift has no zero state).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform index in `0..n` (`n > 0`).
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One way to break a frame on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Send only the first `keep` bytes, then close (truncated frame /
    /// mid-request disconnect).
    Truncate {
        /// Bytes to send before closing.
        keep: usize,
    },
    /// XOR one byte at `index` with `mask` (bit-level corruption; lands
    /// in the header or the payload depending on the index).
    FlipByte {
        /// Byte offset into the encoded frame.
        index: usize,
        /// Non-zero XOR mask.
        mask: u8,
    },
    /// Replace the first 8 bytes with garbage (a non-protocol peer).
    GarbageMagic,
    /// Patch the version field to an unsupported value.
    BadVersion,
    /// Patch the declared payload length to `u32::MAX` (over the frame
    /// cap — must be refused before allocation).
    OversizeLength,
    /// Send the full frame, but in two halves with a stall between them
    /// (slow-loris; the server's read timeout decides its fate).
    SlowHalves,
}

/// All injection shapes, for exhaustive sweeps.
pub const ALL_INJECTIONS: [Injection; 6] = [
    Injection::Truncate { keep: 0 },
    Injection::FlipByte { index: 0, mask: 1 },
    Injection::GarbageMagic,
    Injection::BadVersion,
    Injection::OversizeLength,
    Injection::SlowHalves,
];

impl Injection {
    /// Draws a random injection over a frame of `frame_len` bytes.
    pub fn sample(rng: &mut XorShift64, frame_len: usize) -> Injection {
        match rng.index(6) {
            0 => Injection::Truncate {
                keep: rng.index(frame_len.max(1)),
            },
            1 => Injection::FlipByte {
                index: rng.index(frame_len.max(1)),
                mask: (rng.next_u64() as u8) | 1,
            },
            2 => Injection::GarbageMagic,
            3 => Injection::BadVersion,
            4 => Injection::OversizeLength,
            _ => Injection::SlowHalves,
        }
    }

    /// Applies the corruption to an encoded frame, returning the bytes
    /// to actually send. [`Injection::SlowHalves`] returns the frame
    /// unchanged — its effect is in *how* the bytes are written (see
    /// [`Injection::split_point`]).
    pub fn apply(self, frame: &[u8]) -> Vec<u8> {
        let mut bytes = frame.to_vec();
        match self {
            Injection::Truncate { keep } => {
                bytes.truncate(keep.min(bytes.len()));
            }
            Injection::FlipByte { index, mask } => {
                if !bytes.is_empty() {
                    let i = index.min(bytes.len() - 1);
                    bytes[i] ^= if mask == 0 { 1 } else { mask };
                }
            }
            Injection::GarbageMagic => {
                for (i, b) in bytes.iter_mut().take(8).enumerate() {
                    *b = 0xA5 ^ (i as u8);
                }
            }
            Injection::BadVersion => {
                if bytes.len() >= 10 {
                    bytes[8] = 0xFF;
                    bytes[9] = 0x7F;
                }
            }
            Injection::OversizeLength => {
                if bytes.len() >= 24 {
                    bytes[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
                }
            }
            Injection::SlowHalves => {}
        }
        bytes
    }

    /// Where a slow-loris writer should pause: mid-header, so the
    /// server is provably holding a partial frame when it stalls.
    pub fn split_point(self, total: usize) -> Option<usize> {
        match self {
            Injection::SlowHalves => Some(total.min(HEADER_BYTES / 2)),
            _ => None,
        }
    }

    /// Whether the injected bytes could still be mistaken for a
    /// complete well-formed frame (they cannot — that is the point —
    /// except a `Truncate` keeping everything or a `FlipByte` the CRC
    /// then re-validates, which [`Injection::is_vacuous`] filters).
    pub fn is_vacuous(self, frame_len: usize) -> bool {
        match self {
            Injection::Truncate { keep } => keep >= frame_len,
            Injection::FlipByte { mask, .. } => mask == 0,
            _ => false,
        }
    }

    /// Short stable label for per-injection accounting.
    pub fn label(self) -> &'static str {
        match self {
            Injection::Truncate { .. } => "truncate",
            Injection::FlipByte { .. } => "flip_byte",
            Injection::GarbageMagic => "garbage_magic",
            Injection::BadVersion => "bad_version",
            Injection::OversizeLength => "oversize_length",
            Injection::SlowHalves => "slow_halves",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Frame, FrameKind, WireError};

    fn frame_bytes() -> Vec<u8> {
        Frame::new(FrameKind::Request, 7, b"payload bytes".to_vec())
            .expect("under cap")
            .to_bytes()
    }

    #[test]
    fn every_non_vacuous_injection_breaks_decoding() {
        let original = frame_bytes();
        let mut rng = XorShift64::new(0xC4A05);
        let mut tried = 0;
        while tried < 500 {
            let injection = Injection::sample(&mut rng, original.len());
            if injection.is_vacuous(original.len()) || injection == Injection::SlowHalves {
                continue;
            }
            tried += 1;
            let corrupted = injection.apply(&original);
            match Frame::from_bytes(&corrupted) {
                // A payload flip the CRC catches, a header flip the
                // field checks catch — all typed.
                Err(_) => {}
                Ok(decoded) => {
                    // A FlipByte can hit the request-id field, which is
                    // opaque payload-correlation data — the frame stays
                    // valid but *different*; anything else decoding
                    // cleanly is a codec hole.
                    let id_region = 12..20;
                    match injection {
                        Injection::FlipByte { index, .. } if id_region.contains(&index) => {
                            assert_ne!(decoded.request_id, 7, "flip changed nothing");
                        }
                        other => panic!("{other:?} produced a cleanly decoding frame"),
                    }
                }
            }
        }
    }

    #[test]
    fn truncations_are_truncated_and_oversize_is_too_large() {
        let original = frame_bytes();
        let t = Injection::Truncate { keep: 10 }.apply(&original);
        assert_eq!(Frame::from_bytes(&t), Err(WireError::Truncated));
        let o = Injection::OversizeLength.apply(&original);
        assert!(matches!(
            Frame::from_bytes(&o),
            Err(WireError::FrameTooLarge { .. })
        ));
        let g = Injection::GarbageMagic.apply(&original);
        assert_eq!(Frame::from_bytes(&g), Err(WireError::BadMagic));
        let v = Injection::BadVersion.apply(&original);
        assert!(matches!(
            Frame::from_bytes(&v),
            Err(WireError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            let v = a.next_u64();
            assert_eq!(v, b.next_u64());
            assert_ne!(v, 0);
        }
        let u = XorShift64::new(7).unit();
        assert!((0.0..1.0).contains(&u));
    }
}
