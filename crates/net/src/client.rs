//! The client: connection-per-request calls with deadlines and bounded,
//! jittered retries.
//!
//! Each call opens a fresh connection — the failure domain of one
//! request is one socket, so a mid-request disconnect or a poisoned
//! stream never bleeds into the next call. Retries follow three rules:
//!
//! 1. **Only idempotent requests retry.** [`crate::msg::NetRequest::
//!    idempotent`] is the client's own declaration; a non-idempotent
//!    request fails on its first transport error rather than risk
//!    double execution.
//! 2. **Only retryable failures retry**: transport errors (the request
//!    may never have arrived) and the server's explicit
//!    back-off refusals ([`RemoteError::is_retryable`] — overload and
//!    quota). A typed permanent failure returns immediately.
//! 3. **The deadline always wins.** Backoff sleeps are clamped to the
//!    remaining budget, and no attempt starts past the deadline.
//!
//! Backoff is exponential with multiplicative jitter in `[0.5, 1.5)`
//! drawn from a seeded xorshift64* stream, so a thousand clients
//! refused by the same overloaded server do not reconverge on the same
//! retry instant.

use std::io::{self};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::msg::{NetRequest, NetResponse};
use crate::wire::{Frame, FrameKind, WireError};
use crate::{ListenAddr, NetError};

/// Client-side transport knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Total budget for one [`Client::call`], connection attempts,
    /// backoff sleeps and all.
    pub deadline: Duration,
    /// Additional attempts after the first (so `retries: 3` means at
    /// most 4 attempts).
    pub retries: u32,
    /// First backoff sleep; doubles each retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Per-socket read/write timeout (also the connect timeout for
    /// TCP). Clamped to the remaining deadline per attempt.
    pub io_timeout: Duration,
    /// Seed for the jitter stream — fixed by tests and the chaos
    /// harness for reproducibility.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            deadline: Duration::from_secs(30),
            retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            io_timeout: Duration::from_secs(5),
            jitter_seed: 0x494D_544E_4554_0001,
        }
    }
}

impl ClientConfig {
    /// Sets the per-call deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> ClientConfig {
        self.deadline = deadline;
        self
    }

    /// Sets the retry budget (attempts after the first).
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> ClientConfig {
        self.retries = retries;
        self
    }

    /// Sets the backoff window.
    #[must_use]
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> ClientConfig {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }
}

/// A handle to one server address. Cheap to share behind an `Arc`; each
/// call opens its own connection.
#[derive(Debug)]
pub struct Client {
    addr: ListenAddr,
    config: ClientConfig,
    next_id: AtomicU64,
    jitter: AtomicU64,
}

impl Client {
    /// Builds a client for `addr`.
    pub fn new(addr: ListenAddr, config: ClientConfig) -> Client {
        let seed = config.jitter_seed | 1; // xorshift state must be non-zero
        Client {
            addr,
            config,
            next_id: AtomicU64::new(1),
            jitter: AtomicU64::new(seed),
        }
    }

    /// The configured server address.
    pub fn addr(&self) -> &ListenAddr {
        &self.addr
    }

    /// Sends one request and waits for its response, retrying per the
    /// module rules. A response whose `outcome` is a typed
    /// [`crate::msg::RemoteError`] is still `Ok` here — the wire worked;
    /// refusals the server will never un-refuse come back to the caller
    /// as data, and retryable refusals are retried until the budget runs
    /// out (the last refusal is then returned as data too).
    ///
    /// # Errors
    ///
    /// [`NetError`] when the transport failed and the retry budget (or
    /// the request's idempotency) did not allow recovery.
    pub fn call(&self, request: &NetRequest) -> Result<NetResponse, NetError> {
        let started = Instant::now();
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let payload = request.encode();
        let max_attempts = self.config.retries.saturating_add(1);
        let mut attempts = 0u32;
        // Whichever of these the *last* attempt produced is what the
        // caller gets: a typed retryable refusal comes back as `Ok`
        // data, a transport failure as the retry-exhausted error.
        let mut last_refusal: Option<NetResponse> = None;
        let mut last_err: Option<NetError> = None;
        while attempts < max_attempts {
            let Some(remaining) = self.config.deadline.checked_sub(started.elapsed()) else {
                break;
            };
            if remaining.is_zero() {
                break;
            }
            attempts += 1;
            match self.attempt(request_id, &payload, remaining) {
                Ok(response) => {
                    let retryable = matches!(&response.outcome, Err(e) if e.is_retryable());
                    if !retryable || !request.idempotent {
                        return Ok(response);
                    }
                    last_refusal = Some(response);
                    last_err = None;
                }
                Err(e) => {
                    if !request.idempotent {
                        return Err(e);
                    }
                    last_err = Some(e);
                    last_refusal = None;
                }
            }
            if attempts >= max_attempts || !self.backoff(attempts, started) {
                break;
            }
        }
        if let Some(refusal) = last_refusal {
            return Ok(refusal);
        }
        match last_err {
            Some(e) => Err(NetError::RetriesExhausted {
                attempts,
                last: Box::new(e),
            }),
            None => Err(NetError::DeadlineExceeded { attempts }),
        }
    }

    /// One connect → write → read exchange within `remaining`.
    fn attempt(
        &self,
        request_id: u64,
        payload: &[u8],
        remaining: Duration,
    ) -> Result<NetResponse, NetError> {
        let io_timeout = self
            .config
            .io_timeout
            .min(remaining)
            .max(Duration::from_millis(1));
        let frame = Frame::new(FrameKind::Request, request_id, payload.to_vec())?;
        let reply = match &self.addr {
            ListenAddr::Tcp(hostport) => {
                let stream = connect_tcp(hostport, io_timeout).map_err(WireError::from)?;
                stream
                    .set_read_timeout(Some(io_timeout))
                    .and_then(|()| stream.set_write_timeout(Some(io_timeout)))
                    .map_err(WireError::from)?;
                exchange(stream, &frame)?
            }
            ListenAddr::Unix(path) => {
                let stream = UnixStream::connect(path).map_err(WireError::from)?;
                stream
                    .set_read_timeout(Some(io_timeout))
                    .and_then(|()| stream.set_write_timeout(Some(io_timeout)))
                    .map_err(WireError::from)?;
                exchange(stream, &frame)?
            }
        };
        if reply.kind != FrameKind::Response {
            return Err(NetError::Wire(WireError::malformed(
                "expected a response frame",
            )));
        }
        if reply.request_id != request_id {
            return Err(NetError::IdMismatch {
                sent: request_id,
                got: reply.request_id,
            });
        }
        Ok(NetResponse::decode(&reply.payload)?)
    }

    /// Sleeps the jittered exponential backoff for attempt `attempt`
    /// (1-based), clamped to the remaining deadline. Returns `false`
    /// when the deadline leaves no room to back off and try again.
    fn backoff(&self, attempt: u32, started: Instant) -> bool {
        let exp = attempt.saturating_sub(1).min(16);
        let nominal = self
            .config
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.config.backoff_cap);
        // Multiplicative jitter in [0.5, 1.5).
        let r = self.next_jitter();
        let factor = 0.5 + (r as f64 / u64::MAX as f64);
        let jittered = Duration::from_secs_f64(nominal.as_secs_f64() * factor);
        let Some(remaining) = self.config.deadline.checked_sub(started.elapsed()) else {
            return false;
        };
        if remaining <= jittered {
            return false;
        }
        std::thread::sleep(jittered);
        true
    }

    /// xorshift64* step over shared state — statistically fine for
    /// jitter, and seeded for reproducible chaos runs.
    fn next_jitter(&self) -> u64 {
        let mut x = self.jitter.load(Ordering::Relaxed);
        loop {
            let mut n = x;
            n ^= n << 13;
            n ^= n >> 7;
            n ^= n << 17;
            match self
                .jitter
                .compare_exchange_weak(x, n, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return n.wrapping_mul(0x2545_F491_4F6C_DD1D),
                Err(seen) => x = seen,
            }
        }
    }
}

fn connect_tcp(hostport: &str, timeout: Duration) -> io::Result<TcpStream> {
    use std::net::ToSocketAddrs;
    let mut last = io::Error::new(io::ErrorKind::NotFound, "no addresses resolved");
    for addr in hostport.to_socket_addrs()? {
        match TcpStream::connect_timeout(&addr, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = e,
        }
    }
    Err(last)
}

fn exchange(mut stream: impl io::Read + io::Write, frame: &Frame) -> Result<Frame, WireError> {
    frame.write_to(&mut stream)?;
    Frame::read_from(&mut stream)
}
