//! # imt-net — the wire transport for the imt-serve job service
//!
//! `imt-serve` batches and backpressures encode/eval jobs *in process*;
//! this crate puts that service on a socket. The design center is the
//! paper's fleet scenario taken seriously: many applications submit
//! kernels for TT/BBIT reprogramming against a shared encode service,
//! over links that fail in all the ways links fail — truncated frames,
//! corrupt bytes, stalled writers, mid-request disconnects.
//!
//! The layering, bottom up:
//!
//! * [`wire`] — a versioned, length-prefixed, CRC-checked frame
//!   envelope. Decoding follows the `IMTEPROF` discipline from
//!   `imt_sim::edge`: every declared length is bounded (by
//!   [`wire::MAX_FRAME_BYTES`] and by the bytes actually present)
//!   *before* any allocation, and every corrupt input maps to a typed
//!   [`wire::WireError`] — never a panic.
//! * [`msg`] — the request/response bodies. Kernels travel by registry
//!   name + scale (never as source), fault plans in their CLI grammar;
//!   responses carry the complete [`imt_core::eval::Evaluation`] so a
//!   client can assert bit-identity end-to-end, and failures travel as
//!   typed [`msg::RemoteError`]s that survive the wire.
//! * [`server`] — a blocking TCP/Unix front-end feeding an
//!   [`imt_serve::service::Service`]: one thread per connection, read
//!   timeouts as the slow-loris defense, protocol errors answered or
//!   dropped without ever taking the process down. The server opens
//!   each request's trace root at frame-read start and hands it to the
//!   service, so one `IMT_OBS=trace` timeline covers
//!   read → decode → queue → warm → encode → respond.
//! * [`client`] — connection-per-request calls with a per-request
//!   deadline, connection-level timeouts, and jittered exponential
//!   backoff on *retryable* failures (transport errors and
//!   overload/quota refusals) — and only for requests marked
//!   idempotent.
//! * [`chaos`] — deterministic frame corruption used by the transport
//!   fault harness (`exp_net`) and the protocol tests.

#![warn(clippy::unwrap_used)]

pub mod chaos;
pub mod client;
pub mod msg;
pub mod pool;
pub mod reactor;
pub mod server;
pub mod wire;

use std::fmt;
use std::path::PathBuf;

/// Where a server listens or a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// A TCP host:port (`127.0.0.1:7070`; port 0 binds ephemeral).
    Tcp(String),
    /// A Unix domain socket path.
    Unix(PathBuf),
}

impl ListenAddr {
    /// Parses `unix:PATH` or `HOST:PORT`.
    ///
    /// # Errors
    ///
    /// A human-readable message when the form is neither.
    pub fn parse(s: &str) -> Result<ListenAddr, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix: address is missing its path".to_string());
            }
            return Ok(ListenAddr::Unix(PathBuf::from(path)));
        }
        match s.rsplit_once(':') {
            Some((host, port)) if !host.is_empty() && port.parse::<u16>().is_ok() => {
                Ok(ListenAddr::Tcp(s.to_string()))
            }
            _ => Err(format!(
                "`{s}` is neither `unix:PATH` nor `HOST:PORT` (e.g. unix:/tmp/imt.sock, 127.0.0.1:7070)"
            )),
        }
    }
}

impl fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ListenAddr::Tcp(hostport) => write!(f, "{hostport}"),
            ListenAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Everything a client call can fail with, transport and remote alike.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// The connection or frame codec failed (typed).
    Wire(wire::WireError),
    /// The peer answered a different request id than was asked.
    IdMismatch {
        /// The id sent.
        sent: u64,
        /// The id received.
        got: u64,
    },
    /// The per-request deadline passed before a successful exchange.
    DeadlineExceeded {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// Every allowed attempt failed; the last failure is attached.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// The final attempt's failure.
        last: Box<NetError>,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Wire(e) => write!(f, "{e}"),
            NetError::IdMismatch { sent, got } => {
                write!(f, "response id {got} does not match request id {sent}")
            }
            NetError::DeadlineExceeded { attempts } => {
                write!(f, "client deadline passed after {attempts} attempt(s)")
            }
            NetError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<wire::WireError> for NetError {
    fn from(e: wire::WireError) -> NetError {
        NetError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_addr_parses_both_forms() {
        assert_eq!(
            ListenAddr::parse("unix:/tmp/imt.sock"),
            Ok(ListenAddr::Unix(PathBuf::from("/tmp/imt.sock")))
        );
        assert_eq!(
            ListenAddr::parse("127.0.0.1:7070"),
            Ok(ListenAddr::Tcp("127.0.0.1:7070".to_string()))
        );
        assert!(ListenAddr::parse("unix:").is_err());
        assert!(ListenAddr::parse("no-port").is_err());
        assert!(ListenAddr::parse("host:notaport").is_err());
    }

    #[test]
    fn listen_addr_displays_round_trippable() {
        for addr in ["unix:/tmp/a.sock", "127.0.0.1:9"] {
            let parsed = ListenAddr::parse(addr).expect("parses");
            assert_eq!(ListenAddr::parse(&parsed.to_string()), Ok(parsed));
        }
    }

    #[test]
    fn net_errors_render_usefully() {
        let cases: Vec<NetError> = vec![
            NetError::Wire(wire::WireError::BadMagic),
            NetError::IdMismatch { sent: 1, got: 2 },
            NetError::DeadlineExceeded { attempts: 3 },
            NetError::RetriesExhausted {
                attempts: 4,
                last: Box::new(NetError::Wire(wire::WireError::Truncated)),
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
