//! The message layer: what request and response frames carry.
//!
//! A [`NetRequest`] names work by *registry*, not by payload: the kernel
//! travels as its short name (`mmul`) plus a scale flag, and the server
//! resolves it against [`imt_kernels::Kernel::ALL`]. Arbitrary program
//! source never crosses the wire, which bounds both the protocol and the
//! blast radius of a hostile peer. Fault plans travel in the
//! [`imt_fault::plan::FaultPlan::parse`] grammar for the same reason.
//!
//! A [`NetResponse`] carries the *complete* [`Evaluation`] — every
//! counter, both per-lane vectors, exit code and stdout — so a client
//! can assert bit-identity against a local serial run end-to-end.
//! Failures travel as [`RemoteError`], a typed mirror of
//! [`imt_serve::ServeError`] that survives the wire: the client can
//! distinguish a retryable refusal (overload, quota) from a permanent
//! one without parsing strings.

use imt_core::eval::{EvalNeeds, EvalPath, Evaluation, FullSimReason};
use imt_serve::request::{Completed, FaultSummary, Response};
use imt_serve::ServeError;

use crate::wire::{Reader, WireError, Writer};

/// One encode/eval request as it travels the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct NetRequest {
    /// The tenant the request is billed to (empty = untenanted).
    pub tenant: String,
    /// Kernel short name (`mmul`, `sor`, ... — see
    /// [`imt_kernels::Kernel::ALL`]).
    pub kernel: String,
    /// Resolve the kernel at test scale instead of paper scale.
    pub test_scale: bool,
    /// Encoder block size (0 = server default).
    pub block_size: u32,
    /// TT capacity override (0 = server default).
    pub tt_capacity: u32,
    /// BBIT capacity override (0 = server default).
    pub bbit_capacity: u32,
    /// Evaluation needs beyond data-bus transitions.
    pub needs: EvalNeeds,
    /// Relative deadline in milliseconds (0 = service default).
    pub deadline_ms: u32,
    /// Fault plan in the `AT:TARGET[,...]` grammar (empty = none).
    pub fault_plan: String,
    /// Protection level name (`none` / `parity` / `sec`).
    pub protection: String,
    /// Fault replay fetch window (0 = service default).
    pub fault_window: u32,
    /// Test hook: panic inside the worker (chaos runs only).
    pub panic_in_worker: bool,
    /// Whether the client may safely retry this request. Encode/eval is
    /// a pure function of the request, so this is normally true; a
    /// client marks a request non-idempotent when double execution
    /// would double-count (e.g. load-generator conservation audits).
    pub idempotent: bool,
    /// Encoding scheme name in the [`SchemeSpec::parse`] grammar
    /// (`tt` / `gray` / `lowweight` / `businvert`; empty = the TT/BBIT
    /// default). Travels as its name, like the kernel: scheme
    /// internals never cross the wire.
    ///
    /// [`SchemeSpec::parse`]: imt_core::scheme::SchemeSpec::parse
    pub scheme: String,
}

impl NetRequest {
    /// A plain transitions-only request for `kernel` at test or paper
    /// scale.
    pub fn new(kernel: impl Into<String>, test_scale: bool) -> NetRequest {
        NetRequest {
            tenant: String::new(),
            kernel: kernel.into(),
            test_scale,
            block_size: 0,
            tt_capacity: 0,
            bbit_capacity: 0,
            needs: EvalNeeds::transitions_only(),
            deadline_ms: 0,
            fault_plan: String::new(),
            protection: "none".to_string(),
            fault_window: 0,
            panic_in_worker: false,
            idempotent: true,
            scheme: String::new(),
        }
    }

    /// Bills the request to `tenant`.
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> NetRequest {
        self.tenant = tenant.into();
        self
    }

    /// Names the encoding scheme (empty = the TT/BBIT default).
    #[must_use]
    pub fn with_scheme(mut self, scheme: impl Into<String>) -> NetRequest {
        self.scheme = scheme.into();
        self
    }

    /// Sets the encoder block size.
    #[must_use]
    pub fn with_block_size(mut self, k: u32) -> NetRequest {
        self.block_size = k;
        self
    }

    /// Serialises into payload bytes for a request frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.str(&self.tenant);
        w.str(&self.kernel);
        w.u8(u8::from(self.test_scale));
        w.u32(self.block_size);
        w.u32(self.tt_capacity);
        w.u32(self.bbit_capacity);
        let needs = u8::from(self.needs.icache)
            | (u8::from(self.needs.timing) << 1)
            | (u8::from(self.needs.address_bus) << 2);
        w.u8(needs);
        w.u32(self.deadline_ms);
        w.str(&self.fault_plan);
        w.str(&self.protection);
        w.u32(self.fault_window);
        w.u8(u8::from(self.panic_in_worker));
        w.u8(u8::from(self.idempotent));
        w.str(&self.scheme);
        w.finish()
    }

    /// Decodes a request payload.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] on any structural violation; never
    /// panics, never allocates beyond the bytes present.
    pub fn decode(payload: &[u8]) -> Result<NetRequest, WireError> {
        let mut r = Reader::new(payload);
        let tenant = r.str()?;
        let kernel = r.str()?;
        let test_scale = decode_bool(&mut r, "test_scale")?;
        let block_size = r.u32()?;
        let tt_capacity = r.u32()?;
        let bbit_capacity = r.u32()?;
        let needs_bits = r.u8()?;
        if needs_bits > 0b111 {
            return Err(WireError::malformed(format!(
                "unknown needs bits {needs_bits:#04x}"
            )));
        }
        let needs = EvalNeeds {
            icache: needs_bits & 1 != 0,
            timing: needs_bits & 2 != 0,
            address_bus: needs_bits & 4 != 0,
        };
        let deadline_ms = r.u32()?;
        let fault_plan = r.str()?;
        let protection = r.str()?;
        let fault_window = r.u32()?;
        let panic_in_worker = decode_bool(&mut r, "panic_in_worker")?;
        let idempotent = decode_bool(&mut r, "idempotent")?;
        let scheme = r.str()?;
        r.expect_end()?;
        Ok(NetRequest {
            tenant,
            kernel,
            test_scale,
            block_size,
            tt_capacity,
            bbit_capacity,
            needs,
            deadline_ms,
            fault_plan,
            protection,
            fault_window,
            panic_in_worker,
            idempotent,
            scheme,
        })
    }
}

fn decode_bool(r: &mut Reader<'_>, field: &str) -> Result<bool, WireError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(WireError::malformed(format!(
            "{field} byte must be 0 or 1, got {other}"
        ))),
    }
}

/// A failed request's typed outcome, reconstructible on the client. The
/// variants mirror [`ServeError`] one-to-one, plus [`RemoteError::
/// BadRequest`] for requests the server could not even build (unknown
/// kernel name, unparseable fault plan).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RemoteError {
    /// Mirror of [`ServeError::Overloaded`]. Retryable.
    Overloaded {
        /// Jobs queued at refusal.
        depth: u64,
        /// Queue capacity.
        capacity: u64,
    },
    /// Mirror of [`ServeError::QuotaExceeded`]. Retryable.
    QuotaExceeded {
        /// The tenant at its cap.
        tenant: String,
        /// In-flight requests at refusal.
        in_flight: u64,
        /// The cap.
        limit: u64,
    },
    /// Mirror of [`ServeError::ShuttingDown`].
    ShuttingDown,
    /// Mirror of [`ServeError::DeadlineExceeded`].
    DeadlineExceeded,
    /// Mirror of [`ServeError::Cancelled`].
    Cancelled,
    /// Mirror of [`ServeError::Panicked`].
    Panicked {
        /// The panic payload text.
        detail: String,
    },
    /// Mirror of [`ServeError::Poisoned`] — the fail-closed path.
    Poisoned {
        /// Wrong words the faulty decode delivered (server-side; the
        /// response carries no evaluation).
        wrong_words: u64,
    },
    /// Mirror of [`ServeError::ProfileMismatch`].
    ProfileMismatch {
        /// The kernel spec name.
        kernel: String,
    },
    /// Mirror of [`ServeError::ProfileFailed`].
    ProfileFailed {
        /// The kernel spec name.
        kernel: String,
        /// Simulator error text.
        detail: String,
    },
    /// Mirror of [`ServeError::Core`] (rendered — `CoreError` does not
    /// cross the wire structurally).
    Core {
        /// Rendered core error.
        detail: String,
    },
    /// Mirror of [`ServeError::Fault`].
    Fault {
        /// Fault layer error text.
        detail: String,
    },
    /// The server could not build a job from the request (unknown
    /// kernel, bad protection name, unparseable fault plan). Never
    /// retryable — the request itself is wrong.
    BadRequest {
        /// What was wrong.
        detail: String,
    },
}

impl RemoteError {
    /// Whether a retry of the same request may succeed. Overload and
    /// quota refusals drain as the server works; everything else is
    /// deterministic.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            RemoteError::Overloaded { .. } | RemoteError::QuotaExceeded { .. }
        )
    }

    /// Maps a server-side refusal onto its wire mirror.
    pub fn from_serve(e: &ServeError) -> RemoteError {
        match e {
            ServeError::Overloaded { depth, capacity } => RemoteError::Overloaded {
                depth: *depth as u64,
                capacity: *capacity as u64,
            },
            ServeError::QuotaExceeded {
                tenant,
                in_flight,
                limit,
            } => RemoteError::QuotaExceeded {
                tenant: tenant.clone(),
                in_flight: *in_flight as u64,
                limit: *limit as u64,
            },
            ServeError::ShuttingDown => RemoteError::ShuttingDown,
            ServeError::DeadlineExceeded => RemoteError::DeadlineExceeded,
            ServeError::Cancelled => RemoteError::Cancelled,
            ServeError::Panicked { detail } => RemoteError::Panicked {
                detail: detail.clone(),
            },
            ServeError::Poisoned { wrong_words } => RemoteError::Poisoned {
                wrong_words: *wrong_words,
            },
            ServeError::ProfileMismatch { kernel } => RemoteError::ProfileMismatch {
                kernel: kernel.clone(),
            },
            ServeError::ProfileFailed { kernel, detail } => RemoteError::ProfileFailed {
                kernel: kernel.clone(),
                detail: detail.clone(),
            },
            ServeError::Core(e) => RemoteError::Core {
                detail: e.to_string(),
            },
            ServeError::Fault { detail } => RemoteError::Fault {
                detail: detail.clone(),
            },
            other => RemoteError::Core {
                detail: other.to_string(),
            },
        }
    }

    fn code(&self) -> u8 {
        match self {
            RemoteError::Overloaded { .. } => 1,
            RemoteError::QuotaExceeded { .. } => 2,
            RemoteError::ShuttingDown => 3,
            RemoteError::DeadlineExceeded => 4,
            RemoteError::Cancelled => 5,
            RemoteError::Panicked { .. } => 6,
            RemoteError::Poisoned { .. } => 7,
            RemoteError::ProfileMismatch { .. } => 8,
            RemoteError::ProfileFailed { .. } => 9,
            RemoteError::Core { .. } => 10,
            RemoteError::Fault { .. } => 11,
            RemoteError::BadRequest { .. } => 12,
        }
    }

    fn encode(&self, w: &mut Writer) {
        w.u8(self.code());
        match self {
            RemoteError::Overloaded { depth, capacity } => {
                w.u64(*depth);
                w.u64(*capacity);
            }
            RemoteError::QuotaExceeded {
                tenant,
                in_flight,
                limit,
            } => {
                w.str(tenant);
                w.u64(*in_flight);
                w.u64(*limit);
            }
            RemoteError::ShuttingDown | RemoteError::DeadlineExceeded | RemoteError::Cancelled => {}
            RemoteError::Panicked { detail }
            | RemoteError::Core { detail }
            | RemoteError::Fault { detail }
            | RemoteError::BadRequest { detail } => w.str(detail),
            RemoteError::Poisoned { wrong_words } => w.u64(*wrong_words),
            RemoteError::ProfileMismatch { kernel } => w.str(kernel),
            RemoteError::ProfileFailed { kernel, detail } => {
                w.str(kernel);
                w.str(detail);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<RemoteError, WireError> {
        Ok(match r.u8()? {
            1 => RemoteError::Overloaded {
                depth: r.u64()?,
                capacity: r.u64()?,
            },
            2 => RemoteError::QuotaExceeded {
                tenant: r.str()?,
                in_flight: r.u64()?,
                limit: r.u64()?,
            },
            3 => RemoteError::ShuttingDown,
            4 => RemoteError::DeadlineExceeded,
            5 => RemoteError::Cancelled,
            6 => RemoteError::Panicked { detail: r.str()? },
            7 => RemoteError::Poisoned {
                wrong_words: r.u64()?,
            },
            8 => RemoteError::ProfileMismatch { kernel: r.str()? },
            9 => RemoteError::ProfileFailed {
                kernel: r.str()?,
                detail: r.str()?,
            },
            10 => RemoteError::Core { detail: r.str()? },
            11 => RemoteError::Fault { detail: r.str()? },
            12 => RemoteError::BadRequest { detail: r.str()? },
            other => {
                return Err(WireError::malformed(format!(
                    "unknown remote error code {other}"
                )))
            }
        })
    }
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Overloaded { depth, capacity } => {
                write!(
                    f,
                    "server overloaded ({depth}/{capacity} queued); retry later"
                )
            }
            RemoteError::QuotaExceeded {
                tenant,
                in_flight,
                limit,
            } => write!(
                f,
                "tenant `{tenant}` at its in-flight quota ({in_flight}/{limit}); retry later"
            ),
            RemoteError::ShuttingDown => write!(f, "server is shutting down"),
            RemoteError::DeadlineExceeded => write!(f, "deadline passed while queued"),
            RemoteError::Cancelled => write!(f, "request cancelled"),
            RemoteError::Panicked { detail } => write!(f, "job panicked on the server: {detail}"),
            RemoteError::Poisoned { wrong_words } => write!(
                f,
                "fault plan produced silent corruption ({wrong_words} wrong words); failed closed"
            ),
            RemoteError::ProfileMismatch { kernel } => {
                write!(f, "{kernel}: profile diverged from the golden model")
            }
            RemoteError::ProfileFailed { kernel, detail } => {
                write!(f, "{kernel}: profiling failed: {detail}")
            }
            RemoteError::Core { detail } => write!(f, "encode/evaluate failed: {detail}"),
            RemoteError::Fault { detail } => write!(f, "fault replay failed: {detail}"),
            RemoteError::BadRequest { detail } => write!(f, "bad request: {detail}"),
        }
    }
}

impl std::error::Error for RemoteError {}

/// Fault-replay summary as it travels the wire (mirror of
/// [`imt_serve::request::FaultSummary`]).
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultSummary {
    /// Upsets injected.
    pub injected: u64,
    /// Upsets detected by the check codes.
    pub detected: u64,
    /// Upsets corrected in place.
    pub corrected: u64,
    /// Fetches served from the degraded path.
    pub degraded_fetches: u64,
    /// Transition reduction retained under fault, percent.
    pub retained_reduction_percent: f64,
}

impl From<&FaultSummary> for NetFaultSummary {
    fn from(s: &FaultSummary) -> NetFaultSummary {
        NetFaultSummary {
            injected: s.injected,
            detected: s.detected,
            corrected: s.corrected,
            degraded_fetches: s.degraded_fetches,
            retained_reduction_percent: s.retained_reduction_percent,
        }
    }
}

/// A successful request's payload: the complete evaluation plus how it
/// was served.
#[derive(Debug, Clone, PartialEq)]
pub struct NetCompleted {
    /// The evaluation, carried in full for end-to-end bit-identity
    /// checks.
    pub evaluation: Evaluation,
    /// Whether the replay path served it (`false` = full simulation).
    pub replay_path: bool,
    /// Blocks the schedule encoded.
    pub encoded_blocks: u64,
    /// Present when the request carried a fault plan.
    pub fault: Option<NetFaultSummary>,
}

/// One response as it travels the wire — the mirror of
/// [`imt_serve::request::Response`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetResponse {
    /// The server-assigned job id.
    pub id: u64,
    /// The kernel spec name served.
    pub kernel: String,
    /// The effective encoder block size.
    pub block_size: u64,
    /// Completed evaluation or typed refusal.
    pub outcome: Result<NetCompleted, RemoteError>,
    /// Nanoseconds queued on the server.
    pub queue_ns: u64,
    /// Nanoseconds executing on the server.
    pub service_ns: u64,
    /// Batch size the job was served in.
    pub batch_size: u64,
    /// Worker index that served it.
    pub worker: u64,
    /// Completed after its deadline.
    pub missed_deadline: bool,
}

impl NetResponse {
    /// Builds the wire mirror of a service response.
    pub fn from_response(resp: &Response) -> NetResponse {
        NetResponse {
            id: resp.id,
            kernel: resp.kernel.clone(),
            block_size: resp.block_size as u64,
            outcome: match &resp.outcome {
                Ok(done) => Ok(NetCompleted::from_completed(done)),
                Err(e) => Err(RemoteError::from_serve(e)),
            },
            queue_ns: resp.queue_ns,
            service_ns: resp.service_ns,
            batch_size: resp.batch_size as u64,
            worker: resp.worker as u64,
            missed_deadline: resp.missed_deadline,
        }
    }

    /// A refusal response for a request that never became a job.
    pub fn refusal(id: u64, kernel: &str, error: RemoteError) -> NetResponse {
        NetResponse {
            id,
            kernel: kernel.to_string(),
            block_size: 0,
            outcome: Err(error),
            queue_ns: 0,
            service_ns: 0,
            batch_size: 0,
            worker: 0,
            missed_deadline: false,
        }
    }

    /// Serialises into payload bytes for a response frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.id);
        w.str(&self.kernel);
        w.u64(self.block_size);
        w.u64(self.queue_ns);
        w.u64(self.service_ns);
        w.u64(self.batch_size);
        w.u64(self.worker);
        w.u8(u8::from(self.missed_deadline));
        match &self.outcome {
            Ok(done) => {
                w.u8(1);
                encode_completed(&mut w, done);
            }
            Err(e) => {
                w.u8(0);
                e.encode(&mut w);
            }
        }
        w.finish()
    }

    /// Decodes a response payload.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] on any structural violation.
    pub fn decode(payload: &[u8]) -> Result<NetResponse, WireError> {
        let mut r = Reader::new(payload);
        let id = r.u64()?;
        let kernel = r.str()?;
        let block_size = r.u64()?;
        let queue_ns = r.u64()?;
        let service_ns = r.u64()?;
        let batch_size = r.u64()?;
        let worker = r.u64()?;
        let missed_deadline = decode_bool(&mut r, "missed_deadline")?;
        let outcome = match r.u8()? {
            1 => Ok(decode_completed(&mut r)?),
            0 => Err(RemoteError::decode(&mut r)?),
            other => {
                return Err(WireError::malformed(format!(
                    "outcome tag must be 0 or 1, got {other}"
                )))
            }
        };
        r.expect_end()?;
        Ok(NetResponse {
            id,
            kernel,
            block_size,
            outcome,
            queue_ns,
            service_ns,
            batch_size,
            worker,
            missed_deadline,
        })
    }
}

impl NetCompleted {
    /// Builds the wire mirror of a completed job.
    pub fn from_completed(done: &Completed) -> NetCompleted {
        NetCompleted {
            evaluation: done.evaluation.clone(),
            replay_path: done.path == EvalPath::Replay,
            encoded_blocks: done.encoded_blocks as u64,
            fault: done.fault.as_ref().map(NetFaultSummary::from),
        }
    }

    /// Reconstructs the service-side completed payload (the full-sim
    /// reason collapses to [`FullSimReason::NoProfile`]; the evaluation
    /// itself — the part correctness asserts on — is carried verbatim).
    pub fn to_completed(&self) -> Completed {
        Completed {
            evaluation: self.evaluation.clone(),
            path: if self.replay_path {
                EvalPath::Replay
            } else {
                EvalPath::FullSim(FullSimReason::NoProfile)
            },
            encoded_blocks: self.encoded_blocks as usize,
            fault: self.fault.as_ref().map(|f| FaultSummary {
                injected: f.injected,
                detected: f.detected,
                corrected: f.corrected,
                degraded_fetches: f.degraded_fetches,
                retained_reduction_percent: f.retained_reduction_percent,
            }),
        }
    }
}

fn encode_completed(w: &mut Writer, done: &NetCompleted) {
    let e = &done.evaluation;
    w.u64(e.fetches);
    w.u64(e.baseline_transitions);
    w.u64(e.encoded_transitions);
    w.u64_slice(&e.per_lane_baseline);
    w.u64_slice(&e.per_lane_encoded);
    w.u64(e.decode_mismatches);
    w.u64(e.decoded_fetches);
    w.u64(e.passthrough_fetches);
    w.i32(e.exit_code);
    w.str(&e.stdout);
    w.u8(u8::from(done.replay_path));
    w.u64(done.encoded_blocks);
    match &done.fault {
        Some(f) => {
            w.u8(1);
            w.u64(f.injected);
            w.u64(f.detected);
            w.u64(f.corrected);
            w.u64(f.degraded_fetches);
            w.f64(f.retained_reduction_percent);
        }
        None => w.u8(0),
    }
}

fn decode_completed(r: &mut Reader<'_>) -> Result<NetCompleted, WireError> {
    let fetches = r.u64()?;
    let baseline_transitions = r.u64()?;
    let encoded_transitions = r.u64()?;
    let per_lane_baseline = r.u64_vec()?;
    let per_lane_encoded = r.u64_vec()?;
    let decode_mismatches = r.u64()?;
    let decoded_fetches = r.u64()?;
    let passthrough_fetches = r.u64()?;
    let exit_code = r.i32()?;
    let stdout = r.str()?;
    let replay_path = decode_bool(r, "replay_path")?;
    let encoded_blocks = r.u64()?;
    let fault = match r.u8()? {
        1 => Some(NetFaultSummary {
            injected: r.u64()?,
            detected: r.u64()?,
            corrected: r.u64()?,
            degraded_fetches: r.u64()?,
            retained_reduction_percent: r.f64()?,
        }),
        0 => None,
        other => {
            return Err(WireError::malformed(format!(
                "fault tag must be 0 or 1, got {other}"
            )))
        }
    };
    Ok(NetCompleted {
        evaluation: Evaluation {
            fetches,
            baseline_transitions,
            encoded_transitions,
            per_lane_baseline,
            per_lane_encoded,
            decode_mismatches,
            decoded_fetches,
            passthrough_fetches,
            exit_code,
            stdout,
        },
        replay_path,
        encoded_blocks,
        fault,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> NetRequest {
        NetRequest {
            tenant: "acme".into(),
            kernel: "mmul".into(),
            test_scale: true,
            block_size: 6,
            tt_capacity: 32,
            bbit_capacity: 16,
            needs: EvalNeeds {
                icache: true,
                timing: false,
                address_bus: true,
            },
            deadline_ms: 2500,
            fault_plan: "1200:tt:0:5,9000:bus:14".into(),
            protection: "sec".into(),
            fault_window: 4096,
            panic_in_worker: false,
            idempotent: true,
            scheme: "gray".into(),
        }
    }

    fn completed() -> NetCompleted {
        NetCompleted {
            evaluation: Evaluation {
                fetches: 123_456,
                baseline_transitions: 999_999,
                encoded_transitions: 555_555,
                per_lane_baseline: (0..32).collect(),
                per_lane_encoded: (100..132).collect(),
                decode_mismatches: 0,
                decoded_fetches: 123_000,
                passthrough_fetches: 456,
                exit_code: 0,
                stdout: "sum=42\n".into(),
            },
            replay_path: true,
            encoded_blocks: 77,
            fault: Some(NetFaultSummary {
                injected: 3,
                detected: 3,
                corrected: 1,
                degraded_fetches: 20,
                retained_reduction_percent: 31.5,
            }),
        }
    }

    #[test]
    fn request_round_trips() {
        let req = request();
        assert_eq!(NetRequest::decode(&req.encode()).expect("decodes"), req);
        let plain = NetRequest::new("tri", false);
        assert_eq!(NetRequest::decode(&plain.encode()).expect("decodes"), plain);
    }

    #[test]
    fn response_round_trips_success_and_every_error_variant() {
        let ok = NetResponse {
            id: 9,
            kernel: "mmul-8".into(),
            block_size: 5,
            outcome: Ok(completed()),
            queue_ns: 1_000,
            service_ns: 2_000,
            batch_size: 4,
            worker: 2,
            missed_deadline: false,
        };
        assert_eq!(NetResponse::decode(&ok.encode()).expect("decodes"), ok);

        let errors = [
            RemoteError::Overloaded {
                depth: 64,
                capacity: 64,
            },
            RemoteError::QuotaExceeded {
                tenant: "acme".into(),
                in_flight: 8,
                limit: 8,
            },
            RemoteError::ShuttingDown,
            RemoteError::DeadlineExceeded,
            RemoteError::Cancelled,
            RemoteError::Panicked {
                detail: "boom".into(),
            },
            RemoteError::Poisoned { wrong_words: 12 },
            RemoteError::ProfileMismatch {
                kernel: "fft-4".into(),
            },
            RemoteError::ProfileFailed {
                kernel: "lu-10".into(),
                detail: "step budget".into(),
            },
            RemoteError::Core {
                detail: "bad block size".into(),
            },
            RemoteError::Fault {
                detail: "empty surface".into(),
            },
            RemoteError::BadRequest {
                detail: "unknown kernel `quux`".into(),
            },
        ];
        for error in errors {
            let resp = NetResponse::refusal(3, "mmul", error);
            assert_eq!(
                NetResponse::decode(&resp.encode()).expect("decodes"),
                resp,
                "variant failed to round-trip"
            );
        }
    }

    #[test]
    fn truncated_payloads_are_typed_errors() {
        let bytes = request().encode();
        for keep in 0..bytes.len() {
            assert!(
                NetRequest::decode(&bytes[..keep]).is_err(),
                "prefix of {keep} bytes decoded"
            );
        }
        let resp = NetResponse {
            id: 1,
            kernel: "tri-12".into(),
            block_size: 5,
            outcome: Ok(completed()),
            queue_ns: 0,
            service_ns: 0,
            batch_size: 1,
            worker: 0,
            missed_deadline: false,
        };
        let bytes = resp.encode();
        for keep in 0..bytes.len() {
            assert!(
                NetResponse::decode(&bytes[..keep]).is_err(),
                "prefix of {keep} bytes decoded"
            );
        }
    }

    #[test]
    fn retryability_is_limited_to_load_refusals() {
        assert!(RemoteError::Overloaded {
            depth: 1,
            capacity: 1
        }
        .is_retryable());
        assert!(RemoteError::QuotaExceeded {
            tenant: "t".into(),
            in_flight: 1,
            limit: 1
        }
        .is_retryable());
        assert!(!RemoteError::ShuttingDown.is_retryable());
        assert!(!RemoteError::Poisoned { wrong_words: 1 }.is_retryable());
        assert!(!RemoteError::BadRequest { detail: "x".into() }.is_retryable());
    }

    #[test]
    fn serve_error_maps_onto_wire_mirror() {
        let e = ServeError::QuotaExceeded {
            tenant: "acme".into(),
            in_flight: 4,
            limit: 4,
        };
        assert_eq!(
            RemoteError::from_serve(&e),
            RemoteError::QuotaExceeded {
                tenant: "acme".into(),
                in_flight: 4,
                limit: 4,
            }
        );
        let e = ServeError::Overloaded {
            depth: 9,
            capacity: 8,
        };
        assert!(RemoteError::from_serve(&e).is_retryable());
    }
}
