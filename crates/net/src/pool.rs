//! Persistent connections, pipelining, and the client-side pool.
//!
//! [`crate::client::Client`] opens a fresh connection per call — the
//! simplest failure domain, but the per-request connect/teardown now
//! costs more than the codec does. This module amortises setup:
//!
//! * [`PersistentClient`] holds one connection across many exchanges,
//!   either strictly sequential ([`PersistentClient::call`]) or
//!   *pipelined*: [`PersistentClient::send`] puts N requests on the
//!   wire without waiting, and [`PersistentClient::recv`] /
//!   [`PersistentClient::recv_any`] match responses back by the wire
//!   header's request id — out-of-order completion from the server's
//!   worker pool is expected and handled by parking early arrivals.
//! * **Poisoning**: the first wire error (truncation, corruption,
//!   unknown id) marks the connection poisoned — every later operation
//!   returns the same typed error, and the pool refuses to re-shelve
//!   it. One bad stream never bleeds into another request's exchange.
//! * [`ClientPool`] is checkout/checkin with a health check on reuse
//!   (a nonblocking probe read distinguishes "idle and healthy" from
//!   "peer closed while shelved") and bounded idle retention.
//!   [`ClientPool::call`] adds the same idempotent-only retry rule the
//!   per-request client enforces, each retry on a *fresh* connection.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::msg::{NetRequest, NetResponse};
use crate::wire::{Frame, FrameDecoder, FrameKind, WireError};
use crate::{ListenAddr, NetError};

/// One stream, either transport.
#[derive(Debug)]
enum ClientSock {
    Tcp(std::net::TcpStream),
    Unix(std::os::unix::net::UnixStream),
}

impl ClientSock {
    fn connect(addr: &ListenAddr, timeout: Duration) -> io::Result<ClientSock> {
        match addr {
            ListenAddr::Tcp(hostport) => {
                use std::net::ToSocketAddrs;
                let mut last = io::Error::new(io::ErrorKind::NotFound, "no addresses resolved");
                for resolved in hostport.to_socket_addrs()? {
                    match std::net::TcpStream::connect_timeout(&resolved, timeout) {
                        Ok(stream) => {
                            stream.set_nodelay(true)?;
                            return Ok(ClientSock::Tcp(stream));
                        }
                        Err(e) => last = e,
                    }
                }
                Err(last)
            }
            ListenAddr::Unix(path) => {
                std::os::unix::net::UnixStream::connect(path).map(ClientSock::Unix)
            }
        }
    }

    fn set_timeouts(&self, read: Duration, write: Duration) -> io::Result<()> {
        match self {
            ClientSock::Tcp(s) => {
                s.set_read_timeout(Some(read))?;
                s.set_write_timeout(Some(write))
            }
            ClientSock::Unix(s) => {
                s.set_read_timeout(Some(read))?;
                s.set_write_timeout(Some(write))
            }
        }
    }

    fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            ClientSock::Tcp(s) => s.set_nonblocking(on),
            ClientSock::Unix(s) => s.set_nonblocking(on),
        }
    }
}

impl Read for ClientSock {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientSock::Tcp(s) => s.read(buf),
            ClientSock::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientSock {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientSock::Tcp(s) => s.write(buf),
            ClientSock::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientSock::Tcp(s) => s.flush(),
            ClientSock::Unix(s) => s.flush(),
        }
    }
}

/// Knobs for persistent connections and the pool.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Per-socket read/write timeout for each exchange step.
    pub io_timeout: Duration,
    /// Total budget for one [`ClientPool::call`] including retries.
    pub deadline: Duration,
    /// Additional fresh-connection attempts after the first for
    /// idempotent requests in [`ClientPool::call`].
    pub retries: u32,
    /// Connections the pool keeps shelved; extras close on checkin.
    pub max_idle: usize,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            io_timeout: Duration::from_secs(5),
            deadline: Duration::from_secs(30),
            retries: 3,
            max_idle: 16,
        }
    }
}

impl PoolConfig {
    /// Sets the per-exchange socket timeout.
    #[must_use]
    pub fn with_io_timeout(mut self, timeout: Duration) -> PoolConfig {
        self.io_timeout = timeout;
        self
    }

    /// Sets the per-call deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> PoolConfig {
        self.deadline = deadline;
        self
    }

    /// Sets the idle-retention cap.
    #[must_use]
    pub fn with_max_idle(mut self, n: usize) -> PoolConfig {
        self.max_idle = n;
        self
    }
}

/// One long-lived connection with request pipelining.
#[derive(Debug)]
pub struct PersistentClient {
    sock: ClientSock,
    decoder: FrameDecoder,
    /// Reused frame-encode scratch — zero allocations per send in
    /// steady state.
    encode_scratch: Vec<u8>,
    next_id: u64,
    /// Ids sent and not yet delivered to the caller.
    outstanding: HashMap<u64, ()>,
    /// Responses that arrived before their id was asked for.
    parked: HashMap<u64, NetResponse>,
    /// First wire failure; sticky — see module docs.
    poison: Option<WireError>,
    io_timeout: Duration,
}

impl PersistentClient {
    /// Opens one connection to `addr`.
    ///
    /// # Errors
    ///
    /// [`NetError::Wire`] on connect failure.
    pub fn connect(addr: &ListenAddr, io_timeout: Duration) -> Result<PersistentClient, NetError> {
        let sock = ClientSock::connect(addr, io_timeout).map_err(WireError::from)?;
        sock.set_timeouts(io_timeout, io_timeout)
            .map_err(WireError::from)?;
        Ok(PersistentClient {
            sock,
            decoder: FrameDecoder::new(),
            encode_scratch: Vec::new(),
            next_id: 1,
            outstanding: HashMap::new(),
            parked: HashMap::new(),
            poison: None,
            io_timeout,
        })
    }

    /// Wraps an already-connected Unix stream (e.g. one half of a
    /// `UnixStream::pair`) — how tests and in-process harnesses drive
    /// the pipelining state machine without a listener.
    ///
    /// # Errors
    ///
    /// [`NetError::Wire`] when the socket refuses its timeouts.
    pub fn from_unix_stream(
        stream: std::os::unix::net::UnixStream,
        io_timeout: Duration,
    ) -> Result<PersistentClient, NetError> {
        let sock = ClientSock::Unix(stream);
        sock.set_timeouts(io_timeout, io_timeout)
            .map_err(WireError::from)?;
        Ok(PersistentClient {
            sock,
            decoder: FrameDecoder::new(),
            encode_scratch: Vec::new(),
            next_id: 1,
            outstanding: HashMap::new(),
            parked: HashMap::new(),
            poison: None,
            io_timeout,
        })
    }

    /// Whether a wire error has poisoned this connection.
    pub fn is_poisoned(&self) -> bool {
        self.poison.is_some()
    }

    /// Adjusts the per-exchange socket timeout — how deadline-aware
    /// callers clamp a blocking `recv` to their remaining budget.
    ///
    /// # Errors
    ///
    /// [`NetError::Wire`] when the socket refuses the new timeout.
    pub fn set_io_timeout(&mut self, timeout: Duration) -> Result<(), NetError> {
        let timeout = timeout.max(Duration::from_millis(1));
        if timeout != self.io_timeout {
            self.sock
                .set_timeouts(timeout, timeout)
                .map_err(WireError::from)?;
            self.io_timeout = timeout;
        }
        Ok(())
    }

    /// Requests sent and not yet received.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len() + self.parked.len()
    }

    fn check_poison(&self) -> Result<(), NetError> {
        match &self.poison {
            Some(e) => Err(NetError::Wire(e.clone())),
            None => Ok(()),
        }
    }

    fn poison_with(&mut self, e: WireError) -> NetError {
        self.poison = Some(e.clone());
        NetError::Wire(e)
    }

    /// Puts one request on the wire without waiting for its response;
    /// returns the request id to [`PersistentClient::recv`] later.
    /// Pipelining depth is the caller's choice — the server's
    /// per-connection in-flight cap is the hard bound.
    ///
    /// # Errors
    ///
    /// [`NetError::Wire`] on encode or socket failure (poisons).
    pub fn send(&mut self, request: &NetRequest) -> Result<u64, NetError> {
        self.check_poison()?;
        let request_id = self.next_id;
        self.next_id += 1;
        self.encode_scratch.clear();
        let mut scratch = std::mem::take(&mut self.encode_scratch);
        let encoded = Frame::encode_parts_into(
            FrameKind::Request,
            request_id,
            &request.encode(),
            &mut scratch,
        );
        let sent = encoded.and_then(|()| {
            self.sock
                .write_all(&scratch)
                .and_then(|()| self.sock.flush())
                .map_err(WireError::from)
        });
        self.encode_scratch = scratch;
        match sent {
            Ok(()) => {
                self.outstanding.insert(request_id, ());
                Ok(request_id)
            }
            Err(e) => Err(self.poison_with(e)),
        }
    }

    /// Receives the response for `request_id`, reading (and parking)
    /// other pipelined responses until it arrives.
    ///
    /// # Errors
    ///
    /// [`NetError::Wire`] on any stream failure — truncation or
    /// corruption mid-pipeline poisons this connection only; every
    /// already-parked response for *other* ids stays deliverable.
    /// A response for an id never sent is [`NetError::IdMismatch`]
    /// (and poisons — the stream is answering someone else's plan).
    pub fn recv(&mut self, request_id: u64) -> Result<NetResponse, NetError> {
        loop {
            if let Some(response) = self.parked.remove(&request_id) {
                return Ok(response);
            }
            self.check_poison()?;
            if !self.outstanding.contains_key(&request_id) {
                return Err(NetError::Wire(WireError::malformed(format!(
                    "request id {request_id} was never sent on this connection"
                ))));
            }
            self.pump_one()?;
        }
    }

    /// Receives whichever pipelined response arrives next (parked ones
    /// first), returning `(request_id, response)`.
    ///
    /// # Errors
    ///
    /// As [`PersistentClient::recv`]; calling with nothing in flight is
    /// a typed `Malformed` error.
    pub fn recv_any(&mut self) -> Result<(u64, NetResponse), NetError> {
        if let Some(id) = self.parked.keys().next().copied() {
            let response = self.parked.remove(&id).expect("key just observed");
            return Ok((id, response));
        }
        self.check_poison()?;
        if self.outstanding.is_empty() {
            return Err(NetError::Wire(WireError::malformed(
                "recv_any with no requests in flight",
            )));
        }
        loop {
            self.pump_one()?;
            if let Some(id) = self.parked.keys().next().copied() {
                let response = self.parked.remove(&id).expect("key just observed");
                return Ok((id, response));
            }
        }
    }

    /// Reads until at least one complete response frame lands, moving
    /// it to `parked` and clearing its outstanding entry.
    fn pump_one(&mut self) -> Result<(), NetError> {
        loop {
            // Drain any complete frame already buffered first.
            match self.decoder.next_frame() {
                Ok(Some(view)) => {
                    if view.kind != FrameKind::Response {
                        let e = WireError::malformed("expected a response frame");
                        return Err(self.poison_with(e));
                    }
                    let id = view.request_id;
                    let decoded = NetResponse::decode(view.payload);
                    if self.outstanding.remove(&id).is_none() {
                        self.poison = Some(WireError::malformed(format!(
                            "response for unknown request id {id}"
                        )));
                        return Err(NetError::IdMismatch { sent: 0, got: id });
                    }
                    match decoded {
                        Ok(response) => {
                            self.parked.insert(id, response);
                            return Ok(());
                        }
                        Err(e) => return Err(self.poison_with(e)),
                    }
                }
                Ok(None) => {}
                Err(e) => return Err(self.poison_with(e)),
            }
            match self.decoder.fill_from(&mut self.sock) {
                Ok(0) => {
                    // Peer closed with requests outstanding: a
                    // mid-pipeline disconnect, typed as truncation.
                    return Err(self.poison_with(WireError::Truncated));
                }
                Ok(_) => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Err(self.poison_with(WireError::Io {
                        kind: io::ErrorKind::TimedOut.to_string(),
                    }));
                }
                Err(e) => {
                    let wire = WireError::from(e);
                    return Err(self.poison_with(wire));
                }
            }
        }
    }

    /// One sequential request/response exchange on this connection.
    ///
    /// # Errors
    ///
    /// As [`PersistentClient::send`] / [`PersistentClient::recv`].
    pub fn call(&mut self, request: &NetRequest) -> Result<NetResponse, NetError> {
        let id = self.send(request)?;
        self.recv(id)
    }

    /// Health probe for pooled reuse: with nothing in flight, any
    /// readable byte means the stream is desynchronised and EOF means
    /// the peer closed while shelved — both unhealthy. `WouldBlock`
    /// is the healthy answer.
    fn healthy_idle(&mut self) -> bool {
        if self.poison.is_some() || self.in_flight() > 0 || self.decoder.mid_frame() {
            return false;
        }
        if self.sock.set_nonblocking(true).is_err() {
            return false;
        }
        let mut probe = [0u8; 1];
        let verdict = match self.sock.read(&mut probe) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => true,
            // EOF, unexpected bytes, or a hard error: discard.
            _ => false,
        };
        if self.sock.set_nonblocking(false).is_err() {
            return false;
        }
        verdict
    }
}

/// A checkout/checkin pool of [`PersistentClient`]s for one address.
#[derive(Debug)]
pub struct ClientPool {
    addr: ListenAddr,
    config: PoolConfig,
    idle: Mutex<Vec<PersistentClient>>,
}

impl ClientPool {
    /// Builds an (initially empty) pool for `addr`.
    pub fn new(addr: ListenAddr, config: PoolConfig) -> ClientPool {
        ClientPool {
            addr,
            config,
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The pooled server address.
    pub fn addr(&self) -> &ListenAddr {
        &self.addr
    }

    /// Idle connections currently shelved.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Checks out a connection: a shelved one that passes the health
    /// probe, else a fresh connect. The guard returns it on drop —
    /// unless it is poisoned or still has responses in flight, in
    /// which case it is closed instead.
    ///
    /// # Errors
    ///
    /// [`NetError::Wire`] when a fresh connection was needed and the
    /// connect failed.
    pub fn checkout(&self) -> Result<PooledConn<'_>, NetError> {
        loop {
            let shelved = self.idle.lock().unwrap_or_else(|e| e.into_inner()).pop();
            match shelved {
                Some(mut conn) => {
                    if conn.healthy_idle() {
                        return Ok(PooledConn {
                            pool: self,
                            conn: Some(conn),
                        });
                    }
                    // Unhealthy: drop it and try the next shelf slot.
                }
                None => {
                    let conn = PersistentClient::connect(&self.addr, self.config.io_timeout)?;
                    return Ok(PooledConn {
                        pool: self,
                        conn: Some(conn),
                    });
                }
            }
        }
    }

    /// One request over a pooled connection, with the client's retry
    /// rules: only idempotent requests retry, only on transport errors,
    /// each retry on a fresh connection, and the deadline always wins.
    ///
    /// # Errors
    ///
    /// [`NetError`] when the transport failed beyond what the retry
    /// budget (or the request's idempotency) could recover.
    pub fn call(&self, request: &NetRequest) -> Result<NetResponse, NetError> {
        let started = Instant::now();
        let max_attempts = self.config.retries.saturating_add(1);
        let mut attempts = 0u32;
        let mut last_err: Option<NetError> = None;
        while attempts < max_attempts {
            let Some(remaining) = self.config.deadline.checked_sub(started.elapsed()) else {
                break;
            };
            if remaining.is_zero() {
                break;
            }
            attempts += 1;
            let outcome = self.checkout().and_then(|mut conn| {
                conn.set_io_timeout(self.config.io_timeout.min(remaining))?;
                conn.call(request)
            });
            match outcome {
                Ok(response) => return Ok(response),
                Err(e) => {
                    if !request.idempotent {
                        return Err(e);
                    }
                    last_err = Some(e);
                }
            }
        }
        match last_err {
            Some(e) => Err(NetError::RetriesExhausted {
                attempts,
                last: Box::new(e),
            }),
            None => Err(NetError::DeadlineExceeded { attempts }),
        }
    }

    fn checkin(&self, conn: PersistentClient) {
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        if idle.len() < self.config.max_idle {
            idle.push(conn);
        }
        // Over the cap: drop closes the socket.
    }
}

/// The checkout guard: derefs to [`PersistentClient`], checks the
/// connection back in on drop when it is still clean.
#[derive(Debug)]
pub struct PooledConn<'a> {
    pool: &'a ClientPool,
    conn: Option<PersistentClient>,
}

impl std::ops::Deref for PooledConn<'_> {
    type Target = PersistentClient;

    fn deref(&self) -> &PersistentClient {
        self.conn.as_ref().expect("present until drop")
    }
}

impl std::ops::DerefMut for PooledConn<'_> {
    fn deref_mut(&mut self) -> &mut PersistentClient {
        self.conn.as_mut().expect("present until drop")
    }
}

impl Drop for PooledConn<'_> {
    fn drop(&mut self) {
        if let Some(conn) = self.conn.take() {
            if !conn.is_poisoned() && conn.in_flight() == 0 {
                self.pool.checkin(conn);
            }
        }
    }
}
