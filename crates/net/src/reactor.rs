//! The event-driven server front-end: an epoll reactor instead of a
//! thread per connection.
//!
//! The blocking [`crate::server::NetServer`] spends one OS thread per
//! connection, parked in `read()` or in [`imt_serve::Ticket::wait`].
//! That is simple and correct, but at 1024+ persistent connections the
//! scheduler — not the codec, not the workers — becomes the bottleneck:
//! every request costs a handful of context switches. The reactor keeps
//! *zero* threads per connection:
//!
//! * **One epoll instance per reactor thread** (N-way sharded; accepted
//!   sockets are dealt round-robin) owns every connection socket plus an
//!   `eventfd` waker.
//! * **Per-connection state machines** decode incrementally with
//!   [`FrameDecoder`] — partial frames simply wait for more bytes, and
//!   every declared length is bounded *before* allocation, exactly as on
//!   the blocking path.
//! * **Completions are callbacks, not parked threads.** Submission arms
//!   [`imt_serve::Ticket::on_ready`]; the worker's fulfill encodes the
//!   response frame and hands it to the owning reactor through a
//!   completion queue + eventfd wake. No thread ever blocks on a ticket.
//! * **Backpressure is typed, never blocking.** The service should run
//!   [`imt_serve::service::Admission::Reject`] under a reactor: a full
//!   queue yields a typed `Overloaded` refusal written back on the
//!   wire. On top of that, a connection with too many in-flight
//!   requests or too many unflushed response bytes has its read
//!   interest dropped — pipelining pressure propagates to the peer's
//!   TCP window instead of into unbounded queues.
//! * **Slow-loris dies by sweep.** A connection holding a *partial*
//!   frame longer than `read_timeout` is disconnected (a
//!   `read_timeouts` stat, as on the blocking path). Idle connections
//!   at a frame boundary are left alone — that is what makes pooled
//!   persistent connections cheap to keep open.
//!
//! The epoll/eventfd bindings are raw `extern "C"` declarations against
//! the libc `std` already links — no new dependency, consistent with
//! the offline build constraint.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use imt_serve::service::Service;

use crate::msg::{NetRequest, NetResponse, RemoteError};
use crate::server::{build_request, ServerStats, ServerStatsSnapshot};
use crate::wire::{Frame, FrameDecoder, FrameKind};
use crate::ListenAddr;

// ---------------------------------------------------------------------
// Raw epoll / eventfd bindings (x86_64 Linux, zero-dep)
// ---------------------------------------------------------------------

mod sys {
    use std::os::raw::{c_int, c_uint, c_void};

    /// Mirror of the kernel's `struct epoll_event`. Packed on x86_64
    /// (the kernel ABI packs it there); natural layout elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EFD_NONBLOCK: c_int = 0o4000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// A thin safe wrapper over one epoll instance.
struct Poller {
    epfd: i32,
}

impl Poller {
    fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall, no pointers.
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        let evp = if op == sys::EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut sys::EpollEvent
        };
        // SAFETY: `ev` outlives the call; DEL ignores the pointer.
        if unsafe { sys::epoll_ctl(self.epfd, op, fd, evp) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, events, token)
    }

    fn delete(&self, fd: i32) {
        let _ = self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Waits up to `timeout` for events, appending them to `out`.
    fn wait(&self, out: &mut Vec<sys::EpollEvent>, timeout: Duration) -> io::Result<usize> {
        out.clear();
        out.reserve(256);
        let timeout_ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
        // SAFETY: `out` has capacity for 256 events; the kernel writes
        // at most `maxevents` entries.
        let n = unsafe { sys::epoll_wait(self.epfd, out.as_mut_ptr(), 256, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        // SAFETY: the kernel initialised the first `n` events.
        unsafe { out.set_len(n as usize) };
        Ok(out.len())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: fd owned by this Poller.
        unsafe { sys::close(self.epfd) };
    }
}

/// An eventfd used to wake a reactor from `epoll_wait` when another
/// thread (accept, worker completion) has work for it.
struct Waker {
    fd: i32,
}

impl Waker {
    fn new() -> io::Result<Waker> {
        // SAFETY: plain syscall.
        let fd = unsafe { sys::eventfd(0, sys::EFD_NONBLOCK | sys::EFD_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker { fd })
    }

    fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writing 8 bytes from a valid u64.
        unsafe {
            sys::write(self.fd, (&one as *const u64).cast(), 8);
        }
    }

    fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: reading 8 bytes into a valid u64; nonblocking fd.
        unsafe {
            sys::read(self.fd, (&mut buf as *mut u64).cast(), 8);
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: fd owned by this Waker.
        unsafe { sys::close(self.fd) };
    }
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Reactor transport knobs.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Event-loop threads; accepted connections are dealt round-robin.
    pub reactors: usize,
    /// How long a connection may hold a *partial* frame before the
    /// sweep disconnects it (slow-loris bound). Idle connections at a
    /// frame boundary are not timed out — persistent connections are
    /// the point of this front-end.
    pub read_timeout: Duration,
    /// Max submitted-but-unanswered requests per connection before its
    /// read interest is dropped (pipelining backpressure).
    pub max_in_flight: usize,
    /// Max unflushed response bytes per connection before its read
    /// interest is dropped (write backpressure).
    pub max_pending_write: usize,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            reactors: 1,
            read_timeout: Duration::from_secs(5),
            max_in_flight: 256,
            max_pending_write: 8 * 1024 * 1024,
        }
    }
}

impl ReactorConfig {
    /// Sets the number of reactor threads (min 1).
    #[must_use]
    pub fn with_reactors(mut self, n: usize) -> ReactorConfig {
        self.reactors = n.max(1);
        self
    }

    /// Sets the mid-frame stall bound.
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Duration) -> ReactorConfig {
        self.read_timeout = timeout;
        self
    }

    /// Sets the per-connection in-flight request cap.
    #[must_use]
    pub fn with_max_in_flight(mut self, n: usize) -> ReactorConfig {
        self.max_in_flight = n.max(1);
        self
    }
}

// ---------------------------------------------------------------------
// Sockets
// ---------------------------------------------------------------------

enum Sock {
    Tcp(std::net::TcpStream),
    Unix(std::os::unix::net::UnixStream),
}

impl Sock {
    fn fd(&self) -> i32 {
        match self {
            Sock::Tcp(s) => s.as_raw_fd(),
            Sock::Unix(s) => s.as_raw_fd(),
        }
    }

    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Sock::Tcp(s) => {
                s.set_nodelay(true)?;
                s.set_nonblocking(true)
            }
            Sock::Unix(s) => s.set_nonblocking(true),
        }
    }
}

impl Read for Sock {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            Sock::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Sock {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.write(buf),
            Sock::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Sock::Tcp(s) => s.flush(),
            Sock::Unix(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------
// Completion plumbing (worker thread → reactor thread)
// ---------------------------------------------------------------------

/// One encoded response frame, addressed to a connection token. The
/// worker thread builds these inside the `on_ready` callback; the
/// reactor drains them on its next wake.
struct Completion {
    token: u64,
    frame: Vec<u8>,
    trace_root: Option<imt_obs::trace::TraceCtx>,
}

/// The shared mailbox between the service's worker threads and one
/// reactor thread.
struct Mailbox {
    completions: Mutex<Vec<Completion>>,
    intake: Mutex<Vec<Sock>>,
    waker: Waker,
}

impl Mailbox {
    fn new() -> io::Result<Mailbox> {
        Ok(Mailbox {
            completions: Mutex::new(Vec::new()),
            intake: Mutex::new(Vec::new()),
            waker: Waker::new()?,
        })
    }

    // Both push paths wake the reactor only on the empty→non-empty
    // transition: the first pusher's wake covers everything batched
    // behind it (the reactor drains the whole vec per wake), so under
    // load the eventfd write amortises across the batch instead of
    // costing one syscall per completion.
    fn push_completion(&self, completion: Completion) {
        let mut guard = self.completions.lock().unwrap_or_else(|e| e.into_inner());
        let was_empty = guard.is_empty();
        guard.push(completion);
        drop(guard);
        if was_empty {
            self.waker.wake();
        }
    }

    fn push_conn(&self, sock: Sock) {
        let mut guard = self.intake.lock().unwrap_or_else(|e| e.into_inner());
        let was_empty = guard.is_empty();
        guard.push(sock);
        drop(guard);
        if was_empty {
            self.waker.wake();
        }
    }

    fn drain_completions(&self, into: &mut Vec<Completion>) {
        let mut guard = self.completions.lock().unwrap_or_else(|e| e.into_inner());
        into.append(&mut guard);
    }

    fn drain_conns(&self, into: &mut Vec<Sock>) {
        let mut guard = self.intake.lock().unwrap_or_else(|e| e.into_inner());
        into.append(&mut guard);
    }
}

// ---------------------------------------------------------------------
// Per-connection state machine
// ---------------------------------------------------------------------

struct ConnState {
    sock: Sock,
    decoder: FrameDecoder,
    /// Encoded-but-unflushed response bytes; `write_pos` marks the
    /// flushed prefix so flushing never memmoves per write.
    pending_write: Vec<u8>,
    write_pos: usize,
    /// Requests submitted on this connection and not yet answered.
    in_flight: usize,
    /// Interest currently registered with epoll (to avoid redundant
    /// `EPOLL_CTL_MOD` syscalls).
    interest: u32,
    /// Last time this connection made read progress — the slow-loris
    /// sweep compares it against `read_timeout` while `mid_frame()`.
    last_progress: Instant,
    /// The peer half-closed; finish flushing, then drop.
    peer_closed: bool,
    /// Reused scratch for refusals encoded on the reactor thread.
    encode_scratch: Vec<u8>,
}

impl ConnState {
    fn pending_bytes(&self) -> usize {
        self.pending_write.len() - self.write_pos
    }

    /// Appends an encoded frame to the pending-write queue, compacting
    /// the flushed prefix first so the buffer reuses its capacity.
    fn queue_bytes(&mut self, bytes: &[u8]) {
        if self.write_pos > 0 {
            self.pending_write.copy_within(self.write_pos.., 0);
            let len = self.pending_write.len() - self.write_pos;
            self.pending_write.truncate(len);
            self.write_pos = 0;
        }
        self.pending_write.extend_from_slice(bytes);
    }

    /// Flushes as much as the socket accepts. `Ok(true)` = fully
    /// drained, `Ok(false)` = socket is full (arm EPOLLOUT).
    fn flush(&mut self) -> io::Result<bool> {
        while self.write_pos < self.pending_write.len() {
            match self.sock.write(&self.pending_write[self.write_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.pending_write.clear();
        self.write_pos = 0;
        Ok(true)
    }
}

// ---------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------

/// Token 0 is the reactor's waker; connections get tokens from 1 up.
const WAKER_TOKEN: u64 = 0;

/// The running reactor server: one accept thread dealing sockets to N
/// epoll event loops, all feeding the shared [`Service`].
///
/// Run the service with [`imt_serve::service::Admission::Reject`]: the
/// reactor never blocks, so a full queue must be a typed refusal rather
/// than a parked thread.
pub struct ReactorServer {
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    accept_thread: Option<JoinHandle<()>>,
    reactor_threads: Vec<JoinHandle<()>>,
    mailboxes: Vec<Arc<Mailbox>>,
    local_addr: ListenAddr,
    unix_path: Option<std::path::PathBuf>,
}

impl ReactorServer {
    /// Binds `addr` and starts the accept loop plus
    /// [`ReactorConfig::reactors`] event loops.
    ///
    /// # Errors
    ///
    /// Propagates socket bind and epoll/eventfd creation errors.
    pub fn start(
        service: Arc<Service>,
        addr: &ListenAddr,
        config: ReactorConfig,
    ) -> io::Result<ReactorServer> {
        enum Acceptor {
            Tcp(std::net::TcpListener),
            Unix(std::os::unix::net::UnixListener),
        }
        let (listener, local_addr, unix_path) = match addr {
            ListenAddr::Tcp(hostport) => {
                let listener = std::net::TcpListener::bind(hostport.as_str())?;
                let bound = listener.local_addr()?;
                listener.set_nonblocking(true)?;
                (
                    Acceptor::Tcp(listener),
                    ListenAddr::Tcp(bound.to_string()),
                    None,
                )
            }
            ListenAddr::Unix(path) => {
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                let listener = std::os::unix::net::UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                (
                    Acceptor::Unix(listener),
                    ListenAddr::Unix(path.clone()),
                    Some(path.clone()),
                )
            }
        };

        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let reactors = config.reactors.max(1);
        let mut mailboxes = Vec::with_capacity(reactors);
        for _ in 0..reactors {
            mailboxes.push(Arc::new(Mailbox::new()?));
        }

        let mut reactor_threads = Vec::with_capacity(reactors);
        for (i, mailbox) in mailboxes.iter().enumerate() {
            let mailbox = Arc::clone(mailbox);
            let service = Arc::clone(&service);
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let config = config.clone();
            let poller = Poller::new()?;
            poller.add(mailbox.waker.fd, sys::EPOLLIN, WAKER_TOKEN)?;
            reactor_threads.push(
                std::thread::Builder::new()
                    .name(format!("imt-net-reactor-{i}"))
                    .spawn(move || reactor_loop(poller, mailbox, service, config, stop, stats))?,
            );
        }

        let accept_thread = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let mailboxes = mailboxes.clone();
            std::thread::Builder::new()
                .name("imt-net-accept".to_string())
                .spawn(move || {
                    let mut next = 0usize;
                    while !stop.load(Ordering::SeqCst) {
                        let sock = match &listener {
                            Acceptor::Tcp(l) => match l.accept() {
                                Ok((stream, _)) => Some(Sock::Tcp(stream)),
                                Err(_) => None,
                            },
                            Acceptor::Unix(l) => match l.accept() {
                                Ok((stream, _)) => Some(Sock::Unix(stream)),
                                Err(_) => None,
                            },
                        };
                        match sock {
                            Some(sock) => {
                                if sock.set_nonblocking().is_err() {
                                    continue;
                                }
                                stats.connections.fetch_add(1, Ordering::Relaxed);
                                // Round-robin sharding across reactors.
                                mailboxes[next % mailboxes.len()].push_conn(sock);
                                next = next.wrapping_add(1);
                            }
                            None => std::thread::sleep(Duration::from_millis(1)),
                        }
                    }
                })?
        };

        Ok(ReactorServer {
            stop,
            stats,
            accept_thread: Some(accept_thread),
            reactor_threads,
            mailboxes,
            local_addr,
            unix_path,
        })
    }

    /// The bound address — for TCP with port 0, the resolved port.
    pub fn local_addr(&self) -> &ListenAddr {
        &self.local_addr
    }

    /// Transport-layer counters (same schema as the blocking server).
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.stats.snapshot()
    }

    /// Stops accepting, wakes every reactor, and joins all threads.
    /// Connections are closed; in-flight jobs complete inside the
    /// service but their responses are dropped with the sockets.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for mailbox in &self.mailboxes {
            mailbox.waker.wake();
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.reactor_threads.drain(..) {
            let _ = handle.join();
        }
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        self.halt();
    }
}

// ---------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------

fn reactor_loop(
    poller: Poller,
    mailbox: Arc<Mailbox>,
    service: Arc<Service>,
    config: ReactorConfig,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
) {
    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    let mut next_token: u64 = 1;
    let mut events: Vec<sys::EpollEvent> = Vec::with_capacity(256);
    let mut completions: Vec<Completion> = Vec::new();
    let mut intake: Vec<Sock> = Vec::new();
    let sweep_every = (config.read_timeout / 4).max(Duration::from_millis(10));
    let mut last_sweep = Instant::now();

    while !stop.load(Ordering::SeqCst) {
        let tick = sweep_every.min(Duration::from_millis(100));
        if poller.wait(&mut events, tick).is_err() {
            break;
        }

        let mut woken = false;
        let mut touched: Vec<u64> = Vec::new();
        for ev in events.iter().copied() {
            let (token, bits) = (ev.data, ev.events);
            if token == WAKER_TOKEN {
                woken = true;
                continue;
            }
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            let mut dead = false;
            if bits & sys::EPOLLOUT != 0 {
                match conn.flush() {
                    Ok(_) => {}
                    Err(_) => dead = true,
                }
            }
            // ERR/HUP route through the read path too: a peer that
            // wrote a (corrupt) frame and closed in one breath must
            // still have its bytes decoded — the typed protocol error
            // is the point — before the EOF reaps the connection.
            if !dead
                && !conn.peer_closed
                && bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLERR | sys::EPOLLHUP) != 0
            {
                dead = handle_readable(conn, &service, &config, &stats, &mailbox, token);
            }
            // A full hangup (as opposed to a half-close) means responses
            // for any still-in-flight requests have nowhere to go.
            if !dead && bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
                dead = true;
            }
            if dead {
                close_conn(&poller, &mut conns, token);
            } else {
                touched.push(token);
            }
        }

        if woken {
            mailbox.waker.drain();
            // New connections dealt to this reactor.
            mailbox.drain_conns(&mut intake);
            for sock in intake.drain(..) {
                let token = next_token;
                next_token += 1;
                let fd = sock.fd();
                let conn = ConnState {
                    sock,
                    decoder: FrameDecoder::new(),
                    pending_write: Vec::new(),
                    write_pos: 0,
                    in_flight: 0,
                    interest: sys::EPOLLIN | sys::EPOLLRDHUP,
                    last_progress: Instant::now(),
                    peer_closed: false,
                    encode_scratch: Vec::new(),
                };
                if poller.add(fd, conn.interest, token).is_ok() {
                    conns.insert(token, conn);
                }
            }
            // Worker completions: queue the encoded frames now, flush
            // once per connection in the pass below — pipelined
            // responses that completed in the same wake coalesce into
            // one write syscall instead of one each.
            mailbox.drain_completions(&mut completions);
            for completion in completions.drain(..) {
                let Some(conn) = conns.get_mut(&completion.token) else {
                    // Connection died with requests in flight — the
                    // response has nowhere to go.
                    continue;
                };
                conn.in_flight = conn.in_flight.saturating_sub(1);
                let write_start = imt_obs::trace_enabled().then(imt_obs::trace::now_ns);
                conn.queue_bytes(&completion.frame);
                stats.responses.fetch_add(1, Ordering::Relaxed);
                if let (Some(root), Some(start)) = (completion.trace_root, write_start) {
                    imt_obs::trace::record_stage(
                        "net.write",
                        Some(root),
                        start,
                        imt_obs::trace::now_ns(),
                    );
                }
                touched.push(completion.token);
            }
        }

        // One pass per connection that moved this wake (reads and
        // completions both land here, deduplicated): flush whatever is
        // queued, then re-derive epoll interest — pause reads under
        // backpressure, arm EPOLLOUT while bytes are still pending.
        touched.sort_unstable();
        touched.dedup();
        for token in touched {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if conn.pending_bytes() > 0 && conn.flush().is_err() {
                close_conn(&poller, &mut conns, token);
                continue;
            }
            if conn.peer_closed && conn.pending_bytes() == 0 && conn.in_flight == 0 {
                close_conn(&poller, &mut conns, token);
                continue;
            }
            let paused = conn.in_flight >= config.max_in_flight
                || conn.pending_bytes() >= config.max_pending_write;
            // A half-closed peer gets no read interest at all (its EOF
            // was already consumed); re-arming EPOLLRDHUP would just
            // storm events while its responses drain.
            let mut want = if conn.peer_closed { 0 } else { sys::EPOLLRDHUP };
            if !paused && !conn.peer_closed {
                want |= sys::EPOLLIN;
            }
            if conn.pending_bytes() > 0 {
                want |= sys::EPOLLOUT;
            }
            if want != conn.interest {
                let fd = conn.sock.fd();
                if poller.modify(fd, want, token).is_ok() {
                    conn.interest = want;
                } else {
                    close_conn(&poller, &mut conns, token);
                }
            }
        }

        // Slow-loris sweep: a connection parked mid-frame past the
        // read timeout is disconnected. Idle frame-boundary
        // connections are fine — persistence is the feature.
        if last_sweep.elapsed() >= sweep_every {
            last_sweep = Instant::now();
            let stalled: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| {
                    c.decoder.mid_frame() && c.last_progress.elapsed() > config.read_timeout
                })
                .map(|(&t, _)| t)
                .collect();
            for token in stalled {
                stats.read_timeouts.fetch_add(1, Ordering::Relaxed);
                close_conn(&poller, &mut conns, token);
            }
        }
    }
    for (_, conn) in conns.drain() {
        poller.delete(conn.sock.fd());
    }
}

fn close_conn(poller: &Poller, conns: &mut HashMap<u64, ConnState>, token: u64) {
    if let Some(conn) = conns.remove(&token) {
        poller.delete(conn.sock.fd());
        // The socket closes on drop; in-flight completions for this
        // token are ignored when they arrive.
    }
}

/// Reads whatever the socket has, drains complete frames, submits them.
/// Returns `true` when the connection must be closed.
fn handle_readable(
    conn: &mut ConnState,
    service: &Arc<Service>,
    config: &ReactorConfig,
    stats: &ServerStats,
    mailbox: &Arc<Mailbox>,
    token: u64,
) -> bool {
    let read_start = imt_obs::trace_enabled().then(imt_obs::trace::now_ns);
    loop {
        // Parse everything already buffered before reading again, so a
        // peer that wrote and closed in one breath still has every
        // frame (and every corruption) accounted for.
        if drain_frames(conn, service, config, stats, mailbox, token, read_start) {
            return true;
        }
        if conn.in_flight >= config.max_in_flight
            || conn.pending_bytes() >= config.max_pending_write
        {
            // Backpressure: stop reading; the interest pass pauses
            // EPOLLIN and completions resume it.
            return false;
        }
        match conn.decoder.fill_from(&mut conn.sock) {
            Ok(0) => {
                // EOF. Mid-frame it is a truncation; at a boundary it
                // is an orderly close — responses may still be in
                // flight, so only mark it and let the interest pass
                // reap it once drained.
                if conn.decoder.mid_frame() {
                    stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                conn.peer_closed = true;
                return conn.pending_bytes() == 0 && conn.in_flight == 0;
            }
            Ok(_) => {
                conn.last_progress = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(_) => return true,
        }
    }
}

/// Drains every complete frame currently buffered on `conn`, submitting
/// requests and queueing refusals. Returns `true` when the connection
/// must be closed.
#[allow(clippy::too_many_arguments)]
fn drain_frames(
    conn: &mut ConnState,
    service: &Arc<Service>,
    config: &ReactorConfig,
    stats: &ServerStats,
    mailbox: &Arc<Mailbox>,
    token: u64,
    read_start: Option<u64>,
) -> bool {
    loop {
        if conn.in_flight >= config.max_in_flight {
            // Leave the rest buffered; the interest pass pauses reads
            // and completions resume them.
            return false;
        }
        let view = match conn.decoder.next_frame() {
            Ok(Some(view)) => view,
            Ok(None) => return false,
            Err(_) => {
                // Bad magic / version / checksum / oversize: the stream
                // is unsynchronised — typed error, drop the connection.
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        };
        if view.kind != FrameKind::Request {
            stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let request_id = view.request_id;
        let trace_root = read_start.and_then(|_| imt_obs::trace::open_trace());
        let opened_ns = read_start.unwrap_or(0);
        if let (Some(root), Some(start)) = (trace_root, read_start) {
            imt_obs::trace::record_stage("net.read", Some(root), start, imt_obs::trace::now_ns());
        }
        let decode_start = read_start.map(|_| imt_obs::trace::now_ns());
        let net_request = match NetRequest::decode(view.payload) {
            Ok(req) => req,
            Err(e) => {
                // Still framed: answer the id with a typed refusal.
                stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                let refusal = NetResponse::refusal(
                    request_id,
                    "",
                    RemoteError::BadRequest {
                        detail: e.to_string(),
                    },
                );
                if queue_refusal(conn, request_id, &refusal) {
                    return true;
                }
                continue;
            }
        };
        if let (Some(root), Some(start)) = (trace_root, decode_start) {
            imt_obs::trace::record_stage("net.decode", Some(root), start, imt_obs::trace::now_ns());
        }
        let request = match build_request(&net_request) {
            Ok(request) => request.with_trace_root(trace_root, opened_ns),
            Err(detail) => {
                stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                imt_obs::trace::instant_under("net.bad_request", trace_root);
                imt_obs::trace::close_root("net.request", trace_root, opened_ns);
                let refusal = NetResponse::refusal(
                    request_id,
                    &net_request.kernel,
                    RemoteError::BadRequest { detail },
                );
                if queue_refusal(conn, request_id, &refusal) {
                    return true;
                }
                continue;
            }
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let kernel_name = request.spec.name.clone();
        match service.submit(request) {
            Ok(ticket) => {
                conn.in_flight += 1;
                let mailbox = Arc::clone(mailbox);
                // The worker thread runs this at fulfill time: encode
                // off the reactor thread, then wake the reactor to
                // write. No thread parks waiting for it.
                ticket.on_ready(move |response| {
                    let net_response = NetResponse::from_response(&response);
                    let mut frame = Vec::new();
                    if Frame::encode_parts_into(
                        FrameKind::Response,
                        request_id,
                        &net_response.encode(),
                        &mut frame,
                    )
                    .is_ok()
                    {
                        mailbox.push_completion(Completion {
                            token,
                            frame,
                            trace_root,
                        });
                    }
                });
            }
            Err(e) => {
                // Typed admission refusal (Overloaded, QuotaExceeded,
                // Shutdown): written straight back, no job exists.
                let refusal =
                    NetResponse::refusal(request_id, &kernel_name, RemoteError::from_serve(&e));
                if queue_refusal(conn, request_id, &refusal) {
                    return true;
                }
            }
        }
    }
}

/// Encodes a refusal on the reactor thread into the connection's reused
/// scratch and queues it. Returns `true` when the connection is dead.
fn queue_refusal(conn: &mut ConnState, request_id: u64, refusal: &NetResponse) -> bool {
    let mut scratch = std::mem::take(&mut conn.encode_scratch);
    scratch.clear();
    let encoded = Frame::encode_parts_into(
        FrameKind::Response,
        request_id,
        &refusal.encode(),
        &mut scratch,
    );
    let dead = match encoded {
        Ok(()) => {
            conn.queue_bytes(&scratch);
            conn.flush().is_err()
        }
        Err(_) => true,
    };
    conn.encode_scratch = scratch;
    dead
}
