//! The blocking server front-end: sockets in, [`imt_serve`] jobs out.
//!
//! One accept thread per server, one handler thread per connection, and
//! the existing [`Service`] worker pool behind both — the network layer
//! adds no execution paths, only transport. Robustness posture:
//!
//! * **Protocol errors never take the process down.** A frame that
//!   fails to decode is answered with a typed
//!   [`RemoteError::BadRequest`] when the stream is still framed
//!   (payload-level errors), or the connection is dropped when it is
//!   not (bad magic, truncation) — either way it lands in
//!   [`ServerStats`], not in a panic.
//! * **Slow peers time out.** Every socket carries a read timeout; a
//!   peer that stalls mid-frame (slow-loris) is disconnected when the
//!   timer fires, freeing the handler thread.
//! * **Traces start at the socket.** When `IMT_OBS=trace` is on, the
//!   handler opens the request's trace root as the first frame byte
//!   arrives and hands it to the service via
//!   [`Request::with_trace_root`], so the request timeline covers
//!   read → decode → queue → warm → encode → respond in one tree.

use std::io;
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use imt_core::eval::EvalNeeds;
use imt_core::{EncoderConfig, Protection};
use imt_fault::plan::FaultPlan;
use imt_kernels::Kernel;
use imt_serve::request::Request;
use imt_serve::service::Service;

use crate::msg::{NetRequest, NetResponse, RemoteError};
use crate::wire::{Frame, FrameKind, WireError};
use crate::ListenAddr;

/// Transport knobs. Defaults are production-shaped; tests tighten them.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// How long a connection may sit idle or mid-frame before it is
    /// dropped — the slow-loris bound.
    pub read_timeout: Duration,
    /// How long a response write may stall before the connection is
    /// dropped.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

impl ServerConfig {
    /// Sets both socket timeouts.
    #[must_use]
    pub fn with_timeouts(mut self, read: Duration, write: Duration) -> ServerConfig {
        self.read_timeout = read;
        self.write_timeout = write;
        self
    }
}

/// Counters the transport layer keeps, one step removed from the
/// service's own stats: what happened on the wire before (or instead
/// of) a job existing.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Request frames decoded and submitted.
    pub requests: AtomicU64,
    /// Responses written successfully.
    pub responses: AtomicU64,
    /// Frames refused at the protocol layer (bad magic, version,
    /// truncation, checksum, oversize) — each one a typed
    /// [`WireError`], each one surviving the connection's death.
    pub protocol_errors: AtomicU64,
    /// Well-framed payloads that did not name a servable job (unknown
    /// kernel, bad plan) — answered with
    /// [`RemoteError::BadRequest`].
    pub bad_requests: AtomicU64,
    /// Connections dropped by the read timeout (slow-loris defense).
    pub read_timeouts: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Request frames decoded and submitted.
    pub requests: u64,
    /// Responses written successfully.
    pub responses: u64,
    /// Typed protocol refusals.
    pub protocol_errors: u64,
    /// Typed bad-request refusals.
    pub bad_requests: u64,
    /// Slow-loris disconnects.
    pub read_timeouts: u64,
}

impl ServerStats {
    pub(crate) fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            read_timeouts: self.read_timeouts.load(Ordering::Relaxed),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// Socket abstraction the handler works over: both stream types expose
/// the same read/write/timeout surface, boxed behind one trait.
trait Conn: io::Read + io::Write + Send {
    fn set_timeouts(&self, read: Duration, write: Duration) -> io::Result<()>;
}

impl Conn for std::net::TcpStream {
    fn set_timeouts(&self, read: Duration, write: Duration) -> io::Result<()> {
        self.set_read_timeout(Some(read))?;
        self.set_write_timeout(Some(write))
    }
}

impl Conn for std::os::unix::net::UnixStream {
    fn set_timeouts(&self, read: Duration, write: Duration) -> io::Result<()> {
        self.set_read_timeout(Some(read))?;
        self.set_write_timeout(Some(write))
    }
}

/// The running server: an accept loop plus per-connection handlers,
/// feeding a shared [`Service`].
pub struct NetServer {
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    accept_thread: Option<JoinHandle<()>>,
    local_addr: ListenAddr,
    unix_path: Option<std::path::PathBuf>,
}

impl NetServer {
    /// Binds `addr` and starts accepting. The service is shared — the
    /// caller keeps its own handle and decides when to shut it down
    /// (after [`NetServer::stop`]).
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors (address in use, bad path).
    pub fn start(
        service: Arc<Service>,
        addr: &ListenAddr,
        config: ServerConfig,
    ) -> io::Result<NetServer> {
        let (listener, local_addr, unix_path) = match addr {
            ListenAddr::Tcp(hostport) => {
                let listener = TcpListener::bind(hostport.as_str())?;
                let bound = listener.local_addr()?;
                listener.set_nonblocking(true)?;
                (
                    Listener::Tcp(listener),
                    ListenAddr::Tcp(bound.to_string()),
                    None,
                )
            }
            ListenAddr::Unix(path) => {
                // A stale socket file from a previous run refuses the
                // bind; remove it first (restart-friendly).
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                (
                    Listener::Unix(listener),
                    ListenAddr::Unix(path.clone()),
                    Some(path.clone()),
                )
            }
        };
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("imt-net-accept".to_string())
                .spawn(move || accept_loop(listener, service, config, stop, stats))?
        };
        Ok(NetServer {
            stop,
            stats,
            accept_thread: Some(accept_thread),
            local_addr,
            unix_path,
        })
    }

    /// The bound address — for TCP with port 0, the resolved ephemeral
    /// port.
    pub fn local_addr(&self) -> &ListenAddr {
        &self.local_addr
    }

    /// Transport-layer counters.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.stats.snapshot()
    }

    /// Stops accepting, waits for in-flight connection handlers to
    /// drain, and removes the Unix socket file if one was bound. The
    /// shared [`Service`] is untouched — shut it down separately.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.halt();
    }
}

fn accept_loop(
    listener: Listener,
    service: Arc<Service>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
) {
    let handlers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    while !stop.load(Ordering::SeqCst) {
        let conn: Option<Box<dyn Conn>> = match &listener {
            Listener::Tcp(l) => match l.accept() {
                Ok((stream, _)) => Some(Box::new(stream)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                Err(_) => None,
            },
            Listener::Unix(l) => match l.accept() {
                Ok((stream, _)) => Some(Box::new(stream)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                Err(_) => None,
            },
        };
        match conn {
            Some(conn) => {
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let service = Arc::clone(&service);
                let stats = Arc::clone(&stats);
                let config = config.clone();
                let spawned = std::thread::Builder::new()
                    .name("imt-net-conn".to_string())
                    .spawn(move || handle_connection(conn, &service, &config, &stats));
                if let Ok(handle) = spawned {
                    let mut guard = handlers.lock().unwrap_or_else(|e| e.into_inner());
                    guard.retain(|h| !h.is_finished());
                    guard.push(handle);
                }
            }
            // Nonblocking accept + short sleep: the loop observes `stop`
            // within ~5ms without needing a self-connection to wake it.
            None => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    let drained = {
        let mut guard = handlers.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *guard)
    };
    for handle in drained {
        let _ = handle.join();
    }
}

/// Serves one connection: a sequence of request frames, each answered
/// in order. Returns (closing the connection) on the first framing
/// error, timeout, or write failure.
fn handle_connection(
    mut conn: Box<dyn Conn>,
    service: &Service,
    config: &ServerConfig,
    stats: &ServerStats,
) {
    if conn
        .set_timeouts(config.read_timeout, config.write_timeout)
        .is_err()
    {
        return;
    }
    loop {
        // The trace root opens when the frame starts arriving, so the
        // read and decode stages are part of the request's timeline.
        let read_start = imt_obs::trace_enabled().then(imt_obs::trace::now_ns);
        let frame = match Frame::read_or_eof(&mut conn) {
            Ok(Some(frame)) => frame,
            // Clean EOF at a frame boundary is an orderly close, not a
            // protocol error; mid-frame EOF (`Truncated`) is one.
            Ok(None) => return,
            Err(WireError::Io { kind })
                if kind == io::ErrorKind::WouldBlock.to_string()
                    || kind == io::ErrorKind::TimedOut.to_string() =>
            {
                stats.read_timeouts.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(_) => {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let trace_root = read_start.and_then(|_| imt_obs::trace::open_trace());
        let opened_ns = read_start.unwrap_or(0);
        if let (Some(root), Some(start)) = (trace_root, read_start) {
            imt_obs::trace::record_stage("net.read", Some(root), start, imt_obs::trace::now_ns());
        }
        if frame.kind != FrameKind::Request {
            stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let decode_start = read_start.map(|_| imt_obs::trace::now_ns());
        let net_request = match NetRequest::decode(&frame.payload) {
            Ok(req) => req,
            Err(e) => {
                // The stream is still framed — answer the id we have
                // with a typed refusal and keep the connection.
                stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                let refusal = NetResponse::refusal(
                    frame.request_id,
                    "",
                    RemoteError::BadRequest {
                        detail: e.to_string(),
                    },
                );
                if write_response(&mut conn, frame.request_id, &refusal, stats).is_err() {
                    return;
                }
                continue;
            }
        };
        if let (Some(root), Some(start)) = (trace_root, decode_start) {
            imt_obs::trace::record_stage("net.decode", Some(root), start, imt_obs::trace::now_ns());
        }
        let request = match build_request(&net_request) {
            Ok(request) => request.with_trace_root(trace_root, opened_ns),
            Err(detail) => {
                stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                imt_obs::trace::instant_under("net.bad_request", trace_root);
                imt_obs::trace::close_root("net.request", trace_root, opened_ns);
                let refusal = NetResponse::refusal(
                    frame.request_id,
                    &net_request.kernel,
                    RemoteError::BadRequest { detail },
                );
                if write_response(&mut conn, frame.request_id, &refusal, stats).is_err() {
                    return;
                }
                continue;
            }
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let kernel_name = request.spec.name.clone();
        let response = match service.submit(request) {
            Ok(ticket) => NetResponse::from_response(&ticket.wait()),
            Err(e) => {
                NetResponse::refusal(frame.request_id, &kernel_name, RemoteError::from_serve(&e))
            }
        };
        // The service closed the trace root at respond time; the write
        // stage rides in the same trace as a sibling span.
        let write_start = read_start.map(|_| imt_obs::trace::now_ns());
        if write_response(&mut conn, frame.request_id, &response, stats).is_err() {
            return;
        }
        if let (Some(root), Some(start)) = (trace_root, write_start) {
            imt_obs::trace::record_stage("net.write", Some(root), start, imt_obs::trace::now_ns());
        }
    }
}

fn write_response(
    conn: &mut Box<dyn Conn>,
    request_id: u64,
    response: &NetResponse,
    stats: &ServerStats,
) -> Result<(), WireError> {
    let frame = Frame::new(FrameKind::Response, request_id, response.encode())?;
    frame.write_to(conn)?;
    stats.responses.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// Resolves a wire request into a service [`Request`], or a
/// human-readable refusal. Kernels resolve against the registry —
/// arbitrary source never crosses the wire. Shared with the reactor
/// front-end — both transports admit exactly the same request surface.
pub(crate) fn build_request(net: &NetRequest) -> Result<Request, String> {
    let kernel = Kernel::ALL
        .iter()
        .copied()
        .find(|k| k.name() == net.kernel)
        .ok_or_else(|| format!("unknown kernel `{}`", net.kernel))?;
    let spec = if net.test_scale {
        kernel.test_spec()
    } else {
        kernel.paper_spec()
    };
    let mut config = EncoderConfig::default();
    if net.block_size > 0 {
        config = config
            .with_block_size(net.block_size as usize)
            .map_err(|e| format!("bad block size: {e}"))?;
    }
    if net.tt_capacity > 0 {
        config = config.with_tt_capacity(net.tt_capacity as usize);
    }
    if net.bbit_capacity > 0 {
        config = config.with_bbit_capacity(net.bbit_capacity as usize);
    }
    let mut request = Request::new(spec, config);
    request.scheme = imt_core::scheme::SchemeSpec::parse(&net.scheme)
        .ok_or_else(|| format!("unknown scheme `{}`", net.scheme))?;
    request.needs = EvalNeeds {
        icache: net.needs.icache,
        timing: net.needs.timing,
        address_bus: net.needs.address_bus,
    };
    if net.deadline_ms > 0 {
        request.deadline = Some(Duration::from_millis(u64::from(net.deadline_ms)));
    }
    if !net.fault_plan.is_empty() {
        let plan = FaultPlan::parse(&net.fault_plan).map_err(|e| format!("bad fault plan: {e}"))?;
        let protection = Protection::parse(&net.protection)
            .ok_or_else(|| format!("unknown protection `{}`", net.protection))?;
        request = request.with_faults(plan, protection);
    } else if Protection::parse(&net.protection).is_none() {
        return Err(format!("unknown protection `{}`", net.protection));
    }
    if net.fault_window > 0 {
        request.fault_window = net.fault_window as usize;
    }
    request.panic_in_worker = net.panic_in_worker;
    if !net.tenant.is_empty() {
        request = request.with_tenant(net.tenant.clone());
    }
    Ok(request)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_request_resolves_registry_kernels_only() {
        let net = NetRequest::new("mmul", true);
        let request = build_request(&net).expect("mmul resolves");
        assert_eq!(request.spec.name, "mmul-8");
        assert!(request.tenant.is_none());

        let err = build_request(&NetRequest::new("quux", true)).expect_err("unknown kernel");
        assert!(err.contains("quux"), "{err}");
    }

    #[test]
    fn build_request_types_bad_parameters() {
        let mut net = NetRequest::new("tri", true);
        net.block_size = 1; // below the encoder's minimum of 2
        assert!(build_request(&net)
            .expect_err("bad k")
            .contains("block size"));

        let mut net = NetRequest::new("tri", true);
        net.fault_plan = "not-a-plan".into();
        assert!(build_request(&net)
            .expect_err("bad plan")
            .contains("fault plan"));

        let mut net = NetRequest::new("tri", true);
        net.protection = "quantum".into();
        assert!(build_request(&net)
            .expect_err("bad protection")
            .contains("quantum"));

        let mut net = NetRequest::new("tri", true);
        net.scheme = "rot13".into();
        assert!(build_request(&net)
            .expect_err("bad scheme")
            .contains("unknown scheme `rot13`"));
    }

    #[test]
    fn build_request_carries_the_scheme() {
        use imt_core::scheme::SchemeSpec;
        // Empty (the wire default) and "tt" both mean the paper pipeline.
        let request = build_request(&NetRequest::new("tri", true)).expect("builds");
        assert_eq!(request.scheme, SchemeSpec::TtBbit);
        let request =
            build_request(&NetRequest::new("tri", true).with_scheme("tt")).expect("builds");
        assert_eq!(request.scheme, SchemeSpec::TtBbit);
        let request =
            build_request(&NetRequest::new("tri", true).with_scheme("businvert")).expect("builds");
        assert_eq!(request.scheme, SchemeSpec::BusInvert);
    }

    #[test]
    fn build_request_carries_tenant_deadline_and_faults() {
        let mut net = NetRequest::new("fft", true).with_tenant("acme");
        net.deadline_ms = 1500;
        net.fault_plan = "10:bus:3".into();
        net.protection = "parity".into();
        net.fault_window = 512;
        let request = build_request(&net).expect("builds");
        assert_eq!(request.tenant.as_deref(), Some("acme"));
        assert_eq!(request.deadline, Some(Duration::from_millis(1500)));
        assert!(request.fault_plan.is_some());
        assert_eq!(request.protection, Protection::Parity);
        assert_eq!(request.fault_window, 512);
    }
}
