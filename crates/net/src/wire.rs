//! The frame layer: a versioned, length-prefixed, checksummed envelope.
//!
//! Every message on an imt-net connection is one *frame*:
//!
//! | offset | size | field | notes |
//! |-------:|-----:|-------|-------|
//! | 0      | 8    | magic `IMTWIRE1` | rejects non-protocol peers immediately |
//! | 8      | 2    | version (u16 LE) | [`WIRE_VERSION`]; mismatch is typed, not a panic |
//! | 10     | 1    | kind | [`FrameKind`]: request or response |
//! | 11     | 1    | reserved | must be 0 |
//! | 12     | 8    | request id (u64 LE) | correlates a response to its request |
//! | 20     | 4    | payload length (u32 LE) | bounded by [`MAX_FRAME_BYTES`] **before** any allocation |
//! | 24     | 4    | payload CRC-32 (u32 LE) | detects corruption the length fields miss |
//! | 28     | n    | payload | [`crate::msg`] body |
//!
//! The decode discipline is the same one `imt_sim::edge`'s `IMTEPROF`
//! format established: every declared length is checked against both the
//! hard cap and the bytes actually present before a single byte is
//! allocated, and every malformed input maps to a typed [`WireError`] —
//! never a panic, never an allocation sized by attacker-controlled
//! numbers.

use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic: fixed 8 bytes, version-independent.
pub const MAGIC: [u8; 8] = *b"IMTWIRE1";

/// Protocol version carried in every frame header.
pub const WIRE_VERSION: u16 = 1;

/// Fixed header size in bytes (everything before the payload).
pub const HEADER_BYTES: usize = 28;

/// Hard cap on a frame's declared payload length. A header declaring
/// more is refused with [`WireError::FrameTooLarge`] before any
/// allocation happens — the declared length never sizes a buffer until
/// it has passed this check.
pub const MAX_FRAME_BYTES: usize = 4 * 1024 * 1024;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: one [`crate::msg::NetRequest`].
    Request,
    /// Server → client: one [`crate::msg::NetResponse`].
    Response,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
        }
    }

    fn from_byte(b: u8) -> Result<FrameKind, WireError> {
        match b {
            1 => Ok(FrameKind::Request),
            2 => Ok(FrameKind::Response),
            other => Err(WireError::UnknownFrameKind { kind: other }),
        }
    }
}

/// Every way a frame or payload can fail to decode. Corrupt input maps
/// here — by construction the codec has no panicking path and no
/// allocation sized by unvalidated input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The first 8 bytes were not [`MAGIC`] — not an imt-net peer.
    BadMagic,
    /// The peer speaks a version this build does not.
    UnsupportedVersion {
        /// The version the frame declared.
        got: u16,
    },
    /// The frame kind byte named no known kind.
    UnknownFrameKind {
        /// The byte received.
        kind: u8,
    },
    /// The header's reserved byte was non-zero.
    ReservedNonZero,
    /// The declared payload length exceeds the protocol cap.
    FrameTooLarge {
        /// Bytes the header declared.
        declared: u64,
        /// The cap ([`MAX_FRAME_BYTES`]).
        limit: u64,
    },
    /// The stream ended before the declared bytes arrived (truncated
    /// frame or mid-frame disconnect).
    Truncated,
    /// The payload arrived but its CRC-32 does not match the header.
    ChecksumMismatch {
        /// CRC the header declared.
        declared: u32,
        /// CRC of the bytes received.
        computed: u32,
    },
    /// The payload's internal structure is invalid (bad tag, bounded
    /// length exceeded, non-UTF-8 string, trailing bytes).
    Malformed {
        /// What was wrong, for operators.
        detail: String,
    },
    /// The underlying socket failed (reset, refused, timeout).
    Io {
        /// The `std::io::ErrorKind`, stringified for comparability.
        kind: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad magic: not an imt-net frame"),
            WireError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported wire version {got} (this build speaks {WIRE_VERSION})"
                )
            }
            WireError::UnknownFrameKind { kind } => write!(f, "unknown frame kind {kind}"),
            WireError::ReservedNonZero => write!(f, "reserved header byte is non-zero"),
            WireError::FrameTooLarge { declared, limit } => {
                write!(
                    f,
                    "declared payload of {declared} bytes exceeds the {limit}-byte frame cap"
                )
            }
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::ChecksumMismatch { declared, computed } => write!(
                f,
                "payload checksum mismatch (header {declared:#010x}, computed {computed:#010x})"
            ),
            WireError::Malformed { detail } => write!(f, "malformed payload: {detail}"),
            WireError::Io { kind } => write!(f, "socket error: {kind}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io {
                kind: e.kind().to_string(),
            }
        }
    }
}

impl WireError {
    /// Shorthand for [`WireError::Malformed`].
    pub(crate) fn malformed(detail: impl Into<String>) -> WireError {
        WireError::Malformed {
            detail: detail.into(),
        }
    }
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected), table-driven
// ---------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 (IEEE) over `bytes` — the payload checksum carried in every
/// frame header.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Frame encode / decode
// ---------------------------------------------------------------------

/// One decoded frame: the envelope plus the raw payload bytes, verified
/// against the header checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// The correlation id the client assigned.
    pub request_id: u64,
    /// The verified payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a frame, refusing payloads over [`MAX_FRAME_BYTES`] so a
    /// local bug cannot emit a frame no peer would accept.
    ///
    /// # Errors
    ///
    /// [`WireError::FrameTooLarge`] when the payload exceeds the cap.
    pub fn new(kind: FrameKind, request_id: u64, payload: Vec<u8>) -> Result<Frame, WireError> {
        if payload.len() > MAX_FRAME_BYTES {
            return Err(WireError::FrameTooLarge {
                declared: payload.len() as u64,
                limit: MAX_FRAME_BYTES as u64,
            });
        }
        Ok(Frame {
            kind,
            request_id,
            payload,
        })
    }

    /// Serialises the frame (header + payload) into one buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES + self.payload.len());
        Frame::encode_parts_into(self.kind, self.request_id, &self.payload, &mut out)
            .expect("Frame::new already enforced the cap");
        out
    }

    /// Appends one encoded frame (header + payload) to `out` without
    /// allocating beyond `out`'s own growth — the buffer-reuse encode
    /// path. Callers that keep `out` across frames pay zero allocations
    /// per frame once its capacity has warmed up.
    ///
    /// # Errors
    ///
    /// [`WireError::FrameTooLarge`] when the payload exceeds the cap —
    /// the same refusal [`Frame::new`] makes, so a local bug cannot emit
    /// a frame no peer would accept.
    pub fn encode_parts_into(
        kind: FrameKind,
        request_id: u64,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), WireError> {
        if payload.len() > MAX_FRAME_BYTES {
            return Err(WireError::FrameTooLarge {
                declared: payload.len() as u64,
                limit: MAX_FRAME_BYTES as u64,
            });
        }
        out.reserve(HEADER_BYTES + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        out.push(kind.to_byte());
        out.push(0); // reserved
        out.extend_from_slice(&request_id.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
        Ok(())
    }

    /// Writes the frame to `w` and flushes.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] / [`WireError::Truncated`] on socket failure.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), WireError> {
        w.write_all(&self.to_bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Reads one frame from `r`, validating header fields in order and
    /// bounding the payload allocation by the checked declared length.
    ///
    /// # Errors
    ///
    /// Every corrupt, truncated, oversized, or version-mismatched input
    /// maps to its typed [`WireError`]; socket failures map to
    /// [`WireError::Io`].
    pub fn read_from(r: &mut impl Read) -> Result<Frame, WireError> {
        match Frame::read_or_eof(r)? {
            Some(frame) => Ok(frame),
            None => Err(WireError::Truncated),
        }
    }

    /// Like [`Frame::read_from`], but a clean EOF *at a frame boundary*
    /// (zero header bytes read) returns `Ok(None)` — the orderly-close
    /// signal a server loop needs to tell "peer hung up between
    /// requests" apart from "peer died mid-frame".
    ///
    /// # Errors
    ///
    /// As [`Frame::read_from`]; EOF after at least one header byte is
    /// [`WireError::Truncated`].
    pub fn read_or_eof(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
        let mut header = [0u8; HEADER_BYTES];
        let mut filled = 0;
        while filled < HEADER_BYTES {
            match r.read(&mut header[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => return Err(WireError::Truncated),
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Frame::parse_header(&header).and_then(|(kind, request_id, len, declared_crc)| {
            // `len` is ≤ MAX_FRAME_BYTES here, so this allocation is
            // bounded by the protocol cap, not by peer-declared data.
            let mut payload = vec![0u8; len];
            r.read_exact(&mut payload)?;
            let computed = crc32(&payload);
            if computed != declared_crc {
                return Err(WireError::ChecksumMismatch {
                    declared: declared_crc,
                    computed,
                });
            }
            Ok(Some(Frame {
                kind,
                request_id,
                payload,
            }))
        })
    }

    /// Decodes a frame from a complete in-memory buffer, refusing
    /// trailing bytes (a stream reader instead leaves them for the next
    /// frame).
    ///
    /// # Errors
    ///
    /// As [`Frame::read_from`], plus [`WireError::Malformed`] for
    /// trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Frame, WireError> {
        if bytes.len() < HEADER_BYTES {
            return Err(WireError::Truncated);
        }
        let (kind, request_id, len, declared_crc) = Frame::parse_header(&bytes[..HEADER_BYTES])?;
        let rest = &bytes[HEADER_BYTES..];
        if rest.len() < len {
            return Err(WireError::Truncated);
        }
        if rest.len() > len {
            return Err(WireError::malformed(format!(
                "{} trailing bytes after the declared payload",
                rest.len() - len
            )));
        }
        let computed = crc32(rest);
        if computed != declared_crc {
            return Err(WireError::ChecksumMismatch {
                declared: declared_crc,
                computed,
            });
        }
        Ok(Frame {
            kind,
            request_id,
            payload: rest.to_vec(),
        })
    }

    /// Validates the fixed header; returns `(kind, request_id,
    /// payload_len, crc)` with `payload_len` already checked against
    /// [`MAX_FRAME_BYTES`].
    fn parse_header(header: &[u8]) -> Result<(FrameKind, u64, usize, u32), WireError> {
        debug_assert_eq!(header.len(), HEADER_BYTES);
        if header[..8] != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = u16::from_le_bytes([header[8], header[9]]);
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion { got: version });
        }
        let kind = FrameKind::from_byte(header[10])?;
        if header[11] != 0 {
            return Err(WireError::ReservedNonZero);
        }
        let mut id = [0u8; 8];
        id.copy_from_slice(&header[12..20]);
        let request_id = u64::from_le_bytes(id);
        let len = u32::from_le_bytes([header[20], header[21], header[22], header[23]]) as u64;
        if len > MAX_FRAME_BYTES as u64 {
            return Err(WireError::FrameTooLarge {
                declared: len,
                limit: MAX_FRAME_BYTES as u64,
            });
        }
        let crc = u32::from_le_bytes([header[24], header[25], header[26], header[27]]);
        Ok((kind, request_id, len as usize, crc))
    }
}

// ---------------------------------------------------------------------
// Incremental (non-blocking) frame decoding
// ---------------------------------------------------------------------

/// A borrowed view of one decoded frame. The payload points into the
/// [`FrameDecoder`]'s reused buffer, so the steady-state decode path
/// allocates nothing per frame; call [`FrameView::to_frame`] only when
/// an owned [`Frame`] is actually needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameView<'a> {
    /// What the payload is.
    pub kind: FrameKind,
    /// The correlation id the client assigned.
    pub request_id: u64,
    /// The verified payload bytes (CRC already checked).
    pub payload: &'a [u8],
}

impl FrameView<'_> {
    /// Copies the view into an owned [`Frame`].
    pub fn to_frame(&self) -> Frame {
        Frame {
            kind: self.kind,
            request_id: self.request_id,
            payload: self.payload.to_vec(),
        }
    }
}

/// Incremental frame decoder for non-blocking readers: feed it whatever
/// bytes the socket produced, then drain complete frames. This is the
/// reactor's half of the codec — a blocking reader can keep using
/// [`Frame::read_or_eof`].
///
/// The validation discipline is identical to the blocking path: the
/// header's declared length is checked against [`MAX_FRAME_BYTES`] the
/// moment the header is complete — *before* the decoder waits for (or
/// buffers toward) the payload — so a hostile length never sizes
/// anything. A partial frame is simply "not yet" ([`Ok(None)`] from
/// [`FrameDecoder::next_frame`]); whether a dangling partial at EOF is
/// [`WireError::Truncated`] is the connection owner's call, via
/// [`FrameDecoder::mid_frame`].
///
/// The internal buffer is retained and compacted across frames, so a
/// long-lived connection decodes in steady state with zero allocations
/// per frame (the zero-alloc test in `tests/alloc_reuse.rs` pins this).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted away on the next feed/fill.
    start: usize,
}

/// Bytes [`FrameDecoder::fill_from`] asks the reader for per call.
const DECODER_READ_CHUNK: usize = 64 * 1024;

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Bytes buffered but not yet drained as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when the buffer holds a *partial* frame — the signal that an
    /// EOF here is [`WireError::Truncated`], not an orderly close.
    pub fn mid_frame(&self) -> bool {
        self.buffered() > 0
    }

    /// Drops the consumed prefix, reusing the buffer's capacity.
    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(self.buf.len() - self.start);
            self.start = 0;
        }
    }

    /// Appends raw socket bytes to the decode buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Reads once from `r` directly into the buffer (at most
    /// [`DECODER_READ_CHUNK`] bytes), returning how many bytes arrived.
    /// `Ok(0)` is EOF. The caller decides what `WouldBlock` means — a
    /// non-blocking reactor treats it as "drained", a blocking reader
    /// with a timeout treats it as the timeout.
    ///
    /// # Errors
    ///
    /// Propagates the reader's `io::Error` (except `Interrupted`, which
    /// is retried internally).
    pub fn fill_from(&mut self, r: &mut impl Read) -> io::Result<usize> {
        self.compact();
        let data_end = self.buf.len();
        // Grow len (not capacity, in steady state) to open a read window.
        self.buf.resize(data_end + DECODER_READ_CHUNK, 0);
        let got = loop {
            match r.read(&mut self.buf[data_end..]) {
                Ok(n) => break Ok(n),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => break Err(e),
            }
        };
        match got {
            Ok(n) => {
                self.buf.truncate(data_end + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(data_end);
                Err(e)
            }
        }
    }

    /// Drains the next complete frame, if one is fully buffered.
    ///
    /// Returns `Ok(None)` when more bytes are needed. The returned view
    /// borrows the internal buffer; it stays valid until the next call
    /// that mutates the decoder.
    ///
    /// # Errors
    ///
    /// Every malformed header or checksum mismatch is the same typed
    /// [`WireError`] the blocking path produces; after an error the
    /// stream is unsynchronised and the connection must be dropped.
    pub fn next_frame(&mut self) -> Result<Option<FrameView<'_>>, WireError> {
        if self.buffered() < HEADER_BYTES {
            return Ok(None);
        }
        let header = &self.buf[self.start..self.start + HEADER_BYTES];
        let (kind, request_id, len, declared_crc) = Frame::parse_header(header)?;
        if self.buffered() < HEADER_BYTES + len {
            return Ok(None);
        }
        let payload_start = self.start + HEADER_BYTES;
        let payload = &self.buf[payload_start..payload_start + len];
        let computed = crc32(payload);
        if computed != declared_crc {
            return Err(WireError::ChecksumMismatch {
                declared: declared_crc,
                computed,
            });
        }
        self.start = payload_start + len;
        let payload = &self.buf[payload_start..payload_start + len];
        Ok(Some(FrameView {
            kind,
            request_id,
            payload,
        }))
    }
}

// ---------------------------------------------------------------------
// Payload reader/writer primitives
// ---------------------------------------------------------------------

/// Little-endian payload writer — the counterpart of [`Reader`].
#[derive(Debug, Default)]
pub(crate) struct Writer {
    out: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Writer {
        Writer::default()
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i32(&mut self, v: i32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// u32 length prefix + UTF-8 bytes.
    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.out.extend_from_slice(s.as_bytes());
    }

    /// u32 count prefix + words.
    pub(crate) fn u64_slice(&mut self, v: &[u64]) {
        self.u32(v.len() as u32);
        for &word in v {
            self.out.extend_from_slice(&word.to_le_bytes());
        }
    }

    pub(crate) fn finish(self) -> Vec<u8> {
        self.out
    }
}

/// Bounded little-endian payload reader. Every length read from the
/// stream is validated against the bytes *actually present* before any
/// allocation — the `IMTEPROF` discipline.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::malformed(format!(
                "needed {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(b);
        Ok(u64::from_le_bytes(w))
    }

    pub(crate) fn i32(&mut self) -> Result<i32, WireError> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, WireError> {
        let b = self.take(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(b);
        Ok(f64::from_le_bytes(w))
    }

    /// Length-prefixed UTF-8 string; the declared length is bounded by
    /// the bytes present before `take` slices (no allocation on lies).
    pub(crate) fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if self.remaining() < len {
            return Err(WireError::malformed(format!(
                "string declares {len} bytes, {} remain",
                self.remaining()
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::malformed("string is not valid UTF-8"))
    }

    /// Count-prefixed u64 vector; the declared count is bounded by the
    /// bytes present (count × 8) before the vector is allocated.
    pub(crate) fn u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let count = self.u32()? as usize;
        if self.remaining() < count.saturating_mul(8) {
            return Err(WireError::malformed(format!(
                "u64 vector declares {count} words, {} bytes remain",
                self.remaining()
            )));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Rejects trailing bytes — a complete payload must consume exactly.
    pub(crate) fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::malformed(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame::new(FrameKind::Request, 42, b"hello wire".to_vec()).expect("under cap")
    }

    #[test]
    fn round_trips_through_bytes_and_streams() {
        let f = frame();
        let bytes = f.to_bytes();
        assert_eq!(Frame::from_bytes(&bytes).expect("decodes"), f);
        let mut cursor = io::Cursor::new(bytes);
        assert_eq!(Frame::read_from(&mut cursor).expect("decodes"), f);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789" — the standard check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_truncation_is_typed_not_a_panic() {
        let bytes = frame().to_bytes();
        for keep in 0..bytes.len() {
            let err = Frame::from_bytes(&bytes[..keep]).expect_err("truncated");
            assert!(
                matches!(err, WireError::Truncated),
                "prefix of {keep} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_version_kind_reserved_are_typed() {
        let mut bytes = frame().to_bytes();
        bytes[0] ^= 0xFF;
        assert_eq!(Frame::from_bytes(&bytes), Err(WireError::BadMagic));

        let mut bytes = frame().to_bytes();
        bytes[8] = 0x7F;
        assert!(matches!(
            Frame::from_bytes(&bytes),
            Err(WireError::UnsupportedVersion { .. })
        ));

        let mut bytes = frame().to_bytes();
        bytes[10] = 200;
        assert_eq!(
            Frame::from_bytes(&bytes),
            Err(WireError::UnknownFrameKind { kind: 200 })
        );

        let mut bytes = frame().to_bytes();
        bytes[11] = 1;
        assert_eq!(Frame::from_bytes(&bytes), Err(WireError::ReservedNonZero));
    }

    #[test]
    fn oversized_declared_length_is_refused_before_allocation() {
        let mut bytes = frame().to_bytes();
        bytes[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Frame::from_bytes(&bytes),
            Err(WireError::FrameTooLarge {
                declared: u64::from(u32::MAX),
                limit: MAX_FRAME_BYTES as u64,
            })
        );
        // The stream path refuses at the same point: feed only a header
        // so a non-refusal would block or over-allocate.
        let mut cursor = io::Cursor::new(bytes[..HEADER_BYTES].to_vec());
        assert!(matches!(
            Frame::read_from(&mut cursor),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let mut bytes = frame().to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            Frame::from_bytes(&bytes),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_refused() {
        let mut bytes = frame().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Frame::from_bytes(&bytes),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn frame_new_refuses_oversized_payloads() {
        let err =
            Frame::new(FrameKind::Request, 0, vec![0; MAX_FRAME_BYTES + 1]).expect_err("over cap");
        assert!(matches!(err, WireError::FrameTooLarge { .. }));
    }

    #[test]
    fn decoder_drains_pipelined_frames_across_arbitrary_chunking() {
        let frames: Vec<Frame> = (0..5)
            .map(|i| {
                Frame::new(FrameKind::Response, i, format!("payload {i}").into_bytes())
                    .expect("under cap")
            })
            .collect();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.to_bytes());
        }
        // Feed in every chunk size from 1 byte to the whole stream.
        for chunk in [1usize, 3, 7, HEADER_BYTES, HEADER_BYTES + 1, stream.len()] {
            let mut decoder = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                decoder.feed(piece);
                while let Some(view) = decoder.next_frame().expect("well-formed stream") {
                    got.push(view.to_frame());
                }
            }
            assert_eq!(got, frames, "chunk size {chunk}");
            assert!(!decoder.mid_frame(), "chunk size {chunk} left residue");
        }
    }

    #[test]
    fn decoder_is_bounded_before_allocation_and_typed_on_corruption() {
        let good = frame().to_bytes();

        // Oversize declared length: refused the moment the header is
        // complete, without waiting for (or buffering toward) a payload.
        let mut oversize = good.clone();
        oversize[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut decoder = FrameDecoder::new();
        decoder.feed(&oversize[..HEADER_BYTES]);
        assert!(matches!(
            decoder.next_frame(),
            Err(WireError::FrameTooLarge { .. })
        ));

        // Bad magic: typed immediately.
        let mut decoder = FrameDecoder::new();
        decoder.feed(b"NOTWIRE!rest of garbage that is long enough to hold a header");
        assert_eq!(decoder.next_frame().unwrap_err(), WireError::BadMagic);

        // Payload corruption: typed checksum mismatch.
        let mut corrupt = good.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 1;
        let mut decoder = FrameDecoder::new();
        decoder.feed(&corrupt);
        assert!(matches!(
            decoder.next_frame(),
            Err(WireError::ChecksumMismatch { .. })
        ));

        // A dangling partial frame is visible to the connection owner.
        let mut decoder = FrameDecoder::new();
        decoder.feed(&good[..HEADER_BYTES + 2]);
        assert_eq!(decoder.next_frame().expect("incomplete, not error"), None);
        assert!(decoder.mid_frame());
    }

    #[test]
    fn decoder_fill_from_reads_and_signals_eof() {
        let bytes = frame().to_bytes();
        let mut cursor = io::Cursor::new(bytes);
        let mut decoder = FrameDecoder::new();
        let n = decoder.fill_from(&mut cursor).expect("read ok");
        assert!(n > 0);
        let view = decoder.next_frame().expect("decodes").expect("complete");
        assert_eq!(view.to_frame(), frame());
        assert_eq!(decoder.fill_from(&mut cursor).expect("eof ok"), 0);
        assert!(!decoder.mid_frame());
    }

    #[test]
    fn encode_parts_into_matches_to_bytes_and_enforces_cap() {
        let f = frame();
        let mut out = Vec::new();
        Frame::encode_parts_into(f.kind, f.request_id, &f.payload, &mut out).expect("under cap");
        assert_eq!(out, f.to_bytes());
        // Appends rather than clears, so one buffer can batch frames.
        Frame::encode_parts_into(f.kind, f.request_id, &f.payload, &mut out).expect("under cap");
        assert_eq!(out.len(), 2 * f.to_bytes().len());
        let big = vec![0u8; MAX_FRAME_BYTES + 1];
        assert!(matches!(
            Frame::encode_parts_into(FrameKind::Request, 0, &big, &mut out),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn reader_bounds_every_declared_length() {
        // String declaring more bytes than present.
        let mut w = Writer::new();
        w.u32(1000);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.str(), Err(WireError::Malformed { .. })));

        // u64 vector declaring more words than present.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.u64_vec(), Err(WireError::Malformed { .. })));
    }
}
