//! Pins the wire codec's buffer-reuse contract: once scratch buffers
//! have warmed up, encoding and decoding frames allocates *zero* bytes
//! per frame. A counting global allocator (per-test-binary, which is
//! why this lives alone in its own integration test) measures the hot
//! loop directly — a regression that re-introduces a per-frame `Vec`
//! fails the assert with the allocation count in hand.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use imt_net::wire::{Frame, FrameDecoder, FrameKind};

struct CountingAlloc;

// Per-thread counter (const-initialised, so TLS access itself never
// allocates): the libtest harness allocates concurrently on its own
// threads, so a process-global count would be noise.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates entirely to `System`; the counter is a plain
// thread-local cell with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

#[test]
fn steady_state_encode_decode_allocates_nothing_per_frame() {
    // A realistic payload size (a NetRequest is ~200 bytes, responses
    // with evaluations a few KB).
    let payload: Vec<u8> = (0..2048u32).map(|i| (i * 7) as u8).collect();
    let mut encode_scratch: Vec<u8> = Vec::new();
    let mut decoder = FrameDecoder::new();

    // Warmup: first pass grows the scratch and the decoder buffer (and
    // initialises the lazy CRC table).
    for round in 0..8u64 {
        encode_scratch.clear();
        Frame::encode_parts_into(FrameKind::Request, round, &payload, &mut encode_scratch)
            .expect("under cap");
        decoder.feed(&encode_scratch);
        let view = decoder
            .next_frame()
            .expect("well-formed")
            .expect("complete");
        assert_eq!(view.request_id, round);
        assert_eq!(view.payload, &payload[..]);
    }

    // Measured pass: N frames, zero allocations.
    const FRAMES: u64 = 1000;
    let before = allocations();
    for round in 0..FRAMES {
        encode_scratch.clear();
        Frame::encode_parts_into(FrameKind::Request, round, &payload, &mut encode_scratch)
            .expect("under cap");
        decoder.feed(&encode_scratch);
        let view = decoder
            .next_frame()
            .expect("well-formed")
            .expect("complete");
        assert_eq!(view.request_id, round);
        assert_eq!(view.payload.len(), payload.len());
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "hot-path encode/decode of {FRAMES} frames must not allocate"
    );
}

#[test]
fn pipelined_batches_stay_allocation_free_too() {
    // Many frames per feed (the pipelined shape the reactor sees), with
    // deliberately odd chunk boundaries so compaction paths run.
    let payload: Vec<u8> = vec![0xA5; 333];
    let mut batch: Vec<u8> = Vec::new();
    let mut decoder = FrameDecoder::new();

    let mut drained = 0u64;
    // Warmup.
    for round in 0..4u64 {
        batch.clear();
        for i in 0..16u64 {
            Frame::encode_parts_into(FrameKind::Response, round * 16 + i, &payload, &mut batch)
                .expect("under cap");
        }
        for chunk in batch.chunks(777) {
            decoder.feed(chunk);
            while decoder.next_frame().expect("well-formed").is_some() {
                drained += 1;
            }
        }
    }
    assert_eq!(drained, 64);

    let before = allocations();
    for round in 0..64u64 {
        batch.clear();
        for i in 0..16u64 {
            Frame::encode_parts_into(FrameKind::Response, round * 16 + i, &payload, &mut batch)
                .expect("under cap");
        }
        for chunk in batch.chunks(777) {
            decoder.feed(chunk);
            while decoder.next_frame().expect("well-formed").is_some() {
                drained += 1;
            }
        }
    }
    let after = allocations();
    assert_eq!(drained, 64 + 64 * 16);
    assert_eq!(
        after - before,
        0,
        "batched pipelined decode must not allocate in steady state"
    );
}
