//! Client retry-policy tests against scripted fake servers: retries are
//! bounded, jittered-backoff sleeps respect the deadline, and
//! non-idempotent requests never retry.

use std::io::Read;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use imt_net::client::{Client, ClientConfig};
use imt_net::msg::{NetRequest, NetResponse, RemoteError};
use imt_net::wire::{Frame, FrameKind};
use imt_net::{ListenAddr, NetError};

fn unique_sock(tag: &str) -> PathBuf {
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .as_nanos();
    std::env::temp_dir().join(format!("imt-net-{tag}-{}-{nonce}.sock", std::process::id()))
}

/// A scripted peer: counts connections and runs `script` on each.
fn fake_server(
    tag: &str,
    script: impl Fn(u64, std::os::unix::net::UnixStream) + Send + 'static,
) -> (PathBuf, Arc<AtomicU64>) {
    let path = unique_sock(tag);
    let listener = UnixListener::bind(&path).expect("bind");
    let accepts = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&accepts);
    std::thread::spawn(move || {
        // Exits when the listener errors (test process teardown).
        for conn in listener.incoming() {
            let Ok(conn) = conn else { break };
            let n = counter.fetch_add(1, Ordering::SeqCst) + 1;
            script(n, conn);
        }
    });
    (path, accepts)
}

#[test]
fn non_idempotent_requests_never_retry() {
    // Every connection is slammed shut — a transport error each time.
    let (path, accepts) = fake_server("noretry", |_, conn| drop(conn));
    let client = Client::new(
        ListenAddr::Unix(path),
        ClientConfig::default()
            .with_deadline(Duration::from_secs(10))
            .with_retries(5)
            .with_backoff(Duration::from_millis(1), Duration::from_millis(5)),
    );
    let mut request = NetRequest::new("tri", true);
    request.idempotent = false;
    let err = client.call(&request).expect_err("transport fails");
    assert!(matches!(err, NetError::Wire(_)), "got {err:?}");
    // Exactly one connection: the failure was not retried.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(accepts.load(Ordering::SeqCst), 1);
}

#[test]
fn idempotent_requests_retry_exactly_the_budget() {
    let (path, accepts) = fake_server("budget", |_, conn| drop(conn));
    let client = Client::new(
        ListenAddr::Unix(path),
        ClientConfig::default()
            .with_deadline(Duration::from_secs(10))
            .with_retries(3)
            .with_backoff(Duration::from_millis(1), Duration::from_millis(5)),
    );
    let err = client
        .call(&NetRequest::new("tri", true))
        .expect_err("all attempts fail");
    match err {
        NetError::RetriesExhausted { attempts, .. } => assert_eq!(attempts, 4),
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(accepts.load(Ordering::SeqCst), 4, "retries(3) = 4 attempts");
}

#[test]
fn a_transient_failure_is_retried_to_success() {
    // First connection dies; the second one answers properly.
    let (path, accepts) = fake_server("transient", |n, mut conn| {
        if n == 1 {
            return; // dropped — transport error for the client
        }
        let frame = Frame::read_from(&mut conn).expect("request arrives");
        let response = NetResponse::refusal(
            frame.request_id,
            "tri",
            RemoteError::Cancelled, // typed, NOT retryable — ends the loop
        );
        Frame::new(FrameKind::Response, frame.request_id, response.encode())
            .expect("frame")
            .write_to(&mut conn)
            .expect("write");
    });
    let client = Client::new(
        ListenAddr::Unix(path),
        ClientConfig::default()
            .with_deadline(Duration::from_secs(10))
            .with_retries(3)
            .with_backoff(Duration::from_millis(1), Duration::from_millis(5)),
    );
    let response = client
        .call(&NetRequest::new("tri", true))
        .expect("second attempt succeeds");
    assert_eq!(response.outcome, Err(RemoteError::Cancelled));
    assert_eq!(accepts.load(Ordering::SeqCst), 2);
}

#[test]
fn the_deadline_bounds_the_whole_retry_loop() {
    // The server accepts and then ignores the socket: every attempt
    // burns its io timeout, and the deadline must cut the loop short
    // well before the nominal 50-attempt budget.
    let (path, _accepts) = fake_server("deadline", |_, mut conn| {
        let mut sink = [0u8; 1024];
        while let Ok(n) = conn.read(&mut sink) {
            if n == 0 {
                break;
            }
        }
    });
    let mut config = ClientConfig::default()
        .with_deadline(Duration::from_millis(400))
        .with_retries(50)
        .with_backoff(Duration::from_millis(1), Duration::from_millis(5));
    config.io_timeout = Duration::from_millis(100);
    let client = Client::new(ListenAddr::Unix(path), config);
    let started = Instant::now();
    let err = client
        .call(&NetRequest::new("tri", true))
        .expect_err("deadline fires");
    let elapsed = started.elapsed();
    assert!(
        matches!(
            err,
            NetError::DeadlineExceeded { .. } | NetError::RetriesExhausted { .. }
        ),
        "got {err:?}"
    );
    assert!(
        elapsed < Duration::from_secs(2),
        "retry loop overran its 400ms deadline: {elapsed:?}"
    );
}

#[test]
fn an_unreachable_server_fails_typed() {
    let client = Client::new(
        ListenAddr::Unix(PathBuf::from("/nonexistent/imt-net.sock")),
        ClientConfig::default()
            .with_deadline(Duration::from_secs(2))
            .with_retries(1)
            .with_backoff(Duration::from_millis(1), Duration::from_millis(2)),
    );
    let err = client
        .call(&NetRequest::new("tri", true))
        .expect_err("nothing listens");
    assert!(
        matches!(
            &err,
            NetError::RetriesExhausted { last, .. } if matches!(**last, NetError::Wire(_))
        ),
        "got {err:?}"
    );
}
