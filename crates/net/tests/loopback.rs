//! End-to-end transport tests over real sockets: round-trips are
//! bit-identical to serial evaluation, every chaos injection yields a
//! typed outcome and a still-serving server, and serving semantics
//! (quotas, restarts, disconnects) survive the wire.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use imt_bench::runner::kernel_profile;
use imt_core::eval::{evaluate_auto, EvalNeeds};
use imt_core::{encode_program, EncoderConfig};
use imt_kernels::Kernel;
use imt_net::chaos::{Injection, ALL_INJECTIONS};
use imt_net::client::{Client, ClientConfig};
use imt_net::msg::{NetRequest, NetResponse, RemoteError};
use imt_net::server::{NetServer, ServerConfig};
use imt_net::wire::{Frame, FrameKind};
use imt_net::ListenAddr;
use imt_serve::service::{Service, ServiceConfig};

fn unique_sock(tag: &str) -> PathBuf {
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .as_nanos();
    std::env::temp_dir().join(format!("imt-net-{tag}-{}-{nonce}.sock", std::process::id()))
}

fn start_unix(tag: &str, service_config: ServiceConfig) -> (Arc<Service>, NetServer, PathBuf) {
    let path = unique_sock(tag);
    let service = Arc::new(Service::start(service_config));
    let server = NetServer::start(
        Arc::clone(&service),
        &ListenAddr::Unix(path.clone()),
        ServerConfig::default().with_timeouts(Duration::from_millis(500), Duration::from_secs(2)),
    )
    .expect("unix bind");
    (service, server, path)
}

fn client_for(path: &std::path::Path) -> Client {
    Client::new(
        ListenAddr::Unix(path.to_path_buf()),
        ClientConfig::default().with_deadline(Duration::from_secs(60)),
    )
}

/// The serial reference a wire response must match bit for bit.
fn serial_reference(kernel: Kernel, block_size: usize) -> imt_core::eval::Evaluation {
    let spec = kernel.test_spec();
    let profile = kernel_profile(&spec);
    let config = EncoderConfig::default()
        .with_block_size(block_size)
        .expect("valid block size");
    let encoded = encode_program(&profile.program, &profile.profile, &config).expect("encodes");
    let (evaluation, _) = evaluate_auto(
        &profile.program,
        &encoded,
        spec.max_steps,
        Some(&profile.edges),
        EvalNeeds::transitions_only(),
    )
    .expect("evaluates");
    evaluation
}

#[test]
fn unix_round_trip_is_bit_identical_to_serial() {
    let (service, server, path) = start_unix("roundtrip", ServiceConfig::default().with_workers(2));
    let client = client_for(&path);

    let response = client
        .call(&NetRequest::new("tri", true).with_block_size(5))
        .expect("transport works");
    let done = response.outcome.expect("tri completes");
    assert_eq!(done.evaluation.decode_mismatches, 0);
    assert_eq!(done.evaluation, serial_reference(Kernel::Tri, 5));
    assert_eq!(response.kernel, "tri-12x3");

    server.stop();
    match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => panic!("server kept a service handle after stop"),
    }
}

#[test]
fn tcp_round_trip_works_on_an_ephemeral_port() {
    let service = Arc::new(Service::start(ServiceConfig::default().with_workers(2)));
    let server = NetServer::start(
        Arc::clone(&service),
        &ListenAddr::Tcp("127.0.0.1:0".to_string()),
        ServerConfig::default(),
    )
    .expect("tcp bind");
    let client = Client::new(
        server.local_addr().clone(),
        ClientConfig::default().with_deadline(Duration::from_secs(60)),
    );

    let response = client
        .call(&NetRequest::new("fft", true))
        .expect("transport works");
    let done = response.outcome.expect("fft completes");
    assert_eq!(done.evaluation, serial_reference(Kernel::Fft, 5));

    server.stop();
}

#[test]
fn bad_request_is_typed_and_the_connection_survives() {
    let (_service, server, path) = start_unix("badreq", ServiceConfig::default().with_workers(1));
    let mut conn = UnixStream::connect(&path).expect("connect");

    // Unknown kernel: the frame is well-formed, so the server answers
    // typed and keeps the connection.
    let bad = Frame::new(
        FrameKind::Request,
        1,
        NetRequest::new("quux", true).encode(),
    )
    .expect("frame");
    bad.write_to(&mut conn).expect("write");
    let reply = Frame::read_from(&mut conn).expect("typed reply, not a hangup");
    assert_eq!(reply.request_id, 1);
    let response = NetResponse::decode(&reply.payload).expect("decodes");
    match response.outcome {
        Err(RemoteError::BadRequest { detail }) => assert!(detail.contains("quux"), "{detail}"),
        other => panic!("expected BadRequest, got {other:?}"),
    }

    // Same connection, now a good request: still served.
    let good =
        Frame::new(FrameKind::Request, 2, NetRequest::new("tri", true).encode()).expect("frame");
    good.write_to(&mut conn).expect("write");
    let reply = Frame::read_from(&mut conn).expect("served");
    assert_eq!(reply.request_id, 2);
    let response = NetResponse::decode(&reply.payload).expect("decodes");
    assert!(response.outcome.is_ok(), "good request after bad refused");

    assert_eq!(server.stats().bad_requests, 1);
    server.stop();
}

#[test]
fn every_injection_yields_a_typed_outcome_and_the_server_survives() {
    let (_service, server, path) = start_unix("chaos", ServiceConfig::default().with_workers(1));
    let good_frame = Frame::new(
        FrameKind::Request,
        99,
        NetRequest::new("tri", true).encode(),
    )
    .expect("frame");
    let good_bytes = good_frame.to_bytes();

    for injection in ALL_INJECTIONS {
        if injection == Injection::SlowHalves {
            continue; // dedicated slow-loris test below
        }
        let corrupted = injection.apply(&good_bytes);
        let mut conn = UnixStream::connect(&path).expect("connect");
        conn.write_all(&corrupted).expect("send corruption");
        // Close the write half so a truncation is unambiguous.
        conn.shutdown(std::net::Shutdown::Write).expect("shutdown");
        // The server must drop the connection (typed protocol error) —
        // never hang, never panic. Read to EOF with a bound.
        conn.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut sink = Vec::new();
        let _ = conn.read_to_end(&mut sink);
    }

    // The server survived all of it and still serves.
    let client = client_for(&path);
    let response = client.call(&NetRequest::new("tri", true)).expect("alive");
    assert!(response.outcome.is_ok());
    let stats = server.stats();
    assert!(
        stats.protocol_errors >= 4,
        "injections should land as typed protocol errors, got {stats:?}"
    );
    server.stop();
}

#[test]
fn slow_loris_is_disconnected_by_the_read_timeout() {
    let (_service, server, path) = start_unix("loris", ServiceConfig::default().with_workers(1));
    let good_bytes = Frame::new(FrameKind::Request, 7, NetRequest::new("tri", true).encode())
        .expect("frame")
        .to_bytes();
    let split = Injection::SlowHalves
        .split_point(good_bytes.len())
        .expect("slow halves splits");

    let mut conn = UnixStream::connect(&path).expect("connect");
    conn.write_all(&good_bytes[..split]).expect("first half");
    // Stall past the server's 500ms read timeout, holding the socket
    // open — the classic slow-loris posture.
    std::thread::sleep(Duration::from_millis(900));
    conn.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut sink = Vec::new();
    let n = conn.read_to_end(&mut sink).unwrap_or(0);
    assert_eq!(n, 0, "server should hang up, not answer a partial frame");
    assert!(server.stats().read_timeouts >= 1, "{:?}", server.stats());

    // The handler thread is free again; the server still serves.
    let client = client_for(&path);
    assert!(client
        .call(&NetRequest::new("tri", true))
        .expect("alive")
        .outcome
        .is_ok());
    server.stop();
}

#[test]
fn mid_request_disconnect_leaves_the_service_healthy() {
    let (service, server, path) = start_unix("discon", ServiceConfig::default().with_workers(1));
    {
        let mut conn = UnixStream::connect(&path).expect("connect");
        let frame = Frame::new(FrameKind::Request, 3, NetRequest::new("tri", true).encode())
            .expect("frame");
        frame.write_to(&mut conn).expect("write");
        // Hang up before reading the response: the job still runs, the
        // server's write fails, nothing panics.
    }
    // Give the abandoned job time to complete and the write to fail.
    std::thread::sleep(Duration::from_millis(300));
    let client = client_for(&path);
    assert!(client
        .call(&NetRequest::new("tri", true))
        .expect("alive")
        .outcome
        .is_ok());
    assert!(service.stats().completed >= 1);
    server.stop();
}

#[test]
fn server_restart_on_the_same_unix_path_serves_again() {
    let (service, server, path) = start_unix("restart", ServiceConfig::default().with_workers(1));
    let client = client_for(&path);
    assert!(client
        .call(&NetRequest::new("tri", true))
        .expect("first server")
        .outcome
        .is_ok());
    server.stop();

    // Same path, fresh server — the stale socket file must not block
    // the bind, and clients reconnect transparently.
    let service2 = Arc::new(Service::start(ServiceConfig::default().with_workers(1)));
    let server2 = NetServer::start(
        Arc::clone(&service2),
        &ListenAddr::Unix(path.clone()),
        ServerConfig::default(),
    )
    .expect("rebind after restart");
    assert!(client
        .call(&NetRequest::new("tri", true))
        .expect("second server")
        .outcome
        .is_ok());
    server2.stop();
    drop(service);
}

#[test]
fn quota_refusal_travels_typed_over_the_wire() {
    let (_service, server, path) = start_unix(
        "quota",
        ServiceConfig::default()
            .with_workers(1)
            .with_tenant_quota(1)
            .with_delivery_latency(Duration::from_millis(500)),
    );

    // First call occupies tenant acme's single in-flight slot for
    // ~500ms (delivery stall). Fire it from a helper thread.
    let path_a = path.clone();
    let first = std::thread::spawn(move || {
        let client = client_for(&path_a);
        client.call(&NetRequest::new("tri", true).with_tenant("acme"))
    });
    std::thread::sleep(Duration::from_millis(150));

    // Second call, same tenant, no retries: typed quota refusal.
    let client = Client::new(
        ListenAddr::Unix(path.clone()),
        ClientConfig::default()
            .with_deadline(Duration::from_secs(10))
            .with_retries(0),
    );
    let refused = client
        .call(&NetRequest::new("tri", true).with_tenant("acme"))
        .expect("transport works");
    match refused.outcome {
        Err(RemoteError::QuotaExceeded {
            tenant,
            in_flight,
            limit,
        }) => {
            assert_eq!(tenant, "acme");
            assert_eq!((in_flight, limit), (1, 1));
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }

    // A different tenant is admitted while acme is capped.
    let other = client
        .call(&NetRequest::new("tri", true).with_tenant("zeta"))
        .expect("transport works");
    assert!(
        other.outcome.is_ok(),
        "other tenant starved: {:?}",
        other.outcome
    );

    let first = first.join().expect("first call thread");
    assert!(first.expect("transport works").outcome.is_ok());
    server.stop();
}

#[test]
fn quota_refusal_is_retried_to_success_by_an_idempotent_client() {
    let (_service, server, path) = start_unix(
        "quota-retry",
        ServiceConfig::default()
            .with_workers(1)
            .with_tenant_quota(1)
            .with_delivery_latency(Duration::from_millis(300)),
    );
    let path_a = path.clone();
    let first = std::thread::spawn(move || {
        let client = client_for(&path_a);
        client.call(&NetRequest::new("tri", true).with_tenant("acme"))
    });
    std::thread::sleep(Duration::from_millis(100));

    // Enough retry budget to outlast the 300ms stall: the client backs
    // off through the refusals and lands the request.
    let client = Client::new(
        ListenAddr::Unix(path.clone()),
        ClientConfig::default()
            .with_deadline(Duration::from_secs(30))
            .with_retries(20)
            .with_backoff(Duration::from_millis(50), Duration::from_millis(200)),
    );
    let response = client
        .call(&NetRequest::new("tri", true).with_tenant("acme"))
        .expect("transport works");
    assert!(
        response.outcome.is_ok(),
        "retries should outlast the quota hold: {:?}",
        response.outcome
    );
    assert!(first
        .join()
        .expect("thread")
        .expect("transport")
        .outcome
        .is_ok());
    server.stop();
}
