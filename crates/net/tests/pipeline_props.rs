//! Property tests for pipelined frame interleaving on a persistent
//! connection: N requests go out, the "server" (the other half of a
//! socketpair) answers them in an arbitrary shuffled order, and every
//! response must come back matched to its request id. A truncation or
//! corruption injected mid-pipeline must land as a typed [`WireError`]
//! that poisons exactly that connection — a second connection sharing
//! the test keeps working.

use std::io::Write;
use std::os::unix::net::UnixStream;
use std::time::Duration;

use imt_net::chaos::XorShift64;
use imt_net::msg::{NetRequest, NetResponse, RemoteError};
use imt_net::pool::PersistentClient;
use imt_net::wire::{Frame, FrameKind};
use imt_net::NetError;
use proptest::prelude::*;

/// Reads `n` request frames from `server`, returning their ids in
/// arrival order.
fn read_requests(server: &mut UnixStream, n: usize) -> Vec<u64> {
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        let frame = Frame::read_from(server).expect("well-formed request");
        assert_eq!(frame.kind, FrameKind::Request);
        // The payload is a real NetRequest — decode to keep the test
        // honest about what crosses the wire.
        let request = NetRequest::decode(&frame.payload).expect("decodable");
        assert_eq!(request.kernel, "tri");
        ids.push(frame.request_id);
    }
    ids
}

/// A minimal valid response frame for `id`.
fn response_frame(id: u64) -> Vec<u8> {
    let response = NetResponse::refusal(
        id,
        "tri",
        RemoteError::BadRequest {
            detail: format!("echo {id}"),
        },
    );
    Frame::new(FrameKind::Response, id, response.encode())
        .expect("under cap")
        .to_bytes()
}

/// Fisher–Yates over `0..n` from a seeded stream.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = XorShift64::new(seed | 1);
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.index(i + 1));
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn shuffled_responses_all_match_their_request_ids(
        n in 1usize..=12,
        shuffle_seed in any::<u64>(),
    ) {
        let (client_half, mut server) = UnixStream::pair().expect("socketpair");
        let mut client =
            PersistentClient::from_unix_stream(client_half, Duration::from_secs(10))
                .expect("wrap");

        let mut sent = Vec::new();
        for _ in 0..n {
            sent.push(client.send(&NetRequest::new("tri", true)).expect("send"));
        }
        let seen = read_requests(&mut server, n);
        prop_assert_eq!(&seen, &sent, "requests arrive in send order");

        // Answer in a shuffled order.
        for &index in &permutation(n, shuffle_seed) {
            server
                .write_all(&response_frame(seen[index]))
                .expect("write response");
        }
        server.flush().expect("flush");

        // Every pipelined recv gets *its* response, regardless of the
        // arrival order, and the refusal detail echoes the id.
        for &id in &sent {
            let response = client.recv(id).expect("matched response");
            prop_assert_eq!(response.id, id);
            match response.outcome {
                Err(RemoteError::BadRequest { ref detail }) => {
                    prop_assert_eq!(detail, &format!("echo {id}"));
                }
                ref other => prop_assert!(false, "unexpected outcome {:?}", other),
            }
        }
        prop_assert_eq!(client.in_flight(), 0);
        prop_assert!(!client.is_poisoned());
    }

    #[test]
    fn mid_pipeline_corruption_is_typed_and_poisons_only_that_connection(
        n in 2usize..=10,
        good_before in 0usize..=9,
        corruption in 0usize..=2,
        flip_mask in 1u8..=255u8,
        shuffle_seed in any::<u64>(),
    ) {
        let good_before = good_before.min(n - 1);
        let (client_half, mut server) = UnixStream::pair().expect("socketpair");
        let mut client =
            PersistentClient::from_unix_stream(client_half, Duration::from_millis(500))
                .expect("wrap");

        // A healthy sibling connection sharing the test.
        let (sibling_half, mut sibling_server) = UnixStream::pair().expect("socketpair");
        let mut sibling =
            PersistentClient::from_unix_stream(sibling_half, Duration::from_secs(10))
                .expect("wrap");

        let mut sent = Vec::new();
        for _ in 0..n {
            sent.push(client.send(&NetRequest::new("tri", true)).expect("send"));
        }
        let seen = read_requests(&mut server, n);
        let order = permutation(n, shuffle_seed);

        // `good_before` clean responses (shuffled), then the injection.
        for &index in order.iter().take(good_before) {
            server
                .write_all(&response_frame(seen[index]))
                .expect("write response");
        }
        let victim = response_frame(seen[order[good_before]]);
        match corruption {
            0 => {
                // Truncation + disconnect mid-pipeline.
                server.write_all(&victim[..victim.len() / 2]).expect("half");
                drop(server);
            }
            1 => {
                // Header corruption (magic): stream unsynchronised.
                let mut bytes = victim.clone();
                bytes[0] ^= flip_mask;
                server.write_all(&bytes).expect("corrupt header");
            }
            _ => {
                // Payload bit flip: checksum mismatch.
                let mut bytes = victim.clone();
                let last = bytes.len() - 1;
                bytes[last] ^= flip_mask;
                server.write_all(&bytes).expect("corrupt payload");
            }
        }

        // The clean prefix is still deliverable — early arrivals were
        // parked before the stream broke.
        for &index in order.iter().take(good_before) {
            let id = seen[index];
            let response = client.recv(id).expect("clean prefix delivers");
            prop_assert_eq!(response.id, id);
        }

        // The victim (and everything after it) is a typed wire error.
        let victim_id = seen[order[good_before]];
        match client.recv(victim_id) {
            Err(NetError::Wire(_)) => {}
            Err(other) => prop_assert!(false, "untyped failure {:?}", other),
            Ok(_) => prop_assert!(false, "corrupted response decoded cleanly"),
        }
        prop_assert!(client.is_poisoned(), "first wire error must poison");

        // Every later recv on the poisoned connection is the same typed
        // error, immediately.
        for &index in order.iter().skip(good_before + 1) {
            match client.recv(seen[index]) {
                Err(NetError::Wire(_)) => {}
                other => prop_assert!(false, "poisoned recv gave {:?}", other),
            }
        }

        // The sibling connection is untouched by the poison.
        let id = sibling.send(&NetRequest::new("tri", true)).expect("send");
        let frame = Frame::read_from(&mut sibling_server).expect("sibling request");
        sibling_server
            .write_all(&response_frame(frame.request_id))
            .expect("sibling response");
        let response = sibling.recv(id).expect("sibling unaffected");
        prop_assert_eq!(response.id, id);
        prop_assert!(!sibling.is_poisoned());
    }
}
