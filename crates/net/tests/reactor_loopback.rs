//! End-to-end tests for the epoll reactor front-end and the persistent
//! pipelined client/pool: bit-identity against serial evaluation,
//! out-of-order pipelined completion, typed backpressure, the full
//! chaos matrix (every injection a typed outcome, zero panics), and
//! pool reuse semantics across a server restart.

use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use imt_bench::runner::kernel_profile;
use imt_core::eval::{evaluate_auto, EvalNeeds};
use imt_core::{encode_program, EncoderConfig};
use imt_kernels::Kernel;
use imt_net::chaos::ALL_INJECTIONS;
use imt_net::msg::{NetRequest, RemoteError};
use imt_net::pool::{ClientPool, PersistentClient, PoolConfig};
use imt_net::reactor::{ReactorConfig, ReactorServer};
use imt_net::wire::{Frame, FrameKind};
use imt_net::{ListenAddr, NetError};
use imt_serve::service::{Admission, Service, ServiceConfig};

fn unique_sock(tag: &str) -> PathBuf {
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .as_nanos();
    std::env::temp_dir().join(format!(
        "imt-reactor-{tag}-{}-{nonce}.sock",
        std::process::id()
    ))
}

fn start_reactor(
    tag: &str,
    service_config: ServiceConfig,
) -> (Arc<Service>, ReactorServer, PathBuf) {
    let path = unique_sock(tag);
    let service = Arc::new(Service::start(service_config));
    let server = ReactorServer::start(
        Arc::clone(&service),
        &ListenAddr::Unix(path.clone()),
        ReactorConfig::default().with_read_timeout(Duration::from_millis(500)),
    )
    .expect("unix bind");
    (service, server, path)
}

fn persistent(path: &std::path::Path) -> PersistentClient {
    PersistentClient::connect(
        &ListenAddr::Unix(path.to_path_buf()),
        Duration::from_secs(30),
    )
    .expect("connect")
}

/// The serial reference a wire response must match bit for bit.
fn serial_reference(kernel: Kernel, block_size: usize) -> imt_core::eval::Evaluation {
    let spec = kernel.test_spec();
    let profile = kernel_profile(&spec);
    let config = EncoderConfig::default()
        .with_block_size(block_size)
        .expect("valid block size");
    let encoded = encode_program(&profile.program, &profile.profile, &config).expect("encodes");
    let (evaluation, _) = evaluate_auto(
        &profile.program,
        &encoded,
        spec.max_steps,
        Some(&profile.edges),
        EvalNeeds::transitions_only(),
    )
    .expect("evaluates");
    evaluation
}

#[test]
fn reactor_round_trip_is_bit_identical_to_serial() {
    let (service, server, path) =
        start_reactor("roundtrip", ServiceConfig::default().with_workers(2));
    let mut conn = persistent(&path);

    let response = conn
        .call(&NetRequest::new("tri", true).with_block_size(5))
        .expect("transport works");
    let done = response.outcome.expect("tri completes");
    assert_eq!(done.evaluation.decode_mismatches, 0);
    assert_eq!(done.evaluation, serial_reference(Kernel::Tri, 5));
    assert_eq!(response.kernel, "tri-12x3");

    let stats = server.stats();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.responses, 1);

    server.stop();
    drop(conn);
    match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => panic!("server kept a service handle after stop"),
    }
}

#[test]
fn reactor_tcp_round_trip_works_on_an_ephemeral_port() {
    let service = Arc::new(Service::start(ServiceConfig::default().with_workers(2)));
    let server = ReactorServer::start(
        Arc::clone(&service),
        &ListenAddr::Tcp("127.0.0.1:0".to_string()),
        ReactorConfig::default(),
    )
    .expect("tcp bind");
    let mut conn =
        PersistentClient::connect(server.local_addr(), Duration::from_secs(30)).expect("connect");

    let response = conn.call(&NetRequest::new("fft", true)).expect("transport");
    let done = response.outcome.expect("fft completes");
    assert_eq!(done.evaluation, serial_reference(Kernel::Fft, 5));

    server.stop();
}

#[test]
fn pipelined_requests_complete_out_of_order_and_all_match() {
    // Several workers so responses genuinely race each other back.
    let (_service, server, path) =
        start_reactor("pipeline", ServiceConfig::default().with_workers(4));
    let mut conn = persistent(&path);

    let kernels = ["tri", "fft", "mmul", "lu", "tri", "fft", "mmul", "lu"];
    let mut ids = Vec::new();
    for kernel in kernels {
        ids.push((
            conn.send(&NetRequest::new(kernel, true).with_block_size(5))
                .expect("send"),
            kernel,
        ));
    }
    assert_eq!(conn.in_flight(), kernels.len());

    // Drain in *arrival* order — whatever the worker pool finished
    // first — and verify every response matches its request id's
    // kernel, bit-identical to serial.
    let mut seen = 0;
    while conn.in_flight() > 0 {
        let (id, response) = conn.recv_any().expect("pipelined recv");
        let kernel = ids
            .iter()
            .find(|(sent, _)| *sent == id)
            .map(|(_, k)| *k)
            .expect("response id was sent");
        let done = response.outcome.expect("completes");
        let reference = serial_reference(
            Kernel::ALL
                .iter()
                .copied()
                .find(|k| k.name() == kernel)
                .expect("registry kernel"),
            5,
        );
        assert_eq!(done.evaluation, reference, "kernel {kernel} id {id}");
        seen += 1;
    }
    assert_eq!(seen, kernels.len());

    // Targeted recv also works: send two, take the *second* first.
    let a = conn.send(&NetRequest::new("tri", true)).expect("send");
    let b = conn.send(&NetRequest::new("fft", true)).expect("send");
    let rb = conn.recv(b).expect("recv b");
    let ra = conn.recv(a).expect("recv a");
    assert_eq!(rb.kernel, "fft-16");
    assert_eq!(ra.kernel, "tri-12x3");

    server.stop();
}

#[test]
fn reject_admission_surfaces_as_typed_overload_over_the_reactor() {
    // One worker, tiny queue, reject admission: flooding the pipeline
    // must yield typed Overloaded refusals — never a blocked reactor.
    let (_service, server, path) = start_reactor(
        "overload",
        ServiceConfig::default()
            .with_workers(1)
            .with_queue_capacity(1)
            .with_admission(Admission::Reject),
    );
    let mut conn = persistent(&path);

    let mut ids = Vec::new();
    for _ in 0..32 {
        ids.push(conn.send(&NetRequest::new("tri", true)).expect("send"));
    }
    let mut completed = 0u32;
    let mut overloaded = 0u32;
    for id in ids {
        let response = conn.recv(id).expect("typed response, not a dead conn");
        match response.outcome {
            Ok(_) => completed += 1,
            Err(RemoteError::Overloaded { .. }) => overloaded += 1,
            Err(other) => panic!("unexpected refusal {other:?}"),
        }
    }
    assert!(completed >= 1, "at least the queued request completes");
    assert!(overloaded >= 1, "the flood must trip admission");
    assert_eq!(completed + overloaded, 32);

    server.stop();
}

#[test]
fn chaos_matrix_against_the_reactor_is_typed_and_survivable() {
    let (_service, server, path) = start_reactor(
        "chaos",
        ServiceConfig::default()
            .with_workers(2)
            .with_queue_capacity(64),
    );

    let good = Frame::new(
        FrameKind::Request,
        77,
        NetRequest::new("tri", true).with_block_size(5).encode(),
    )
    .expect("under cap")
    .to_bytes();

    for injection in ALL_INJECTIONS {
        if injection.is_vacuous(good.len()) {
            continue;
        }
        let bytes = injection.apply(&good);
        let mut raw = UnixStream::connect(&path).expect("connect");
        match injection.split_point(bytes.len()) {
            Some(split) => {
                // Slow-loris: half the header, then a stall past the
                // server's read timeout.
                raw.write_all(&bytes[..split]).expect("first half");
                raw.flush().expect("flush");
                std::thread::sleep(Duration::from_millis(900));
                // The sweep should have disconnected us; the write may
                // fail (EPIPE) or succeed into a dead socket — either
                // is fine, the server must simply survive.
                let _ = raw.write_all(&bytes[split..]);
            }
            None => {
                raw.write_all(&bytes).expect("write corrupted frame");
                raw.flush().expect("flush");
            }
        }
        drop(raw);
    }

    // Post-chaos: the server still serves, bit-identically.
    let mut conn = persistent(&path);
    let response = conn
        .call(&NetRequest::new("tri", true).with_block_size(5))
        .expect("server survived the matrix");
    assert_eq!(
        response.outcome.expect("completes").evaluation,
        serial_reference(Kernel::Tri, 5)
    );

    let stats = server.stats();
    assert!(
        stats.protocol_errors >= 4,
        "corruptions must land as typed protocol errors, got {stats:?}"
    );
    assert!(
        stats.read_timeouts >= 1,
        "the slow-loris sweep must fire, got {stats:?}"
    );

    server.stop();
}

#[test]
fn mid_pipeline_truncation_poisons_only_that_connection() {
    let (_service, server, path) =
        start_reactor("poison", ServiceConfig::default().with_workers(2));

    // Connection A gets poisoned mid-pipeline; connection B must keep
    // working throughout.
    let mut a = persistent(&path);
    let mut b = persistent(&path);

    let id = a.send(&NetRequest::new("tri", true)).expect("send");
    let _ = a.recv(id).expect("first exchange fine");

    // Now corrupt A's stream from the *server's* perspective by sending
    // garbage bytes; the server drops the connection, so A's next recv
    // sees a truncation/typed wire error.
    let pending = a.send(&NetRequest::new("tri", true)).expect("send ok");
    // Raw write of garbage on the same socket is not possible through
    // the typed API — simulate the peer-side failure instead: a second
    // raw connection sends a corrupt frame to prove the server's
    // failure domain is per-connection.
    let mut raw = UnixStream::connect(&path).expect("connect");
    let mut garbage = Frame::new(FrameKind::Request, 5, b"x".to_vec())
        .expect("under cap")
        .to_bytes();
    garbage[0] ^= 0xFF;
    raw.write_all(&garbage).expect("write garbage");
    drop(raw);

    // A's pipelined request still completes — the garbage connection
    // died alone.
    let response = a.recv(pending).expect("A unaffected");
    assert!(response.outcome.is_ok());

    // B also unaffected.
    let response = b.call(&NetRequest::new("fft", true)).expect("B unaffected");
    assert!(response.outcome.is_ok());

    // And a *real* mid-pipeline truncation on a dedicated connection is
    // a typed error that poisons exactly that connection.
    let mut c = persistent(&path);
    let id = c.send(&NetRequest::new("tri", true)).expect("send");
    let _ = c.recv(id).expect("healthy first");
    drop(server); // server gone: outstanding recv truncates
    let id = match c.send(&NetRequest::new("tri", true)) {
        Ok(id) => id,
        // The send itself may already see the closed socket — equally
        // typed, equally fine.
        Err(NetError::Wire(_)) => {
            assert!(c.is_poisoned());
            return;
        }
        Err(other) => panic!("untyped send failure {other:?}"),
    };
    match c.recv(id) {
        Err(NetError::Wire(_)) => assert!(c.is_poisoned(), "truncation must poison"),
        Err(other) => panic!("untyped recv failure {other:?}"),
        Ok(_) => panic!("recv from a dead server cannot succeed"),
    }
}

#[test]
fn pool_reuses_connections_and_health_checks_across_restart() {
    let path = unique_sock("pool");
    let service = Arc::new(Service::start(ServiceConfig::default().with_workers(2)));
    let server = ReactorServer::start(
        Arc::clone(&service),
        &ListenAddr::Unix(path.clone()),
        ReactorConfig::default(),
    )
    .expect("bind");

    let pool = ClientPool::new(
        ListenAddr::Unix(path.clone()),
        PoolConfig::default().with_max_idle(4),
    );

    // Sequential calls reuse one shelved connection.
    for _ in 0..3 {
        let response = pool
            .call(&NetRequest::new("tri", true))
            .expect("pooled call");
        assert!(response.outcome.is_ok());
    }
    assert_eq!(pool.idle_count(), 1, "one connection, reused");
    let before = server.stats();
    assert_eq!(before.connections, 1, "pool reused a single connection");

    // Restart the server on the same path. The shelved connection is
    // now dead; the health probe must discard it and reconnect.
    server.stop();
    let server = ReactorServer::start(
        Arc::clone(&service),
        &ListenAddr::Unix(path.clone()),
        ReactorConfig::default(),
    )
    .expect("rebind");

    let response = pool
        .call(&NetRequest::new("fft", true))
        .expect("pool recovered across restart");
    assert!(response.outcome.is_ok());
    assert_eq!(pool.idle_count(), 1, "fresh connection shelved");

    server.stop();
}
