//! Property tests for the wire codec: exact round-trips, and typed —
//! never panicking — rejection of every truncation, header corruption,
//! and version mismatch.

use imt_net::msg::{NetRequest, NetResponse, RemoteError};
use imt_net::wire::{Frame, FrameKind, WireError, HEADER_BYTES, WIRE_VERSION};
use proptest::collection::vec;
use proptest::prelude::*;

fn frame(id: u64, payload: Vec<u8>) -> Frame {
    Frame::new(FrameKind::Request, id, payload).expect("test payloads are under the cap")
}

proptest! {
    #[test]
    fn frames_round_trip_exactly(
        id in any::<u64>(),
        payload in vec(0u8..=255u8, 0..=512),
    ) {
        let original = frame(id, payload);
        let bytes = original.to_bytes();
        prop_assert_eq!(Frame::from_bytes(&bytes), Ok(original));
    }

    #[test]
    fn every_strict_prefix_is_truncated_not_a_panic(
        id in any::<u64>(),
        payload in vec(0u8..=255u8, 0..=256),
        cut in 0usize..=(HEADER_BYTES + 256),
    ) {
        let bytes = frame(id, payload).to_bytes();
        let keep = cut.min(bytes.len().saturating_sub(1));
        prop_assert_eq!(
            Frame::from_bytes(&bytes[..keep]),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn header_corruption_is_a_typed_error(
        payload in vec(0u8..=255u8, 1..=128),
        index in 0usize..HEADER_BYTES,
        mask in 1u8..=255u8,
    ) {
        // The request-id bytes (12..20) are opaque correlation data: a
        // flip there yields a *different valid frame*, which is exactly
        // why responses echo the id. The kind byte (10) can flip
        // between the two valid kinds. Everything else must fail typed.
        let id_region = 12..20;
        if !id_region.contains(&index) && index != 10 {
            let mut bytes = frame(7, payload).to_bytes();
            bytes[index] ^= mask;
            prop_assert!(
                Frame::from_bytes(&bytes).is_err(),
                "flip at {} with mask {:#04x} decoded cleanly", index, mask
            );
        }
    }

    #[test]
    fn payload_corruption_is_caught_by_the_checksum(
        payload in vec(0u8..=255u8, 1..=256),
        offset in 0usize..256,
        mask in 1u8..=255u8,
    ) {
        let bytes = frame(9, payload).to_bytes();
        let payload_len = bytes.len() - HEADER_BYTES;
        let index = HEADER_BYTES + (offset % payload_len);
        let mut corrupted = bytes;
        corrupted[index] ^= mask;
        prop_assert!(matches!(
            Frame::from_bytes(&corrupted),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn version_mismatch_is_typed(
        payload in vec(0u8..=255u8, 0..=64),
        version in any::<u16>(),
    ) {
        if version != WIRE_VERSION {
            let mut bytes = frame(1, payload).to_bytes();
            bytes[8..10].copy_from_slice(&version.to_le_bytes());
            prop_assert_eq!(
                Frame::from_bytes(&bytes),
                Err(WireError::UnsupportedVersion { got: version })
            );
        }
    }

    #[test]
    fn arbitrary_garbage_never_panics_the_decoder(
        bytes in vec(0u8..=255u8, 0..=128),
    ) {
        // The result does not matter — only that it *is* a result.
        let _ = Frame::from_bytes(&bytes);
        let _ = NetRequest::decode(&bytes);
        let _ = NetResponse::decode(&bytes);
    }

    #[test]
    fn request_payload_truncations_are_typed(
        cut in 0usize..=512,
    ) {
        let mut request = NetRequest::new("mmul", true).with_tenant("tenant-x");
        request.fault_plan = "10:bus:3,99:tt:1:2".into();
        request.protection = "parity".into();
        let bytes = request.encode();
        let keep = cut.min(bytes.len().saturating_sub(1));
        prop_assert!(NetRequest::decode(&bytes[..keep]).is_err());
    }

    #[test]
    fn response_round_trips_with_random_counters(
        id in any::<u64>(),
        queue_ns in any::<u64>(),
        service_ns in any::<u64>(),
        wrong_words in any::<u64>(),
    ) {
        let response = NetResponse {
            id,
            kernel: "tri-12".into(),
            block_size: 5,
            outcome: Err(RemoteError::Poisoned { wrong_words }),
            queue_ns,
            service_ns,
            batch_size: 1,
            worker: 0,
            missed_deadline: false,
        };
        prop_assert_eq!(NetResponse::decode(&response.encode()), Ok(response));
    }
}
