//! Structured events: discrete facts (one per pipeline evaluation, one
//! per encoded region, ...) too rich for a scalar metric.
//!
//! Events carry a static kind, the thread's current context label (see
//! [`crate::push_label`]) and an arbitrary [`Json`] payload. They land in
//! a global buffer, are emitted as `{"type":"event",...}` lines by the
//! JSONL sink and as an `events` array in run manifests.
//!
//! [`event`] is gated: it records nothing when observability is off, so
//! it may sit at region granularity on warm paths.

use std::sync::{Mutex, OnceLock};

use crate::json::Json;

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Static event kind, e.g. `"eval"`.
    pub kind: &'static str,
    /// Context label at record time (`""` when unlabelled).
    pub label: String,
    /// Structured payload.
    pub fields: Json,
}

impl Event {
    /// The event as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str(self.kind)),
            ("label", Json::str(&self.label)),
            ("fields", self.fields.clone()),
        ])
    }
}

fn buffer() -> &'static Mutex<Vec<Event>> {
    static BUFFER: OnceLock<Mutex<Vec<Event>>> = OnceLock::new();
    BUFFER.get_or_init(|| Mutex::new(Vec::new()))
}

/// Records an event under `kind` with the given `label` and payload.
/// No-op when observability is disabled.
pub fn event(kind: &'static str, label: impl Into<String>, fields: Json) {
    if !crate::enabled() {
        return;
    }
    buffer().lock().expect("event buffer poisoned").push(Event {
        kind,
        label: label.into(),
        fields,
    });
}

/// A copy of every recorded event, sorted by `(kind, label)` with ties
/// kept in record order — deterministic even when worker threads raced.
pub fn snapshot() -> Vec<Event> {
    let mut events = buffer().lock().expect("event buffer poisoned").clone();
    events.sort_by(|a, b| (a.kind, &a.label).cmp(&(b.kind, &b.label)));
    events
}

/// Discards all recorded events.
pub fn reset() {
    buffer().lock().expect("event buffer poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_mode, Mode};

    fn my_events(kind: &str) -> Vec<Event> {
        snapshot().into_iter().filter(|e| e.kind == kind).collect()
    }

    #[test]
    fn events_record_only_when_enabled() {
        let before = crate::mode();
        set_mode(Mode::Off);
        event("event.test.gated", "a", Json::Null);
        assert!(my_events("event.test.gated").is_empty());

        set_mode(Mode::Json);
        event(
            "event.test.gated",
            "b",
            Json::obj(vec![("n", Json::U64(1))]),
        );
        let mine = my_events("event.test.gated");
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].label, "b");
        assert_eq!(mine[0].fields.get("n").and_then(Json::as_u64), Some(1));
        set_mode(before);
    }

    #[test]
    fn snapshot_sorts_by_kind_and_label() {
        let before = crate::mode();
        set_mode(Mode::Json);
        event("event.test.sort", "z", Json::U64(1));
        event("event.test.sort", "a", Json::U64(2));
        let mine = my_events("event.test.sort");
        assert_eq!(mine.len(), 2);
        assert_eq!(mine[0].label, "a");
        assert_eq!(mine[1].label, "z");
        set_mode(before);
    }

    #[test]
    fn to_json_shape() {
        let e = Event {
            kind: "eval",
            label: "mmul/k5".to_string(),
            fields: Json::obj(vec![("fetches", Json::U64(9))]),
        };
        assert_eq!(
            e.to_json().render(),
            r#"{"kind":"eval","label":"mmul/k5","fields":{"fetches":9}}"#
        );
    }
}
