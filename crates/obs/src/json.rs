//! A minimal JSON document model, renderer and parser.
//!
//! Hand-rolled (no serde — the workspace is offline and dependency-free)
//! and small on purpose: just enough to write run manifests, read them
//! back for `imt obs check`, and let tests assert on emitted values.
//!
//! Design choices that matter for observability:
//!
//! * integers keep their exactness — [`Json::U64`] / [`Json::I64`] are
//!   separate from [`Json::F64`], so a 64-bit transition count never
//!   round-trips through a double;
//! * objects are ordered ([`Json::Obj`] is a `Vec` of pairs), so a
//!   rendered manifest is byte-deterministic for a given input.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact unsigned integer.
    U64(u64),
    /// An exact signed integer (used for negative values).
    I64(i64),
    /// A double; non-finite values render as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs; keys may be `&str`.
    pub fn obj<K: Into<String>>(pairs: Vec<(K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The unsigned-integer value, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The signed-integer value, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(v) => Some(*v),
            Json::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The numeric value widened to a double.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object pairs.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Renders with two-space indentation, one key per line.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => render_f64(*v, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_pretty_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.render_pretty_into(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in pairs.iter().enumerate() {
                    indent(out, depth + 1);
                    render_string(key, out);
                    out.push_str(": ");
                    value.render_pretty_into(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => other.render_into(out),
        }
    }

    /// Parses a JSON document. Returns a human-readable error with a byte
    /// offset on malformed input.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after document"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's shortest round-trip Display is valid JSON except that whole
    // doubles print without a fraction ("2" not "2.0"); keep the marker so
    // readers can tell doubles from exact integers.
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What the parser expected or found.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Combine surrogate pairs when both halves are
                            // present; otherwise substitute U+FFFD.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(code).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing at
                    // char boundaries is safe via char_indices).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| self.error("invalid number"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Negative integer: keep exactness via I64, widen on overflow.
            if stripped.parse::<u64>().is_ok() {
                text.parse::<i64>()
                    .map(Json::I64)
                    .or_else(|_| text.parse::<f64>().map(Json::F64))
                    .map_err(|_| self.error("invalid number"))
            } else {
                Err(self.error("invalid number"))
            }
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .or_else(|_| text.parse::<f64>().map(Json::F64))
                .map_err(|_| self.error("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_documents() {
        let doc = Json::obj(vec![
            ("name", Json::str("mmul")),
            ("k", Json::U64(5)),
            ("ratio", Json::F64(0.25)),
            ("lanes", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            ("neg", Json::I64(-3)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"mmul","k":5,"ratio":0.25,"lanes":[1,2],"neg":-3,"ok":true,"none":null}"#
        );
    }

    #[test]
    fn integers_round_trip_exactly() {
        for v in [0u64, 1, u64::MAX, (1 << 53) + 1] {
            let parsed = Json::parse(&Json::U64(v).render()).unwrap();
            assert_eq!(parsed.as_u64(), Some(v), "u64 {v} must stay exact");
        }
        let parsed = Json::parse("-9223372036854775808").unwrap();
        assert_eq!(parsed.as_i64(), Some(i64::MIN));
    }

    #[test]
    fn doubles_keep_a_fraction_marker() {
        assert_eq!(Json::F64(2.0).render(), "2.0");
        assert_eq!(Json::F64(0.5).render(), "0.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        let parsed = Json::parse("2.0").unwrap();
        assert_eq!(parsed, Json::F64(2.0));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nquote\" back\\ tab\t unicode\u{1F600} ctrl\u{1}";
        let rendered = Json::Str(s.to_string()).render();
        let parsed = Json::parse(&rendered).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
        // Escape sequences from other writers parse too.
        let parsed = Json::parse(r#""aA😀\/b""#).unwrap();
        assert_eq!(parsed.as_str(), Some("aA\u{1F600}/b"));
    }

    #[test]
    fn parse_round_trips_nested_documents() {
        let src = r#" { "a" : [ 1 , { "b" : [ ] } , null ] , "c" : { } } "#;
        let doc = Json::parse(src).unwrap();
        let compact = doc.render();
        assert_eq!(Json::parse(&compact).unwrap(), doc);
        assert_eq!(compact, r#"{"a":[1,{"b":[]},null],"c":{}}"#);
    }

    #[test]
    fn object_accessors() {
        let doc = Json::parse(r#"{"x":{"y":7},"z":[true]}"#).unwrap();
        assert_eq!(
            doc.get("x").and_then(|x| x.get("y")).and_then(Json::as_u64),
            Some(7)
        );
        assert_eq!(
            doc.get("z").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.as_object().map(<[(String, Json)]>::len), Some(2));
    }

    #[test]
    fn malformed_input_reports_offsets() {
        for (src, fragment) in [
            ("{", "expected"),
            (r#"{"a" 1}"#, "expected `:`"),
            ("[1,]", "unexpected `]`"),
            ("01x", "trailing"),
            (r#""unterminated"#, "unterminated"),
            ("nul", "expected `null`"),
        ] {
            let err = Json::parse(src).unwrap_err();
            assert!(
                err.message.contains(fragment),
                "{src:?}: got {:?}",
                err.message
            );
        }
    }

    #[test]
    fn pretty_rendering_parses_back() {
        let doc = Json::obj(vec![
            ("a", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            ("b", Json::obj(vec![("c", Json::Null)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let pretty = doc.render_pretty();
        assert!(pretty.contains("\n  \"a\": [\n"));
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
    }
}
