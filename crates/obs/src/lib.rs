//! # imt-obs — structured observability for the encode/sim/bench stack
//!
//! The paper's entire claim is a measured quantity (bus transitions saved
//! per benchmark per block size), so the workspace needs a layer that
//! makes every transition count, cache event and pipeline stage timing
//! observable and machine-readable — without perturbing the numbers it
//! measures. This crate provides that layer with zero external
//! dependencies (consistent with the offline `crates/compat` approach):
//!
//! * a global **metrics registry** ([`registry`]) of counters, gauges and
//!   u64 histograms with fixed log2 buckets, addressable by static name
//!   plus a dynamic label, lock-cheap (atomics behind a sharded map, with
//!   [`counter!`]-style macros that cache the handle at the call site);
//! * a **span/timer API** ([`span`]) — RAII guards that aggregate
//!   wall-time per span name, safe to use from the `imt-bitcode::par`
//!   worker threads (all aggregation is atomic, so nested fan-outs simply
//!   sum into the same stats);
//! * pluggable **sinks** ([`sink`]) — a human-readable end-of-run report
//!   and a JSONL snapshot writer;
//! * **run manifests** ([`manifest`]) — one JSON document per run
//!   capturing configuration, the full metric/span snapshot and any
//!   structured events, written to `results/obs/<run>.json` and
//!   validatable against the `imt-obs/v1` schema (`imt obs check`).
//!
//! ## Gating
//!
//! Everything is **off by default**. The `IMT_OBS` environment variable
//! (read once, overridable at runtime with [`set_mode`]) selects a
//! [`Mode`]:
//!
//! | `IMT_OBS`             | mode            | effect                          |
//! |-----------------------|-----------------|---------------------------------|
//! | unset / `0` / `off`   | [`Mode::Off`]   | instrumented sites are a single relaxed atomic load + branch |
//! | `report` / `text` / `1` | [`Mode::Report`] | end-of-run human-readable report on stderr |
//! | `json`                | [`Mode::Json`]  | run manifest + JSONL snapshot under `IMT_OBS_PATH` (default `results/obs`) |
//! | `trace`               | [`Mode::Trace`] | everything `json` does, plus causal trace events ([`trace`]) embedded in the manifest |
//!
//! Hot paths guard with [`enabled`], so the disabled cost is one load and
//! one predictable branch per instrumented *region* (not per item); the
//! `obs_overhead` bench in `crates/bench` asserts this stays under 2 % of
//! a packed stream encode.
//!
//! ## Example
//!
//! ```
//! use imt_obs::json::Json;
//!
//! // Metrics work regardless of mode; gating is the caller's choice.
//! imt_obs::counter("doc.events").add(3);
//! imt_obs::histogram("doc.sizes").observe(1500);
//! {
//!     let _t = imt_obs::span::timed("doc.work"); // always records
//! }
//! let snap = imt_obs::registry::snapshot();
//! assert!(snap.iter().any(|m| m.name == "doc.events"));
//!
//! // Manifests serialise the whole registry as JSON.
//! let mut manifest = imt_obs::manifest::Manifest::new("doc-run");
//! manifest.set("config", Json::obj(vec![("k", Json::U64(5))]));
//! manifest.capture();
//! imt_obs::manifest::validate(&Json::parse(&manifest.render()).unwrap()).unwrap();
//! ```

pub mod event;
pub mod json;
pub mod manifest;
pub mod registry;
pub mod sink;
pub mod span;
pub mod trace;

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

pub use event::{event, Event};
pub use registry::{
    counter, counter_labeled, gauge, gauge_labeled, histogram, histogram_labeled, Counter, Gauge,
    Histogram,
};

/// What the observability layer does at the end of (and during) a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Nothing is recorded by gated call sites; the disabled check is one
    /// relaxed atomic load.
    Off,
    /// Gated call sites record; a human-readable report is printed to
    /// stderr at the end of the run.
    Report,
    /// Gated call sites record; a run manifest (`<run>.json`) and a JSONL
    /// snapshot (`<run>.jsonl`) are written under
    /// [`manifest::obs_dir`].
    Json,
    /// Everything [`Mode::Json`] does, plus causal trace events ([`trace`])
    /// are captured in per-thread ring buffers and embedded in the
    /// manifest's `trace` section for `imt obs trace export`.
    Trace,
}

const MODE_UNINIT: u8 = 0;
const MODE_OFF: u8 = 1;
const MODE_REPORT: u8 = 2;
const MODE_JSON: u8 = 3;
const MODE_TRACE: u8 = 4;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

fn mode_from_env() -> Mode {
    match std::env::var("IMT_OBS").ok().as_deref() {
        Some("trace") | Some("TRACE") => Mode::Trace,
        Some("json") | Some("JSON") => Mode::Json,
        Some("report") | Some("text") | Some("1") => Mode::Report,
        _ => Mode::Off,
    }
}

/// The active [`Mode`]: the `IMT_OBS` environment variable on first call,
/// or whatever [`set_mode`] last installed.
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        MODE_OFF => Mode::Off,
        MODE_REPORT => Mode::Report,
        MODE_JSON => Mode::Json,
        MODE_TRACE => Mode::Trace,
        _ => {
            let mode = mode_from_env();
            set_mode(mode);
            mode
        }
    }
}

/// Overrides the mode at runtime (tests and experiment binaries; normal
/// programs let the environment decide).
pub fn set_mode(mode: Mode) {
    let tag = match mode {
        Mode::Off => MODE_OFF,
        Mode::Report => MODE_REPORT,
        Mode::Json => MODE_JSON,
        Mode::Trace => MODE_TRACE,
    };
    MODE.store(tag, Ordering::Relaxed);
}

/// Whether gated instrumentation should record. This is the hot-path
/// guard: one relaxed atomic load and one branch.
#[inline]
pub fn enabled() -> bool {
    // The common steady states are OFF/REPORT/JSON; UNINIT happens once.
    match MODE.load(Ordering::Relaxed) {
        MODE_OFF => false,
        MODE_UNINIT => mode() != Mode::Off,
        _ => true,
    }
}

/// Whether causal trace events should be recorded: true only in
/// [`Mode::Trace`]. Same cost shape as [`enabled`] — one relaxed atomic
/// load and one branch — and instrumented sites only consult it *after*
/// [`enabled`] passed, so the fully-disabled path pays nothing extra.
#[inline]
pub fn trace_enabled() -> bool {
    match MODE.load(Ordering::Relaxed) {
        MODE_TRACE => true,
        MODE_UNINIT => mode() == Mode::Trace,
        _ => false,
    }
}

thread_local! {
    static LABEL_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Scoped run-context label: popped when dropped.
///
/// Labels let concurrent pipeline runs (e.g. the Figure 6 grid cells)
/// publish into distinct registry slots — metric output stays
/// deterministic because snapshots sort by `(name, label)`, not by
/// completion order.
#[must_use = "the label pops when this guard drops"]
pub struct LabelGuard {
    pushed: bool,
}

impl Drop for LabelGuard {
    fn drop(&mut self) {
        if self.pushed {
            LABEL_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
}

/// Pushes a context label for the current thread; the returned guard pops
/// it. Nested labels join with `/` in [`current_label`].
pub fn push_label(label: impl Into<String>) -> LabelGuard {
    LABEL_STACK.with(|stack| stack.borrow_mut().push(label.into()));
    LabelGuard { pushed: true }
}

/// Like [`push_label`], but the label is only built — and pushed — when
/// observability is [`enabled`]. Use on hot paths where even formatting
/// the label (one `String` allocation) is unwanted overhead while obs is
/// off; the disabled cost is the mode load plus a branch.
pub fn push_label_lazy(label: impl FnOnce() -> String) -> LabelGuard {
    if enabled() {
        push_label(label())
    } else {
        LabelGuard { pushed: false }
    }
}

/// The current thread's context label (`""` outside any
/// [`push_label`] scope).
pub fn current_label() -> String {
    LABEL_STACK.with(|stack| stack.borrow().join("/"))
}

/// Looks up (and caches at the call site) the counter named `$name`.
///
/// The first execution pays the registry lookup; later executions are a
/// `OnceLock` load plus the atomic op — safe on hot paths.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::registry::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry::counter($name))
    }};
}

/// Looks up (and caches at the call site) the gauge named `$name`.
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::registry::Gauge> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry::gauge($name))
    }};
}

/// Opens a gated RAII span: records wall-time under `$name` when
/// observability is enabled, does nothing otherwise. Bind the result —
/// `let _span = obs::span!("encode_block");` — so it drops at scope end.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span::span($name)
    };
    ($name:literal, $label:expr) => {
        $crate::span::span_labeled($name, $label)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_env_parsing() {
        // Exercise the parser directly; the global mode is shared across
        // the test binary, so only set_mode round-trips are checked there.
        std::env::remove_var("IMT_OBS");
        assert_eq!(mode_from_env(), Mode::Off);
        std::env::set_var("IMT_OBS", "off");
        assert_eq!(mode_from_env(), Mode::Off);
        std::env::set_var("IMT_OBS", "report");
        assert_eq!(mode_from_env(), Mode::Report);
        std::env::set_var("IMT_OBS", "json");
        assert_eq!(mode_from_env(), Mode::Json);
        std::env::set_var("IMT_OBS", "trace");
        assert_eq!(mode_from_env(), Mode::Trace);
        std::env::remove_var("IMT_OBS");
    }

    #[test]
    fn set_mode_round_trips() {
        let before = mode();
        set_mode(Mode::Report);
        assert_eq!(mode(), Mode::Report);
        assert!(enabled());
        {
            let _g = push_label_lazy(|| "lazy".to_string());
            assert_eq!(current_label(), "lazy");
        }
        assert_eq!(current_label(), "");
        set_mode(Mode::Off);
        assert_eq!(mode(), Mode::Off);
        assert!(!enabled());
        {
            // Disabled: the closure must never run (no allocation), and
            // the guard must not pop anything it never pushed.
            let outer = push_label("outer");
            let _g = push_label_lazy(|| unreachable!("label built while obs is off"));
            assert_eq!(current_label(), "outer");
            drop(_g);
            assert_eq!(current_label(), "outer");
            drop(outer);
        }
        set_mode(before);
    }

    #[test]
    fn labels_nest_and_pop() {
        assert_eq!(current_label(), "");
        let outer = push_label("grid");
        assert_eq!(current_label(), "grid");
        {
            let _inner = push_label("mmul/k5");
            assert_eq!(current_label(), "grid/mmul/k5");
        }
        assert_eq!(current_label(), "grid");
        drop(outer);
        assert_eq!(current_label(), "");
    }

    #[test]
    fn macros_cache_handles() {
        let a = counter!("lib.macro_counter");
        let b = counter!("lib.macro_counter");
        assert!(std::ptr::eq(a, b));
        a.inc();
        assert!(b.get() >= 1);
        let g = gauge!("lib.macro_gauge");
        g.set(7);
        assert_eq!(g.get(), 7);
    }
}
