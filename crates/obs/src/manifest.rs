//! Run manifests: one JSON document per run capturing configuration, the
//! full metric/span snapshot and recorded events, plus the validator
//! behind `imt obs check`.
//!
//! Schema `imt-obs/v1` (see EXPERIMENTS.md for the prose version):
//!
//! ```json
//! {
//!   "schema": "imt-obs/v1",
//!   "run": "exp_fig6",
//!   "status": "completed",
//!   "<caller sections>": { ... },
//!   "metrics": [
//!     {"name": "...", "label": "...", "kind": "counter", "value": 0},
//!     {"name": "...", "label": "...", "kind": "gauge", "value": 0},
//!     {"name": "...", "label": "...", "kind": "histogram",
//!      "count": 0, "sum": 0, "min": 0, "max": 0, "buckets": [[1, 3]]},
//!     {"name": "...", "label": "...", "kind": "span",
//!      "count": 0, "total_ns": 0, "min_ns": 0, "max_ns": 0}
//!   ],
//!   "events": [{"kind": "...", "label": "...", "fields": { ... }}]
//! }
//! ```
//!
//! `status` is `"completed"` for manifests written by [`finish_run`] and
//! `"aborted"` for partial manifests flushed by a [`RunGuard`] whose run
//! crashed before finishing; older manifests may omit it.
//!
//! In [`Mode::Trace`] a manifest additionally carries a `trace` section —
//! `{"dropped": u64, "events": [...]}` per [`crate::trace::events_to_json`] —
//! which `imt obs trace export` converts to Chrome trace-event JSON. The
//! aborted-flush path captures it too, so a crashed run still exports a
//! partial timeline.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::registry::{MetricSnapshot, SnapshotValue};
use crate::{event, registry, sink, Mode};

/// The manifest schema identifier.
pub const SCHEMA: &str = "imt-obs/v1";

/// Where manifests and JSONL snapshots go: `IMT_OBS_PATH`, defaulting to
/// `results/obs`.
pub fn obs_dir() -> PathBuf {
    std::env::var("IMT_OBS_PATH")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results/obs"))
}

/// One metric snapshot as its manifest JSON object.
pub fn metric_to_json(metric: &MetricSnapshot) -> Json {
    let mut pairs = vec![
        ("name".to_string(), Json::str(metric.name)),
        ("label".to_string(), Json::str(&metric.label)),
        ("kind".to_string(), Json::str(metric.value.kind())),
    ];
    match &metric.value {
        SnapshotValue::Counter(v) | SnapshotValue::Gauge(v) => {
            pairs.push(("value".to_string(), Json::U64(*v)));
        }
        SnapshotValue::Histogram {
            count,
            sum,
            min,
            max,
            buckets,
        } => {
            pairs.push(("count".to_string(), Json::U64(*count)));
            pairs.push(("sum".to_string(), Json::U64(*sum)));
            pairs.push(("min".to_string(), Json::U64(*min)));
            pairs.push(("max".to_string(), Json::U64(*max)));
            pairs.push((
                "buckets".to_string(),
                Json::Arr(
                    buckets
                        .iter()
                        .map(|(i, n)| Json::Arr(vec![Json::U64(*i as u64), Json::U64(*n)]))
                        .collect(),
                ),
            ));
        }
        SnapshotValue::Span {
            count,
            total_ns,
            min_ns,
            max_ns,
        } => {
            pairs.push(("count".to_string(), Json::U64(*count)));
            pairs.push(("total_ns".to_string(), Json::U64(*total_ns)));
            pairs.push(("min_ns".to_string(), Json::U64(*min_ns)));
            pairs.push(("max_ns".to_string(), Json::U64(*max_ns)));
        }
    }
    Json::Obj(pairs)
}

/// A run manifest under construction.
pub struct Manifest {
    run: String,
    sections: Vec<(String, Json)>,
    metrics: Vec<MetricSnapshot>,
    events: Vec<event::Event>,
    trace: Option<(Vec<crate::trace::TraceEvent>, u64)>,
    captured: bool,
}

impl Manifest {
    /// Starts a manifest for the run named `run` (becomes the file stem).
    pub fn new(run: impl Into<String>) -> Manifest {
        Manifest {
            run: run.into(),
            sections: Vec::new(),
            metrics: Vec::new(),
            events: Vec::new(),
            trace: None,
            captured: false,
        }
    }

    /// The run name.
    pub fn run(&self) -> &str {
        &self.run
    }

    /// Adds (or replaces) a caller section, e.g. `"config"`.
    pub fn set(&mut self, key: impl Into<String>, value: Json) {
        let key = key.into();
        if let Some(slot) = self.sections.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.sections.push((key, value));
        }
    }

    /// Snapshots the registry and event buffer into the manifest — and,
    /// in [`Mode::Trace`], the per-thread trace rings.
    pub fn capture(&mut self) {
        self.metrics = registry::snapshot();
        self.events = event::snapshot();
        if crate::trace_enabled() {
            self.trace = Some(crate::trace::snapshot());
        }
        self.captured = true;
    }

    /// The manifest as a JSON document.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema".to_string(), Json::str(SCHEMA)),
            ("run".to_string(), Json::str(&self.run)),
        ];
        for (key, value) in &self.sections {
            pairs.push((key.clone(), value.clone()));
        }
        pairs.push((
            "metrics".to_string(),
            Json::Arr(self.metrics.iter().map(metric_to_json).collect()),
        ));
        pairs.push((
            "events".to_string(),
            Json::Arr(self.events.iter().map(event::Event::to_json).collect()),
        ));
        if let Some((events, dropped)) = &self.trace {
            pairs.push((
                "trace".to_string(),
                crate::trace::events_to_json(events, *dropped),
            ));
        }
        Json::Obj(pairs)
    }

    /// The manifest rendered as pretty JSON.
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Writes `<obs_dir>/<run>.json`, creating the directory.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        self.write_to(&obs_dir())
    }

    /// Writes `<dir>/<run>.json`, creating the directory.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.run));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.render().as_bytes())?;
        file.write_all(b"\n")?;
        Ok(path)
    }

    /// Writes `<dir>/<run>.jsonl` — one `{"type": "metric" | "event"}`
    /// line per snapshot entry — creating the directory.
    pub fn write_jsonl_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.jsonl", self.run));
        std::fs::write(&path, sink::snapshot_jsonl(&self.metrics, &self.events))?;
        Ok(path)
    }
}

/// Ends a run according to the active [`Mode`]:
///
/// * [`Mode::Off`] — does nothing, returns `None`;
/// * [`Mode::Report`] — prints the human-readable report to stderr;
/// * [`Mode::Json`] — captures a manifest with the given extra sections,
///   writes `<run>.json` and `<run>.jsonl` under [`obs_dir`], and
///   returns the manifest path;
/// * [`Mode::Trace`] — like [`Mode::Json`], with the trace rings captured
///   into the manifest's `trace` section.
///
/// Output goes to stderr/files only; stdout is reserved for experiment
/// artifacts, which must stay byte-identical with observability on.
pub fn finish_run<K: Into<String>>(
    run: &str,
    extra: Vec<(K, Json)>,
) -> std::io::Result<Option<PathBuf>> {
    defuse(run);
    match crate::mode() {
        Mode::Off => Ok(None),
        Mode::Report => {
            eprintln!("{}", sink::render_report(run));
            Ok(None)
        }
        Mode::Json | Mode::Trace => {
            let mut manifest = Manifest::new(run);
            for (key, value) in extra {
                manifest.set(key, value);
            }
            manifest.set("status", Json::str("completed"));
            manifest.capture();
            let dir = obs_dir();
            let path = manifest.write_to(&dir)?;
            manifest.write_jsonl_to(&dir)?;
            eprintln!("imt-obs: wrote {}", path.display());
            Ok(Some(path))
        }
    }
}

/// Run names whose [`RunGuard`] has not been defused yet. A poisoned lock
/// only means another thread panicked while armed — exactly the situation
/// the guard exists for — so poisoning is ignored.
static ARMED: std::sync::Mutex<Vec<String>> = std::sync::Mutex::new(Vec::new());

/// Removes `run` from the armed list; returns whether it was armed.
fn defuse(run: &str) -> bool {
    let mut armed = ARMED.lock().unwrap_or_else(|p| p.into_inner());
    let before = armed.len();
    armed.retain(|r| r != run);
    armed.len() != before
}

/// Crash bracket for a run: arm it first thing, and if the process
/// panics (or otherwise drops the guard) before [`finish_run`] or
/// [`RunGuard::complete`] defuses it, a partial manifest with
/// `"status": "aborted"` is flushed under [`obs_dir`] so `imt obs check`
/// reports the crashed run instead of finding nothing.
///
/// Only [`Mode::Json`] writes anything; in other modes the guard is
/// bookkeeping-only. `finish_run` defuses by run name, so the usual
/// pattern needs no explicit hand-off:
///
/// ```no_run
/// let _guard = imt_obs::manifest::RunGuard::begin("exp_fault");
/// // ... the run; a panic here flushes an aborted manifest ...
/// imt_obs::manifest::finish_run::<&str>("exp_fault", vec![]).unwrap();
/// ```
pub struct RunGuard {
    run: String,
}

impl RunGuard {
    /// Arms a guard for the run named `run`.
    pub fn begin(run: impl Into<String>) -> RunGuard {
        let run = run.into();
        ARMED
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(run.clone());
        RunGuard { run }
    }

    /// Defuses the guard without writing anything — for runs that end
    /// without calling [`finish_run`] (e.g. an error path that already
    /// reported failure to the user).
    pub fn complete(self) {
        defuse(&self.run);
    }
}

impl Drop for RunGuard {
    fn drop(&mut self) {
        if !defuse(&self.run) || !matches!(crate::mode(), Mode::Json | Mode::Trace) {
            return;
        }
        // Best-effort: a failed flush during a crash must not mask the
        // original panic with a second one.
        match write_aborted(&self.run, &obs_dir()) {
            Ok(path) => eprintln!(
                "imt-obs: run `{}` aborted; partial manifest at {}",
                self.run,
                path.display()
            ),
            Err(err) => eprintln!("imt-obs: run `{}` aborted; flush failed: {err}", self.run),
        }
    }
}

/// Captures whatever the registry holds right now into
/// `<dir>/<run>.json` with `"status": "aborted"`. In [`Mode::Trace`] the
/// capture includes the trace rings (spans that *closed* before the
/// crash), so even an aborted run exports a partial timeline.
fn write_aborted(run: &str, dir: &Path) -> std::io::Result<PathBuf> {
    let mut manifest = Manifest::new(run);
    manifest.set("status", Json::str("aborted"));
    manifest.capture();
    let path = manifest.write_to(dir)?;
    manifest.write_jsonl_to(dir)?;
    Ok(path)
}

fn field<'a>(doc: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, String> {
    doc.get(key)
        .ok_or_else(|| format!("{ctx}: missing `{key}`"))
}

fn u64_field(doc: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    field(doc, key, ctx)?
        .as_u64()
        .ok_or_else(|| format!("{ctx}: `{key}` is not a u64"))
}

fn str_field<'a>(doc: &'a Json, key: &str, ctx: &str) -> Result<&'a str, String> {
    field(doc, key, ctx)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: `{key}` is not a string"))
}

/// Validates a parsed document against the `imt-obs/v1` schema.
///
/// Beyond shape checks, it cross-checks internal consistency: histogram
/// bucket counts must sum to `count`, span `min_ns <= max_ns`, any
/// `eval` event's per-lane transition arrays must sum to its totals — the
/// same invariant the e2e test asserts against
/// `EncodedProgram::static_saved_transitions()` — and an optional
/// `status` must be `"completed"` or `"aborted"`.
pub fn validate(doc: &Json) -> Result<(), String> {
    let schema = str_field(doc, "schema", "manifest")?;
    if schema != SCHEMA {
        return Err(format!("manifest: schema `{schema}`, expected `{SCHEMA}`"));
    }
    let run = str_field(doc, "run", "manifest")?;
    if run.is_empty() {
        return Err("manifest: empty `run`".to_string());
    }
    // `status` is optional (pre-existing manifests omit it) but, when
    // present, must be one of the two states a run can end in.
    if let Some(status) = doc.get("status") {
        let status = status
            .as_str()
            .ok_or("manifest: `status` is not a string")?;
        if status != "completed" && status != "aborted" {
            return Err(format!(
                "manifest: status `{status}`, expected `completed` or `aborted`"
            ));
        }
    }

    let metrics = field(doc, "metrics", "manifest")?
        .as_array()
        .ok_or("manifest: `metrics` is not an array")?;
    for (i, metric) in metrics.iter().enumerate() {
        let name = str_field(metric, "name", "metric")?;
        let ctx = format!("metric[{i}] `{name}`");
        str_field(metric, "label", &ctx)?;
        match str_field(metric, "kind", &ctx)? {
            "counter" | "gauge" => {
                u64_field(metric, "value", &ctx)?;
            }
            "histogram" => {
                let count = u64_field(metric, "count", &ctx)?;
                u64_field(metric, "sum", &ctx)?;
                let min = u64_field(metric, "min", &ctx)?;
                let max = u64_field(metric, "max", &ctx)?;
                if count > 0 && min > max {
                    return Err(format!("{ctx}: min {min} > max {max}"));
                }
                let buckets = field(metric, "buckets", &ctx)?
                    .as_array()
                    .ok_or_else(|| format!("{ctx}: `buckets` is not an array"))?;
                let mut total = 0u64;
                for bucket in buckets {
                    let pair = bucket
                        .as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| format!("{ctx}: bucket is not an [index, count] pair"))?;
                    let index = pair[0]
                        .as_u64()
                        .ok_or_else(|| format!("{ctx}: bucket index is not a u64"))?;
                    if index as usize >= registry::HISTOGRAM_BUCKETS {
                        return Err(format!("{ctx}: bucket index {index} out of range"));
                    }
                    total += pair[1]
                        .as_u64()
                        .ok_or_else(|| format!("{ctx}: bucket count is not a u64"))?;
                }
                if total != count {
                    return Err(format!("{ctx}: buckets sum to {total}, count is {count}"));
                }
            }
            "span" => {
                let count = u64_field(metric, "count", &ctx)?;
                let total = u64_field(metric, "total_ns", &ctx)?;
                let min = u64_field(metric, "min_ns", &ctx)?;
                let max = u64_field(metric, "max_ns", &ctx)?;
                if count > 0 && (min > max || total < max) {
                    return Err(format!(
                        "{ctx}: inconsistent span stats (total {total}, min {min}, max {max})"
                    ));
                }
            }
            other => return Err(format!("{ctx}: unknown kind `{other}`")),
        }
    }

    let events = field(doc, "events", "manifest")?
        .as_array()
        .ok_or("manifest: `events` is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        let kind = str_field(ev, "kind", &format!("event[{i}]"))?;
        let ctx = format!("event[{i}] `{kind}`");
        str_field(ev, "label", &ctx)?;
        let fields = field(ev, "fields", &ctx)?;
        if kind == "eval" {
            for (lanes_key, total_key) in [
                ("per_lane_baseline", "baseline_transitions"),
                ("per_lane_encoded", "encoded_transitions"),
            ] {
                let (Some(lanes), Some(total)) = (fields.get(lanes_key), fields.get(total_key))
                else {
                    continue;
                };
                let lanes = lanes
                    .as_array()
                    .ok_or_else(|| format!("{ctx}: `{lanes_key}` is not an array"))?;
                let total = total
                    .as_u64()
                    .ok_or_else(|| format!("{ctx}: `{total_key}` is not a u64"))?;
                let mut sum = 0u64;
                for lane in lanes {
                    sum += lane
                        .as_u64()
                        .ok_or_else(|| format!("{ctx}: `{lanes_key}` entry is not a u64"))?;
                }
                if sum != total {
                    return Err(format!(
                        "{ctx}: `{lanes_key}` sums to {sum}, `{total_key}` is {total}"
                    ));
                }
            }
        }
    }

    // The trace section is optional ([`Mode::Trace`] runs only).
    if let Some(trace) = doc.get("trace") {
        crate::trace::validate_section(trace)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SnapshotValue;

    fn sample_manifest() -> Manifest {
        crate::counter_labeled("manifest.test.counter", "mmul/k5").add(7);
        crate::histogram("manifest.test.hist").observe(9);
        let mut m = Manifest::new("manifest-test");
        m.set("config", Json::obj(vec![("k", Json::U64(5))]));
        m.capture();
        m
    }

    #[test]
    fn manifest_round_trips_and_validates() {
        let m = sample_manifest();
        let doc = Json::parse(&m.render()).unwrap();
        validate(&doc).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(doc.get("run").and_then(Json::as_str), Some("manifest-test"));
        assert_eq!(
            doc.get("config")
                .and_then(|c| c.get("k"))
                .and_then(Json::as_u64),
            Some(5)
        );
        let metrics = doc.get("metrics").and_then(Json::as_array).unwrap();
        let mine = metrics
            .iter()
            .find(|m| m.get("name").and_then(Json::as_str) == Some("manifest.test.counter"))
            .expect("captured counter present");
        assert_eq!(mine.get("label").and_then(Json::as_str), Some("mmul/k5"));
        assert_eq!(mine.get("value").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn set_replaces_existing_sections() {
        let mut m = Manifest::new("x");
        m.set("config", Json::U64(1));
        m.set("config", Json::U64(2));
        let doc = m.to_json();
        assert_eq!(doc.get("config").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn validate_rejects_bad_documents() {
        for (src, fragment) in [
            (
                r#"{"run":"x","metrics":[],"events":[]}"#,
                "missing `schema`",
            ),
            (
                r#"{"schema":"imt-obs/v0","run":"x","metrics":[],"events":[]}"#,
                "expected `imt-obs/v1`",
            ),
            (
                r#"{"schema":"imt-obs/v1","run":"","metrics":[],"events":[]}"#,
                "empty `run`",
            ),
            (
                r#"{"schema":"imt-obs/v1","run":"x","metrics":[
                    {"name":"a","label":"","kind":"counter"}],"events":[]}"#,
                "missing `value`",
            ),
            (
                r#"{"schema":"imt-obs/v1","run":"x","metrics":[
                    {"name":"a","label":"","kind":"histogram",
                     "count":3,"sum":1,"min":0,"max":1,"buckets":[[0,1]]}],"events":[]}"#,
                "buckets sum to 1",
            ),
            (
                r#"{"schema":"imt-obs/v1","run":"x","metrics":[],"events":[
                    {"kind":"eval","label":"t","fields":{
                     "per_lane_baseline":[1,2],"baseline_transitions":5}}]}"#,
                "sums to 3",
            ),
        ] {
            let doc = Json::parse(src).unwrap();
            let err = validate(&doc).unwrap_err();
            assert!(err.contains(fragment), "{src}: got {err}");
        }
    }

    #[test]
    fn validate_checks_the_status_field() {
        let ok = |status: &str| {
            format!(
                r#"{{"schema":"imt-obs/v1","run":"x","status":"{status}","metrics":[],"events":[]}}"#
            )
        };
        validate(&Json::parse(&ok("completed")).unwrap()).unwrap();
        validate(&Json::parse(&ok("aborted")).unwrap()).unwrap();
        let err = validate(&Json::parse(&ok("running")).unwrap()).unwrap_err();
        assert!(err.contains("status `running`"), "{err}");
        let err = validate(
            &Json::parse(
                r#"{"schema":"imt-obs/v1","run":"x","status":3,"metrics":[],"events":[]}"#,
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("not a string"), "{err}");
    }

    #[test]
    fn guard_is_defused_by_finish_run_and_complete() {
        let before = crate::mode();
        crate::set_mode(Mode::Off);
        let guard = RunGuard::begin("guard-defuse-finish");
        // Off mode writes nothing, but still marks the run as ended.
        finish_run::<&str>("guard-defuse-finish", vec![]).unwrap();
        drop(guard); // must not re-defuse (finish_run already did)
        assert!(!defuse("guard-defuse-finish"));

        let guard = RunGuard::begin("guard-defuse-complete");
        guard.complete();
        assert!(!defuse("guard-defuse-complete"));
        crate::set_mode(before);
    }

    #[test]
    fn dropped_guard_flushes_an_aborted_manifest() {
        let dir = std::env::temp_dir().join("imt-obs-guard-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_aborted("guard-abort-test", &dir).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        validate(&doc).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("aborted"));
        assert_eq!(
            doc.get("run").and_then(Json::as_str),
            Some("guard-abort-test")
        );
        let _ = std::fs::remove_dir_all(&dir);

        // The Drop path goes through the same flush; armed + non-Json
        // drop must stay silent (nothing to clean up afterwards).
        let before = crate::mode();
        crate::set_mode(Mode::Off);
        drop(RunGuard::begin("guard-abort-off"));
        assert!(!defuse("guard-abort-off"));
        crate::set_mode(before);
    }

    #[test]
    fn aborted_flush_drains_the_trace_rings() {
        let dir = std::env::temp_dir().join("imt-obs-guard-trace-test");
        let _ = std::fs::remove_dir_all(&dir);
        let _lock = crate::trace::TRACE_TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let before = crate::mode();
        crate::set_mode(Mode::Trace);
        crate::trace::reset();
        // A span that *closed* before the "crash" must survive into the
        // aborted manifest's partial timeline.
        {
            let _s = crate::trace::span("manifest.abort_probe");
        }
        let path = write_aborted("guard-abort-trace", &dir).unwrap();
        crate::trace::reset();
        crate::set_mode(before);

        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        validate(&doc).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("aborted"));
        let (events, _) =
            crate::trace::events_from_json(doc.get("trace").expect("trace section")).unwrap();
        assert!(
            events.iter().any(|e| e.name == "manifest.abort_probe"),
            "closed span survives the abort flush"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_checks_the_trace_section() {
        let err = validate(
            &Json::parse(
                r#"{"schema":"imt-obs/v1","run":"x","metrics":[],"events":[],
                    "trace":{"dropped":0,"events":[{"name":"a"}]}}"#,
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("trace section"), "{err}");
    }

    #[test]
    fn metric_json_covers_every_kind() {
        let hist = MetricSnapshot {
            name: "h",
            label: String::new(),
            value: SnapshotValue::Histogram {
                count: 2,
                sum: 10,
                min: 2,
                max: 8,
                buckets: vec![(2, 1), (4, 1)],
            },
        };
        assert_eq!(
            metric_to_json(&hist).render(),
            r#"{"name":"h","label":"","kind":"histogram","count":2,"sum":10,"min":2,"max":8,"buckets":[[2,1],[4,1]]}"#
        );
        let span = MetricSnapshot {
            name: "s",
            label: "l".to_string(),
            value: SnapshotValue::Span {
                count: 1,
                total_ns: 5,
                min_ns: 5,
                max_ns: 5,
            },
        };
        assert_eq!(
            metric_to_json(&span).render(),
            r#"{"name":"s","label":"l","kind":"span","count":1,"total_ns":5,"min_ns":5,"max_ns":5}"#
        );
    }

    #[test]
    fn write_creates_files_under_dir() {
        let dir = std::env::temp_dir().join("imt-obs-manifest-test");
        let _ = std::fs::remove_dir_all(&dir);
        let m = sample_manifest();
        let json_path = m.write_to(&dir).unwrap();
        let jsonl_path = m.write_jsonl_to(&dir).unwrap();
        assert_eq!(json_path, dir.join("manifest-test.json"));
        let doc = Json::parse(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
        validate(&doc).unwrap();
        let jsonl = std::fs::read_to_string(&jsonl_path).unwrap();
        assert!(jsonl.lines().count() >= 2);
        for line in jsonl.lines() {
            let line_doc = Json::parse(line).unwrap();
            let ty = line_doc.get("type").and_then(Json::as_str).unwrap();
            assert!(ty == "metric" || ty == "event", "unexpected type {ty}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
