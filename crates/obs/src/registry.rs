//! The global metrics registry: counters, gauges, u64 histograms with
//! fixed log2 buckets, and span statistics.
//!
//! Metrics are addressed by a `&'static str` name plus a dynamic label
//! (`""` for unlabelled). Registration goes through a sharded
//! `Mutex<HashMap>` — paid once per `(name, label)` pair per call site
//! when handles are cached (see the [`crate::counter!`] macro) — and the
//! returned handle is a leaked `&'static` whose operations are plain
//! atomics, so recording never takes a lock and is safe from the
//! `imt-bitcode::par` worker threads.
//!
//! [`snapshot`] returns every metric sorted by `(name, label)`, which
//! makes reports and manifests deterministic regardless of thread
//! scheduling. [`reset`] zeroes values in place (it never unregisters),
//! so call-site-cached handles stay valid across resets.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }

    fn zero(&self) {
        self.value.store(0, Relaxed);
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Replaces the value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.value.store(value, Relaxed);
    }

    /// Raises the value to at least `value`.
    #[inline]
    pub fn set_max(&self, value: u64) {
        self.value.fetch_max(value, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }

    fn zero(&self) {
        self.value.store(0, Relaxed);
    }
}

/// Bucket count of every [`Histogram`]: one underflow bucket for 0 plus
/// one bucket per power of two up to `2^63`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value lands in: 0 holds exactly the value 0; bucket
/// `i >= 1` holds `[2^(i-1), 2^i - 1]`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        value.ilog2() as usize + 1
    }
}

/// Inclusive `(low, high)` bounds of a bucket (for rendering).
///
/// # Panics
///
/// Panics if `index >= HISTOGRAM_BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < HISTOGRAM_BUCKETS, "bucket {index} out of range");
    if index == 0 {
        (0, 0)
    } else if index == HISTOGRAM_BUCKETS - 1 {
        (1 << (index - 1), u64::MAX)
    } else {
        (1 << (index - 1), (1 << index) - 1)
    }
}

/// A u64 histogram over fixed log2 buckets, with exact count, sum, min
/// and max.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.min.fetch_min(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let min = self.min.load(Relaxed);
        if min == u64::MAX && self.count() == 0 {
            0
        } else {
            min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Count in one bucket (see [`bucket_index`]).
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index].load(Relaxed)
    }

    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let n = self.bucket(i);
                (n > 0).then_some((i, n))
            })
            .collect()
    }

    fn zero(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
    }
}

/// Aggregated wall-time of one span name: count, total, min and max in
/// nanoseconds. Written by [`crate::span::SpanGuard`] on drop.
#[derive(Debug)]
pub struct SpanStat {
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for SpanStat {
    fn default() -> Self {
        SpanStat {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl SpanStat {
    /// Records one completed span of `ns` nanoseconds.
    pub fn record(&self, ns: u64) {
        self.count.fetch_add(1, Relaxed);
        self.total_ns.fetch_add(ns, Relaxed);
        self.min_ns.fetch_min(ns, Relaxed);
        self.max_ns.fetch_max(ns, Relaxed);
    }

    /// Completed spans.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Total recorded nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Relaxed)
    }

    /// Shortest recorded span (0 when empty).
    pub fn min_ns(&self) -> u64 {
        let min = self.min_ns.load(Relaxed);
        if min == u64::MAX && self.count() == 0 {
            0
        } else {
            min
        }
    }

    /// Longest recorded span.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Relaxed)
    }

    /// Mean nanoseconds per span (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.total_ns() as f64 / count as f64
    }

    fn zero(&self) {
        self.count.store(0, Relaxed);
        self.total_ns.store(0, Relaxed);
        self.min_ns.store(u64::MAX, Relaxed);
        self.max_ns.store(0, Relaxed);
    }
}

#[derive(Clone, Copy)]
enum Entry {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
    Span(&'static SpanStat),
}

impl Entry {
    fn kind(self) -> &'static str {
        match self {
            Entry::Counter(_) => "counter",
            Entry::Gauge(_) => "gauge",
            Entry::Histogram(_) => "histogram",
            Entry::Span(_) => "span",
        }
    }
}

#[derive(PartialEq, Eq, Hash)]
struct Key {
    name: &'static str,
    label: String,
}

const SHARDS: usize = 16;

type Shard = Mutex<HashMap<Key, Entry>>;

fn shards() -> &'static [Shard; SHARDS] {
    static SHARDS_CELL: OnceLock<[Shard; SHARDS]> = OnceLock::new();
    SHARDS_CELL.get_or_init(|| std::array::from_fn(|_| Mutex::new(HashMap::new())))
}

// Entries are only ever inserted (never mutated in place), and the leaked
// values are updated with atomics, so a panic inside a lock scope cannot
// leave the map torn — poisoning is safely ignorable.
fn lock(shard: &Shard) -> std::sync::MutexGuard<'_, HashMap<Key, Entry>> {
    shard
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn shard_for(name: &str, label: &str) -> &'static Shard {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut hasher);
    label.hash(&mut hasher);
    &shards()[hasher.finish() as usize % SHARDS]
}

/// Finds or creates the `(name, label)` entry.
///
/// # Panics
///
/// Panics if the pair is already registered under a different metric
/// kind — a name-collision bug worth failing loudly on.
fn register(name: &'static str, label: &str, make: fn() -> Entry) -> Entry {
    let entry = {
        let mut map = lock(shard_for(name, label));
        let key = Key {
            name,
            label: label.to_string(),
        };
        *map.entry(key).or_insert_with(make)
    };
    let wanted = make().kind();
    assert!(
        entry.kind() == wanted,
        "metric `{name}`/`{label}` already registered as a {}, requested as a {wanted}",
        entry.kind(),
    );
    entry
}

/// The counter `name` (unlabelled).
pub fn counter(name: &'static str) -> &'static Counter {
    counter_labeled(name, "")
}

/// The counter `name` with `label`.
pub fn counter_labeled(name: &'static str, label: &str) -> &'static Counter {
    match register(name, label, || {
        Entry::Counter(Box::leak(Box::new(Counter::default())))
    }) {
        Entry::Counter(c) => c,
        _ => unreachable!("register checked the kind"),
    }
}

/// The gauge `name` (unlabelled).
pub fn gauge(name: &'static str) -> &'static Gauge {
    gauge_labeled(name, "")
}

/// The gauge `name` with `label`.
pub fn gauge_labeled(name: &'static str, label: &str) -> &'static Gauge {
    match register(name, label, || {
        Entry::Gauge(Box::leak(Box::new(Gauge::default())))
    }) {
        Entry::Gauge(g) => g,
        _ => unreachable!("register checked the kind"),
    }
}

/// The histogram `name` (unlabelled).
pub fn histogram(name: &'static str) -> &'static Histogram {
    histogram_labeled(name, "")
}

/// The histogram `name` with `label`.
pub fn histogram_labeled(name: &'static str, label: &str) -> &'static Histogram {
    match register(name, label, || {
        Entry::Histogram(Box::leak(Box::new(Histogram::default())))
    }) {
        Entry::Histogram(h) => h,
        _ => unreachable!("register checked the kind"),
    }
}

/// The span statistics `name` (unlabelled).
pub fn span_stat(name: &'static str) -> &'static SpanStat {
    span_stat_labeled(name, "")
}

/// The span statistics `name` with `label`.
pub fn span_stat_labeled(name: &'static str, label: &str) -> &'static SpanStat {
    match register(name, label, || {
        Entry::Span(Box::leak(Box::new(SpanStat::default())))
    }) {
        Entry::Span(s) => s,
        _ => unreachable!("register checked the kind"),
    }
}

/// A point-in-time copy of one metric's value.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram summary plus its non-empty buckets.
    Histogram {
        /// Values recorded.
        count: u64,
        /// Sum of recorded values.
        sum: u64,
        /// Smallest recorded value.
        min: u64,
        /// Largest recorded value.
        max: u64,
        /// `(bucket index, count)`, ascending, empty buckets omitted.
        buckets: Vec<(usize, u64)>,
    },
    /// Span timing summary.
    Span {
        /// Completed spans.
        count: u64,
        /// Total nanoseconds.
        total_ns: u64,
        /// Shortest span.
        min_ns: u64,
        /// Longest span.
        max_ns: u64,
    },
}

impl SnapshotValue {
    /// The metric kind as it appears in manifests.
    pub fn kind(&self) -> &'static str {
        match self {
            SnapshotValue::Counter(_) => "counter",
            SnapshotValue::Gauge(_) => "gauge",
            SnapshotValue::Histogram { .. } => "histogram",
            SnapshotValue::Span { .. } => "span",
        }
    }
}

/// One registered metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Static metric name.
    pub name: &'static str,
    /// Label (`""` for unlabelled).
    pub label: String,
    /// The value.
    pub value: SnapshotValue,
}

/// Copies every registered metric, sorted by `(name, label)` so output is
/// deterministic regardless of registration or scheduling order.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let mut out = Vec::new();
    for shard in shards() {
        let map = lock(shard);
        for (key, entry) in map.iter() {
            let value = match entry {
                Entry::Counter(c) => SnapshotValue::Counter(c.get()),
                Entry::Gauge(g) => SnapshotValue::Gauge(g.get()),
                Entry::Histogram(h) => SnapshotValue::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    min: h.min(),
                    max: h.max(),
                    buckets: h.nonzero_buckets(),
                },
                Entry::Span(s) => SnapshotValue::Span {
                    count: s.count(),
                    total_ns: s.total_ns(),
                    min_ns: s.min_ns(),
                    max_ns: s.max_ns(),
                },
            };
            out.push(MetricSnapshot {
                name: key.name,
                label: key.label.clone(),
                value,
            });
        }
    }
    out.sort_by(|a, b| (a.name, &a.label).cmp(&(b.name, &b.label)));
    out
}

/// Zeroes every registered metric in place. Handles cached by call sites
/// (e.g. via [`crate::counter!`]) remain valid; nothing is unregistered.
pub fn reset() {
    for shard in shards() {
        let map = lock(shard);
        for entry in map.values() {
            match entry {
                Entry::Counter(c) => c.zero(),
                Entry::Gauge(g) => g.zero(),
                Entry::Histogram(h) => h.zero(),
                Entry::Span(s) => s.zero(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Bounds invert the index at every boundary.
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "low bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "high bound of bucket {i}");
        }
    }

    #[test]
    fn histogram_summary_statistics() {
        let h = histogram("registry.test.hist");
        for v in [0u64, 1, 3, 3, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 107);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert_eq!(h.bucket(0), 1); // the 0
        assert_eq!(h.bucket(1), 1); // the 1
        assert_eq!(h.bucket(2), 2); // the 3s
        assert_eq!(h.bucket(7), 1); // 100 in [64,127]
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (2, 2), (7, 1)]);
    }

    #[test]
    fn empty_histogram_min_is_zero() {
        let h = histogram("registry.test.hist_empty");
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn labels_address_distinct_metrics() {
        let a = counter_labeled("registry.test.labels", "mmul/k5");
        let b = counter_labeled("registry.test.labels", "mmul/k6");
        let a2 = counter_labeled("registry.test.labels", "mmul/k5");
        assert!(std::ptr::eq(a, a2), "same (name, label) must be shared");
        assert!(!std::ptr::eq(a, b), "labels must not collide");
        a.add(2);
        b.add(5);
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 5);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_collision_panics() {
        counter("registry.test.kind_collision");
        gauge("registry.test.kind_collision");
    }

    #[test]
    fn concurrent_counter_increments_do_not_lose_updates() {
        let c = counter("registry.test.concurrent");
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    // Exercise both the cached-handle and lookup paths.
                    for i in 0..PER_THREAD {
                        if i % 2 == 0 {
                            c.inc();
                        } else {
                            counter("registry.test.concurrent").inc();
                        }
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn snapshot_is_sorted_and_reset_zeroes_in_place() {
        let c = counter_labeled("registry.test.snap", "b");
        counter_labeled("registry.test.snap", "a").inc();
        c.add(3);
        let snap = snapshot();
        let mine: Vec<_> = snap
            .iter()
            .filter(|m| m.name == "registry.test.snap")
            .collect();
        assert_eq!(mine.len(), 2);
        assert_eq!(mine[0].label, "a");
        assert_eq!(mine[1].label, "b");
        assert_eq!(mine[1].value, SnapshotValue::Counter(3));
        reset();
        assert_eq!(c.get(), 0, "reset zeroes but keeps the handle valid");
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn gauge_set_max_ratchets() {
        let g = gauge("registry.test.gauge_max");
        g.set(10);
        g.set_max(5);
        assert_eq!(g.get(), 10);
        g.set_max(20);
        assert_eq!(g.get(), 20);
    }

    #[test]
    fn span_stat_aggregates() {
        let s = span_stat("registry.test.span");
        s.record(100);
        s.record(300);
        assert_eq!(s.count(), 2);
        assert_eq!(s.total_ns(), 400);
        assert_eq!(s.min_ns(), 100);
        assert_eq!(s.max_ns(), 300);
        assert!((s.mean_ns() - 200.0).abs() < f64::EPSILON);
    }
}
