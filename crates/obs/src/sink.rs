//! Output sinks: the human-readable end-of-run report (`IMT_OBS=report`)
//! and the JSONL snapshot writer (`IMT_OBS=json`).

use std::fmt::Write as _;

use crate::event::Event;
use crate::json::Json;
use crate::manifest::metric_to_json;
use crate::registry::{self, MetricSnapshot, SnapshotValue};

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn slot(name: &str, label: &str) -> String {
    if label.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{label}}}")
    }
}

/// Renders the current registry and event buffer as a human-readable
/// report, grouped by metric kind and sorted by `(name, label)`.
pub fn render_report(run: &str) -> String {
    let metrics = registry::snapshot();
    let events = crate::event::snapshot();
    let mut out = String::new();
    let _ = writeln!(out, "== imt-obs report: {run} ==");

    for (kind, header) in [
        ("counter", "counters"),
        ("gauge", "gauges"),
        ("histogram", "histograms"),
        ("span", "spans"),
    ] {
        let group: Vec<&MetricSnapshot> =
            metrics.iter().filter(|m| m.value.kind() == kind).collect();
        if group.is_empty() {
            continue;
        }
        let _ = writeln!(out, "{header}:");
        for metric in group {
            let name = slot(metric.name, &metric.label);
            match &metric.value {
                SnapshotValue::Counter(v) | SnapshotValue::Gauge(v) => {
                    let _ = writeln!(out, "  {name} = {v}");
                }
                SnapshotValue::Histogram {
                    count,
                    sum,
                    min,
                    max,
                    ..
                } => {
                    let mean = if *count > 0 {
                        *sum as f64 / *count as f64
                    } else {
                        0.0
                    };
                    let _ = writeln!(
                        out,
                        "  {name}: count={count} sum={sum} min={min} mean={mean:.1} max={max}"
                    );
                }
                SnapshotValue::Span {
                    count,
                    total_ns,
                    min_ns,
                    max_ns,
                } => {
                    let mean = if *count > 0 { total_ns / count } else { 0 };
                    let _ = writeln!(
                        out,
                        "  {name}: count={count} total={} min={} mean={} max={}",
                        format_ns(*total_ns),
                        format_ns(*min_ns),
                        format_ns(mean),
                        format_ns(*max_ns),
                    );
                }
            }
        }
    }
    let _ = write!(out, "events: {} recorded", events.len());
    out
}

/// Renders metric and event snapshots as JSONL: one
/// `{"type":"metric",...}` line per metric followed by one
/// `{"type":"event",...}` line per event.
pub fn snapshot_jsonl(metrics: &[MetricSnapshot], events: &[Event]) -> String {
    let mut out = String::new();
    for metric in metrics {
        let mut pairs = vec![("type".to_string(), Json::str("metric"))];
        if let Json::Obj(fields) = metric_to_json(metric) {
            pairs.extend(fields);
        }
        let _ = writeln!(out, "{}", Json::Obj(pairs).render());
    }
    for event in events {
        let mut pairs = vec![("type".to_string(), Json::str("event"))];
        if let Json::Obj(fields) = event.to_json() {
            pairs.extend(fields);
        }
        let _ = writeln!(out, "{}", Json::Obj(pairs).render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_lists_each_metric_kind() {
        crate::counter("sink.test.counter").add(2);
        crate::gauge_labeled("sink.test.gauge", "mmul").set(9);
        crate::histogram("sink.test.hist").observe(4);
        registry::span_stat("sink.test.span").record(1_500);
        let report = render_report("sink-test");
        assert!(report.starts_with("== imt-obs report: sink-test =="));
        assert!(report.contains("  sink.test.counter = 2"));
        assert!(report.contains("  sink.test.gauge{mmul} = 9"));
        assert!(report.contains("sink.test.hist: count=1 sum=4"));
        assert!(report.contains("sink.test.span: count=1 total=1.500us"));
        assert!(report.contains("events: "));
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(17), "17ns");
        assert_eq!(format_ns(1_500), "1.500us");
        assert_eq!(format_ns(2_000_000), "2.000ms");
        assert_eq!(format_ns(3_500_000_000), "3.500s");
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        crate::counter("sink.test.jsonl").inc();
        let metrics: Vec<_> = registry::snapshot()
            .into_iter()
            .filter(|m| m.name == "sink.test.jsonl")
            .collect();
        let events = vec![Event {
            kind: "eval",
            label: "t".to_string(),
            fields: Json::obj(vec![("fetches", Json::U64(3))]),
        }];
        let jsonl = snapshot_jsonl(&metrics, &events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let metric = Json::parse(lines[0]).unwrap();
        assert_eq!(metric.get("type").and_then(Json::as_str), Some("metric"));
        assert_eq!(metric.get("kind").and_then(Json::as_str), Some("counter"));
        let event = Json::parse(lines[1]).unwrap();
        assert_eq!(event.get("type").and_then(Json::as_str), Some("event"));
        assert_eq!(
            event
                .get("fields")
                .and_then(|f| f.get("fetches"))
                .and_then(Json::as_u64),
            Some(3)
        );
    }
}
