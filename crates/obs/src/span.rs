//! RAII span timers aggregating wall-time into [`registry::SpanStat`]s.
//!
//! Two flavours:
//!
//! * [`span`] / [`span_labeled`] — **gated**: when observability is
//!   disabled ([`crate::enabled`] is false) they take no timestamp and
//!   record nothing; the cost is one relaxed load and a branch. Use these
//!   on instrumented library paths.
//! * [`timed`] / [`timed_labeled`] — **always-on**: they record
//!   regardless of mode. Use these where the timing *is* the product,
//!   e.g. `exp_perf` builds its pipeline-latency table from them.
//!
//! Aggregation is atomic ([`registry::SpanStat::record`]), so guards may
//! drop on any `imt-bitcode::par` worker thread; concurrent spans with
//! the same name simply sum into the same stats.

use std::time::Instant;

use crate::registry::{self, SpanStat};

/// An in-flight span; records elapsed wall-time on drop. Inert (no
/// timestamp taken) when constructed via a gated entry point with
/// observability disabled.
///
/// In [`crate::Mode::Trace`] the gated constructors additionally open a
/// [`crate::trace::TraceSpan`], so every existing `span!` site in the
/// workspace contributes a causally-parented trace event without any
/// call-site change. The trace gate is only consulted *after* the obs
/// gate passed, so the disabled-path cost is unchanged.
#[must_use = "a span records when the guard drops; bind it with `let _span = ...`"]
pub struct SpanGuard {
    live: Option<(Instant, &'static SpanStat)>,
    trace: crate::trace::TraceSpan,
}

impl SpanGuard {
    /// A guard that records nothing — what the gated constructors return
    /// when observability is off.
    pub fn inert() -> SpanGuard {
        SpanGuard {
            live: None,
            trace: crate::trace::TraceSpan::inert(),
        }
    }

    /// Whether this guard will record on drop.
    pub fn is_live(&self) -> bool {
        self.live.is_some()
    }

    /// The trace context of this span, if one is being recorded
    /// ([`crate::Mode::Trace`] only) — for explicit cross-thread
    /// hand-offs.
    pub fn trace_ctx(&self) -> Option<crate::trace::TraceCtx> {
        self.trace.ctx()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((start, stat)) = self.live.take() {
            stat.record(start.elapsed().as_nanos() as u64);
        }
        // `self.trace` drops after this body, recording the trace event.
    }
}

fn live(name: &'static str, stat: &'static SpanStat) -> SpanGuard {
    let trace = if crate::trace_enabled() {
        crate::trace::span(name)
    } else {
        crate::trace::TraceSpan::inert()
    };
    SpanGuard {
        live: Some((Instant::now(), stat)),
        trace,
    }
}

/// Opens a gated span under `name`; inert when observability is off.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if crate::enabled() {
        live(name, registry::span_stat(name))
    } else {
        SpanGuard::inert()
    }
}

/// Opens a gated span under `name` with `label`; inert when
/// observability is off.
#[inline]
pub fn span_labeled(name: &'static str, label: &str) -> SpanGuard {
    if crate::enabled() {
        live(name, registry::span_stat_labeled(name, label))
    } else {
        SpanGuard::inert()
    }
}

/// Opens an always-on span under `name`: records regardless of mode.
pub fn timed(name: &'static str) -> SpanGuard {
    live(name, registry::span_stat(name))
}

/// Opens an always-on span under `name` with `label`.
pub fn timed_labeled(name: &'static str, label: &str) -> SpanGuard {
    live(name, registry::span_stat_labeled(name, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_mode, Mode};

    #[test]
    fn timed_records_regardless_of_mode() {
        let before = crate::mode();
        set_mode(Mode::Off);
        let stat = registry::span_stat("span.test.timed");
        let n0 = stat.count();
        {
            let guard = timed("span.test.timed");
            assert!(guard.is_live());
        }
        assert_eq!(stat.count(), n0 + 1);
        set_mode(before);
    }

    #[test]
    fn gated_span_is_inert_when_off() {
        let before = crate::mode();
        set_mode(Mode::Off);
        let stat = registry::span_stat("span.test.gated");
        let n0 = stat.count();
        {
            let guard = span("span.test.gated");
            assert!(!guard.is_live());
        }
        assert_eq!(stat.count(), n0);

        set_mode(Mode::Report);
        {
            let guard = span("span.test.gated");
            assert!(guard.is_live());
        }
        assert_eq!(stat.count(), n0 + 1);
        set_mode(before);
    }

    #[test]
    fn nested_spans_sum_into_stats() {
        let stat = registry::span_stat_labeled("span.test.nested", "outer");
        let inner = registry::span_stat_labeled("span.test.nested", "inner");
        let (o0, i0) = (stat.count(), inner.count());
        {
            let _outer = timed_labeled("span.test.nested", "outer");
            for _ in 0..3 {
                let _inner = timed_labeled("span.test.nested", "inner");
            }
        }
        assert_eq!(stat.count(), o0 + 1);
        assert_eq!(inner.count(), i0 + 3);
        assert!(stat.total_ns() >= stat.min_ns());
    }

    #[test]
    fn spans_record_from_worker_threads() {
        let stat = registry::span_stat("span.test.threads");
        let n0 = stat.count();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _guard = timed("span.test.threads");
                });
            }
        });
        assert_eq!(stat.count(), n0 + 4);
    }
}
