//! Causal request tracing: trace/span IDs, parent links, and
//! nanosecond-timestamped events in per-thread lock-free ring buffers.
//!
//! ## Model
//!
//! A **trace** is a tree of **spans**. Every span has a process-unique
//! `span_id`, the `trace_id` of its root, and a `parent_id` (`0` for the
//! root itself). Spans nest implicitly through a thread-local context
//! stack: [`span`] parents under whatever span is open on the *current*
//! thread, or starts a fresh trace when none is. Crossing a thread
//! boundary is explicit — the sender captures [`propagate`] (or builds a
//! [`TraceCtx`] with [`open_trace`]) and the receiver adopts it with
//! [`span_under`]. `imt-serve` threads a `TraceCtx` through each queued
//! job; `imt-bitcode::par` forwards the spawning thread's context into
//! its scoped workers.
//!
//! ## Recording
//!
//! Events are recorded **where they end**: a span writes one fixed-size
//! record (48 B of payload) into its thread's ring buffer when its guard
//! drops. Rings are bounded (default 16 384 slots, `IMT_TRACE_CAPACITY`
//! override, rounded up to a power of two) and wrap — old events are
//! overwritten and counted as dropped rather than blocking the hot path.
//! Each slot is a seqlock: the owning thread bumps the slot's sequence to
//! odd, stores the payload, and bumps it to even, all with atomics; a
//! concurrent [`snapshot`] re-checks the sequence and discards torn
//! reads. No event recording ever takes a lock (span *names* are interned
//! once per distinct `&'static str` under a mutex — a bounded, cold
//! cost).
//!
//! Recording is active only in [`crate::Mode::Trace`] ([`crate::trace_enabled`]);
//! in every other mode all entry points are a single atomic load and
//! branch, and the gated [`crate::span!`] sites only consult the trace
//! gate after the obs gate already passed.
//!
//! ## Export
//!
//! [`snapshot`] drains every thread's ring (non-destructively) into
//! [`TraceEvent`]s; the manifest layer embeds them as the `trace` section
//! of `imt-obs/v1` documents — including aborted ones, so a crashed run
//! still yields a partial timeline. [`chrome_trace`] converts manifests
//! into Chrome trace-event JSON (`chrome://tracing` / Perfetto's
//! `displayTimeUnit`/`traceEvents` format), validated by
//! [`validate_chrome`].

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// Default ring capacity (slots per thread) when `IMT_TRACE_CAPACITY` is
/// unset.
pub const DEFAULT_CAPACITY: usize = 16_384;

/// A drained trace event. `dur_ns == 0` and [`TraceKind::Instant`] mark
/// point events; spans carry their full duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Interned span name (e.g. `serve.request`).
    pub name: String,
    /// Span or instant.
    pub kind: TraceKind,
    /// ID of the trace (tree) this event belongs to.
    pub trace_id: u64,
    /// Process-unique ID of this span.
    pub span_id: u64,
    /// `span_id` of the parent, `0` for trace roots.
    pub parent_id: u64,
    /// Recording thread (1-based, assigned at first trace use per thread).
    pub thread: u64,
    /// Start timestamp, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
}

/// Discriminates duration spans from point events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A duration span (`ph: "X"` in Chrome trace-event terms).
    Span,
    /// A point event (`ph: "i"`).
    Instant,
}

impl TraceKind {
    /// Stable string form used in manifests.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Span => "span",
            TraceKind::Instant => "instant",
        }
    }

    fn from_name(s: &str) -> Option<TraceKind> {
        match s {
            "span" => Some(TraceKind::Span),
            "instant" => Some(TraceKind::Instant),
            _ => None,
        }
    }
}

/// A causal context: enough to parent spans recorded on *other* threads
/// (or at a later time) under a span owned here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The trace (tree) ID.
    pub trace_id: u64,
    /// The span new children should parent under.
    pub span_id: u64,
}

// ---------------------------------------------------------------------
// IDs, epoch, name interning
// ---------------------------------------------------------------------

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (first trace use). The
/// clock is `Instant`-monotonic, so timestamps recorded on one thread
/// never go backwards.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Interned names: index+1 is the on-ring ID (0 = invalid). A handful of
/// distinct static names exist per binary, so a linear scan under a
/// mutex is fine — and only paid once per (name, thread-ring) miss.
static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

fn intern(name: &'static str) -> u64 {
    let mut names = NAMES.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(i) = names
        .iter()
        .position(|&n| std::ptr::eq(n, name) || n == name)
    {
        return (i + 1) as u64;
    }
    names.push(name);
    names.len() as u64
}

fn name_of(id: u64) -> String {
    let names = NAMES.lock().unwrap_or_else(|e| e.into_inner());
    names
        .get((id as usize).wrapping_sub(1))
        .map(|n| n.to_string())
        .unwrap_or_else(|| format!("?{id}"))
}

// ---------------------------------------------------------------------
// Per-thread seqlock rings
// ---------------------------------------------------------------------

const FIELDS: usize = 6; // meta, trace, span, parent, start, dur

struct Slot {
    /// 0 = never written; odd = write in progress; even > 0 = committed.
    seq: AtomicU64,
    /// `[name_id << 8 | kind, trace_id, span_id, parent_id, start_ns, dur_ns]`
    f: [AtomicU64; FIELDS],
}

struct Ring {
    thread: u64,
    /// Total events ever pushed; `head % capacity` is the next slot.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(thread: u64, capacity: usize) -> Ring {
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                f: [(); FIELDS].map(|_| AtomicU64::new(0)),
            })
            .collect();
        Ring {
            thread,
            head: AtomicU64::new(0),
            slots,
        }
    }

    /// Owner-thread only: commit one record.
    fn push(&self, fields: [u64; FIELDS]) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head as usize) & (self.slots.len() - 1)];
        let seq = slot.seq.load(Ordering::Relaxed);
        // Mark the slot as mid-write, store the payload, then commit with
        // an even sequence. A concurrent reader seeing either an odd
        // sequence or a sequence change across its read discards the slot.
        slot.seq.store(seq + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (dst, src) in slot.f.iter().zip(fields) {
            dst.store(src, Ordering::Relaxed);
        }
        slot.seq.store(seq + 2, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Any thread: read the committed record at `index`, or `None` if the
    /// slot is empty or a write raced the read.
    fn read(&self, index: u64) -> Option<[u64; FIELDS]> {
        let slot = &self.slots[(index as usize) & (self.slots.len() - 1)];
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 % 2 == 1 {
            return None;
        }
        let fields = slot.f.each_ref().map(|f| f.load(Ordering::Relaxed));
        fence(Ordering::Acquire);
        let s2 = slot.seq.load(Ordering::Relaxed);
        (s1 == s2).then_some(fields)
    }
}

fn capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("IMT_TRACE_CAPACITY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_CAPACITY)
            .max(2)
            .next_power_of_two()
    })
}

static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
    static CTX_STACK: std::cell::RefCell<Vec<TraceCtx>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

fn with_ring<R>(f: impl FnOnce(&Ring) -> R) -> R {
    RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let thread = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            let ring = Arc::new(Ring::new(thread, capacity()));
            RINGS
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&ring));
            ring
        });
        f(ring)
    })
}

fn record(
    kind: TraceKind,
    name_id: u64,
    ctx: TraceCtx,
    parent_id: u64,
    start_ns: u64,
    dur_ns: u64,
) {
    let meta = (name_id << 8) | kind as u64;
    with_ring(|ring| {
        ring.push([meta, ctx.trace_id, ctx.span_id, parent_id, start_ns, dur_ns]);
    });
}

// ---------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------

/// The current thread's innermost open trace span, if any (and tracing is
/// on). This is what a cross-thread hand-off should capture on the
/// sending side; alias [`propagate`] reads better at call sites.
pub fn current() -> Option<TraceCtx> {
    if !crate::trace_enabled() {
        return None;
    }
    CTX_STACK.with(|stack| stack.borrow().last().copied())
}

/// Captures the sending side of a cross-thread hand-off: the context the
/// spawned/queued work should parent under. `None` when tracing is off or
/// no span is open — receivers treat that as "do not trace".
pub fn propagate() -> Option<TraceCtx> {
    current()
}

/// Allocates a fresh root context *without* opening a guard — for request
/// roots whose lifetime is event-driven rather than scoped (e.g. an
/// `imt-serve` job that is fulfilled on a worker thread). Close it with
/// [`close_root`]. `None` when tracing is off.
pub fn open_trace() -> Option<TraceCtx> {
    if !crate::trace_enabled() {
        return None;
    }
    Some(TraceCtx {
        trace_id: next_trace_id(),
        span_id: next_span_id(),
    })
}

/// Records the root span for a context from [`open_trace`], spanning
/// `start_ns..now`. Call exactly once, after all children are recorded.
pub fn close_root(name: &'static str, ctx: Option<TraceCtx>, start_ns: u64) {
    let Some(ctx) = ctx else { return };
    if !crate::trace_enabled() {
        return;
    }
    let dur = now_ns().saturating_sub(start_ns);
    record(TraceKind::Span, intern(name), ctx, 0, start_ns, dur);
}

/// Records a completed child span `start_ns..end_ns` under `parent` — for
/// stages measured out-of-band (queue wait, shared batch warm) where no
/// guard scope exists.
pub fn record_stage(name: &'static str, parent: Option<TraceCtx>, start_ns: u64, end_ns: u64) {
    let Some(parent) = parent else { return };
    if !crate::trace_enabled() {
        return;
    }
    let ctx = TraceCtx {
        trace_id: parent.trace_id,
        span_id: next_span_id(),
    };
    record(
        TraceKind::Span,
        intern(name),
        ctx,
        parent.span_id,
        start_ns,
        end_ns.saturating_sub(start_ns),
    );
}

/// Records a point event under the current thread's open span (no-op when
/// tracing is off or no span is open).
pub fn instant(name: &'static str) {
    instant_under(name, current());
}

/// Records a point event under an explicit parent context.
pub fn instant_under(name: &'static str, parent: Option<TraceCtx>) {
    let Some(parent) = parent else { return };
    if !crate::trace_enabled() {
        return;
    }
    let ctx = TraceCtx {
        trace_id: parent.trace_id,
        span_id: next_span_id(),
    };
    let ts = now_ns();
    record(TraceKind::Instant, intern(name), ctx, parent.span_id, ts, 0);
}

/// RAII trace span: pushes its context on the thread-local stack at open
/// and records one event at drop. Inert (field `None`) when tracing is
/// off.
#[must_use = "the span records when this guard drops"]
pub struct TraceSpan {
    live: Option<(
        &'static str,
        TraceCtx,
        u64, /* parent */
        u64, /* start */
    )>,
}

impl TraceSpan {
    /// A guard that records nothing.
    pub fn inert() -> TraceSpan {
        TraceSpan { live: None }
    }

    /// Whether this guard will record an event.
    pub fn is_live(&self) -> bool {
        self.live.is_some()
    }

    /// The context of this span, for explicit hand-offs.
    pub fn ctx(&self) -> Option<TraceCtx> {
        self.live.map(|(_, ctx, _, _)| ctx)
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let Some((name, ctx, parent, start)) = self.live.take() else {
            return;
        };
        CTX_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let dur = now_ns().saturating_sub(start);
        record(TraceKind::Span, intern(name), ctx, parent, start, dur);
    }
}

fn open_span(name: &'static str, trace_id: u64, parent_id: u64) -> TraceSpan {
    let ctx = TraceCtx {
        trace_id,
        span_id: next_span_id(),
    };
    CTX_STACK.with(|stack| stack.borrow_mut().push(ctx));
    TraceSpan {
        live: Some((name, ctx, parent_id, now_ns())),
    }
}

/// Opens a span parented under the current thread's innermost open span,
/// or as a fresh trace root when none is open. Inert when tracing is off.
pub fn span(name: &'static str) -> TraceSpan {
    if !crate::trace_enabled() {
        return TraceSpan::inert();
    }
    match CTX_STACK.with(|stack| stack.borrow().last().copied()) {
        Some(parent) => open_span(name, parent.trace_id, parent.span_id),
        None => open_span(name, next_trace_id(), 0),
    }
}

/// Opens a span under an explicitly propagated context (cross-thread
/// adoption). Inert when `parent` is `None` or tracing is off — a worker
/// spawned outside any trace stays silent rather than creating orphan
/// roots.
pub fn span_under(name: &'static str, parent: Option<TraceCtx>) -> TraceSpan {
    let Some(parent) = parent else {
        return TraceSpan::inert();
    };
    if !crate::trace_enabled() {
        return TraceSpan::inert();
    }
    open_span(name, parent.trace_id, parent.span_id)
}

// ---------------------------------------------------------------------
// Draining
// ---------------------------------------------------------------------

/// Reads every thread's ring without clearing it: the committed events
/// (sorted by `(start_ns, span_id)`) plus the count of events lost to
/// ring wrap-around or torn concurrent writes.
pub fn snapshot() -> (Vec<TraceEvent>, u64) {
    let rings: Vec<Arc<Ring>> = RINGS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(Arc::clone)
        .collect();
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for ring in rings {
        let head = ring.head.load(Ordering::Acquire);
        let cap = ring.slots.len() as u64;
        let first = head.saturating_sub(cap);
        dropped += first;
        for index in first..head {
            match ring.read(index) {
                Some([meta, trace_id, span_id, parent_id, start_ns, dur_ns]) => {
                    let kind = if meta & 0xff == TraceKind::Instant as u64 {
                        TraceKind::Instant
                    } else {
                        TraceKind::Span
                    };
                    events.push(TraceEvent {
                        name: name_of(meta >> 8),
                        kind,
                        trace_id,
                        span_id,
                        parent_id,
                        thread: ring.thread,
                        start_ns,
                        dur_ns,
                    });
                }
                None => dropped += 1,
            }
        }
    }
    events.sort_by_key(|e| (e.start_ns, e.span_id));
    (events, dropped)
}

/// Clears every ring (test hygiene between runs in one process). Racy
/// against concurrent recording; callers quiesce their threads first.
pub fn reset() {
    let rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
    for ring in rings.iter() {
        for slot in ring.slots.iter() {
            slot.seq.store(0, Ordering::Relaxed);
        }
        ring.head.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Manifest (de)serialisation
// ---------------------------------------------------------------------

/// Serialises a drained snapshot as the manifest `trace` section.
pub fn events_to_json(events: &[TraceEvent], dropped: u64) -> Json {
    let rows = events
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("name", Json::str(&e.name)),
                ("kind", Json::str(e.kind.name())),
                ("trace", Json::U64(e.trace_id)),
                ("span", Json::U64(e.span_id)),
                ("parent", Json::U64(e.parent_id)),
                ("thread", Json::U64(e.thread)),
                ("start_ns", Json::U64(e.start_ns)),
                ("dur_ns", Json::U64(e.dur_ns)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("dropped", Json::U64(dropped)),
        ("events", Json::Arr(rows)),
    ])
}

/// Parses a manifest `trace` section back into events.
pub fn events_from_json(section: &Json) -> Result<(Vec<TraceEvent>, u64), String> {
    validate_section(section)?;
    let dropped = section.get("dropped").and_then(Json::as_u64).unwrap_or(0);
    let rows = section
        .get("events")
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    let mut events = Vec::with_capacity(rows.len());
    for row in rows {
        let field = |key: &str| row.get(key).and_then(Json::as_u64).unwrap_or(0);
        events.push(TraceEvent {
            name: row
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            kind: row
                .get("kind")
                .and_then(Json::as_str)
                .and_then(TraceKind::from_name)
                .unwrap_or(TraceKind::Span),
            trace_id: field("trace"),
            span_id: field("span"),
            parent_id: field("parent"),
            thread: field("thread"),
            start_ns: field("start_ns"),
            dur_ns: field("dur_ns"),
        });
    }
    Ok((events, dropped))
}

/// Validates the shape of a manifest `trace` section. Parent links are
/// *not* required to resolve here: an aborted run's flush records only
/// the spans that closed before the crash, so children may legitimately
/// reference parents that never committed.
pub fn validate_section(section: &Json) -> Result<(), String> {
    let err = |msg: &str| Err(format!("trace section: {msg}"));
    if section.get("dropped").and_then(Json::as_u64).is_none() {
        return err("missing u64 `dropped`");
    }
    let Some(rows) = section.get("events").and_then(Json::as_array) else {
        return err("missing `events` array");
    };
    for (i, row) in rows.iter().enumerate() {
        let name = row.get("name").and_then(Json::as_str);
        if name.is_none_or(str::is_empty) {
            return err(&format!("event {i}: missing `name`"));
        }
        let kind = row.get("kind").and_then(Json::as_str);
        if kind.and_then(TraceKind::from_name).is_none() {
            return err(&format!("event {i}: `kind` must be span|instant"));
        }
        for key in ["trace", "span", "parent", "thread", "start_ns", "dur_ns"] {
            if row.get(key).and_then(Json::as_u64).is_none() {
                return err(&format!("event {i}: missing u64 `{key}`"));
            }
        }
        if row.get("span").and_then(Json::as_u64) == Some(0) {
            return err(&format!("event {i}: span id 0 is reserved"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------

/// Converts one or more `(run name, events)` pairs into a Chrome
/// trace-event JSON document loadable by `chrome://tracing` and Perfetto.
/// Each run becomes one `pid`; ring threads map to `tid`s; spans become
/// complete (`ph: "X"`) events and instants `ph: "i"`, with timestamps in
/// fractional microseconds. Events are sorted by `(pid, ts)` so per-thread
/// order in the array matches wall-clock order.
pub fn chrome_trace(runs: &[(String, Vec<TraceEvent>)]) -> Json {
    let mut rows: Vec<(u64, u64, u64, Json)> = Vec::new();
    for (pid0, (run, events)) in runs.iter().enumerate() {
        let pid = pid0 as u64 + 1;
        rows.push((
            pid,
            0,
            0,
            Json::obj(vec![
                ("name", Json::str("process_name")),
                ("ph", Json::str("M")),
                ("pid", Json::U64(pid)),
                ("tid", Json::U64(0)),
                ("args", Json::obj(vec![("name", Json::str(run))])),
            ]),
        ));
        for e in events {
            let mut fields = vec![
                ("name", Json::str(&e.name)),
                ("cat", Json::str("imt")),
                (
                    "ph",
                    Json::str(match e.kind {
                        TraceKind::Span => "X",
                        TraceKind::Instant => "i",
                    }),
                ),
                ("ts", Json::F64(e.start_ns as f64 / 1000.0)),
            ];
            if e.kind == TraceKind::Span {
                fields.push(("dur", Json::F64(e.dur_ns as f64 / 1000.0)));
            } else {
                fields.push(("s", Json::str("t")));
            }
            fields.extend([
                ("pid", Json::U64(pid)),
                ("tid", Json::U64(e.thread)),
                (
                    "args",
                    Json::obj(vec![
                        ("trace", Json::U64(e.trace_id)),
                        ("span", Json::U64(e.span_id)),
                        ("parent", Json::U64(e.parent_id)),
                    ]),
                ),
            ]);
            rows.push((pid, e.start_ns, e.span_id, Json::obj(fields)));
        }
    }
    rows.sort_by_key(|a| (a.0, a.1, a.2));
    Json::obj(vec![
        ("displayTimeUnit", Json::str("ns")),
        (
            "otherData",
            Json::obj(vec![("schema", Json::str("imt-trace-chrome/v1"))]),
        ),
        (
            "traceEvents",
            Json::Arr(rows.into_iter().map(|(_, _, _, j)| j).collect()),
        ),
    ])
}

/// Validates a Chrome trace-event document produced by [`chrome_trace`]
/// (and, structurally, anything `chrome://tracing` would accept from us):
/// a `traceEvents` array whose entries carry `name`/`ph`/`pid`/`tid`,
/// with numeric `ts` on `X`/`i` events and numeric `dur` on `X` events.
pub fn validate_chrome(doc: &Json) -> Result<(), String> {
    let err = |msg: String| Err(format!("chrome trace: {msg}"));
    let Some(events) = doc.get("traceEvents").and_then(Json::as_array) else {
        return err("missing `traceEvents` array".to_string());
    };
    for (i, e) in events.iter().enumerate() {
        if e.get("name")
            .and_then(Json::as_str)
            .is_none_or(str::is_empty)
        {
            return err(format!("event {i}: missing `name`"));
        }
        let ph = e.get("ph").and_then(Json::as_str).unwrap_or("");
        if !matches!(ph, "X" | "i" | "M") {
            return err(format!("event {i}: `ph` must be X|i|M, got {ph:?}"));
        }
        for key in ["pid", "tid"] {
            if e.get(key).and_then(Json::as_u64).is_none() {
                return err(format!("event {i}: missing u64 `{key}`"));
            }
        }
        if ph != "M" && e.get("ts").and_then(Json::as_f64).is_none() {
            return err(format!("event {i}: missing numeric `ts`"));
        }
        if ph == "X" && e.get("dur").and_then(Json::as_f64).is_none() {
            return err(format!("event {i}: missing numeric `dur`"));
        }
    }
    Ok(())
}

/// Serialises tests (here and in `manifest`) that flip the global mode
/// into/out of [`crate::Mode::Trace`] or reset the rings: they assert on
/// ring contents, which are process-global.
#[cfg(test)]
pub(crate) static TRACE_TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    fn with_trace_mode<R>(f: impl FnOnce() -> R) -> R {
        let _guard = TRACE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = crate::mode();
        crate::set_mode(Mode::Trace);
        reset();
        let result = f();
        reset();
        crate::set_mode(before);
        result
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let events = with_trace_mode(|| {
            {
                let outer = span("t.outer");
                assert!(outer.is_live());
                {
                    let inner = span("t.inner");
                    assert!(inner.is_live());
                    instant("t.mark");
                }
            }
            snapshot().0
        });
        let outer = events.iter().find(|e| e.name == "t.outer").unwrap();
        let inner = events.iter().find(|e| e.name == "t.inner").unwrap();
        let mark = events.iter().find(|e| e.name == "t.mark").unwrap();
        assert_eq!(outer.parent_id, 0);
        assert_eq!(inner.parent_id, outer.span_id);
        assert_eq!(mark.parent_id, inner.span_id);
        assert_eq!(inner.trace_id, outer.trace_id);
        assert_eq!(mark.kind, TraceKind::Instant);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    #[test]
    fn inert_when_tracing_is_off() {
        let _guard = TRACE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = crate::mode();
        crate::set_mode(Mode::Json);
        reset();
        {
            let guard = span("t.off");
            assert!(!guard.is_live());
            instant("t.off_mark");
            assert!(open_trace().is_none());
            assert!(propagate().is_none());
        }
        let (events, dropped) = snapshot();
        assert!(events.is_empty(), "no events while tracing is off");
        assert_eq!(dropped, 0);
        crate::set_mode(before);
    }

    #[test]
    fn explicit_roots_and_stages() {
        let events = with_trace_mode(|| {
            let ctx = open_trace().unwrap();
            let t0 = now_ns();
            record_stage("t.stage", Some(ctx), t0, now_ns());
            instant_under("t.ping", Some(ctx));
            close_root("t.root", Some(ctx), t0);
            snapshot().0
        });
        let root = events.iter().find(|e| e.name == "t.root").unwrap();
        let stage = events.iter().find(|e| e.name == "t.stage").unwrap();
        let ping = events.iter().find(|e| e.name == "t.ping").unwrap();
        assert_eq!(root.parent_id, 0);
        assert_eq!(stage.parent_id, root.span_id);
        assert_eq!(ping.parent_id, root.span_id);
        assert_eq!(stage.trace_id, root.trace_id);
    }

    #[test]
    fn cross_thread_adoption_parents_correctly() {
        let events = with_trace_mode(|| {
            {
                let root = span("t.spawn_root");
                let ctx = propagate();
                assert_eq!(ctx, root.ctx());
                std::thread::scope(|scope| {
                    for _ in 0..2 {
                        scope.spawn(move || {
                            let _w = span_under("t.worker", ctx);
                            let _n = span("t.worker_item");
                        });
                    }
                });
            }
            snapshot().0
        });
        let root = events.iter().find(|e| e.name == "t.spawn_root").unwrap();
        let workers: Vec<_> = events.iter().filter(|e| e.name == "t.worker").collect();
        let items: Vec<_> = events
            .iter()
            .filter(|e| e.name == "t.worker_item")
            .collect();
        assert_eq!(workers.len(), 2);
        assert_eq!(items.len(), 2);
        for w in &workers {
            assert_eq!(w.parent_id, root.span_id);
            assert_eq!(w.trace_id, root.trace_id);
            assert_ne!(w.thread, root.thread, "workers record on their own rings");
        }
        for item in &items {
            assert!(workers.iter().any(|w| w.span_id == item.parent_id));
        }
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let (events, dropped, cap) = with_trace_mode(|| {
            let cap = capacity();
            for _ in 0..cap + 10 {
                let _s = span("t.wrap");
            }
            let (events, dropped) = snapshot();
            (events, dropped, cap)
        });
        let wraps = events.iter().filter(|e| e.name == "t.wrap").count();
        assert_eq!(wraps, cap);
        assert!(dropped >= 10, "wrapped events are counted as dropped");
    }

    #[test]
    fn json_round_trip_and_validation() {
        let events = vec![
            TraceEvent {
                name: "a".into(),
                kind: TraceKind::Span,
                trace_id: 1,
                span_id: 2,
                parent_id: 0,
                thread: 1,
                start_ns: 100,
                dur_ns: 50,
            },
            TraceEvent {
                name: "b".into(),
                kind: TraceKind::Instant,
                trace_id: 1,
                span_id: 3,
                parent_id: 2,
                thread: 2,
                start_ns: 120,
                dur_ns: 0,
            },
        ];
        let json = events_to_json(&events, 7);
        let reparsed = Json::parse(&json.render()).unwrap();
        let (back, dropped) = events_from_json(&reparsed).unwrap();
        assert_eq!(back, events);
        assert_eq!(dropped, 7);
    }

    #[test]
    fn section_validation_rejects_bad_shapes() {
        let bad = [
            Json::obj(vec![("events", Json::Arr(vec![]))]), // no dropped
            Json::obj(vec![("dropped", Json::U64(0))]),     // no events
            Json::obj(vec![
                ("dropped", Json::U64(0)),
                (
                    "events",
                    Json::Arr(vec![Json::obj(vec![("name", Json::str("x"))])]),
                ),
            ]),
        ];
        for doc in &bad {
            assert!(validate_section(doc).is_err(), "accepted: {}", doc.render());
        }
    }

    #[test]
    fn chrome_export_is_valid_and_ordered() {
        let events = vec![
            TraceEvent {
                name: "late".into(),
                kind: TraceKind::Span,
                trace_id: 1,
                span_id: 5,
                parent_id: 2,
                thread: 1,
                start_ns: 900,
                dur_ns: 10,
            },
            TraceEvent {
                name: "early".into(),
                kind: TraceKind::Instant,
                trace_id: 1,
                span_id: 4,
                parent_id: 2,
                thread: 1,
                start_ns: 200,
                dur_ns: 0,
            },
        ];
        let doc = chrome_trace(&[("run-a".to_string(), events)]);
        validate_chrome(&doc).unwrap();
        let rows = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 3, "metadata + two events");
        let names: Vec<_> = rows
            .iter()
            .map(|r| r.get("name").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(names, vec!["process_name", "early", "late"]);
        let early = &rows[1];
        assert_eq!(early.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(early.get("ts").and_then(Json::as_f64), Some(0.2));
        let late = &rows[2];
        assert_eq!(late.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(late.get("dur").and_then(Json::as_f64), Some(0.01));
    }

    #[test]
    fn chrome_validation_rejects_bad_documents() {
        let bad = [
            Json::obj(vec![("displayTimeUnit", Json::str("ns"))]),
            Json::obj(vec![(
                "traceEvents",
                Json::Arr(vec![Json::obj(vec![("name", Json::str("x"))])]),
            )]),
            Json::obj(vec![(
                "traceEvents",
                Json::Arr(vec![Json::obj(vec![
                    ("name", Json::str("x")),
                    ("ph", Json::str("X")),
                    ("pid", Json::U64(1)),
                    ("tid", Json::U64(1)),
                    ("ts", Json::F64(1.0)),
                    // missing dur on an X event
                ])]),
            )]),
        ];
        for doc in &bad {
            assert!(validate_chrome(doc).is_err(), "accepted: {}", doc.render());
        }
    }
}
