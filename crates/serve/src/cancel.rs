//! Cooperative cancellation: a cheap, cloneable flag shared between a
//! caller's [`crate::request::Ticket`] and the worker that will execute
//! the job. Cancellation is *advisory* — the worker checks it at defined
//! points (dequeue, pre-execution) and fails the job closed with
//! [`crate::ServeError::Cancelled`]; a job already executing runs to
//! completion (evaluation is not observably side-effecting, so there is
//! nothing to roll back).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Cloning shares the flag, not a copy.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    cancelled: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancellationToken {
        CancellationToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let token = CancellationToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        // Idempotent.
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn tokens_are_independent() {
        let a = CancellationToken::new();
        let b = CancellationToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn cancellation_is_visible_across_threads() {
        let token = CancellationToken::new();
        let seen = std::thread::scope(|scope| {
            let worker = {
                let token = token.clone();
                scope.spawn(move || {
                    while !token.is_cancelled() {
                        std::hint::spin_loop();
                    }
                    true
                })
            };
            token.cancel();
            worker.join().expect("worker panicked")
        });
        assert!(seen);
    }
}
