//! # imt-serve — a batched, backpressured encode/eval job service
//!
//! The paper's premise is that TT/BBIT tables are *reprogrammed per
//! application*: in a fleet, many applications' encode/eval jobs arrive
//! concurrently, and codebook/profile construction is an amortizable cost
//! shared by every job against the same kernel. This crate is the
//! request-serving shape of that scenario — the orchestration layer the
//! replay engine (`imt_core::eval::evaluate_replay`) made worthwhile,
//! because per-request compute is now cheap enough that throughput is
//! bounded by how work is fed, not by the evaluation itself:
//!
//! * [`request`] — the typed job surface: a [`request::Request`] names a
//!   kernel instance, an encoder configuration, evaluation needs, an
//!   optional deadline and an optional fault plan; a [`request::Ticket`]
//!   is the caller's handle to await, poll or cancel the response.
//! * [`queue`] — a bounded MPMC job queue with admission control:
//!   [`service::Admission::Reject`] sheds load with a typed
//!   [`ServeError::Overloaded`] when the queue is full (backpressure the
//!   caller can see), [`service::Admission::Block`] applies backpressure
//!   by blocking the producer.
//! * [`service`] — the worker pool. Workers dequeue *batches* coalesced
//!   by kernel key, so one profile-cache warm (shared in process and via
//!   [`imt_core::profile_cache`] on disk) serves every request in the
//!   batch; requests then encode + replay-evaluate independently.
//!
//! ## Semantics
//!
//! * **Bit-identical to serial.** A response's
//!   [`request::Completed::evaluation`] is exactly what a direct
//!   `encode_program` + `evaluate_auto` call produces for the same spec
//!   and configuration — batching and scheduling change wall-clock only,
//!   never the answer. `exp_serve` asserts this for every response.
//! * **Deadlines.** A request past its deadline when a worker picks it up
//!   is failed with [`ServeError::DeadlineExceeded`] without executing; a
//!   request that *completes* after its deadline is delivered but flagged
//!   ([`request::Response::missed_deadline`]).
//! * **Cancellation** is cooperative: [`request::Ticket::cancel`] marks
//!   the job, and the worker drops it at the next check point
//!   ([`ServeError::Cancelled`]).
//! * **Poisoned jobs fail closed.** A request whose fault plan produces
//!   silent corruption (wrong words reaching the core under
//!   `imt-fault` replay) is refused with [`ServeError::Poisoned`] — no
//!   numbers are published for it — and a panicking job is caught and
//!   mapped to [`ServeError::Panicked`]; in both cases the rest of the
//!   batch completes normally.
//!
//! ## Example
//!
//! ```
//! use imt_core::eval::EvalNeeds;
//! use imt_core::EncoderConfig;
//! use imt_kernels::Kernel;
//! use imt_serve::request::Request;
//! use imt_serve::service::{Service, ServiceConfig};
//!
//! let service = Service::start(ServiceConfig::default().with_workers(2));
//! let ticket = service
//!     .submit(Request::new(Kernel::Tri.test_spec(), EncoderConfig::default()))
//!     .expect("queue accepts while below capacity");
//! let response = ticket.wait();
//! let done = response.outcome.expect("tri encodes and evaluates");
//! assert_eq!(done.evaluation.decode_mismatches, 0);
//! service.shutdown();
//! ```

#![warn(clippy::unwrap_used)]

pub mod cancel;
pub mod queue;
mod quota;
pub mod request;
pub mod service;
mod shard;
pub mod sync;

use std::error::Error;
use std::fmt;

use imt_core::CoreError;

/// Why a request was not served, or was served degraded. Every variant is
/// a *per-request* outcome: the service itself never dies with a job.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Admission control refused the request: the queue was at capacity
    /// under [`service::Admission::Reject`]. Retry later or switch to
    /// blocking admission.
    Overloaded {
        /// Jobs queued when the request arrived.
        depth: usize,
        /// The queue's configured bound.
        capacity: usize,
    },
    /// Admission control refused the request because its *tenant* is at
    /// its in-flight cap ([`service::ServiceConfig::with_tenant_quota`]).
    /// The service itself may have plenty of room — this is fairness,
    /// not load: back off and retry, the quota frees as the tenant's
    /// in-flight requests are answered.
    QuotaExceeded {
        /// The tenant named by the request.
        tenant: String,
        /// The tenant's in-flight requests at refusal time.
        in_flight: usize,
        /// The per-tenant in-flight cap.
        limit: usize,
    },
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The request's deadline passed before a worker picked it up; it was
    /// failed without executing.
    DeadlineExceeded,
    /// The request was cancelled via [`request::Ticket::cancel`] before
    /// execution.
    Cancelled,
    /// The job panicked in the worker. The panic was contained: the rest
    /// of its batch completed normally.
    Panicked {
        /// The panic payload, if it was a string.
        detail: String,
    },
    /// The request's fault plan produced silent corruption (wrong words
    /// delivered under `imt-fault` replay). The job fails closed: no
    /// evaluation is published for a decode path that lies.
    Poisoned {
        /// Wrong words the faulty decode delivered.
        wrong_words: u64,
    },
    /// The kernel's recorded output diverged from its golden model — the
    /// profile is untrustworthy, so every job against it is refused.
    ProfileMismatch {
        /// The kernel spec name.
        kernel: String,
    },
    /// The profiling run itself failed (simulation fault, step budget).
    ProfileFailed {
        /// The kernel spec name.
        kernel: String,
        /// The simulator's error text.
        detail: String,
    },
    /// Encoding or evaluation failed with a typed core error.
    Core(CoreError),
    /// Fault-plan replay failed (bad plan, empty surface).
    Fault {
        /// The fault layer's error text.
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "queue overloaded ({depth}/{capacity} jobs); retry later")
            }
            ServeError::QuotaExceeded {
                tenant,
                in_flight,
                limit,
            } => write!(
                f,
                "tenant `{tenant}` at its in-flight quota ({in_flight}/{limit}); retry later"
            ),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::DeadlineExceeded => {
                write!(f, "deadline passed while the request was queued")
            }
            ServeError::Cancelled => write!(f, "request cancelled before execution"),
            ServeError::Panicked { detail } => write!(f, "job panicked in the worker: {detail}"),
            ServeError::Poisoned { wrong_words } => write!(
                f,
                "fault plan produced silent corruption ({wrong_words} wrong words); failing closed"
            ),
            ServeError::ProfileMismatch { kernel } => {
                write!(
                    f,
                    "{kernel}: recorded output diverged from the golden model"
                )
            }
            ServeError::ProfileFailed { kernel, detail } => {
                write!(f, "{kernel}: profiling run failed: {detail}")
            }
            ServeError::Core(e) => write!(f, "encode/evaluate failed: {e}"),
            ServeError::Fault { detail } => write!(f, "fault replay failed: {detail}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<imt_fault::FaultError> for ServeError {
    fn from(e: imt_fault::FaultError) -> Self {
        match e {
            imt_fault::FaultError::Core(e) => ServeError::Core(e),
            other => ServeError::Fault {
                detail: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_usefully() {
        let cases: Vec<(ServeError, &str)> = vec![
            (
                ServeError::Overloaded {
                    depth: 8,
                    capacity: 8,
                },
                "overloaded",
            ),
            (ServeError::ShuttingDown, "shutting down"),
            (ServeError::DeadlineExceeded, "deadline"),
            (ServeError::Cancelled, "cancelled"),
            (
                ServeError::Panicked {
                    detail: "boom".into(),
                },
                "boom",
            ),
            (ServeError::Poisoned { wrong_words: 3 }, "failing closed"),
            (
                ServeError::QuotaExceeded {
                    tenant: "hot".into(),
                    in_flight: 4,
                    limit: 4,
                },
                "quota",
            ),
            (
                ServeError::ProfileMismatch {
                    kernel: "mmul-8".into(),
                },
                "golden model",
            ),
        ];
        for (error, needle) in cases {
            assert!(
                error.to_string().contains(needle),
                "{error:?} missing `{needle}`"
            );
        }
    }
}
