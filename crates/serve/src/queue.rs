//! A bounded multi-producer/multi-consumer job queue with batch-coalescing
//! dequeue.
//!
//! The queue is the service's backpressure point: its capacity bounds how
//! much work the service will hold, and [`JobQueue::try_push`] /
//! [`JobQueue::push_wait`] are the two admission disciplines built on it
//! (shed load with a typed refusal, or block the producer). Consumers pull
//! *batches*: [`JobQueue::pop_batch`] takes the oldest job plus every
//! queued job sharing its batch key, so one profile warm serves all of
//! them.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

use crate::cancel::CancellationToken;
use crate::request::{Request, Slot};
use crate::sync::{lock_clean, wait_clean};
use std::sync::Arc;

/// One queued unit of work: the request plus everything the worker needs
/// to answer it.
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) id: u64,
    pub(crate) request: Request,
    /// Precomputed [`Request::batch_key`] — dequeue compares it per
    /// queued job.
    pub(crate) batch_key: String,
    pub(crate) slot: Arc<Slot>,
    pub(crate) cancel: CancellationToken,
    pub(crate) submitted: Instant,
    /// Absolute deadline (submission + relative deadline), if any.
    pub(crate) deadline: Option<Instant>,
    /// Causal trace root for this request (`IMT_OBS=trace` only): the
    /// submitting thread opens it, the worker that answers closes it.
    pub(crate) trace: Option<imt_obs::trace::TraceCtx>,
    /// Trace-epoch submission timestamp (0 when tracing is off); the
    /// root span and the `serve.queue_wait` stage start here.
    pub(crate) submitted_ns: u64,
}

/// Why [`JobQueue::try_push`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushRefusal {
    /// The queue was at capacity.
    Full { depth: usize, capacity: usize },
    /// The queue is closed (service shutting down).
    Closed,
}

#[derive(Debug)]
struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
}

/// The bounded queue itself. All methods are safe to call from any
/// thread; a poisoned lock is recovered through [`crate::sync`] (queue
/// state is valid after any panic because mutations are single-step —
/// the argument that module audits once for the whole crate).
#[derive(Debug)]
pub(crate) struct JobQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl JobQueue {
    pub(crate) fn new(capacity: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(capacity.min(1024)),
                open: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        lock_clean(&self.state)
    }

    /// Jobs currently queued.
    pub(crate) fn depth(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Non-blocking admission: enqueues or returns the job with the
    /// refusal reason.
    //
    // The large `Err` is the refused job handed back to the caller so it
    // can fulfil the ticket — an ownership round-trip, not an error
    // payload worth boxing.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_push(&self, job: Job) -> Result<(), (Job, PushRefusal)> {
        let mut state = self.lock();
        if !state.open {
            return Err((job, PushRefusal::Closed));
        }
        let depth = state.jobs.len();
        if depth >= self.capacity {
            return Err((
                job,
                PushRefusal::Full {
                    depth,
                    capacity: self.capacity,
                },
            ));
        }
        state.jobs.push_back(job);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking admission: waits for space, enqueues, or returns the job
    /// if the queue closed while waiting.
    //
    // Same ownership round-trip as `try_push`.
    #[allow(clippy::result_large_err)]
    pub(crate) fn push_wait(&self, job: Job) -> Result<(), Job> {
        let mut state = self.lock();
        while state.open && state.jobs.len() >= self.capacity {
            state = wait_clean(&self.not_full, state);
        }
        if !state.open {
            return Err(job);
        }
        state.jobs.push_back(job);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until work is available, then returns the oldest job plus
    /// every queued job sharing its batch key, at most `max_batch` total,
    /// preserving queue order among both the batch and the jobs left
    /// behind. Returns `None` once the queue is closed *and* empty — the
    /// workers' exit signal.
    pub(crate) fn pop_batch(&self, max_batch: usize) -> Option<Vec<Job>> {
        let max_batch = max_batch.max(1);
        let mut state = self.lock();
        loop {
            if let Some(first) = state.jobs.pop_front() {
                let mut batch = Vec::with_capacity(max_batch.min(8));
                let key = first.batch_key.clone();
                batch.push(first);
                let mut index = 0;
                while batch.len() < max_batch && index < state.jobs.len() {
                    if state.jobs[index].batch_key == key {
                        if let Some(job) = state.jobs.remove(index) {
                            batch.push(job);
                        }
                    } else {
                        index += 1;
                    }
                }
                // Space opened up: wake every blocked producer that now
                // fits (batch dequeue can free more than one slot).
                self.not_full.notify_all();
                return Some(batch);
            }
            if !state.open {
                return None;
            }
            state = wait_clean(&self.not_empty, state);
        }
    }

    /// Closes the queue: pushes start failing, blocked producers and
    /// consumers wake. Queued jobs stay queued (drain or pop them).
    pub(crate) fn close(&self) {
        self.lock().open = false;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Removes and returns everything still queued. Used at shutdown to
    /// fail leftover jobs closed rather than strand their tickets.
    pub(crate) fn drain(&self) -> Vec<Job> {
        let mut state = self.lock();
        let drained = state.jobs.drain(..).collect();
        self.not_full.notify_all();
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imt_core::EncoderConfig;
    use imt_kernels::Kernel;

    fn job(id: u64, kernel: Kernel) -> Job {
        let request = Request::new(kernel.test_spec(), EncoderConfig::default());
        let batch_key = request.batch_key();
        Job {
            id,
            request,
            batch_key,
            slot: Arc::new(Slot::default()),
            cancel: CancellationToken::new(),
            submitted: Instant::now(),
            deadline: None,
            trace: None,
            submitted_ns: 0,
        }
    }

    #[test]
    fn try_push_refuses_at_capacity_with_depth() {
        let queue = JobQueue::new(2);
        queue.try_push(job(1, Kernel::Tri)).expect("below capacity");
        queue.try_push(job(2, Kernel::Tri)).expect("below capacity");
        let (refused, reason) = queue.try_push(job(3, Kernel::Tri)).expect_err("full");
        assert_eq!(refused.id, 3);
        assert_eq!(
            reason,
            PushRefusal::Full {
                depth: 2,
                capacity: 2
            }
        );
        assert_eq!(queue.depth(), 2);
    }

    #[test]
    fn pop_batch_coalesces_same_key_and_preserves_order() {
        let queue = JobQueue::new(16);
        queue.try_push(job(1, Kernel::Tri)).expect("push");
        queue.try_push(job(2, Kernel::Fft)).expect("push");
        queue.try_push(job(3, Kernel::Tri)).expect("push");
        queue.try_push(job(4, Kernel::Fft)).expect("push");
        let batch = queue.pop_batch(8).expect("work queued");
        assert_eq!(batch.iter().map(|j| j.id).collect::<Vec<_>>(), [1, 3]);
        let batch = queue.pop_batch(8).expect("work queued");
        assert_eq!(batch.iter().map(|j| j.id).collect::<Vec<_>>(), [2, 4]);
    }

    #[test]
    fn pop_batch_respects_max_batch() {
        let queue = JobQueue::new(16);
        for id in 0..5 {
            queue.try_push(job(id, Kernel::Tri)).expect("push");
        }
        let batch = queue.pop_batch(3).expect("work queued");
        assert_eq!(batch.len(), 3);
        assert_eq!(queue.depth(), 2);
    }

    #[test]
    fn closed_empty_queue_returns_none_and_refuses_pushes() {
        let queue = JobQueue::new(4);
        queue.try_push(job(1, Kernel::Tri)).expect("push");
        queue.close();
        let (_, reason) = queue.try_push(job(2, Kernel::Tri)).expect_err("closed");
        assert_eq!(reason, PushRefusal::Closed);
        // Already-queued work is still served.
        assert_eq!(queue.pop_batch(8).expect("queued before close").len(), 1);
        assert!(queue.pop_batch(8).is_none());
    }

    #[test]
    #[allow(clippy::result_large_err)] // the closure returns push_wait's hand-back
    fn push_wait_blocks_until_consumer_frees_space() {
        let queue = JobQueue::new(1);
        queue.try_push(job(1, Kernel::Tri)).expect("push");
        std::thread::scope(|scope| {
            let producer = scope.spawn(|| queue.push_wait(job(2, Kernel::Tri)));
            std::thread::sleep(std::time::Duration::from_millis(5));
            let batch = queue.pop_batch(1).expect("job 1");
            assert_eq!(batch[0].id, 1);
            producer
                .join()
                .expect("producer panicked")
                .expect("queue open");
        });
        assert_eq!(queue.depth(), 1);
    }

    #[test]
    #[allow(clippy::result_large_err)] // the closure returns push_wait's hand-back
    fn push_wait_returns_job_when_closed_while_waiting() {
        let queue = JobQueue::new(1);
        queue.try_push(job(1, Kernel::Tri)).expect("push");
        std::thread::scope(|scope| {
            let producer = scope.spawn(|| queue.push_wait(job(2, Kernel::Tri)));
            std::thread::sleep(std::time::Duration::from_millis(5));
            queue.close();
            let rejected = producer
                .join()
                .expect("producer panicked")
                .expect_err("queue closed");
            assert_eq!(rejected.id, 2);
        });
    }

    #[test]
    fn drain_empties_the_queue() {
        let queue = JobQueue::new(8);
        for id in 0..3 {
            queue.try_push(job(id, Kernel::Tri)).expect("push");
        }
        queue.close();
        let drained = queue.drain();
        assert_eq!(drained.len(), 3);
        assert_eq!(queue.depth(), 0);
        assert!(queue.pop_batch(8).is_none());
    }
}
