//! Per-tenant admission quotas.
//!
//! Queue-level backpressure ([`crate::service::Admission`]) protects the
//! *service* from overload, but it is tenant-blind: one hot client can
//! fill the queue and starve everyone else even while the service sheds
//! load correctly in aggregate. [`TenantQuotas`] adds the missing axis —
//! a cap on how many requests any single tenant may have in flight
//! (admitted but not yet answered). A tenant at its cap gets a typed
//! [`crate::ServeError::QuotaExceeded`] immediately, leaving queue
//! capacity for everyone under theirs; the refusal is retryable, so a
//! well-behaved hot client backs off while light tenants sail through.
//!
//! Requests that carry no tenant ([`crate::request::Request::tenant`]
//! `== None`) are exempt — in-process callers that predate tenancy keep
//! their semantics.

use crate::shard::ShardedMap;

/// In-flight request accounting per tenant. Internally sharded like the
/// profile memo, so quota checks from many connection handlers do not
/// serialise on one lock. Refusal counting lives in the service stats
/// (`quota_rejected`), not here.
#[derive(Debug)]
pub(crate) struct TenantQuotas {
    max_inflight: usize,
    inflight: ShardedMap<u64>,
}

impl TenantQuotas {
    pub(crate) fn new(max_inflight: usize, shards: usize) -> TenantQuotas {
        TenantQuotas {
            max_inflight: max_inflight.max(1),
            inflight: ShardedMap::new(shards),
        }
    }

    /// Reserves one in-flight slot for `tenant`, or reports
    /// `(in_flight, limit)` if the tenant is at its cap. The reservation
    /// must be paired with exactly one [`TenantQuotas::release`] once
    /// the request is answered (any outcome).
    pub(crate) fn try_acquire(&self, tenant: &str) -> Result<(), (usize, usize)> {
        let limit = self.max_inflight;
        self.inflight.update(tenant, |count| {
            if (*count as usize) >= limit {
                Err((*count as usize, limit))
            } else {
                *count += 1;
                Ok(())
            }
        })
    }

    /// Returns a previously acquired slot.
    pub(crate) fn release(&self, tenant: &str) {
        self.inflight.update(tenant, |count| {
            debug_assert!(*count > 0, "quota released more times than acquired");
            *count = count.saturating_sub(1);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn acquire_release_tracks_inflight_per_tenant() {
        let quotas = TenantQuotas::new(2, 4);
        quotas.try_acquire("a").expect("first");
        quotas.try_acquire("a").expect("second");
        assert_eq!(quotas.try_acquire("a"), Err((2, 2)));
        // A different tenant is unaffected by a's saturation.
        quotas.try_acquire("b").expect("other tenant admitted");
        quotas.release("a");
        quotas.try_acquire("a").expect("slot freed");
    }

    #[test]
    fn quota_floor_is_one() {
        let quotas = TenantQuotas::new(0, 1);
        quotas.try_acquire("t").expect("limit clamps to 1, not 0");
        assert_eq!(quotas.try_acquire("t"), Err((1, 1)));
    }

    #[test]
    fn concurrent_acquires_never_exceed_the_cap() {
        let quotas = TenantQuotas::new(8, 4);
        let admitted = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let quotas = &quotas;
                let admitted = &admitted;
                scope.spawn(move || {
                    for _ in 0..64 {
                        if quotas.try_acquire("hot").is_ok() {
                            admitted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(admitted.load(Ordering::Relaxed), 8, "cap holds under races");
    }
}
