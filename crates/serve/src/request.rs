//! The job surface: what a caller submits ([`Request`]), what comes back
//! ([`Response`] / [`Completed`]), and the handle in between ([`Ticket`]).

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::sync::{lock_clean, wait_clean};

use imt_core::eval::{EvalNeeds, EvalPath, Evaluation};
use imt_core::scheme::SchemeSpec;
use imt_core::{EncoderConfig, Protection};
use imt_fault::plan::FaultPlan;
use imt_kernels::KernelSpec;

use crate::cancel::CancellationToken;
use crate::ServeError;

/// One encode/eval job: which kernel instance, how to encode it, what the
/// evaluation must cover, and how long the caller is willing to wait.
#[derive(Debug, Clone)]
pub struct Request {
    /// The kernel instance to encode and evaluate. The spec *is* the
    /// batching key: requests naming the same spec share one profile
    /// warm per batch.
    pub spec: KernelSpec,
    /// The encoder configuration (block size, table capacities,
    /// transform set).
    pub config: EncoderConfig,
    /// Which encoding scheme to apply. [`SchemeSpec::TtBbit`] (the
    /// default) runs the paper's pipeline unchanged; the alternatives
    /// route through the [`imt_core::scheme`] arena — cycle-state
    /// schemes fall back to full simulation, never a stateless replay.
    pub scheme: SchemeSpec,
    /// What the evaluation must cover; anything beyond data-bus
    /// transitions routes to full simulation (see
    /// [`imt_core::eval::evaluate_auto`]).
    pub needs: EvalNeeds,
    /// Deadline relative to submission. `None` falls back to the
    /// service's default. A job past its deadline at pickup is failed
    /// without executing.
    pub deadline: Option<Duration>,
    /// Optional upsets to replay against the encoded image under
    /// [`Request::protection`]. Silent corruption fails the job closed
    /// ([`ServeError::Poisoned`]); detected-and-degraded decode is
    /// reported in [`Completed::fault`].
    pub fault_plan: Option<FaultPlan>,
    /// Table protection assumed by the fault replay.
    pub protection: Protection,
    /// Fetch window the fault replay records (bounded so a fault request
    /// costs O(window), not O(run)).
    pub fault_window: usize,
    /// Test hook: panic inside the worker instead of executing. Stands in
    /// for a poisoned job so tests and the load generator can prove the
    /// batch survives ([`ServeError::Panicked`] for this job only).
    pub panic_in_worker: bool,
    /// Who this request is billed to for per-tenant admission quotas
    /// ([`crate::service::ServiceConfig::with_tenant_quota`]). `None`
    /// is exempt from quotas — the pre-tenancy in-process semantics.
    pub tenant: Option<String>,
    /// A trace root opened by an upstream front-end (e.g. the network
    /// layer, at frame-read start). When set, the service parents its
    /// queue/warm/execute stages under it instead of opening its own
    /// root, so one timeline covers read → decode → queue → warm →
    /// encode → respond.
    pub trace_root: Option<imt_obs::trace::TraceCtx>,
    /// When the adopted [`Request::trace_root`] was opened
    /// (trace-epoch nanoseconds); the root span starts here, covering
    /// the upstream work that preceded submission. 0 = unknown.
    pub trace_root_opened_ns: u64,
}

impl Request {
    /// A plain transitions-only request with no deadline and no faults.
    pub fn new(spec: KernelSpec, config: EncoderConfig) -> Request {
        Request {
            spec,
            config,
            scheme: SchemeSpec::TtBbit,
            needs: EvalNeeds::transitions_only(),
            deadline: None,
            fault_plan: None,
            protection: Protection::None,
            fault_window: 20_000,
            panic_in_worker: false,
            tenant: None,
            trace_root: None,
            trace_root_opened_ns: 0,
        }
    }

    /// Sets a relative deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Request {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a fault plan replayed under `protection`.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan, protection: Protection) -> Request {
        self.fault_plan = Some(plan);
        self.protection = protection;
        self
    }

    /// Bills the request to `tenant` for per-tenant admission quotas.
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Request {
        self.tenant = Some(tenant.into());
        self
    }

    /// Selects the encoding scheme (default [`SchemeSpec::TtBbit`]).
    #[must_use]
    pub fn with_scheme(mut self, scheme: SchemeSpec) -> Request {
        self.scheme = scheme;
        self
    }

    /// Adopts a trace root opened upstream (see [`Request::trace_root`]).
    #[must_use]
    pub fn with_trace_root(
        mut self,
        root: Option<imt_obs::trace::TraceCtx>,
        opened_ns: u64,
    ) -> Request {
        self.trace_root = root;
        self.trace_root_opened_ns = opened_ns;
        self
    }

    /// The key batches coalesce on: requests with equal keys share one
    /// profile warm. Spec names encode their parameters (`mmul-100`), so
    /// name + step budget identifies the recorded run.
    pub fn batch_key(&self) -> String {
        format!("{}#{}", self.spec.name, self.spec.max_steps)
    }

    /// The key completed results are memoized on, covering everything
    /// the outcome depends on: the spec (via [`Request::batch_key`]),
    /// the encoder configuration, the scheme, and the evaluation
    /// needs. `None`
    /// means the request must re-execute every time — it carries a
    /// fault plan (replay outcomes depend on the plan and protection)
    /// or the worker-panic test hook.
    pub fn result_key(&self) -> Option<String> {
        if self.fault_plan.is_some() || self.panic_in_worker {
            return None;
        }
        Some(format!(
            "{}|{:?}|{:?}|{:?}",
            self.batch_key(),
            self.config,
            self.scheme,
            self.needs
        ))
    }
}

/// Fault-replay outcome attached to a completed request that carried a
/// fault plan: the decode degraded gracefully (zero wrong words — a
/// silent outcome would have failed the job instead).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSummary {
    /// Upsets injected by the plan.
    pub injected: u64,
    /// Upsets the check codes detected.
    pub detected: u64,
    /// Upsets corrected in place (SEC).
    pub corrected: u64,
    /// Fetches served from the degraded (original-word) path.
    pub degraded_fetches: u64,
    /// Transition reduction retained under the fault, in percent.
    pub retained_reduction_percent: f64,
}

/// The successful payload of a [`Response`].
#[derive(Debug, Clone, PartialEq)]
pub struct Completed {
    /// The evaluation — bit-identical to a direct serial call for the
    /// same spec and configuration.
    pub evaluation: Evaluation,
    /// Which evaluation path served it.
    pub path: EvalPath,
    /// Blocks the schedule encoded.
    pub encoded_blocks: usize,
    /// Present when the request carried a fault plan: the graceful
    /// degradation measurement.
    pub fault: Option<FaultSummary>,
}

/// What the service returns for one request, success or not.
#[derive(Debug, Clone)]
pub struct Response {
    /// The id [`crate::service::Service::submit`] assigned.
    pub id: u64,
    /// The kernel spec name, for correlation.
    pub kernel: String,
    /// The configured block size, for correlation.
    pub block_size: usize,
    /// The job's result: a completed evaluation or a typed refusal.
    pub outcome: Result<Completed, ServeError>,
    /// Nanoseconds from submission to worker pickup.
    pub queue_ns: u64,
    /// Nanoseconds spent executing (0 for jobs refused before execution).
    pub service_ns: u64,
    /// Requests in the batch this job was served in (1 for refusals at
    /// admission).
    pub batch_size: usize,
    /// Index of the worker that served it.
    pub worker: usize,
    /// The job completed, but after its deadline. Refusals *before*
    /// execution surface as [`ServeError::DeadlineExceeded`] instead.
    pub missed_deadline: bool,
}

impl Response {
    /// Total latency the caller observed, in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.queue_ns + self.service_ns
    }
}

/// What a [`Slot`] currently holds. The callback arm is what lets an
/// event-driven front-end (the net reactor) receive completions without
/// parking a thread per in-flight job: the worker's `fulfill` invokes
/// the watcher inline instead of signalling a condvar nobody waits on.
// Boxing the `Ready` response to even out the variant sizes would cost
// an allocation per fulfilment on the hot path; the inline size is the
// cheaper trade for a short-lived slot.
#[allow(clippy::large_enum_variant)]
#[derive(Default)]
enum SlotState {
    /// No response yet, nobody watching.
    #[default]
    Empty,
    /// Fulfilled; the response waits for `wait`/`try_take`.
    Ready(Response),
    /// A completion callback is armed; `fulfill` hands the response
    /// straight to it (outside the slot lock).
    Watched(Box<dyn FnOnce(Response) + Send>),
    /// The response has been delivered (taken or dispatched).
    Delivered,
}

impl std::fmt::Debug for SlotState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SlotState::Empty => "Empty",
            SlotState::Ready(_) => "Ready",
            SlotState::Watched(_) => "Watched",
            SlotState::Delivered => "Delivered",
        })
    }
}

/// The slot a worker fulfills and a caller waits on (or watches). One
/// response per job, exactly once.
#[derive(Debug, Default)]
pub(crate) struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl Slot {
    pub(crate) fn fulfill(&self, response: Response) {
        let watcher = {
            let mut state = lock_clean(&self.state);
            match std::mem::take(&mut *state) {
                SlotState::Empty => {
                    *state = SlotState::Ready(response);
                    self.ready.notify_all();
                    None
                }
                SlotState::Watched(callback) => {
                    *state = SlotState::Delivered;
                    Some((callback, response))
                }
                already @ (SlotState::Ready(_) | SlotState::Delivered) => {
                    debug_assert!(false, "job fulfilled twice ({already:?})");
                    *state = already;
                    None
                }
            }
        };
        // The callback runs outside the slot lock so it may do real work
        // (encode a frame, wake an event loop) without deadlock risk.
        if let Some((callback, response)) = watcher {
            callback(response);
        }
    }
}

/// The caller's handle to one submitted job: await it, poll it, or cancel
/// it.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    slot: Arc<Slot>,
    cancel: CancellationToken,
}

impl Ticket {
    pub(crate) fn new(id: u64, slot: Arc<Slot>, cancel: CancellationToken) -> Ticket {
        Ticket { id, slot, cancel }
    }

    /// The id the service assigned; matches [`Response::id`].
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cooperative cancellation. A job not yet picked up is
    /// failed with [`ServeError::Cancelled`]; a job already executing
    /// completes normally.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks until the response arrives.
    ///
    /// # Panics
    ///
    /// Panics if the service was torn down without fulfilling the job —
    /// a service bug by construction ([`crate::service::Service`] drains
    /// its queue and fails leftover jobs closed on shutdown).
    pub fn wait(self) -> Response {
        let mut state = lock_clean(&self.slot.state);
        loop {
            match std::mem::take(&mut *state) {
                SlotState::Ready(response) => {
                    *state = SlotState::Delivered;
                    return response;
                }
                SlotState::Empty => {}
                other => {
                    *state = other;
                    unreachable!("wait() on a watched or delivered ticket");
                }
            }
            state = wait_clean(&self.slot.ready, state);
        }
    }

    /// Returns the response if it has already arrived, without blocking.
    pub fn try_take(&self) -> Option<Response> {
        let mut state = lock_clean(&self.slot.state);
        match std::mem::take(&mut *state) {
            SlotState::Ready(response) => {
                *state = SlotState::Delivered;
                Some(response)
            }
            other => {
                *state = other;
                None
            }
        }
    }

    /// Arms `callback` to run with the response the moment the worker
    /// fulfills the job — inline on the worker thread, after the slot
    /// lock is released. If the response already arrived, the callback
    /// runs immediately on the caller's thread. Consumes the ticket:
    /// exactly one of `wait`/`try_take`/`on_ready` delivers the
    /// response. This is the non-blocking completion path the network
    /// reactor uses instead of parking one thread per in-flight
    /// request.
    pub fn on_ready(self, callback: impl FnOnce(Response) + Send + 'static) {
        let immediate = {
            let mut state = lock_clean(&self.slot.state);
            match std::mem::take(&mut *state) {
                SlotState::Empty => {
                    *state = SlotState::Watched(Box::new(callback));
                    None
                }
                SlotState::Ready(response) => {
                    *state = SlotState::Delivered;
                    Some((callback, response))
                }
                other => {
                    *state = other;
                    unreachable!("on_ready() on a watched or delivered ticket");
                }
            }
        };
        if let Some((callback, response)) = immediate {
            callback(response);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imt_kernels::Kernel;

    fn request() -> Request {
        Request::new(Kernel::Tri.test_spec(), EncoderConfig::default())
    }

    fn response(id: u64) -> Response {
        Response {
            id,
            kernel: "tri-test".into(),
            block_size: 5,
            outcome: Err(ServeError::Cancelled),
            queue_ns: 10,
            service_ns: 5,
            batch_size: 1,
            worker: 0,
            missed_deadline: false,
        }
    }

    #[test]
    fn batch_key_separates_specs_not_configs() {
        let a = request();
        let mut b = request();
        b.config = EncoderConfig::default()
            .with_block_size(6)
            .expect("6 is a valid block size");
        assert_eq!(a.batch_key(), b.batch_key());
        let other = Request::new(Kernel::Fft.test_spec(), EncoderConfig::default());
        assert_ne!(a.batch_key(), other.batch_key());
    }

    #[test]
    fn ticket_try_take_then_wait() {
        let slot = Arc::new(Slot::default());
        let ticket = Ticket::new(7, Arc::clone(&slot), CancellationToken::new());
        assert!(ticket.try_take().is_none());
        slot.fulfill(response(7));
        let got = ticket.wait();
        assert_eq!(got.id, 7);
        assert_eq!(got.latency_ns(), 15);
    }

    #[test]
    fn wait_blocks_until_fulfilled_from_another_thread() {
        let slot = Arc::new(Slot::default());
        let ticket = Ticket::new(3, Arc::clone(&slot), CancellationToken::new());
        let got = std::thread::scope(|scope| {
            let waiter = scope.spawn(move || ticket.wait());
            // Fulfill after the waiter has (very likely) parked; the wait
            // loop is correct either way.
            std::thread::sleep(Duration::from_millis(5));
            slot.fulfill(response(3));
            waiter.join().expect("waiter panicked")
        });
        assert_eq!(got.id, 3);
    }

    #[test]
    fn on_ready_armed_before_fulfill_fires_on_worker_thread() {
        let slot = Arc::new(Slot::default());
        let ticket = Ticket::new(9, Arc::clone(&slot), CancellationToken::new());
        let (tx, rx) = std::sync::mpsc::channel();
        ticket.on_ready(move |response| {
            tx.send(response.id).expect("receiver alive");
        });
        // Nothing fired yet — the callback waits for fulfill.
        assert!(rx.try_recv().is_err());
        slot.fulfill(response(9));
        assert_eq!(rx.recv().expect("callback fired"), 9);
    }

    #[test]
    fn on_ready_after_fulfill_fires_immediately() {
        let slot = Arc::new(Slot::default());
        let ticket = Ticket::new(4, Arc::clone(&slot), CancellationToken::new());
        slot.fulfill(response(4));
        let (tx, rx) = std::sync::mpsc::channel();
        ticket.on_ready(move |response| {
            tx.send(response.latency_ns()).expect("receiver alive");
        });
        assert_eq!(rx.try_recv().expect("fired inline"), 15);
    }

    #[test]
    fn cancel_reaches_the_shared_token() {
        let token = CancellationToken::new();
        let ticket = Ticket::new(1, Arc::new(Slot::default()), token.clone());
        ticket.cancel();
        assert!(token.is_cancelled());
    }
}
