//! The worker pool: admission, batch-coalesced dispatch, per-request
//! execution, and shutdown.
//!
//! A [`Service`] owns a [`crate::queue::JobQueue`] and a fixed set of
//! worker threads. Each worker repeatedly pops a batch (oldest job plus
//! everything queued against the same kernel key), warms that kernel's
//! fetch-edge profile *once* — shared in process via a memo and across
//! processes via [`imt_core::profile_cache`] — and then serves each
//! request in the batch independently: encode, replay-evaluate, and
//! (when the request carries a fault plan) fault-replay with fail-closed
//! semantics. A panicking request is contained with `catch_unwind` and
//! answered as [`ServeError::Panicked`]; its batch-mates are unaffected.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use imt_core::eval::evaluate_auto;
use imt_core::{encode_program, profile_cache};
use imt_fault::trace::{self, FetchTrace};
use imt_isa::Program;
use imt_kernels::KernelSpec;
use imt_sim::edge::FetchEdgeProfile;

use crate::cancel::CancellationToken;
use crate::queue::{Job, JobQueue, PushRefusal};
use crate::quota::TenantQuotas;
use crate::request::{Completed, FaultSummary, Request, Response, Slot, Ticket};
use crate::shard::ShardedMap;
use crate::ServeError;

/// Entries the result memo stops growing at. Real deployments see a
/// bounded set of (spec, config, needs) keys — the cap only matters if
/// a caller sweeps an unbounded parameter space, and then the memo
/// degrades to a warm working set rather than evicting.
const RESULT_MEMO_CAP: usize = 4096;

/// What happens when a request arrives and the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Admission {
    /// Block the submitting thread until space opens — backpressure by
    /// stalling the producer. The default.
    #[default]
    Block,
    /// Refuse immediately with [`ServeError::Overloaded`] — load
    /// shedding the caller can react to (retry, divert, drop).
    Reject,
}

/// Service tuning. Built with the `with_*` methods; every default is
/// safe for tests and small deployments.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    workers: usize,
    queue_capacity: usize,
    max_batch: usize,
    admission: Admission,
    default_deadline: Option<Duration>,
    delivery_latency: Option<Duration>,
    memo_shards: usize,
    tenant_quota: Option<usize>,
    result_memo: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 8,
            admission: Admission::Block,
            default_deadline: None,
            delivery_latency: None,
            memo_shards: 16,
            tenant_quota: None,
            result_memo: true,
        }
    }
}

impl ServiceConfig {
    /// Worker threads (minimum 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> ServiceConfig {
        self.workers = workers.max(1);
        self
    }

    /// Queue bound (minimum 1). This is the backpressure point: work
    /// beyond it blocks or is shed per [`ServiceConfig::with_admission`].
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServiceConfig {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Most requests one dequeue will coalesce into a batch (minimum 1).
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> ServiceConfig {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Admission discipline when the queue is full.
    #[must_use]
    pub fn with_admission(mut self, admission: Admission) -> ServiceConfig {
        self.admission = admission;
        self
    }

    /// Deadline applied to requests that do not carry their own.
    #[must_use]
    pub fn with_default_deadline(mut self, deadline: Duration) -> ServiceConfig {
        self.default_deadline = Some(deadline);
        self
    }

    /// Models the blocking delivery leg: after a successful job, the
    /// worker stays occupied for this long, standing in for streaming
    /// the TT/BBIT images out over a device-programming link. The
    /// compute stays on one core either way; extra workers buy
    /// throughput exactly by overlapping this stall. `exp_serve` uses it
    /// to make worker-count scaling measurable and honest on a
    /// single-core host.
    #[must_use]
    pub fn with_delivery_latency(mut self, latency: Duration) -> ServiceConfig {
        self.delivery_latency = Some(latency);
        self
    }

    /// Shards the profile memo (and quota table) is split over, keyed
    /// by content hash (minimum 1, rounded up to a power of two). More
    /// shards mean less lock contention between connection handlers and
    /// workers warming different kernels.
    #[must_use]
    pub fn with_memo_shards(mut self, shards: usize) -> ServiceConfig {
        self.memo_shards = shards.max(1);
        self
    }

    /// Enables or disables the completed-result memo (on by default).
    /// Encoding and evaluation are deterministic, so two requests with
    /// the same [`Request::result_key`] produce bit-identical outcomes;
    /// the memo serves the repeat from a clone instead of re-running
    /// kernel math. Requests with a fault plan always re-execute.
    /// Disable to benchmark the raw execute path.
    #[must_use]
    pub fn with_result_memo(mut self, enabled: bool) -> ServiceConfig {
        self.result_memo = enabled;
        self
    }

    /// Caps any single tenant's in-flight requests (admitted but not
    /// yet answered) at `max_inflight`. A tenant at its cap is refused
    /// with the typed, retryable [`ServeError::QuotaExceeded`] so a hot
    /// client cannot monopolise the queue. Requests without a tenant
    /// are exempt.
    #[must_use]
    pub fn with_tenant_quota(mut self, max_inflight: usize) -> ServiceConfig {
        self.tenant_quota = Some(max_inflight.max(1));
        self
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Configured queue bound.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Configured batch cap.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }
}

/// Monotonic counters the service keeps regardless of `IMT_OBS` — the
/// load generator and tests read these directly.
#[derive(Debug, Default)]
struct ServiceStats {
    submitted: AtomicU64,
    rejected: AtomicU64,
    quota_rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    expired: AtomicU64,
    panicked: AtomicU64,
    poisoned: AtomicU64,
    batches: AtomicU64,
    batched_jobs: AtomicU64,
    deadline_missed: AtomicU64,
    peak_depth: AtomicU64,
}

/// A point-in-time copy of the service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests refused at admission ([`ServeError::Overloaded`]).
    pub rejected: u64,
    /// Requests refused at the per-tenant quota gate
    /// ([`ServeError::QuotaExceeded`]); disjoint from `rejected`.
    pub quota_rejected: u64,
    /// Responses delivered with an `Ok` outcome.
    pub completed: u64,
    /// Responses delivered with an `Err` outcome (all causes).
    pub failed: u64,
    /// Jobs dropped via [`crate::request::Ticket::cancel`].
    pub cancelled: u64,
    /// Jobs whose deadline passed before pickup.
    pub expired: u64,
    /// Jobs that panicked in the worker (contained).
    pub panicked: u64,
    /// Jobs refused fail-closed after fault replay delivered wrong words.
    pub poisoned: u64,
    /// Batches dequeued.
    pub batches: u64,
    /// Jobs across all dequeued batches.
    pub batched_jobs: u64,
    /// Completed jobs that finished after their deadline.
    pub deadline_missed: u64,
    /// Deepest the queue has been.
    pub peak_depth: u64,
}

impl StatsSnapshot {
    /// Mean jobs per dequeued batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batched_jobs as f64 / self.batches as f64
    }
}

/// One kernel's warmed execution context, shared by every request in
/// every batch against that kernel.
#[derive(Debug)]
struct WarmProfile {
    program: Program,
    per_index: Vec<u64>,
    edges: FetchEdgeProfile,
}

#[derive(Debug)]
struct ServiceInner {
    config: ServiceConfig,
    queue: JobQueue,
    next_id: AtomicU64,
    stats: ServiceStats,
    /// The warmed-profile memo, sharded by content hash of the batch
    /// key so concurrent warms of different kernels never contend on
    /// one lock (see [`crate::shard`]).
    profiles: ShardedMap<Arc<Result<WarmProfile, ServeError>>>,
    /// The completed-result memo: outcomes keyed by
    /// [`Request::result_key`]. Execution is deterministic, so a repeat
    /// request is answered from a clone of the first outcome instead of
    /// re-running encode + eval (see [`ServiceConfig::with_result_memo`]).
    results: ShardedMap<Arc<Result<Completed, ServeError>>>,
    /// Per-tenant in-flight caps, when configured.
    quotas: Option<TenantQuotas>,
}

/// The running service: submit jobs, read stats, shut down.
#[derive(Debug)]
pub struct Service {
    inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts the worker pool.
    pub fn start(config: ServiceConfig) -> Service {
        let inner = Arc::new(ServiceInner {
            queue: JobQueue::new(config.queue_capacity),
            next_id: AtomicU64::new(0),
            stats: ServiceStats::default(),
            profiles: ShardedMap::new(config.memo_shards),
            results: ShardedMap::new(config.memo_shards),
            quotas: config
                .tenant_quota
                .map(|cap| TenantQuotas::new(cap, config.memo_shards)),
            config,
        });
        let workers = (0..inner.config.workers)
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("imt-serve-{index}"))
                    .spawn(move || worker_loop(&inner, index))
                    .expect("spawning a worker thread")
            })
            .collect();
        Service { inner, workers }
    }

    /// Submits one request. Under [`Admission::Block`] this waits for
    /// queue space; under [`Admission::Reject`] a full queue returns
    /// [`ServeError::Overloaded`] immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] (rejecting admission, queue full) or
    /// [`ServeError::ShuttingDown`].
    pub fn submit(&self, request: Request) -> Result<Ticket, ServeError> {
        let inner = &self.inner;
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot::default());
        let cancel = CancellationToken::new();
        let now = Instant::now();
        let deadline = request
            .deadline
            .or(inner.config.default_deadline)
            .map(|d| now + d);
        // Each request is one trace root (`IMT_OBS=trace` only). A
        // front-end that already opened one (the network layer, at
        // frame-read start) is adopted so the timeline covers the wire
        // work too; otherwise it is opened here. Either way it is
        // closed by whoever fulfills the ticket.
        let trace_ctx = request.trace_root.or_else(imt_obs::trace::open_trace);
        let submitted_ns = if trace_ctx.is_none() {
            0
        } else if request.trace_root.is_some() && request.trace_root_opened_ns > 0 {
            request.trace_root_opened_ns
        } else {
            imt_obs::trace::now_ns()
        };
        // The fairness gate runs before queue admission: a tenant at
        // its in-flight cap is refused typed even if the queue has
        // room, so queue capacity stays available to other tenants.
        if let (Some(quotas), Some(tenant)) = (&inner.quotas, &request.tenant) {
            if let Err((in_flight, limit)) = quotas.try_acquire(tenant) {
                inner.stats.quota_rejected.fetch_add(1, Ordering::Relaxed);
                if imt_obs::enabled() {
                    imt_obs::counter!("serve.quota_rejected").inc();
                }
                imt_obs::trace::instant_under("serve.quota_refused", trace_ctx);
                imt_obs::trace::close_root("serve.request", trace_ctx, submitted_ns);
                return Err(ServeError::QuotaExceeded {
                    tenant: tenant.clone(),
                    in_flight,
                    limit,
                });
            }
        }
        let job = Job {
            id,
            batch_key: request.batch_key(),
            request,
            slot: Arc::clone(&slot),
            cancel: cancel.clone(),
            submitted: now,
            deadline,
            trace: trace_ctx,
            submitted_ns,
        };
        match inner.config.admission {
            Admission::Reject => {
                if let Err((job, refusal)) = inner.queue.try_push(job) {
                    inner.release_quota(&job.request);
                    imt_obs::trace::instant_under("serve.admission_refused", job.trace);
                    imt_obs::trace::close_root("serve.request", job.trace, job.submitted_ns);
                    return Err(match refusal {
                        PushRefusal::Full { depth, capacity } => {
                            inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
                            if imt_obs::enabled() {
                                imt_obs::counter!("serve.rejected").inc();
                            }
                            ServeError::Overloaded { depth, capacity }
                        }
                        PushRefusal::Closed => ServeError::ShuttingDown,
                    });
                }
            }
            Admission::Block => {
                if let Err(job) = inner.queue.push_wait(job) {
                    inner.release_quota(&job.request);
                    imt_obs::trace::instant_under("serve.admission_refused", job.trace);
                    imt_obs::trace::close_root("serve.request", job.trace, job.submitted_ns);
                    return Err(ServeError::ShuttingDown);
                }
            }
        }
        imt_obs::trace::instant_under("serve.enqueue", trace_ctx);
        inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let depth = inner.queue.depth() as u64;
        inner.stats.peak_depth.fetch_max(depth, Ordering::Relaxed);
        if imt_obs::enabled() {
            imt_obs::counter!("serve.submitted").inc();
            imt_obs::gauge!("serve.queue_depth").set(depth);
            imt_obs::gauge!("serve.queue_peak").set_max(depth);
        }
        Ok(Ticket::new(id, slot, cancel))
    }

    /// Jobs currently queued (not yet picked up).
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// Distinct kernel instances warmed into the sharded profile memo.
    pub fn profile_memo_entries(&self) -> usize {
        self.inner.profiles.len()
    }

    /// Distinct completed outcomes held in the result memo.
    pub fn result_memo_entries(&self) -> usize {
        self.inner.results.len()
    }

    /// A copy of the service counters.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.inner.stats;
        StatsSnapshot {
            submitted: s.submitted.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            quota_rejected: s.quota_rejected.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            cancelled: s.cancelled.load(Ordering::Relaxed),
            expired: s.expired.load(Ordering::Relaxed),
            panicked: s.panicked.load(Ordering::Relaxed),
            poisoned: s.poisoned.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            batched_jobs: s.batched_jobs.load(Ordering::Relaxed),
            deadline_missed: s.deadline_missed.load(Ordering::Relaxed),
            peak_depth: s.peak_depth.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting work, fails still-queued jobs with
    /// [`ServeError::ShuttingDown`], waits for in-flight batches to
    /// finish, and joins the workers. Every outstanding
    /// [`Ticket`] is fulfilled — with its result if the job was already
    /// executing, with the shutdown refusal otherwise.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        self.inner.queue.close();
        for job in self.inner.queue.drain() {
            self.inner.refuse(job, ServeError::ShuttingDown, usize::MAX);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.finish();
    }
}

impl ServiceInner {
    /// Returns a tenant's quota slot once its request is answered (any
    /// outcome). A no-op for untenanted requests or unquota'd services.
    fn release_quota(&self, request: &Request) {
        if let (Some(quotas), Some(tenant)) = (&self.quotas, &request.tenant) {
            quotas.release(tenant);
        }
    }

    /// Fails a job before execution and fulfills its ticket. Every
    /// refusal counts as `failed`; cancellations and expiries also keep
    /// their own counter.
    fn refuse(&self, job: Job, error: ServeError, worker: usize) {
        self.stats.failed.fetch_add(1, Ordering::Relaxed);
        match &error {
            ServeError::Cancelled => {
                self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            ServeError::DeadlineExceeded => {
                self.stats.expired.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        if imt_obs::enabled() {
            imt_obs::counter!("serve.failed").inc();
            match &error {
                ServeError::Cancelled => imt_obs::counter!("serve.cancelled").inc(),
                ServeError::DeadlineExceeded => {
                    imt_obs::counter!("serve.deadline_expired").inc();
                }
                _ => {}
            }
        }
        let queue_ns = job.submitted.elapsed().as_nanos() as u64;
        // Refused requests still close their trace root: the timeline
        // shows the queue wait that ended in a refusal.
        imt_obs::trace::instant_under("serve.refuse", job.trace);
        imt_obs::trace::close_root("serve.request", job.trace, job.submitted_ns);
        // Release before fulfilling: a caller that waits on its ticket
        // and immediately resubmits must find its quota slot free.
        self.release_quota(&job.request);
        job.slot.fulfill(Response {
            id: job.id,
            kernel: job.request.spec.name.clone(),
            block_size: job.request.config.block_size(),
            outcome: Err(error),
            queue_ns,
            service_ns: 0,
            batch_size: 1,
            worker,
            missed_deadline: false,
        });
    }

    /// The kernel's warmed profile, memoized per batch key in the
    /// sharded memo. Both successes and failures are memoized:
    /// profiling is deterministic, so a kernel that failed once will
    /// fail identically again.
    fn warm(&self, key: &str, spec: &KernelSpec) -> Arc<Result<WarmProfile, ServeError>> {
        if let Some(hit) = self.profiles.get(key) {
            if imt_obs::enabled() {
                imt_obs::counter!("serve.profile_memo_hits").inc();
            }
            return hit;
        }
        let warmed = {
            let _span = imt_obs::span!("serve.profile_warm");
            // `assemble` panics on malformed source; contain it as a
            // typed profile failure so the batch is answered, not lost.
            match catch_unwind(AssertUnwindSafe(|| warm_uncached(spec))) {
                Ok(result) => result,
                Err(payload) => Err(ServeError::ProfileFailed {
                    kernel: spec.name.clone(),
                    detail: panic_detail(payload.as_ref()),
                }),
            }
        };
        // Two workers can race the same cold key; either result is
        // valid (profiling is deterministic), keep the first inserted.
        self.profiles.insert_first(key, Arc::new(warmed))
    }
}

/// Records (or loads from the on-disk cache) one kernel's fetch-edge
/// profile and checks its output against the golden model. The service's
/// fallible counterpart to `imt_bench::kernel_profile`, which panics
/// instead — a server refuses the job, it does not die.
fn warm_uncached(spec: &KernelSpec) -> Result<WarmProfile, ServeError> {
    let program = spec.assemble();
    let caching = profile_cache::enabled();
    let disk_hit = if caching {
        profile_cache::load(&program, spec.max_steps)
            .filter(|edges| edges.stdout() == spec.expected_output)
    } else {
        None
    };
    let edges = match disk_hit {
        Some(edges) => edges,
        None => {
            let recorded = FetchEdgeProfile::record(&program, spec.max_steps).map_err(|e| {
                ServeError::ProfileFailed {
                    kernel: spec.name.clone(),
                    detail: e.to_string(),
                }
            })?;
            if recorded.stdout() != spec.expected_output {
                return Err(ServeError::ProfileMismatch {
                    kernel: spec.name.clone(),
                });
            }
            if caching {
                if let Err(e) = profile_cache::store(&program, spec.max_steps, &recorded) {
                    eprintln!("imt-serve: could not cache profile for {}: {e}", spec.name);
                }
            }
            recorded
        }
    };
    Ok(WarmProfile {
        per_index: edges.per_index_counts(),
        program,
        edges,
    })
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_loop(inner: &ServiceInner, worker: usize) {
    while let Some(batch) = inner.queue.pop_batch(inner.config.max_batch) {
        if imt_obs::enabled() {
            imt_obs::gauge!("serve.queue_depth").set(inner.queue.depth() as u64);
            imt_obs::counter!("serve.batches").inc();
            imt_obs::registry::histogram("serve.batch_size").observe(batch.len() as u64);
        }
        inner.stats.batches.fetch_add(1, Ordering::Relaxed);
        inner
            .stats
            .batched_jobs
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let _span = imt_obs::span!("serve.batch");

        // Triage before warming: cancelled and already-expired jobs are
        // answered without paying for the profile.
        let now = Instant::now();
        let mut runnable: Vec<Job> = Vec::with_capacity(batch.len());
        for job in batch {
            if job.cancel.is_cancelled() {
                inner.refuse(job, ServeError::Cancelled, worker);
            } else if job.deadline.is_some_and(|d| now > d) {
                inner.refuse(job, ServeError::DeadlineExceeded, worker);
            } else {
                runnable.push(job);
            }
        }
        let Some(first) = runnable.first() else {
            continue;
        };
        let warm_started = Instant::now();
        let warmed = inner.warm(&first.batch_key, &first.request.spec);
        let warm_elapsed = warm_started.elapsed().as_nanos() as u64;
        if imt_obs::enabled() {
            imt_obs::registry::histogram("serve.stage.warm_ns").observe(warm_elapsed);
        }
        // The warm ran once for the whole batch; attribute its interval
        // to every request it unblocked so each span tree is complete.
        if imt_obs::trace_enabled() {
            let warm_end = imt_obs::trace::now_ns();
            let warm_start = warm_end.saturating_sub(warm_elapsed);
            for job in &runnable {
                imt_obs::trace::record_stage("serve.warm", job.trace, warm_start, warm_end);
            }
        }
        let batch_size = runnable.len();
        for job in runnable {
            serve_job(inner, job, &warmed, batch_size, worker);
        }
    }
}

fn serve_job(
    inner: &ServiceInner,
    job: Job,
    warmed: &Result<WarmProfile, ServeError>,
    batch_size: usize,
    worker: usize,
) {
    // Last cancellation / deadline check point: the warm may have taken
    // a while, and batch-mates before this job may have too.
    if job.cancel.is_cancelled() {
        inner.refuse(job, ServeError::Cancelled, worker);
        return;
    }
    if job.deadline.is_some_and(|d| Instant::now() > d) {
        inner.refuse(job, ServeError::DeadlineExceeded, worker);
        return;
    }
    let picked = Instant::now();
    let queue_ns = (picked - job.submitted).as_nanos() as u64;
    // Queue wait ends here: submission → this worker picking the job up
    // (after batch coalescing and the shared warm).
    if imt_obs::trace_enabled() {
        imt_obs::trace::record_stage(
            "serve.queue_wait",
            job.trace,
            job.submitted_ns,
            imt_obs::trace::now_ns(),
        );
    }
    // Adopt the request's trace context on this worker thread so the
    // encode/eval spans below (and everything under them, down to the
    // sliced codec) parent into the request's tree.
    let texec = imt_obs::trace::span_under("serve.execute", job.trace);
    let span = imt_obs::span!("serve.request");
    let outcome = match warmed {
        Err(profile_error) => Err(profile_error.clone()),
        Ok(warm) => {
            let memo_key = inner
                .config
                .result_memo
                .then(|| job.request.result_key())
                .flatten();
            match memo_key.as_deref().and_then(|key| inner.results.get(key)) {
                Some(hit) => {
                    if imt_obs::enabled() {
                        imt_obs::counter!("serve.result_memo_hits").inc();
                    }
                    (*hit).clone()
                }
                None => {
                    let computed =
                        match catch_unwind(AssertUnwindSafe(|| execute(warm, &job.request))) {
                            Ok(result) => result,
                            Err(payload) => Err(ServeError::Panicked {
                                detail: panic_detail(payload.as_ref()),
                            }),
                        };
                    match memo_key {
                        // Don't memoize panics (the one nondeterministic
                        // outcome) or grow past the cap; everything else
                        // — success or typed failure — is deterministic
                        // and serves every repeat. `insert_first` keeps
                        // the canonical value if two workers raced.
                        Some(key)
                            if !matches!(computed, Err(ServeError::Panicked { .. }))
                                && inner.results.len() < RESULT_MEMO_CAP =>
                        {
                            (*inner.results.insert_first(&key, Arc::new(computed))).clone()
                        }
                        _ => computed,
                    }
                }
            }
        }
    };
    if outcome.is_ok() {
        if let Some(latency) = inner.config.delivery_latency {
            std::thread::sleep(latency);
        }
    }
    let service_ns = picked.elapsed().as_nanos() as u64;
    let missed_deadline = job.deadline.is_some_and(|d| Instant::now() > d);
    match &outcome {
        Ok(_) => {
            inner.stats.completed.fetch_add(1, Ordering::Relaxed);
            if missed_deadline {
                inner.stats.deadline_missed.fetch_add(1, Ordering::Relaxed);
            }
        }
        Err(e) => {
            inner.stats.failed.fetch_add(1, Ordering::Relaxed);
            match e {
                ServeError::Panicked { .. } => {
                    inner.stats.panicked.fetch_add(1, Ordering::Relaxed);
                }
                ServeError::Poisoned { .. } => {
                    inner.stats.poisoned.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
    }
    if imt_obs::enabled() {
        match &outcome {
            Ok(_) => imt_obs::counter!("serve.completed").inc(),
            Err(e) => {
                imt_obs::counter!("serve.failed").inc();
                if matches!(e, ServeError::Panicked { .. }) {
                    imt_obs::counter!("serve.panicked").inc();
                }
            }
        }
        if missed_deadline {
            imt_obs::counter!("serve.deadline_missed").inc();
        }
        imt_obs::registry::histogram("serve.queue_ns").observe(queue_ns);
        imt_obs::registry::histogram("serve.service_ns").observe(service_ns);
    }
    // Release before fulfilling: a caller that waits on its ticket and
    // immediately resubmits must find its quota slot free.
    inner.release_quota(&job.request);
    job.slot.fulfill(Response {
        id: job.id,
        kernel: job.request.spec.name.clone(),
        block_size: job.request.config.block_size(),
        outcome,
        queue_ns,
        service_ns,
        batch_size,
        worker,
        missed_deadline,
    });
    // Close children before the root so the request's span tree nests
    // cleanly: root (submit → respond) ⊇ execute ⊇ encode/eval.
    drop(span);
    drop(texec);
    imt_obs::trace::instant_under("serve.respond", job.trace);
    imt_obs::trace::close_root("serve.request", job.trace, job.submitted_ns);
}

/// One request's actual work, given its kernel's warmed profile. Pure
/// with respect to the service: everything it needs is in its arguments,
/// and its only effect is the returned outcome.
fn execute(warm: &WarmProfile, request: &Request) -> Result<Completed, ServeError> {
    if request.panic_in_worker {
        panic!("poisoned job (panic_in_worker test hook)");
    }
    // Non-default schemes route through the arena's trait surface; the
    // TT/BBIT default continues below on the original pipeline, byte
    // for byte.
    if request.scheme != imt_core::scheme::SchemeSpec::TtBbit {
        return execute_scheme(warm, request);
    }
    let encode_started = Instant::now();
    let encoded = {
        let _span = imt_obs::span!("serve.encode");
        encode_program(&warm.program, &warm.per_index, &request.config)?
    };
    let encode_ns = encode_started.elapsed().as_nanos() as u64;
    let eval_started = Instant::now();
    let (evaluation, path) = {
        let _span = imt_obs::span!("serve.eval");
        evaluate_auto(
            &warm.program,
            &encoded,
            request.spec.max_steps,
            Some(&warm.edges),
            request.needs,
        )?
    };
    let eval_ns = eval_started.elapsed().as_nanos() as u64;
    if imt_obs::enabled() {
        imt_obs::registry::histogram("serve.stage.encode_ns").observe(encode_ns);
        imt_obs::registry::histogram("serve.stage.eval_ns").observe(eval_ns);
    }
    let fault = match &request.fault_plan {
        None => None,
        Some(plan) => {
            let fault_trace = FetchTrace::record(
                &warm.program,
                &encoded,
                request.spec.max_steps,
                request.fault_window,
            )?;
            let replayed = trace::replay(&fault_trace, &encoded, request.protection, plan)?;
            if replayed.wrong_words > 0 {
                return Err(ServeError::Poisoned {
                    wrong_words: replayed.wrong_words,
                });
            }
            Some(FaultSummary {
                injected: replayed.injected,
                detected: replayed.detected,
                corrected: replayed.corrected,
                degraded_fetches: replayed.degraded_fetches,
                retained_reduction_percent: replayed.reduction_percent(),
            })
        }
    };
    Ok(Completed {
        evaluation,
        path,
        encoded_blocks: encoded.report.encoded.len(),
        fault,
    })
}

/// Executes a non-TT/BBIT request through the [`imt_core::scheme`]
/// arena: build the encoder, score it via the auto router (cycle-state
/// schemes go to full simulation), and surface the result in the same
/// [`Completed`] shape. Fault plans are a TT/BBIT table concern and are
/// refused here rather than silently ignored.
fn execute_scheme(warm: &WarmProfile, request: &Request) -> Result<Completed, ServeError> {
    if request.fault_plan.is_some() {
        return Err(ServeError::Fault {
            detail: format!(
                "fault plans target TT/BBIT tables; scheme `{}` has none",
                request.scheme.name()
            ),
        });
    }
    let mut scheme = {
        let _span = imt_obs::span!("serve.encode");
        imt_core::scheme::build_scheme(
            request.scheme,
            &warm.program,
            &warm.per_index,
            &request.config,
        )?
    };
    let (evaluation, path) = {
        let _span = imt_obs::span!("serve.eval");
        imt_core::scheme::evaluate_scheme_auto(
            scheme.as_mut(),
            &warm.program,
            request.spec.max_steps,
            Some(&warm.edges),
            request.needs,
        )?
    };
    Ok(Completed {
        evaluation: evaluation.to_evaluation(),
        path,
        // The alternative schemes have no block schedule; zero keeps the
        // field honest rather than inventing a TT-shaped count.
        encoded_blocks: 0,
        fault: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use imt_core::eval::{EvalNeeds, EvalPath};
    use imt_core::EncoderConfig;
    use imt_kernels::Kernel;

    fn request(kernel: Kernel) -> Request {
        Request::new(kernel.test_spec(), EncoderConfig::default())
    }

    /// What a direct serial pipeline produces for the same request — the
    /// reference the service must match bit for bit.
    fn serial_reference(req: &Request) -> imt_core::eval::Evaluation {
        let program = req.spec.assemble();
        let edges =
            FetchEdgeProfile::record(&program, req.spec.max_steps).expect("reference run succeeds");
        let encoded = encode_program(&program, &edges.per_index_counts(), &req.config)
            .expect("reference encode succeeds");
        let (evaluation, _) = evaluate_auto(
            &program,
            &encoded,
            req.spec.max_steps,
            Some(&edges),
            EvalNeeds::transitions_only(),
        )
        .expect("reference evaluation succeeds");
        evaluation
    }

    #[test]
    fn serves_a_request_bit_identically_to_serial() {
        let req = request(Kernel::Tri);
        let reference = serial_reference(&req);
        let service = Service::start(ServiceConfig::default().with_workers(1));
        let ticket = service.submit(req).expect("queue open");
        let response = ticket.wait();
        let done = response.outcome.expect("tri serves");
        assert_eq!(done.evaluation, reference);
        assert_eq!(done.evaluation.decode_mismatches, 0);
        assert!(done.encoded_blocks > 0);
        let stats = service.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
        service.shutdown();
    }

    #[test]
    fn serves_alternative_schemes_and_refuses_faults_on_them() {
        use imt_core::scheme::{build_scheme, evaluate_scheme_auto, SchemeSpec};
        let spec = Kernel::Tri.test_spec();
        // Reference: the arena's own auto evaluation, run serially.
        let program = spec.assemble();
        let edges =
            FetchEdgeProfile::record(&program, spec.max_steps).expect("reference run succeeds");
        let config = EncoderConfig::default();
        let mut scheme = build_scheme(
            SchemeSpec::Gray,
            &program,
            &edges.per_index_counts(),
            &config,
        )
        .expect("gray build is total");
        let (reference, _) = evaluate_scheme_auto(
            scheme.as_mut(),
            &program,
            spec.max_steps,
            Some(&edges),
            EvalNeeds::transitions_only(),
        )
        .expect("reference gray evaluation succeeds");

        let service = Service::start(ServiceConfig::default().with_workers(1));
        let ticket = service
            .submit(request(Kernel::Tri).with_scheme(SchemeSpec::Gray))
            .expect("queue open");
        let done = ticket.wait().outcome.expect("gray serves");
        assert_eq!(done.evaluation, reference.to_evaluation());
        assert_eq!(done.encoded_blocks, 0, "gray has no block schedule");

        // A cycle-state scheme must come back from full simulation.
        let ticket = service
            .submit(request(Kernel::Tri).with_scheme(SchemeSpec::BusInvert))
            .expect("queue open");
        let done = ticket.wait().outcome.expect("businvert serves");
        assert!(matches!(done.path, EvalPath::FullSim(_)));

        // Fault plans target TT/BBIT tables; other schemes refuse them.
        let faulty = request(Kernel::Tri)
            .with_scheme(SchemeSpec::Gray)
            .with_faults(
                imt_fault::plan::FaultPlan::parse("0:text:0:0").expect("plan parses"),
                imt_core::Protection::None,
            );
        let ticket = service.submit(faulty).expect("queue open");
        let err = ticket.wait().outcome.expect_err("fault plan refused");
        assert!(matches!(err, ServeError::Fault { .. }), "{err:?}");
        service.shutdown();
    }

    #[test]
    fn coalesces_same_kernel_jobs_into_one_batch() {
        // One worker held busy by the delivery stall while four same-key
        // jobs queue behind it: the next dequeue must take all four.
        let service = Service::start(
            ServiceConfig::default()
                .with_workers(1)
                .with_delivery_latency(Duration::from_millis(150)),
        );
        let head = service.submit(request(Kernel::Tri)).expect("queue open");
        std::thread::sleep(Duration::from_millis(30));
        let tickets: Vec<_> = (0..4)
            .map(|_| service.submit(request(Kernel::Tri)).expect("queue open"))
            .collect();
        assert_eq!(head.wait().batch_size, 1);
        for ticket in tickets {
            let response = ticket.wait();
            response.outcome.expect("tri serves");
            assert_eq!(response.batch_size, 4, "jobs should share one batch");
        }
        let stats = service.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.batched_jobs, 5);
        service.shutdown();
    }

    #[test]
    fn rejecting_admission_sheds_load_with_typed_overload() {
        let service = Service::start(
            ServiceConfig::default()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_admission(Admission::Reject)
                .with_delivery_latency(Duration::from_millis(150)),
        );
        let head = service.submit(request(Kernel::Tri)).expect("accepted");
        std::thread::sleep(Duration::from_millis(30));
        let queued = service.submit(request(Kernel::Tri)).expect("fills queue");
        let refused = service
            .submit(request(Kernel::Tri))
            .expect_err("queue full");
        assert_eq!(
            refused,
            ServeError::Overloaded {
                depth: 1,
                capacity: 1
            }
        );
        assert_eq!(service.stats().rejected, 1);
        head.wait().outcome.expect("head serves");
        queued.wait().outcome.expect("queued job serves");
        service.shutdown();
    }

    #[test]
    fn deadline_expired_in_queue_fails_without_executing() {
        let service = Service::start(
            ServiceConfig::default()
                .with_workers(1)
                .with_delivery_latency(Duration::from_millis(120)),
        );
        let head = service.submit(request(Kernel::Tri)).expect("accepted");
        std::thread::sleep(Duration::from_millis(30));
        let doomed = service
            .submit(request(Kernel::Tri).with_deadline(Duration::from_millis(1)))
            .expect("accepted");
        let response = doomed.wait();
        assert_eq!(response.outcome, Err(ServeError::DeadlineExceeded));
        assert_eq!(response.service_ns, 0, "must not have executed");
        head.wait().outcome.expect("head serves");
        let stats = service.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.failed, 1);
        service.shutdown();
    }

    #[test]
    fn cancellation_drops_a_queued_job() {
        let service = Service::start(
            ServiceConfig::default()
                .with_workers(1)
                .with_delivery_latency(Duration::from_millis(120)),
        );
        let head = service.submit(request(Kernel::Tri)).expect("accepted");
        std::thread::sleep(Duration::from_millis(30));
        let ticket = service.submit(request(Kernel::Tri)).expect("accepted");
        ticket.cancel();
        let response = ticket.wait();
        assert_eq!(response.outcome, Err(ServeError::Cancelled));
        head.wait().outcome.expect("head serves");
        assert_eq!(service.stats().cancelled, 1);
        service.shutdown();
    }

    #[test]
    fn a_panicking_job_does_not_take_down_its_batch() {
        let service = Service::start(
            ServiceConfig::default()
                .with_workers(1)
                .with_delivery_latency(Duration::from_millis(150)),
        );
        let head = service.submit(request(Kernel::Tri)).expect("accepted");
        std::thread::sleep(Duration::from_millis(30));
        let mut poisoned_req = request(Kernel::Tri);
        poisoned_req.panic_in_worker = true;
        let poisoned = service.submit(poisoned_req).expect("accepted");
        let mates: Vec<_> = (0..2)
            .map(|_| service.submit(request(Kernel::Tri)).expect("accepted"))
            .collect();
        head.wait().outcome.expect("head serves");
        let response = poisoned.wait();
        match response.outcome {
            Err(ServeError::Panicked { detail }) => {
                assert!(detail.contains("panic_in_worker"), "got: {detail}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        for mate in mates {
            let mate = mate.wait();
            assert_eq!(mate.batch_size, 3, "all three shared the batch");
            mate.outcome.expect("batch-mates unaffected by the panic");
        }
        let stats = service.stats();
        assert_eq!(stats.panicked, 1);
        assert_eq!(stats.completed, 3);
        service.shutdown();
    }

    #[test]
    fn golden_divergence_refuses_the_whole_batch_typed() {
        let mut spec = Kernel::Tri.test_spec();
        spec.name = "tri-tampered".to_string();
        spec.expected_output = "not what tri prints".to_string();
        let service = Service::start(ServiceConfig::default().with_workers(1));
        let ticket = service
            .submit(Request::new(spec, EncoderConfig::default()))
            .expect("accepted");
        match ticket.wait().outcome {
            Err(ServeError::ProfileMismatch { kernel }) => assert_eq!(kernel, "tri-tampered"),
            other => panic!("expected ProfileMismatch, got {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn shutdown_fails_queued_jobs_closed_and_finishes_in_flight_work() {
        let service = Service::start(
            ServiceConfig::default()
                .with_workers(1)
                .with_delivery_latency(Duration::from_millis(150)),
        );
        let in_flight = service.submit(request(Kernel::Tri)).expect("accepted");
        std::thread::sleep(Duration::from_millis(30));
        let queued = service.submit(request(Kernel::Tri)).expect("accepted");
        service.shutdown();
        in_flight.wait().outcome.expect("in-flight job completed");
        assert_eq!(queued.wait().outcome, Err(ServeError::ShuttingDown));
    }

    #[test]
    fn tenant_quota_refuses_typed_and_frees_on_completion() {
        let service = Service::start(
            ServiceConfig::default()
                .with_workers(1)
                .with_tenant_quota(1)
                .with_delivery_latency(Duration::from_millis(60)),
        );
        let held = service
            .submit(request(Kernel::Tri).with_tenant("hot"))
            .expect("first request admitted");
        match service
            .submit(request(Kernel::Tri).with_tenant("hot"))
            .expect_err("tenant at its cap")
        {
            ServeError::QuotaExceeded {
                tenant,
                in_flight,
                limit,
            } => {
                assert_eq!(tenant, "hot");
                assert_eq!((in_flight, limit), (1, 1));
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // Other tenants and untenanted requests are unaffected by one
        // tenant's saturation.
        let other = service
            .submit(request(Kernel::Tri).with_tenant("cold"))
            .expect("other tenant admitted");
        let exempt = service.submit(request(Kernel::Tri)).expect("exempt");
        assert_eq!(service.stats().quota_rejected, 1);
        held.wait().outcome.expect("held request serves");
        // The slot is released before the ticket is fulfilled, so a
        // resubmit straight after wait() must be admitted.
        let again = service
            .submit(request(Kernel::Tri).with_tenant("hot"))
            .expect("slot freed once the response was delivered");
        other.wait().outcome.expect("other tenant serves");
        exempt.wait().outcome.expect("exempt request serves");
        again.wait().outcome.expect("resubmit serves");
        service.shutdown();
    }

    #[test]
    fn quota_slot_is_returned_on_refusals_too() {
        // A cancelled job never executes, but its quota slot must still
        // free — otherwise refusals would leak the tenant's budget.
        let service = Service::start(
            ServiceConfig::default()
                .with_workers(1)
                .with_tenant_quota(1)
                .with_delivery_latency(Duration::from_millis(60)),
        );
        let head = service.submit(request(Kernel::Tri)).expect("accepted");
        std::thread::sleep(Duration::from_millis(20));
        let doomed = service
            .submit(request(Kernel::Tri).with_tenant("t"))
            .expect("accepted");
        doomed.cancel();
        assert_eq!(doomed.wait().outcome, Err(ServeError::Cancelled));
        let next = service
            .submit(request(Kernel::Tri).with_tenant("t"))
            .expect("slot freed by the refusal");
        head.wait().outcome.expect("head serves");
        next.wait().outcome.expect("next serves");
        service.shutdown();
    }

    #[test]
    fn sharded_memo_warms_each_kernel_once_across_workers() {
        let service = Service::start(ServiceConfig::default().with_workers(4).with_memo_shards(8));
        let tickets: Vec<_> = (0..8)
            .map(|i| {
                let kernel = if i % 2 == 0 { Kernel::Tri } else { Kernel::Fft };
                service.submit(request(kernel)).expect("accepted")
            })
            .collect();
        for ticket in tickets {
            ticket.wait().outcome.expect("serves");
        }
        assert_eq!(service.stats().completed, 8);
        service.shutdown();
    }

    /// A repeat of an identical request is served from the result memo
    /// and must be bit-identical to the first (executed) outcome.
    #[test]
    fn result_memo_serves_repeats_bit_identically() {
        let service = Service::start(ServiceConfig::default().with_workers(1));
        let first = service
            .submit(request(Kernel::Tri))
            .expect("accepted")
            .wait()
            .outcome
            .expect("tri serves");
        assert_eq!(service.result_memo_entries(), 1);
        let repeat = service
            .submit(request(Kernel::Tri))
            .expect("accepted")
            .wait()
            .outcome
            .expect("tri serves again");
        assert_eq!(repeat.evaluation, first.evaluation);
        assert_eq!(repeat.encoded_blocks, first.encoded_blocks);
        assert_eq!(
            service.result_memo_entries(),
            1,
            "repeat must not re-insert"
        );
        service.shutdown();
    }

    /// Different encoder configs are different outcomes: the memo must
    /// key on the config, not just the spec.
    #[test]
    fn result_memo_separates_configs() {
        let service = Service::start(ServiceConfig::default().with_workers(1));
        for k in [4usize, 5] {
            let config = EncoderConfig::default()
                .with_block_size(k)
                .expect("valid block size");
            let req = Request::new(Kernel::Tri.test_spec(), config);
            service
                .submit(req)
                .expect("accepted")
                .wait()
                .outcome
                .expect("serves");
        }
        assert_eq!(service.result_memo_entries(), 2);
        service.shutdown();
    }

    /// Fault-plan requests bypass the memo in both directions: they are
    /// never cached, and never served from cache.
    #[test]
    fn result_memo_skips_fault_plans() {
        use imt_core::Protection;
        use imt_fault::plan::{FaultPlan, FaultTarget};
        let service = Service::start(ServiceConfig::default().with_workers(1));
        let faulted = request(Kernel::Tri).with_faults(
            FaultPlan::single(0, FaultTarget::Tt { entry: 0, bit: 0 }),
            Protection::Parity,
        );
        let done = service
            .submit(faulted)
            .expect("accepted")
            .wait()
            .outcome
            .expect("detected fault degrades");
        assert!(done.fault.is_some());
        assert_eq!(
            service.result_memo_entries(),
            0,
            "fault replay never cached"
        );
        service.shutdown();
    }

    /// The off switch: with the memo disabled every repeat re-executes
    /// and nothing is stored.
    #[test]
    fn result_memo_can_be_disabled() {
        let service = Service::start(
            ServiceConfig::default()
                .with_workers(1)
                .with_result_memo(false),
        );
        for _ in 0..2 {
            service
                .submit(request(Kernel::Tri))
                .expect("accepted")
                .wait()
                .outcome
                .expect("serves");
        }
        assert_eq!(service.result_memo_entries(), 0);
        service.shutdown();
    }

    #[test]
    fn fault_plan_with_detection_degrades_gracefully() {
        use imt_core::Protection;
        use imt_fault::plan::{FaultPlan, FaultTarget};
        // Parity protection detects a single TT data bit flip: the entry
        // is quarantined, fetches degrade to original words, and the job
        // still completes with a fault summary attached.
        let req = request(Kernel::Tri).with_faults(
            FaultPlan::single(0, FaultTarget::Tt { entry: 0, bit: 0 }),
            Protection::Parity,
        );
        let service = Service::start(ServiceConfig::default().with_workers(1));
        let ticket = service.submit(req).expect("accepted");
        let done = ticket.wait().outcome.expect("detected fault degrades");
        let fault = done.fault.expect("fault summary attached");
        assert_eq!(fault.injected, 1);
        assert_eq!(fault.detected, 1);
        service.shutdown();
    }

    #[test]
    fn unprotected_fault_fails_closed_as_poisoned() {
        use imt_core::Protection;
        use imt_fault::plan::{FaultPlan, FaultTarget};
        let req = request(Kernel::Tri).with_faults(
            FaultPlan::single(0, FaultTarget::Tt { entry: 0, bit: 0 }),
            Protection::None,
        );
        let service = Service::start(ServiceConfig::default().with_workers(1));
        let ticket = service.submit(req).expect("accepted");
        match ticket.wait().outcome {
            Err(ServeError::Poisoned { wrong_words }) => assert!(wrong_words > 0),
            // An unprotected flip that happens to land on an unused
            // entry would not corrupt; entry 0 of tri's TT is used.
            other => panic!("expected Poisoned, got {other:?}"),
        }
        assert_eq!(service.stats().poisoned, 1);
        service.shutdown();
    }
}
