//! N-way sharded maps keyed by content hash.
//!
//! One process-wide `Mutex<HashMap>` was fine while the service was fed
//! by a handful of in-process clients; a network front-end pushes every
//! connection handler and worker through the same memo, and a single
//! lock serialises them all. [`ShardedMap`] splits the table into
//! `shards` independently locked maps, selected by an FNV-1a hash of
//! the key's *content*, so two workers warming different kernels (or
//! two tenants' quota bookkeeping) never contend on the same lock.
//!
//! The shard count is fixed at construction and must be a power of two
//! (rounded up internally) so shard selection is a mask, not a divide.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::sync::lock_clean;

/// FNV-1a over the key bytes — the same content-hash family
/// `imt_core::profile_cache` keys its on-disk entries with.
pub(crate) fn content_hash(key: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &byte in key.as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// A hash map sharded over independently locked segments.
#[derive(Debug)]
pub(crate) struct ShardedMap<V> {
    shards: Box<[Mutex<HashMap<String, V>>]>,
    mask: usize,
}

impl<V: Clone> ShardedMap<V> {
    /// Creates a map with at least `shards` segments (rounded up to a
    /// power of two, minimum 1).
    pub(crate) fn new(shards: usize) -> ShardedMap<V> {
        let count = shards.max(1).next_power_of_two();
        ShardedMap {
            shards: (0..count).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: count - 1,
        }
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, V>> {
        &self.shards[(content_hash(key) as usize) & self.mask]
    }

    /// Number of shards.
    #[cfg(test)]
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Clones the value under `key`, if present.
    pub(crate) fn get(&self, key: &str) -> Option<V> {
        lock_clean(self.shard(key)).get(key).cloned()
    }

    /// Inserts `value` unless the key was filled while the caller was
    /// computing it, and returns the winner. Two workers racing a cold
    /// key both compute, but every reader observes one canonical value.
    pub(crate) fn insert_first(&self, key: &str, value: V) -> V {
        lock_clean(self.shard(key))
            .entry(key.to_string())
            .or_insert(value)
            .clone()
    }

    /// Runs `f` on the value under `key` while holding its shard lock,
    /// inserting `V::default()` first if absent.
    pub(crate) fn update<R>(&self, key: &str, f: impl FnOnce(&mut V) -> R) -> R
    where
        V: Default,
    {
        f(lock_clean(self.shard(key))
            .entry(key.to_string())
            .or_default())
    }

    /// Total entries across all shards (diagnostic; takes each shard
    /// lock in turn, so the count is approximate under concurrency).
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_clean(s).len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        assert_eq!(ShardedMap::<u32>::new(0).shard_count(), 1);
        assert_eq!(ShardedMap::<u32>::new(1).shard_count(), 1);
        assert_eq!(ShardedMap::<u32>::new(9).shard_count(), 16);
        assert_eq!(ShardedMap::<u32>::new(16).shard_count(), 16);
    }

    #[test]
    fn insert_first_keeps_the_first_value() {
        let map = ShardedMap::new(4);
        assert_eq!(map.insert_first("k", 1), 1);
        assert_eq!(map.insert_first("k", 2), 1, "first insert wins");
        assert_eq!(map.get("k"), Some(1));
        assert_eq!(map.get("missing"), None);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn update_inserts_default_and_mutates_in_place() {
        let map: ShardedMap<u64> = ShardedMap::new(4);
        map.update("t", |v| *v += 3);
        map.update("t", |v| *v += 4);
        assert_eq!(map.get("t"), Some(7));
    }

    #[test]
    fn content_hash_spreads_distinct_keys() {
        // Not a statistical test — just that the hash actually depends
        // on content, so sharding is content-keyed as documented.
        let a = content_hash("mmul-100#1000000");
        let b = content_hash("mmul-100#1000001");
        let c = content_hash("fft-256#1000000");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn keys_land_in_stable_shards_under_concurrency() {
        let map = ShardedMap::new(8);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let map = &map;
                scope.spawn(move || {
                    for i in 0..64 {
                        let key = format!("key-{}", (t * 64 + i) % 16);
                        map.insert_first(&key, i);
                        let _ = map.get(&key);
                    }
                });
            }
        });
        assert_eq!(map.len(), 16);
    }
}
