//! The one audited poisoned-lock recovery point in the serving layer.
//!
//! Workers contain per-job panics with `catch_unwind`, but a panic in
//! instrumentation, an allocator abort path, or a future refactor could
//! still unwind while a serve lock is held. Every mutex in this crate
//! holds state that is valid after *any* single mutation step — queue
//! pushes/pops, memo inserts, counter bumps, slot fulfilment are all
//! one-step transitions with no multi-field invariant spanning an
//! unwind point — so recovering the poisoned guard is always safe here.
//!
//! That argument is made once, in this module, instead of being implied
//! by a dozen scattered `unwrap_or_else(PoisonError::into_inner)` calls:
//! a panicked worker can never wedge the job queue, the profile memo
//! shards, the tenant quota table, or a caller blocked on a ticket.
//! New locks in this crate must either go through these helpers (and
//! honour the single-step-mutation rule) or document why they cannot.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// Safe for every lock in this crate by the single-step-mutation
/// argument in the module docs.
pub fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `condvar`, recovering the reacquired guard if another
/// holder panicked while this thread was parked.
pub fn wait_clean<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn lock_clean_recovers_a_poisoned_mutex() {
        let mutex = Mutex::new(7u32);
        // Poison it: panic while holding the guard.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = mutex.lock().expect("first lock");
            panic!("poison");
        }));
        assert!(result.is_err());
        assert!(mutex.is_poisoned());
        let mut guard = lock_clean(&mutex);
        assert_eq!(*guard, 7);
        *guard = 8;
        drop(guard);
        assert_eq!(*lock_clean(&mutex), 8);
    }

    #[test]
    fn wait_clean_returns_the_guard() {
        use std::sync::Condvar;
        let mutex = Mutex::new(false);
        let condvar = Condvar::new();
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                let mut guard = lock_clean(&mutex);
                while !*guard {
                    guard = wait_clean(&condvar, guard);
                }
                *guard
            });
            std::thread::sleep(std::time::Duration::from_millis(5));
            *lock_clean(&mutex) = true;
            condvar.notify_all();
            assert!(waiter.join().expect("waiter panicked"));
        });
    }
}
