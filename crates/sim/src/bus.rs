//! Bus transition monitors and the energy model.
//!
//! Dynamic power on a bus line is `P = α·C·V²·f` where `α` is the switching
//! activity; per fetch, each line that toggles dissipates `½·C·V²`. The
//! paper reports raw transition counts (its Figure 6) and argues power is
//! proportional; [`EnergyModel`] turns counts into joules for a chosen line
//! capacitance and supply voltage so experiments can also report energy.

use crate::cpu::FetchSink;

/// Counts 0↔1 transitions per line on the instruction **data** bus.
///
/// Feed it fetched words in program order — either directly through
/// [`DataBusMonitor::observe`], or as a [`FetchSink`] hanging off the CPU.
///
/// ```
/// use imt_sim::bus::DataBusMonitor;
///
/// let mut bus = DataBusMonitor::new(32);
/// bus.observe(0x0000_00FF);
/// bus.observe(0x0000_0F0F); // 8 lines flip: 0xFF ^ 0x0F0F = 0x0FF0
/// assert_eq!(bus.total_transitions(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataBusMonitor {
    width: usize,
    mask: u64,
    last: Option<u64>,
    per_lane: Vec<u64>,
    total: u64,
    words: u64,
}

impl DataBusMonitor {
    /// Creates a monitor for a bus of `width` lines (1–64).
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=64`.
    pub fn new(width: usize) -> Self {
        assert!(
            (1..=64).contains(&width),
            "bus width {width} outside 1..=64"
        );
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        DataBusMonitor {
            width,
            mask,
            last: None,
            per_lane: vec![0; width],
            total: 0,
            words: 0,
        }
    }

    /// Observes the next word on the bus.
    pub fn observe(&mut self, word: u64) {
        let word = word & self.mask;
        if let Some(last) = self.last {
            let mut diff = last ^ word;
            // The total is one popcount; only the per-lane breakdown needs
            // the bit-scan loop, and that loop touches only the set bits.
            self.total += u64::from(diff.count_ones());
            while diff != 0 {
                let lane = diff.trailing_zeros() as usize;
                self.per_lane[lane] += 1;
                diff &= diff - 1;
            }
        }
        self.last = Some(word);
        self.words += 1;
    }

    /// Number of bus lines.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Words observed so far.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Transitions per line, index = line number.
    pub fn per_lane(&self) -> &[u64] {
        &self.per_lane
    }

    /// Total transitions across all lines — the paper's `#TR` metric.
    ///
    /// O(1): maintained incrementally by [`DataBusMonitor::observe`] via a
    /// single popcount per word, independent of bus width.
    pub fn total_transitions(&self) -> u64 {
        debug_assert_eq!(self.total, self.per_lane.iter().sum::<u64>());
        self.total
    }

    /// Resets counters, keeping the width.
    pub fn reset(&mut self) {
        self.last = None;
        self.total = 0;
        self.words = 0;
        self.per_lane.iter_mut().for_each(|c| *c = 0);
    }

    /// Publishes the monitor's totals into the `imt-obs` registry under
    /// `label` (no-op when observability is disabled).
    pub fn publish_obs(&self, label: &str) {
        if !imt_obs::enabled() {
            return;
        }
        imt_obs::gauge_labeled("sim.bus.words", label).set(self.words);
        imt_obs::gauge_labeled("sim.bus.transitions", label).set(self.total);
    }
}

impl FetchSink for DataBusMonitor {
    #[inline]
    fn on_fetch(&mut self, _pc: u32, word: u32) {
        self.observe(word as u64);
    }
}

/// Counts transitions per line on the instruction **address** bus.
///
/// Used by the T0 baseline comparison: sequential fetch makes the low
/// address lines toggle predictably, which address-bus encodings exploit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressBusMonitor {
    inner: DataBusMonitor,
}

impl AddressBusMonitor {
    /// Creates a monitor for a 32-line address bus.
    pub fn new() -> Self {
        AddressBusMonitor {
            inner: DataBusMonitor::new(32),
        }
    }

    /// Observes the next address on the bus.
    pub fn observe(&mut self, address: u32) {
        self.inner.observe(address as u64);
    }

    /// Total transitions across all lines.
    pub fn total_transitions(&self) -> u64 {
        self.inner.total_transitions()
    }

    /// Transitions per line.
    pub fn per_lane(&self) -> &[u64] {
        self.inner.per_lane()
    }

    /// Publishes the monitor's totals into the `imt-obs` registry under
    /// `label` (no-op when observability is disabled).
    pub fn publish_obs(&self, label: &str) {
        self.inner.publish_obs(label);
    }
}

impl Default for AddressBusMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl FetchSink for AddressBusMonitor {
    #[inline]
    fn on_fetch(&mut self, pc: u32, _word: u32) {
        self.observe(pc);
    }
}

/// Converts transition counts to switching energy: `E = ½·C·V²` per
/// transition per line.
///
/// ```
/// use imt_sim::bus::EnergyModel;
///
/// let model = EnergyModel::OFF_CHIP;
/// // A million transitions on a 10 pF, 3.3 V line ≈ 54 µJ.
/// let joules = model.energy_joules(1_000_000);
/// assert!((joules - 5.445e-5).abs() < 1e-8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Effective capacitance of one bus line, in farads.
    pub line_capacitance_farads: f64,
    /// Supply voltage, in volts.
    pub supply_volts: f64,
}

impl EnergyModel {
    /// An on-chip bus line (≈0.5 pF) at 1.8 V — a long on-die interconnect
    /// in the ~0.18 µm era the paper targets.
    pub const ON_CHIP: EnergyModel = EnergyModel {
        line_capacitance_farads: 0.5e-12,
        supply_volts: 1.8,
    };

    /// An off-chip bus line through package pins to external flash
    /// (≈10 pF) at 3.3 V — the paper's motivating worst case.
    pub const OFF_CHIP: EnergyModel = EnergyModel {
        line_capacitance_farads: 10e-12,
        supply_volts: 3.3,
    };

    /// Energy dissipated by `transitions` line toggles.
    pub fn energy_joules(&self, transitions: u64) -> f64 {
        0.5 * self.line_capacitance_farads
            * self.supply_volts
            * self.supply_volts
            * transitions as f64
    }

    /// Average power for `transitions` spread over `cycles` at `hz`.
    pub fn average_power_watts(&self, transitions: u64, cycles: u64, hz: f64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        self.energy_joules(transitions) / (cycles as f64 / hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_lane_accounting() {
        let mut bus = DataBusMonitor::new(4);
        for word in [0b0000u64, 0b0001, 0b0011, 0b0000] {
            bus.observe(word);
        }
        assert_eq!(bus.per_lane(), &[2, 2, 0, 0]);
        assert_eq!(bus.total_transitions(), 4);
        assert_eq!(bus.words(), 4);
    }

    #[test]
    fn width_masks_upper_bits() {
        let mut bus = DataBusMonitor::new(8);
        bus.observe(0xFFFF_FF00);
        bus.observe(0x0000_00FF);
        assert_eq!(bus.total_transitions(), 8);
    }

    #[test]
    fn reset_clears_state() {
        let mut bus = DataBusMonitor::new(32);
        bus.observe(0);
        bus.observe(u64::MAX);
        assert_eq!(bus.total_transitions(), 32);
        bus.reset();
        assert_eq!(bus.total_transitions(), 0);
        bus.observe(u64::MAX); // first word after reset: no transition
        assert_eq!(bus.total_transitions(), 0);
    }

    #[test]
    fn sequential_addresses_mostly_toggle_low_lines() {
        let mut bus = AddressBusMonitor::new();
        for i in 0..16u32 {
            bus.observe(0x0040_0000 + i * 4);
        }
        // Line 2 toggles every fetch; lines 0,1 never (word aligned).
        assert_eq!(bus.per_lane()[0], 0);
        assert_eq!(bus.per_lane()[1], 0);
        assert_eq!(bus.per_lane()[2], 15);
    }

    #[test]
    fn energy_scaling() {
        let model = EnergyModel {
            line_capacitance_farads: 1e-12,
            supply_volts: 2.0,
        };
        assert!((model.energy_joules(1) - 2e-12).abs() < 1e-20);
        assert_eq!(model.average_power_watts(0, 0, 1e8), 0.0);
        // 1e6 transitions over 1e8 cycles at 100 MHz = 1 second → 2 µW.
        let p = model.average_power_watts(1_000_000, 100_000_000, 1e8);
        assert!((p - 2e-6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside 1..=64")]
    fn zero_width_rejected() {
        DataBusMonitor::new(0);
    }
}
