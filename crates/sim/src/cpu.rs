//! The single-issue in-order functional core.
//!
//! Instructions are decoded once at load time; `step` executes one
//! instruction, streaming the fetched `(pc, word)` pair to an optional
//! [`FetchSink`] — the hook the bus monitors and the encoded-image
//! evaluator hang off. A per-instruction execution counter is maintained
//! for hot-loop profiling (`imt-cfg` consumes it).

use imt_isa::decode::decode;
use imt_isa::inst::Inst;
use imt_isa::program::{Program, STACK_TOP};
use imt_isa::reg::{FReg, Reg};

use crate::error::SimError;
use crate::mem::Memory;

/// Receives every instruction fetch, in program order.
///
/// Implementations must be cheap: the hook sits on the simulator's hot
/// path. See [`crate::bus::DataBusMonitor`] for the canonical consumer and
/// [`Tee`] for fan-out to two sinks.
pub trait FetchSink {
    /// Called once per executed instruction with its address and the
    /// machine word delivered over the instruction bus.
    fn on_fetch(&mut self, pc: u32, word: u32);
}

/// A sink that discards fetches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl FetchSink for NullSink {
    #[inline]
    fn on_fetch(&mut self, _pc: u32, _word: u32) {}
}

/// Fans fetches out to two sinks (compose for more).
///
/// ```
/// use imt_sim::bus::DataBusMonitor;
/// use imt_sim::cpu::Tee;
///
/// let mut a = DataBusMonitor::new(32);
/// let mut b = DataBusMonitor::new(32);
/// let tee = Tee(&mut a, &mut b);
/// # let _ = tee;
/// ```
#[derive(Debug)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: FetchSink, B: FetchSink> FetchSink for Tee<A, B> {
    #[inline]
    fn on_fetch(&mut self, pc: u32, word: u32) {
        self.0.on_fetch(pc, word);
        self.1.on_fetch(pc, word);
    }
}

impl<S: FetchSink + ?Sized> FetchSink for &mut S {
    #[inline]
    fn on_fetch(&mut self, pc: u32, word: u32) {
        (**self).on_fetch(pc, word);
    }
}

/// Outcome of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Exit code passed to the `exit`/`exit2` syscall.
    pub exit_code: i32,
    /// Instructions executed (equals fetches and, for this single-issue
    /// model, cycles).
    pub instructions: u64,
}

/// Result of a single [`Cpu::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// The instruction completed; execution continues.
    Continue,
    /// An `exit` syscall was executed with this code.
    Exited(i32),
}

/// The simulated processor.
///
/// See the [crate-level example](crate) for typical use.
pub struct Cpu {
    regs: [u32; 32],
    fpr: [u32; 32],
    hi: u32,
    lo: u32,
    fcc: bool,
    pc: u32,
    text: Vec<Inst>,
    words: Vec<u32>,
    text_base: u32,
    mem: Memory,
    profile: Vec<u64>,
    instructions: u64,
    stdout: String,
}

impl std::fmt::Debug for Cpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu")
            .field("pc", &format_args!("{:#010x}", self.pc))
            .field("instructions", &self.instructions)
            .finish()
    }
}

impl Cpu {
    /// Loads a program: decodes its text, copies its data segment, points
    /// the PC at the entry label and the stack pointer at the top of the
    /// stack region.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidInstruction`] if a text word does not decode;
    /// [`SimError::AccessOutOfRange`] if the data segment does not fit in
    /// user space.
    pub fn new(program: &Program) -> Result<Self, SimError> {
        let mut text = Vec::with_capacity(program.text.len());
        for (i, &word) in program.text.iter().enumerate() {
            let inst = decode(word).map_err(|_| SimError::InvalidInstruction {
                pc: program.address_of_index(i),
                word,
            })?;
            text.push(inst);
        }
        let mut mem = Memory::new();
        mem.write_bytes(program.data_base, &program.data)?;
        let mut regs = [0u32; 32];
        regs[Reg::SP.number() as usize] = STACK_TOP;
        regs[Reg::GP.number() as usize] = program.data_base.wrapping_add(0x8000);
        Ok(Cpu {
            regs,
            fpr: [0; 32],
            hi: 0,
            lo: 0,
            fcc: false,
            pc: program.entry,
            profile: vec![0; text.len()],
            words: program.text.clone(),
            text,
            text_base: program.text_base,
            mem,
            instructions: 0,
            stdout: String::new(),
        })
    }

    /// The current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads an integer register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.number() as usize]
    }

    /// Writes an integer register (writes to `$zero` are ignored).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r != Reg::ZERO {
            self.regs[r.number() as usize] = value;
        }
    }

    /// Reads the double in the even/odd pair anchored at `r`.
    pub fn freg_d(&self, r: FReg) -> f64 {
        let even = (r.number() & !1) as usize;
        let bits = (self.fpr[even + 1] as u64) << 32 | self.fpr[even] as u64;
        f64::from_bits(bits)
    }

    /// Writes the double in the even/odd pair anchored at `r`.
    pub fn set_freg_d(&mut self, r: FReg, value: f64) {
        let even = (r.number() & !1) as usize;
        let bits = value.to_bits();
        self.fpr[even] = bits as u32;
        self.fpr[even + 1] = (bits >> 32) as u32;
    }

    /// Everything the program printed through syscalls so far.
    pub fn stdout(&self) -> &str {
        &self.stdout
    }

    /// Instructions executed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Per-instruction execution counts, indexed like `Program::text`.
    ///
    /// This is the profile `imt-cfg` aggregates into basic-block weights
    /// for hot-loop selection.
    pub fn profile(&self) -> &[u64] {
        &self.profile
    }

    /// The data memory (e.g. for checking results after a run).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to data memory (e.g. to pre-seed inputs).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Runs until exit, discarding fetch events.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised by execution, including
    /// [`SimError::MaxStepsExceeded`] if the program does not exit within
    /// `max_steps`.
    pub fn run(&mut self, max_steps: u64) -> Result<RunSummary, SimError> {
        self.run_with_sink(max_steps, &mut NullSink)
    }

    /// Runs until exit, streaming every fetch to `sink`.
    ///
    /// # Errors
    ///
    /// As [`Cpu::run`].
    pub fn run_with_sink<S: FetchSink>(
        &mut self,
        max_steps: u64,
        sink: &mut S,
    ) -> Result<RunSummary, SimError> {
        let start = self.instructions;
        let result = (|| {
            for _ in 0..max_steps {
                match self.step(sink)? {
                    StepEvent::Continue => {}
                    StepEvent::Exited(code) => {
                        return Ok(RunSummary {
                            exit_code: code,
                            instructions: self.instructions,
                        })
                    }
                }
            }
            Err(SimError::MaxStepsExceeded { limit: max_steps })
        })();
        // One gated check per run (not per step): fetches equal executed
        // instructions on this single-issue core, on every exit path.
        if imt_obs::enabled() {
            imt_obs::counter!("sim.runs").inc();
            imt_obs::counter!("sim.fetches").add(self.instructions - start);
        }
        result
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// [`SimError::PcOutOfText`] if the PC is outside the text segment, or
    /// any data-access or syscall error.
    #[allow(clippy::too_many_lines)] // one arm per opcode
    pub fn step<S: FetchSink>(&mut self, sink: &mut S) -> Result<StepEvent, SimError> {
        let pc = self.pc;
        let index = if pc >= self.text_base && pc.is_multiple_of(4) {
            let i = ((pc - self.text_base) / 4) as usize;
            if i >= self.text.len() {
                return Err(SimError::PcOutOfText { pc });
            }
            i
        } else {
            return Err(SimError::PcOutOfText { pc });
        };
        sink.on_fetch(pc, self.words[index]);
        self.profile[index] += 1;
        self.instructions += 1;
        let inst = self.text[index];
        let mut next = pc.wrapping_add(4);

        use Inst::*;
        match inst {
            Add { rd, rs, rt } => {
                let v = self.reg(rs).wrapping_add(self.reg(rt));
                self.set_reg(rd, v);
            }
            Addu { rd, rs, rt } => {
                let v = self.reg(rs).wrapping_add(self.reg(rt));
                self.set_reg(rd, v);
            }
            Sub { rd, rs, rt } => {
                let v = self.reg(rs).wrapping_sub(self.reg(rt));
                self.set_reg(rd, v);
            }
            Subu { rd, rs, rt } => {
                let v = self.reg(rs).wrapping_sub(self.reg(rt));
                self.set_reg(rd, v);
            }
            And { rd, rs, rt } => {
                let v = self.reg(rs) & self.reg(rt);
                self.set_reg(rd, v);
            }
            Or { rd, rs, rt } => {
                let v = self.reg(rs) | self.reg(rt);
                self.set_reg(rd, v);
            }
            Xor { rd, rs, rt } => {
                let v = self.reg(rs) ^ self.reg(rt);
                self.set_reg(rd, v);
            }
            Nor { rd, rs, rt } => {
                let v = !(self.reg(rs) | self.reg(rt));
                self.set_reg(rd, v);
            }
            Slt { rd, rs, rt } => {
                let v = ((self.reg(rs) as i32) < self.reg(rt) as i32) as u32;
                self.set_reg(rd, v);
            }
            Sltu { rd, rs, rt } => {
                let v = (self.reg(rs) < self.reg(rt)) as u32;
                self.set_reg(rd, v);
            }
            Mul { rd, rs, rt } => {
                let v = self.reg(rs).wrapping_mul(self.reg(rt));
                self.set_reg(rd, v);
            }
            Sll { rd, rt, shamt } => {
                let v = self.reg(rt) << shamt;
                self.set_reg(rd, v);
            }
            Srl { rd, rt, shamt } => {
                let v = self.reg(rt) >> shamt;
                self.set_reg(rd, v);
            }
            Sra { rd, rt, shamt } => {
                let v = (self.reg(rt) as i32 >> shamt) as u32;
                self.set_reg(rd, v);
            }
            Sllv { rd, rt, rs } => {
                let v = self.reg(rt) << (self.reg(rs) & 31);
                self.set_reg(rd, v);
            }
            Srlv { rd, rt, rs } => {
                let v = self.reg(rt) >> (self.reg(rs) & 31);
                self.set_reg(rd, v);
            }
            Srav { rd, rt, rs } => {
                let v = (self.reg(rt) as i32 >> (self.reg(rs) & 31)) as u32;
                self.set_reg(rd, v);
            }
            Mult { rs, rt } => {
                let p = (self.reg(rs) as i32 as i64) * (self.reg(rt) as i32 as i64);
                self.lo = p as u32;
                self.hi = (p >> 32) as u32;
            }
            Multu { rs, rt } => {
                let p = (self.reg(rs) as u64) * (self.reg(rt) as u64);
                self.lo = p as u32;
                self.hi = (p >> 32) as u32;
            }
            Div { rs, rt } => {
                let (a, b) = (self.reg(rs) as i32, self.reg(rt) as i32);
                if b == 0 {
                    // MIPS leaves HI/LO unpredictable; we define them as 0.
                    self.lo = 0;
                    self.hi = 0;
                } else {
                    self.lo = a.wrapping_div(b) as u32;
                    self.hi = a.wrapping_rem(b) as u32;
                }
            }
            Divu { rs, rt } => {
                let (a, b) = (self.reg(rs), self.reg(rt));
                self.lo = a.checked_div(b).unwrap_or(0);
                self.hi = a.checked_rem(b).unwrap_or(0);
            }
            Mfhi { rd } => {
                let v = self.hi;
                self.set_reg(rd, v);
            }
            Mflo { rd } => {
                let v = self.lo;
                self.set_reg(rd, v);
            }
            Mthi { rs } => self.hi = self.reg(rs),
            Mtlo { rs } => self.lo = self.reg(rs),
            Addi { rt, rs, imm } | Addiu { rt, rs, imm } => {
                let v = self.reg(rs).wrapping_add(imm as i32 as u32);
                self.set_reg(rt, v);
            }
            Slti { rt, rs, imm } => {
                let v = ((self.reg(rs) as i32) < imm as i32) as u32;
                self.set_reg(rt, v);
            }
            Sltiu { rt, rs, imm } => {
                let v = (self.reg(rs) < imm as i32 as u32) as u32;
                self.set_reg(rt, v);
            }
            Andi { rt, rs, imm } => {
                let v = self.reg(rs) & imm as u32;
                self.set_reg(rt, v);
            }
            Ori { rt, rs, imm } => {
                let v = self.reg(rs) | imm as u32;
                self.set_reg(rt, v);
            }
            Xori { rt, rs, imm } => {
                let v = self.reg(rs) ^ imm as u32;
                self.set_reg(rt, v);
            }
            Lui { rt, imm } => self.set_reg(rt, (imm as u32) << 16),
            Beq { rs, rt, offset } => {
                if self.reg(rs) == self.reg(rt) {
                    next = branch_target(pc, offset);
                }
            }
            Bne { rs, rt, offset } => {
                if self.reg(rs) != self.reg(rt) {
                    next = branch_target(pc, offset);
                }
            }
            Blez { rs, offset } => {
                if self.reg(rs) as i32 <= 0 {
                    next = branch_target(pc, offset);
                }
            }
            Bgtz { rs, offset } => {
                if self.reg(rs) as i32 > 0 {
                    next = branch_target(pc, offset);
                }
            }
            Bltz { rs, offset } => {
                if (self.reg(rs) as i32) < 0 {
                    next = branch_target(pc, offset);
                }
            }
            Bgez { rs, offset } => {
                if self.reg(rs) as i32 >= 0 {
                    next = branch_target(pc, offset);
                }
            }
            J { target } => next = (pc.wrapping_add(4) & 0xF000_0000) | target << 2,
            Jal { target } => {
                self.set_reg(Reg::RA, pc.wrapping_add(4));
                next = (pc.wrapping_add(4) & 0xF000_0000) | target << 2;
            }
            Jr { rs } => next = self.reg(rs),
            Jalr { rd, rs } => {
                let target = self.reg(rs);
                self.set_reg(rd, pc.wrapping_add(4));
                next = target;
            }
            Lb { rt, base, offset } => {
                let v = self.mem.read_u8(ea(self.reg(base), offset))? as i8 as i32 as u32;
                self.set_reg(rt, v);
            }
            Lbu { rt, base, offset } => {
                let v = self.mem.read_u8(ea(self.reg(base), offset))? as u32;
                self.set_reg(rt, v);
            }
            Lh { rt, base, offset } => {
                let v = self.mem.read_u16(ea(self.reg(base), offset))? as i16 as i32 as u32;
                self.set_reg(rt, v);
            }
            Lhu { rt, base, offset } => {
                let v = self.mem.read_u16(ea(self.reg(base), offset))? as u32;
                self.set_reg(rt, v);
            }
            Lw { rt, base, offset } => {
                let v = self.mem.read_u32(ea(self.reg(base), offset))?;
                self.set_reg(rt, v);
            }
            Sb { rt, base, offset } => {
                self.mem
                    .write_u8(ea(self.reg(base), offset), self.reg(rt) as u8)?;
            }
            Sh { rt, base, offset } => {
                self.mem
                    .write_u16(ea(self.reg(base), offset), self.reg(rt) as u16)?;
            }
            Sw { rt, base, offset } => {
                self.mem
                    .write_u32(ea(self.reg(base), offset), self.reg(rt))?;
            }
            Lwc1 { ft, base, offset } => {
                let v = self.mem.read_u32(ea(self.reg(base), offset))?;
                self.fpr[ft.number() as usize] = v;
            }
            Swc1 { ft, base, offset } => {
                self.mem
                    .write_u32(ea(self.reg(base), offset), self.fpr[ft.number() as usize])?;
            }
            Ldc1 { ft, base, offset } => {
                let v = self.mem.read_u64(ea(self.reg(base), offset))?;
                let even = (ft.number() & !1) as usize;
                self.fpr[even] = v as u32;
                self.fpr[even + 1] = (v >> 32) as u32;
            }
            Sdc1 { ft, base, offset } => {
                let even = (ft.number() & !1) as usize;
                let v = (self.fpr[even + 1] as u64) << 32 | self.fpr[even] as u64;
                self.mem.write_u64(ea(self.reg(base), offset), v)?;
            }
            AddD { fd, fs, ft } => {
                let v = self.freg_d(fs) + self.freg_d(ft);
                self.set_freg_d(fd, v);
            }
            SubD { fd, fs, ft } => {
                let v = self.freg_d(fs) - self.freg_d(ft);
                self.set_freg_d(fd, v);
            }
            MulD { fd, fs, ft } => {
                let v = self.freg_d(fs) * self.freg_d(ft);
                self.set_freg_d(fd, v);
            }
            DivD { fd, fs, ft } => {
                let v = self.freg_d(fs) / self.freg_d(ft);
                self.set_freg_d(fd, v);
            }
            SqrtD { fd, fs } => {
                let v = self.freg_d(fs).sqrt();
                self.set_freg_d(fd, v);
            }
            AbsD { fd, fs } => {
                let v = self.freg_d(fs).abs();
                self.set_freg_d(fd, v);
            }
            MovD { fd, fs } => {
                let v = self.freg_d(fs);
                self.set_freg_d(fd, v);
            }
            NegD { fd, fs } => {
                let v = -self.freg_d(fs);
                self.set_freg_d(fd, v);
            }
            CvtDW { fd, fs } => {
                let int = self.fpr[fs.number() as usize] as i32;
                self.set_freg_d(fd, int as f64);
            }
            CvtWD { fd, fs } => {
                let v = self.freg_d(fs);
                // Truncate toward zero, saturating like MIPS trunc.w.d.
                let int = if v.is_nan() {
                    0
                } else {
                    v.trunc().clamp(i32::MIN as f64, i32::MAX as f64) as i32
                };
                self.fpr[fd.number() as usize] = int as u32;
            }
            CEqD { fs, ft } => self.fcc = self.freg_d(fs) == self.freg_d(ft),
            CLtD { fs, ft } => self.fcc = self.freg_d(fs) < self.freg_d(ft),
            CLeD { fs, ft } => self.fcc = self.freg_d(fs) <= self.freg_d(ft),
            Bc1t { offset } => {
                if self.fcc {
                    next = branch_target(pc, offset);
                }
            }
            Bc1f { offset } => {
                if !self.fcc {
                    next = branch_target(pc, offset);
                }
            }
            Mfc1 { rt, fs } => {
                let v = self.fpr[fs.number() as usize];
                self.set_reg(rt, v);
            }
            Mtc1 { rt, fs } => self.fpr[fs.number() as usize] = self.reg(rt),
            Syscall => {
                if let Some(code) = self.syscall()? {
                    self.pc = next;
                    return Ok(StepEvent::Exited(code));
                }
            }
            Break => return Err(SimError::PcOutOfText { pc }),
        }

        self.pc = next;
        Ok(StepEvent::Continue)
    }

    /// SPIM-compatible syscall subset. Returns `Some(code)` on exit.
    fn syscall(&mut self) -> Result<Option<i32>, SimError> {
        use std::fmt::Write;
        let number = self.reg(Reg::V0);
        match number {
            1 => {
                let v = self.reg(Reg::A0) as i32;
                write!(self.stdout, "{v}").expect("write to String cannot fail");
            }
            3 => {
                let v = self.freg_d(FReg::F12);
                write!(self.stdout, "{v:.6}").expect("write to String cannot fail");
            }
            4 => {
                let s = self.mem.read_cstring(self.reg(Reg::A0))?;
                self.stdout.push_str(&s);
            }
            10 => return Ok(Some(0)),
            11 => {
                let ch = (self.reg(Reg::A0) & 0xFF) as u8 as char;
                self.stdout.push(ch);
            }
            17 => return Ok(Some(self.reg(Reg::A0) as i32)),
            _ => return Err(SimError::UnknownSyscall { number }),
        }
        Ok(None)
    }
}

#[inline]
fn branch_target(pc: u32, offset: i16) -> u32 {
    pc.wrapping_add(4).wrapping_add((offset as i32 as u32) << 2)
}

#[inline]
fn ea(base: u32, offset: i16) -> u32 {
    base.wrapping_add(offset as i32 as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imt_isa::asm::assemble;

    fn run(source: &str) -> (Cpu, RunSummary) {
        let program = assemble(source).expect("assembly failed");
        let mut cpu = Cpu::new(&program).expect("load failed");
        let summary = cpu.run(10_000_000).expect("run failed");
        (cpu, summary)
    }

    #[test]
    fn arithmetic_and_exit() {
        let (cpu, summary) = run(r#"
            .text
    main:   li $t0, 6
            li $t1, 7
            mul $t2, $t0, $t1
            move $a0, $t2
            li $v0, 1
            syscall
            li $v0, 10
            syscall
    "#);
        assert_eq!(cpu.stdout(), "42");
        assert_eq!(summary.exit_code, 0);
    }

    #[test]
    fn loops_and_profile() {
        let (cpu, _) = run(r#"
            .text
    main:   li $t0, 5
    loop:   addiu $t0, $t0, -1
            bgtz $t0, loop
            li $v0, 10
            syscall
    "#);
        // The loop body (2 instructions) executes 5 times.
        assert_eq!(cpu.profile()[1], 5);
        assert_eq!(cpu.profile()[2], 5);
        assert_eq!(cpu.profile()[0], 1);
    }

    #[test]
    fn memory_and_strings() {
        let (cpu, _) = run(r#"
            .data
    msg:    .asciiz "x="
            .align 2
    buf:    .space 4
            .text
    main:   li $v0, 4
            la $a0, msg
            syscall
            la $t0, buf
            li $t1, 123
            sw $t1, 0($t0)
            lw $a0, 0($t0)
            li $v0, 1
            syscall
            li $v0, 10
            syscall
    "#);
        assert_eq!(cpu.stdout(), "x=123");
    }

    #[test]
    fn double_precision_flow() {
        let (cpu, _) = run(r#"
            .data
    a:      .double 1.5
    b:      .double 2.25
            .text
    main:   la   $t0, a
            l.d  $f2, 0($t0)
            l.d  $f4, 8($t0)
            mul.d $f12, $f2, $f4
            li   $v0, 3
            syscall
            li $v0, 10
            syscall
    "#);
        assert_eq!(cpu.stdout(), "3.375000");
    }

    #[test]
    fn fp_compare_and_branch() {
        let (cpu, _) = run(r#"
            .data
    a:      .double 1.0
    b:      .double 2.0
            .text
    main:   la   $t0, a
            l.d  $f2, 0($t0)
            l.d  $f4, 8($t0)
            c.lt.d $f2, $f4
            bc1t yes
            li $a0, 0
            b out
    yes:    li $a0, 1
    out:    li $v0, 1
            syscall
            li $v0, 10
            syscall
    "#);
        assert_eq!(cpu.stdout(), "1");
    }

    #[test]
    fn int_double_conversions() {
        let (cpu, _) = run(r#"
            .text
    main:   li   $t0, 9
            mtc1 $t0, $f0
            cvt.d.w $f2, $f0
            sqrt.d $f12, $f2
            li $v0, 3
            syscall
            cvt.w.d $f6, $f12
            mfc1 $a0, $f6
            li $v0, 1
            syscall
            li $v0, 10
            syscall
    "#);
        assert_eq!(cpu.stdout(), "3.0000003");
    }

    #[test]
    fn functions_and_stack() {
        let (cpu, _) = run(r#"
            .text
    main:   li   $a0, 10
            jal  fact
            move $a0, $v0
            li   $v0, 1
            syscall
            li   $v0, 10
            syscall
    fact:   li   $v0, 1
    floop:  blez $a0, fdone
            mul  $v0, $v0, $a0
            addiu $a0, $a0, -1
            b    floop
    fdone:  jr   $ra
    "#);
        assert_eq!(cpu.stdout(), "3628800");
    }

    #[test]
    fn division_semantics() {
        let (cpu, _) = run(r#"
            .text
    main:   li $t0, -7
            li $t1, 2
            div $t2, $t0, $t1
            rem $t3, $t0, $t1
            move $a0, $t2
            li $v0, 1
            syscall
            li $v0, 11
            li $a0, 32
            syscall
            move $a0, $t3
            li $v0, 1
            syscall
            li $v0, 10
            syscall
    "#);
        // C-style truncating division: -7 / 2 = -3 rem -1.
        assert_eq!(cpu.stdout(), "-3 -1");
    }

    #[test]
    fn zero_register_is_immutable() {
        let (cpu, _) = run(r#"
            .text
    main:   addiu $zero, $zero, 55
            move  $a0, $zero
            li $v0, 1
            syscall
            li $v0, 10
            syscall
    "#);
        assert_eq!(cpu.stdout(), "0");
    }

    #[test]
    fn fetch_sink_sees_every_instruction_in_order() {
        struct Recorder(Vec<u32>);
        impl FetchSink for Recorder {
            fn on_fetch(&mut self, pc: u32, _word: u32) {
                self.0.push(pc);
            }
        }
        let program = assemble(
            r#"
            .text
    main:   li $t0, 2
    loop:   addiu $t0, $t0, -1
            bgtz $t0, loop
            li $v0, 10
            syscall
    "#,
        )
        .unwrap();
        let mut cpu = Cpu::new(&program).unwrap();
        let mut rec = Recorder(Vec::new());
        cpu.run_with_sink(1000, &mut rec).unwrap();
        let base = program.text_base;
        assert_eq!(
            rec.0,
            vec![
                base,
                base + 4,
                base + 8,
                base + 4,
                base + 8,
                base + 12,
                base + 16
            ]
        );
    }

    #[test]
    fn runaway_program_hits_step_limit() {
        let program = assemble(".text\nmain: b main\n").unwrap();
        let mut cpu = Cpu::new(&program).unwrap();
        assert_eq!(cpu.run(100), Err(SimError::MaxStepsExceeded { limit: 100 }));
    }

    #[test]
    fn jumping_into_the_void_is_an_error() {
        let program = assemble(".text\nmain: jr $t0\n").unwrap();
        let mut cpu = Cpu::new(&program).unwrap();
        let mut sink = NullSink;
        cpu.step(&mut sink).unwrap();
        assert_eq!(cpu.step(&mut sink), Err(SimError::PcOutOfText { pc: 0 }));
    }

    #[test]
    fn unknown_syscall_is_an_error() {
        let program = assemble(".text\nmain: li $v0, 99\nsyscall\n").unwrap();
        let mut cpu = Cpu::new(&program).unwrap();
        assert_eq!(cpu.run(10), Err(SimError::UnknownSyscall { number: 99 }));
    }

    #[test]
    fn subword_memory_semantics() {
        let (cpu, _) = run(r#"
            .data
            .align 2
    buf:    .space 8
            .text
    main:   la   $t0, buf
            li   $t1, -2          # 0xFFFFFFFE
            sb   $t1, 0($t0)      # stores 0xFE
            sh   $t1, 2($t0)      # stores 0xFFFE
            lb   $t2, 0($t0)      # sign-extends: -2
            lbu  $t3, 0($t0)      # zero-extends: 254
            lh   $t4, 2($t0)      # sign-extends: -2
            lhu  $t5, 2($t0)      # zero-extends: 65534
            move $a0, $t2
            li $v0, 1
            syscall
            li $v0, 11
            li $a0, 32
            syscall
            move $a0, $t3
            li $v0, 1
            syscall
            li $v0, 11
            li $a0, 32
            syscall
            move $a0, $t4
            li $v0, 1
            syscall
            li $v0, 11
            li $a0, 32
            syscall
            move $a0, $t5
            li $v0, 1
            syscall
            li $v0, 10
            syscall
    "#);
        assert_eq!(cpu.stdout(), "-2 254 -2 65534");
    }

    #[test]
    fn shift_and_compare_edge_semantics() {
        let (cpu, _) = run(r#"
            .text
    main:   li   $t0, -8
            sra  $t1, $t0, 1      # arithmetic: -4
            srl  $t2, $t0, 28     # logical: 0xF
            sltiu $t3, $zero, -1  # 0 < 0xFFFFFFFF unsigned: 1
            slti  $t4, $zero, -1  # 0 < -1 signed: 0
            move $a0, $t1
            li $v0, 1
            syscall
            li $v0, 11
            li $a0, 32
            syscall
            move $a0, $t2
            li $v0, 1
            syscall
            li $v0, 11
            li $a0, 32
            syscall
            addu $a0, $t3, $t4
            li $v0, 1
            syscall
            li $v0, 10
            syscall
    "#);
        assert_eq!(cpu.stdout(), "-4 15 1");
    }

    #[test]
    fn exit2_returns_its_code() {
        let (_, summary) = run(".text\nmain: li $a0, 7\nli $v0, 17\nsyscall\n");
        assert_eq!(summary.exit_code, 7);
    }
}
