//! Fetch-edge profiles: the dynamic fetch stream folded into a weighted
//! multiset of consecutive `(pc_prev → pc)` edges.
//!
//! The paper's metric — dynamic transitions on the instruction data bus —
//! depends only on *consecutive fetch pairs*, and the dynamic PC sequence
//! is invariant under every encoding evaluated (decode is exact, so the
//! executed program is unchanged). One run therefore captures everything
//! any encoding's bus cost needs:
//!
//! ```text
//! transitions(image) = Σ_edges weight(e) · popcount(image[src(e)] ^ image[dst(e)])
//! ```
//!
//! For loop-dominated kernels the edge multiset is tiny — O(static
//! instructions) distinct edges, run-length dominated by the sequential
//! `i → i+1` pairs — while the fetch stream it summarises is O(dynamic
//! instructions). Recording is a single pass through the ordinary
//! [`FetchSink`] hook; replaying is `imt-core`'s `eval::evaluate_replay`.
//!
//! Profiles serialise to a small versioned binary format
//! ([`FetchEdgeProfile::to_bytes`]) so `imt-core`'s on-disk profile cache
//! can share one recording across every experiment binary.

use std::collections::HashMap;

use imt_isa::program::Program;

use crate::cpu::{Cpu, FetchSink};
use crate::error::SimError;

/// Version of the *recording semantics*: what a fetch is, how edges are
/// folded. Part of the profile-cache content key — bump it whenever the
/// simulator's fetch behaviour changes so stale cached profiles are
/// invalidated rather than replayed.
pub const PROFILE_SEMANTICS_VERSION: u32 = 1;

/// Version of the serialised byte format (independent of the semantics
/// version: a pure container change bumps only this).
pub const PROFILE_FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 8] = *b"IMTEPROF";

/// Marker for "no seed fetch" in the serialised form.
const NO_SEED: u32 = u32::MAX;

/// A malformed serialised profile (wrong magic, truncated, inconsistent
/// lengths). Callers — the profile cache — treat this as a miss and
/// re-record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeProfileFormatError {
    /// What was wrong.
    pub detail: &'static str,
}

impl std::fmt::Display for EdgeProfileFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed fetch-edge profile: {}", self.detail)
    }
}

impl std::error::Error for EdgeProfileFormatError {}

/// A [`FetchSink`] that folds the fetch stream into weighted edges.
///
/// Compose it with other sinks through [`crate::cpu::Tee`], or use
/// [`FetchEdgeProfile::record`] for the common run-once case.
#[derive(Debug, Clone)]
pub struct FetchEdgeRecorder {
    text_base: u32,
    /// `seq[i]` = weight of the sequential edge `i → i+1`.
    seq: Vec<u64>,
    /// Non-sequential edges (taken branches, jumps, returns).
    other: HashMap<(u32, u32), u64>,
    prev: Option<u32>,
    seed: Option<u32>,
    fetches: u64,
}

impl FetchEdgeRecorder {
    /// A recorder for a text segment of `text_len` instructions starting
    /// at `text_base`.
    pub fn new(text_base: u32, text_len: usize) -> Self {
        FetchEdgeRecorder {
            text_base,
            seq: vec![0; text_len],
            other: HashMap::new(),
            prev: None,
            seed: None,
            fetches: 0,
        }
    }

    /// Folds the recorded stream into a profile. `exit_code` and `stdout`
    /// come from the run that drove the recorder; they ride along so the
    /// replay evaluator can report them without re-simulating.
    pub fn finish(self, exit_code: i32, stdout: String) -> FetchEdgeProfile {
        let mut other: Vec<(u32, u32, u64)> = self
            .other
            .into_iter()
            .map(|((src, dst), w)| (src, dst, w))
            .collect();
        // Deterministic order regardless of hash-map iteration.
        other.sort_unstable();
        FetchEdgeProfile {
            text_len: self.seq.len(),
            seed: self.seed,
            seq: self.seq,
            other,
            fetches: self.fetches,
            exit_code,
            stdout,
        }
    }
}

impl FetchSink for FetchEdgeRecorder {
    #[inline]
    fn on_fetch(&mut self, pc: u32, _word: u32) {
        let index = (pc.wrapping_sub(self.text_base)) / 4;
        debug_assert!(
            (index as usize) < self.seq.len(),
            "fetch at {pc:#010x} outside the recorded text segment"
        );
        match self.prev {
            None => self.seed = Some(index),
            Some(prev) => {
                if index == prev + 1 {
                    self.seq[prev as usize] += 1;
                } else {
                    *self.other.entry((prev, index)).or_insert(0) += 1;
                }
            }
        }
        self.prev = Some(index);
        self.fetches += 1;
    }
}

/// A completed edge profile: the weighted fetch-pair multiset plus the
/// run's observable outcome (exit code, stdout, fetch count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchEdgeProfile {
    text_len: usize,
    seed: Option<u32>,
    seq: Vec<u64>,
    other: Vec<(u32, u32, u64)>,
    fetches: u64,
    exit_code: i32,
    stdout: String,
}

impl FetchEdgeProfile {
    /// Runs `program` once for up to `max_steps` instructions, recording
    /// every fetch into an edge profile.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised by the run (fault, step-budget overrun).
    pub fn record(program: &Program, max_steps: u64) -> Result<FetchEdgeProfile, SimError> {
        let mut cpu = Cpu::new(program)?;
        let mut recorder = FetchEdgeRecorder::new(program.text_base, program.text.len());
        let summary = cpu.run_with_sink(max_steps, &mut recorder)?;
        Ok(recorder.finish(summary.exit_code, cpu.stdout().to_string()))
    }

    /// Instructions in the text segment the profile was recorded over.
    pub fn text_len(&self) -> usize {
        self.text_len
    }

    /// Index of the first fetched instruction, if any instruction ran.
    pub fn seed_index(&self) -> Option<usize> {
        self.seed.map(|s| s as usize)
    }

    /// Total dynamic fetches (= instructions executed).
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// Exit code of the recorded run.
    pub fn exit_code(&self) -> i32 {
        self.exit_code
    }

    /// Everything the recorded run printed.
    pub fn stdout(&self) -> &str {
        &self.stdout
    }

    /// Distinct edges with non-zero weight — the replay evaluator's work
    /// items. O(static instructions) for loop-dominated programs.
    pub fn distinct_edges(&self) -> usize {
        self.seq.iter().filter(|&&w| w > 0).count() + self.other.len()
    }

    /// Iterates every `(src_index, dst_index, weight)` edge with non-zero
    /// weight: sequential edges in index order, then the sorted
    /// non-sequential edges. Deterministic.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        let seq = self
            .seq
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > 0)
            .map(|(i, &w)| (i, i + 1, w));
        let other = self
            .other
            .iter()
            .map(|&(src, dst, w)| (src as usize, dst as usize, w));
        seq.chain(other)
    }

    /// Per-instruction execution counts, identical to
    /// [`Cpu::profile`] for the same run: every fetch except the seed is
    /// the destination of exactly one edge instance.
    pub fn per_index_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.text_len];
        if let Some(seed) = self.seed {
            counts[seed as usize] += 1;
        }
        for (i, &w) in self.seq.iter().enumerate() {
            if w > 0 {
                counts[i + 1] += w;
            }
        }
        for &(_, dst, w) in &self.other {
            counts[dst as usize] += w;
        }
        counts
    }

    /// Serialises the profile (little-endian, versioned, self-describing).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            8 + 4 * 4 + 8 + self.stdout.len() + 8 * self.seq.len() + 16 * self.other.len() + 16,
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&PROFILE_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.text_len as u32).to_le_bytes());
        out.extend_from_slice(&self.seed.unwrap_or(NO_SEED).to_le_bytes());
        out.extend_from_slice(&self.fetches.to_le_bytes());
        out.extend_from_slice(&self.exit_code.to_le_bytes());
        out.extend_from_slice(&(self.stdout.len() as u32).to_le_bytes());
        out.extend_from_slice(self.stdout.as_bytes());
        for &w in &self.seq {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&(self.other.len() as u32).to_le_bytes());
        for &(src, dst, w) in &self.other {
            out.extend_from_slice(&src.to_le_bytes());
            out.extend_from_slice(&dst.to_le_bytes());
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserialises a profile written by [`FetchEdgeProfile::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`EdgeProfileFormatError`] on any structural problem — wrong magic
    /// or version, truncation, out-of-range indices. The profile cache
    /// maps this to a miss.
    pub fn from_bytes(bytes: &[u8]) -> Result<FetchEdgeProfile, EdgeProfileFormatError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(8)? != MAGIC {
            return Err(EdgeProfileFormatError {
                detail: "bad magic",
            });
        }
        if r.u32()? != PROFILE_FORMAT_VERSION {
            return Err(EdgeProfileFormatError {
                detail: "unsupported format version",
            });
        }
        let text_len = r.u32()? as usize;
        let seed_raw = r.u32()?;
        let seed = if seed_raw == NO_SEED {
            None
        } else if (seed_raw as usize) < text_len {
            Some(seed_raw)
        } else {
            return Err(EdgeProfileFormatError {
                detail: "seed index out of range",
            });
        };
        let fetches = r.u64()?;
        let exit_code = r.u32()? as i32;
        let stdout_len = r.u32()? as usize;
        let stdout = String::from_utf8(r.take(stdout_len)?.to_vec()).map_err(|_| {
            EdgeProfileFormatError {
                detail: "stdout is not UTF-8",
            }
        })?;
        // Bound both pre-allocations by the bytes actually present: a
        // corrupted length field must yield a `truncated` error, not a
        // multi-gigabyte allocation attempt.
        if bytes.len().saturating_sub(r.pos) < text_len.saturating_mul(8) {
            return Err(EdgeProfileFormatError {
                detail: "truncated",
            });
        }
        let mut seq = Vec::with_capacity(text_len);
        for _ in 0..text_len {
            seq.push(r.u64()?);
        }
        let other_len = r.u32()? as usize;
        if bytes.len().saturating_sub(r.pos) < other_len.saturating_mul(16) {
            return Err(EdgeProfileFormatError {
                detail: "truncated",
            });
        }
        let mut other = Vec::with_capacity(other_len);
        for _ in 0..other_len {
            let src = r.u32()?;
            let dst = r.u32()?;
            let w = r.u64()?;
            if src as usize >= text_len || dst as usize >= text_len {
                return Err(EdgeProfileFormatError {
                    detail: "edge index out of range",
                });
            }
            other.push((src, dst, w));
        }
        if r.pos != bytes.len() {
            return Err(EdgeProfileFormatError {
                detail: "trailing bytes",
            });
        }
        Ok(FetchEdgeProfile {
            text_len,
            seed,
            seq,
            other,
            fetches,
            exit_code,
            stdout,
        })
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], EdgeProfileFormatError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(EdgeProfileFormatError {
                detail: "truncated",
            }),
        }
    }

    fn u32(&mut self) -> Result<u32, EdgeProfileFormatError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, EdgeProfileFormatError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::DataBusMonitor;
    use crate::cpu::Tee;
    use imt_isa::asm::assemble;

    const LOOP_PROGRAM: &str = r#"
            .text
    main:   li   $t0, 100
    loop:   xor  $t1, $t1, $t0
            sll  $t2, $t1, 3
            addiu $t0, $t0, -1
            bgtz $t0, loop
            move $a0, $t1
            li   $v0, 1
            syscall
            li   $v0, 10
            syscall
    "#;

    fn program() -> Program {
        assemble(LOOP_PROGRAM).expect("assembly failed")
    }

    #[test]
    fn edge_weights_reconstruct_bus_transitions() {
        let program = program();
        // Record edges and the reference monitor in one run.
        let mut cpu = Cpu::new(&program).unwrap();
        let mut recorder = FetchEdgeRecorder::new(program.text_base, program.text.len());
        let mut bus = DataBusMonitor::new(32);
        let summary = cpu
            .run_with_sink(1_000_000, &mut Tee(&mut recorder, &mut bus))
            .unwrap();
        let profile = recorder.finish(summary.exit_code, cpu.stdout().to_string());
        let total: u64 = profile
            .edges()
            .map(|(src, dst, w)| {
                w * u64::from((program.text[src] ^ program.text[dst]).count_ones())
            })
            .sum();
        assert_eq!(total, bus.total_transitions());
        assert_eq!(profile.fetches(), summary.instructions);
        assert_eq!(profile.stdout(), cpu.stdout());
    }

    #[test]
    fn per_index_counts_match_cpu_profile() {
        let program = program();
        let mut cpu = Cpu::new(&program).unwrap();
        cpu.run(1_000_000).unwrap();
        let profile = FetchEdgeProfile::record(&program, 1_000_000).unwrap();
        assert_eq!(profile.per_index_counts(), cpu.profile());
        assert_eq!(
            profile.per_index_counts().iter().sum::<u64>(),
            profile.fetches()
        );
    }

    #[test]
    fn profile_is_run_length_dominated() {
        let program = program();
        let profile = FetchEdgeProfile::record(&program, 1_000_000).unwrap();
        // O(static): far fewer distinct edges than dynamic fetches.
        assert!(profile.distinct_edges() <= 2 * program.text.len());
        assert!(profile.fetches() > profile.distinct_edges() as u64 * 10);
        // The loop's back edge is the only heavy non-sequential edge.
        let back_edges: Vec<_> = profile.edges().filter(|&(s, d, _)| d < s).collect();
        assert_eq!(back_edges.len(), 1);
        assert!(back_edges[0].2 >= 99);
    }

    #[test]
    fn serialisation_round_trips() {
        let program = program();
        let profile = FetchEdgeProfile::record(&program, 1_000_000).unwrap();
        let bytes = profile.to_bytes();
        let back = FetchEdgeProfile::from_bytes(&bytes).unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn malformed_bytes_are_rejected_not_panicked() {
        let program = program();
        let bytes = profile_bytes(&program);
        assert!(FetchEdgeProfile::from_bytes(&[]).is_err());
        assert!(FetchEdgeProfile::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(FetchEdgeProfile::from_bytes(&wrong_magic).is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[8] = 0xEE;
        assert!(FetchEdgeProfile::from_bytes(&wrong_version).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert_eq!(
            FetchEdgeProfile::from_bytes(&trailing).unwrap_err().detail,
            "trailing bytes"
        );
    }

    fn profile_bytes(program: &Program) -> Vec<u8> {
        FetchEdgeProfile::record(program, 1_000_000)
            .unwrap()
            .to_bytes()
    }

    #[test]
    fn empty_run_profile_has_no_seed() {
        let recorder = FetchEdgeRecorder::new(0x0040_0000, 4);
        let profile = recorder.finish(0, String::new());
        assert_eq!(profile.seed_index(), None);
        assert_eq!(profile.fetches(), 0);
        assert_eq!(profile.distinct_edges(), 0);
        assert_eq!(profile.per_index_counts(), vec![0; 4]);
        let back = FetchEdgeProfile::from_bytes(&profile.to_bytes()).unwrap();
        assert_eq!(back, profile);
    }
}
