use std::error::Error;
use std::fmt;

/// Errors raised while loading or running a program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The text segment contains a word that does not decode.
    InvalidInstruction {
        /// Address of the word.
        pc: u32,
        /// The undecodable word.
        word: u32,
    },
    /// The PC left the text segment.
    PcOutOfText {
        /// The offending PC value.
        pc: u32,
    },
    /// A data access was not aligned to its natural size.
    UnalignedAccess {
        /// The faulting address.
        address: u32,
        /// Required alignment in bytes.
        alignment: u32,
    },
    /// A data access fell outside user address space (`< 0x8000_0000`).
    AccessOutOfRange {
        /// The faulting address.
        address: u32,
    },
    /// An unknown syscall number was requested in `$v0`.
    UnknownSyscall {
        /// The syscall number.
        number: u32,
    },
    /// The program did not exit within the step budget.
    MaxStepsExceeded {
        /// The budget that was exhausted.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SimError::InvalidInstruction { pc, word } => {
                write!(f, "invalid instruction {word:08x} at {pc:08x}")
            }
            SimError::PcOutOfText { pc } => write!(f, "pc {pc:08x} outside the text segment"),
            SimError::UnalignedAccess { address, alignment } => {
                write!(
                    f,
                    "access at {address:08x} not aligned to {alignment} bytes"
                )
            }
            SimError::AccessOutOfRange { address } => {
                write!(f, "access at {address:08x} outside user address space")
            }
            SimError::UnknownSyscall { number } => write!(f, "unknown syscall {number}"),
            SimError::MaxStepsExceeded { limit } => {
                write!(f, "program did not exit within {limit} steps")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
        let text = SimError::UnalignedAccess {
            address: 0x1001_0002,
            alignment: 4,
        }
        .to_string();
        assert!(text.contains("10010002"));
        assert!(text.contains("4 bytes"));
    }
}
