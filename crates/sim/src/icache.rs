//! Instruction-cache model for the storage-type study.
//!
//! The paper's §8 notes the instructions may come from "an instruction
//! cache or memory; the type of storage bears no impact on the bit
//! transition reductions we attain". This module makes that claim
//! testable: a set-associative LRU instruction cache sits between the
//! instruction memory and the core, and [`CachedBusModel`] accounts
//! transitions on **both** buses:
//!
//! * the *core bus* (cache → fetch unit) carries one word per executed
//!   instruction — the stream the paper measures;
//! * the *memory bus* (memory → cache) carries whole refill lines on
//!   misses only.
//!
//! With the paper's decoder placed in the fetch unit, the cache stores
//! *encoded* words and both buses benefit; the alternative placement —
//! decode at cache fill, cache stores plain words — saves only on the
//! memory bus. [`DecoderPlacement`] selects which architecture is
//! modelled.

use crate::bus::DataBusMonitor;
use crate::cpu::FetchSink;

/// Configuration of a set-associative instruction cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ICacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Words per cache line (power of two).
    pub line_words: usize,
}

impl ICacheConfig {
    /// A tiny 1 KiB direct-mapped cache (32 sets × 1 way × 8-word lines).
    pub const TINY_1K: ICacheConfig = ICacheConfig {
        sets: 32,
        ways: 1,
        line_words: 8,
    };

    /// A 4 KiB 2-way cache (64 sets × 2 ways × 8-word lines).
    pub const SMALL_4K: ICacheConfig = ICacheConfig {
        sets: 64,
        ways: 2,
        line_words: 8,
    };

    /// Bytes of payload.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_words * 4
    }
}

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was fetched from memory (and another may have been
    /// evicted).
    Miss,
}

/// A set-associative LRU instruction cache (tags only — the simulator is
/// functional, so no data array is needed).
#[derive(Debug, Clone)]
pub struct ICache {
    config: ICacheConfig,
    /// `tags[set][way]` — line address (address >> line bits) or None.
    tags: Vec<Vec<Option<u32>>>,
    /// Last-use tick per way, for LRU. The tick is the access ordinal,
    /// i.e. `hits + misses` — derived, not stored separately.
    last_use: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl ICache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_words` is not a power of two, or any
    /// parameter is zero.
    pub fn new(config: ICacheConfig) -> Self {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            config.line_words.is_power_of_two(),
            "line_words must be a power of two"
        );
        assert!(config.ways >= 1, "need at least one way");
        ICache {
            config,
            tags: vec![vec![None; config.ways]; config.sets],
            last_use: vec![vec![0; config.ways]; config.sets],
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> ICacheConfig {
        self.config
    }

    /// Accesses the word at `address`, updating LRU state.
    pub fn access(&mut self, address: u32) -> CacheOutcome {
        let tick = self.hits + self.misses + 1;
        let line = address / 4 / self.config.line_words as u32;
        let set = (line as usize) & (self.config.sets - 1);
        if let Some(way) = self.tags[set].iter().position(|&t| t == Some(line)) {
            self.last_use[set][way] = tick;
            self.hits += 1;
            return CacheOutcome::Hit;
        }
        // Miss: fill the least recently used way.
        let victim = (0..self.config.ways)
            .min_by_key(|&w| (self.tags[set][w].is_some() as u64, self.last_use[set][w]))
            .expect("at least one way");
        self.tags[set][victim] = Some(line);
        self.last_use[set][victim] = tick;
        self.misses += 1;
        CacheOutcome::Miss
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (0 for no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Publishes hit/miss totals (and the hit rate in basis points) into
    /// the `imt-obs` registry under `label`; no-op when disabled.
    pub fn publish_obs(&self, label: &str) {
        if !imt_obs::enabled() {
            return;
        }
        imt_obs::gauge_labeled("sim.icache.hits", label).set(self.hits);
        imt_obs::gauge_labeled("sim.icache.misses", label).set(self.misses);
        imt_obs::gauge_labeled("sim.icache.hit_rate_bp", label)
            .set((self.hit_rate() * 10_000.0).round() as u64);
    }
}

/// Where the paper's decode hardware sits relative to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecoderPlacement {
    /// In the fetch unit (the paper's architecture, Figure 5): the cache
    /// stores encoded words; both buses carry the encoded form.
    AtCore,
    /// At the cache-fill path: the cache stores restored words; only the
    /// memory bus carries the encoded form.
    AtCacheFill,
}

/// A fetch sink that models the cached memory hierarchy over a given
/// memory image and accounts transitions on the core and memory buses.
///
/// ```
/// use imt_sim::icache::{CachedBusModel, DecoderPlacement, ICacheConfig};
///
/// let image = vec![0x1111_1111u32; 64];
/// let mut model = CachedBusModel::new(
///     ICacheConfig::TINY_1K,
///     image,
///     vec![0x1111_1111u32; 64], // decoded view (identity here)
///     0x0040_0000,
///     DecoderPlacement::AtCore,
/// );
/// // First access misses and pulls one 8-word line over the memory bus.
/// use imt_sim::cpu::FetchSink;
/// model.on_fetch(0x0040_0000, 0);
/// assert_eq!(model.cache().misses(), 1);
/// assert_eq!(model.memory_bus().words(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct CachedBusModel {
    cache: ICache,
    stored_image: Vec<u32>,
    decoded_image: Vec<u32>,
    text_base: u32,
    placement: DecoderPlacement,
    core_bus: DataBusMonitor,
    memory_bus: DataBusMonitor,
}

impl CachedBusModel {
    /// Creates the model over a stored (possibly encoded) image and its
    /// decoded view; for a baseline run, pass the same image twice.
    pub fn new(
        config: ICacheConfig,
        stored_image: Vec<u32>,
        decoded_image: Vec<u32>,
        text_base: u32,
        placement: DecoderPlacement,
    ) -> Self {
        assert_eq!(
            stored_image.len(),
            decoded_image.len(),
            "image views must align"
        );
        CachedBusModel {
            cache: ICache::new(config),
            stored_image,
            decoded_image,
            text_base,
            placement,
            core_bus: DataBusMonitor::new(32),
            memory_bus: DataBusMonitor::new(32),
        }
    }

    /// The cache statistics.
    pub fn cache(&self) -> &ICache {
        &self.cache
    }

    /// The cache→core bus monitor.
    pub fn core_bus(&self) -> &DataBusMonitor {
        &self.core_bus
    }

    /// The memory→cache bus monitor.
    pub fn memory_bus(&self) -> &DataBusMonitor {
        &self.memory_bus
    }

    /// Publishes cache statistics and both bus monitors into the
    /// `imt-obs` registry under `label` (`/core` and `/mem` sub-labels for
    /// the buses); no-op when disabled.
    pub fn publish_obs(&self, label: &str) {
        if !imt_obs::enabled() {
            return;
        }
        self.cache.publish_obs(label);
        self.core_bus.publish_obs(&format!("{label}/core"));
        self.memory_bus.publish_obs(&format!("{label}/mem"));
    }
}

impl FetchSink for CachedBusModel {
    fn on_fetch(&mut self, pc: u32, _word: u32) {
        let index = ((pc - self.text_base) / 4) as usize;
        // What the cache holds depends on the decoder placement.
        let cached_word = match self.placement {
            DecoderPlacement::AtCore => self.stored_image[index],
            DecoderPlacement::AtCacheFill => self.decoded_image[index],
        };
        self.core_bus.observe(cached_word as u64);
        if self.cache.access(pc) == CacheOutcome::Miss {
            // Refill the whole line from memory, in address order; memory
            // always holds the stored form.
            let line_words = self.cache.config.line_words;
            let line_start = index / line_words * line_words;
            for offset in 0..line_words {
                let i = line_start + offset;
                if i < self.stored_image.len() {
                    self.memory_bus.observe(self.stored_image[i] as u64);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_basics() {
        let mut cache = ICache::new(ICacheConfig::TINY_1K);
        assert_eq!(cache.access(0x0040_0000), CacheOutcome::Miss);
        assert_eq!(cache.access(0x0040_0004), CacheOutcome::Hit); // same line
        assert_eq!(cache.access(0x0040_0020), CacheOutcome::Miss); // next line
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert!(cache.hit_rate() > 0.3);
    }

    #[test]
    fn conflict_eviction_in_direct_mapped() {
        let mut cache = ICache::new(ICacheConfig::TINY_1K);
        // TINY_1K: 32 sets × 8-word lines = 1024 bytes; addresses 1 KiB
        // apart conflict.
        assert_eq!(cache.access(0x0040_0000), CacheOutcome::Miss);
        assert_eq!(cache.access(0x0040_0400), CacheOutcome::Miss);
        assert_eq!(cache.access(0x0040_0000), CacheOutcome::Miss); // evicted
    }

    #[test]
    fn two_way_lru_retains_both() {
        let mut cache = ICache::new(ICacheConfig {
            sets: 1,
            ways: 2,
            line_words: 4,
        });
        assert_eq!(cache.access(0x0000_0000), CacheOutcome::Miss);
        assert_eq!(cache.access(0x0000_0010), CacheOutcome::Miss);
        assert_eq!(cache.access(0x0000_0000), CacheOutcome::Hit);
        assert_eq!(cache.access(0x0000_0010), CacheOutcome::Hit);
        // A third line evicts the LRU (address 0), not the MRU.
        assert_eq!(cache.access(0x0000_0020), CacheOutcome::Miss);
        assert_eq!(cache.access(0x0000_0010), CacheOutcome::Hit);
        assert_eq!(cache.access(0x0000_0000), CacheOutcome::Miss);
    }

    #[test]
    fn loop_fits_and_hits() {
        let mut cache = ICache::new(ICacheConfig::SMALL_4K);
        // A 16-instruction loop iterated 100 times: 2 cold misses, rest hits.
        for _ in 0..100 {
            for i in 0..16u32 {
                cache.access(0x0040_0000 + i * 4);
            }
        }
        assert_eq!(cache.misses(), 2);
        assert!(cache.hit_rate() > 0.99);
    }

    #[test]
    fn capacity_accounting() {
        assert_eq!(ICacheConfig::TINY_1K.capacity_bytes(), 1024);
        assert_eq!(ICacheConfig::SMALL_4K.capacity_bytes(), 4096);
    }

    #[test]
    fn cached_model_refills_lines_once_for_a_resident_loop() {
        let image: Vec<u32> = (0..32).map(|i| i * 0x0101_0101).collect();
        let mut model = CachedBusModel::new(
            ICacheConfig::SMALL_4K,
            image.clone(),
            image,
            0x0040_0000,
            DecoderPlacement::AtCore,
        );
        for _ in 0..10 {
            for i in 0..32u32 {
                model.on_fetch(0x0040_0000 + i * 4, 0);
            }
        }
        // 4 lines of 8 words, refilled once each.
        assert_eq!(model.memory_bus().words(), 32);
        assert_eq!(model.core_bus().words(), 320);
        assert_eq!(model.cache().misses(), 4);
    }

    #[test]
    fn placement_controls_which_bus_sees_encoded_words() {
        let stored: Vec<u32> = vec![0x0000_0000; 8];
        let decoded: Vec<u32> = vec![0xFFFF_FFFF; 8];
        let mut at_core = CachedBusModel::new(
            ICacheConfig::TINY_1K,
            stored.clone(),
            decoded.clone(),
            0,
            DecoderPlacement::AtCore,
        );
        let mut at_fill = CachedBusModel::new(
            ICacheConfig::TINY_1K,
            stored,
            decoded,
            0,
            DecoderPlacement::AtCacheFill,
        );
        for i in 0..8u32 {
            at_core.on_fetch(i * 4, 0);
            at_fill.on_fetch(i * 4, 0);
        }
        // Core-side: stored (all zero, no transitions) vs decoded (all
        // ones, no transitions either — but the *values* differ).
        assert_eq!(at_core.core_bus().total_transitions(), 0);
        assert_eq!(at_fill.core_bus().total_transitions(), 0);
        // Memory side is identical: it always carries the stored form.
        assert_eq!(
            at_core.memory_bus().total_transitions(),
            at_fill.memory_bus().total_transitions()
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        ICache::new(ICacheConfig {
            sets: 3,
            ways: 1,
            line_words: 8,
        });
    }
}
