//! # imt-sim — in-order functional simulator with bus monitoring
//!
//! The paper measures bit transitions on the data bus between instruction
//! memory and a "typical embedded processor front-end, which fetches and
//! executes instructions in order and one at a time" (its §8), using a
//! modified SimpleScalar. This crate is that substrate, built from scratch
//! for the [`imt-isa`](imt_isa) instruction set:
//!
//! * [`mem`] — a sparse paged byte-addressable memory;
//! * [`cpu`] — the single-issue functional core: decoded-text execution,
//!   SPIM-style syscalls, per-instruction profiling, and a fetch hook
//!   ([`cpu::FetchSink`]) through which every fetched `(pc, word)` pair
//!   streams in program order;
//! * [`bus`] — transition monitors for the instruction data bus and the
//!   address bus, plus the analytic energy model (`E = ½·C·V²` per
//!   transition per line);
//! * [`edge`] — the fetch stream folded into a weighted multiset of
//!   consecutive `(pc_prev → pc)` edges, the input to `imt-core`'s
//!   O(static) replay evaluator and its on-disk profile cache;
//! * [`icache`] — a set-associative LRU instruction cache and a two-bus
//!   hierarchy model for the paper's storage-type claim (§8);
//! * [`stats`] — dynamic instruction-mix accounting;
//! * [`timing`] — a first-order front-end cycle model (redirect bubbles +
//!   cache stalls) for the paper's no-added-stage claim;
//! * [`trace`] — a bounded head/tail execution trace recorder.
//!
//! ## Quick example
//!
//! ```
//! use imt_isa::asm::assemble;
//! use imt_sim::bus::DataBusMonitor;
//! use imt_sim::cpu::Cpu;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(r#"
//!         .text
//! main:   li   $t0, 10
//!         li   $t1, 0
//! loop:   addu $t1, $t1, $t0
//!         addiu $t0, $t0, -1
//!         bgtz $t0, loop
//!         li   $v0, 1          # print_int
//!         move $a0, $t1
//!         syscall
//!         li   $v0, 10         # exit
//!         syscall
//! "#)?;
//! let mut cpu = Cpu::new(&program)?;
//! let mut bus = DataBusMonitor::new(32);
//! let summary = cpu.run_with_sink(1_000_000, &mut bus)?;
//! assert_eq!(cpu.stdout(), "55");
//! assert!(summary.instructions > 30);
//! assert!(bus.total_transitions() > 0);
//! # Ok(())
//! # }
//! ```

// Library code must not panic on caller input: unwraps are reserved for
// tests (see clippy.toml), and fallible paths return typed errors.
#![warn(clippy::unwrap_used)]

pub mod bus;
pub mod cpu;
pub mod edge;
pub mod icache;
pub mod mem;
pub mod stats;
pub mod timing;
pub mod trace;

mod error;

pub use cpu::{Cpu, FetchSink, RunSummary};
pub use error::SimError;
