//! Sparse paged data memory.
//!
//! User address space is the low 2 GiB (`0x0000_0000..0x8000_0000`), split
//! into 4 KiB pages allocated on first touch. Reads from untouched pages
//! return zero, matching how a loader zero-fills BSS. Instruction text is
//! *not* stored here — the simulated core is Harvard-style, fetching from
//! the decoded program image ([`crate::cpu::Cpu`]), which mirrors the
//! paper's separation of the instruction memory path from the data path.

use crate::error::SimError;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;
const USER_SPACE: u32 = 0x8000_0000;
const PAGES: usize = (USER_SPACE >> PAGE_BITS) as usize;

/// Byte-addressable, little-endian, zero-initialised sparse memory.
///
/// ```
/// use imt_sim::mem::Memory;
///
/// # fn main() -> Result<(), imt_sim::SimError> {
/// let mut mem = Memory::new();
/// mem.write_u32(0x1001_0000, 0xDEAD_BEEF)?;
/// assert_eq!(mem.read_u32(0x1001_0000)?, 0xDEAD_BEEF);
/// assert_eq!(mem.read_u8(0x1001_0000)?, 0xEF); // little-endian
/// assert_eq!(mem.read_u32(0x2000_0000)?, 0);   // untouched page reads zero
/// # Ok(())
/// # }
/// ```
pub struct Memory {
    pages: Vec<Option<Box<[u8; PAGE_SIZE]>>>,
    /// Bytes in pages actually allocated (for diagnostics).
    resident: usize,
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("resident_bytes", &self.resident)
            .finish()
    }
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        let mut pages = Vec::new();
        pages.resize_with(PAGES, || None);
        Memory { pages, resident: 0 }
    }

    /// Bytes of currently allocated backing store.
    pub fn resident_bytes(&self) -> usize {
        self.resident
    }

    fn check(address: u32, size: u32) -> Result<(), SimError> {
        if !address.is_multiple_of(size) {
            return Err(SimError::UnalignedAccess {
                address,
                alignment: size,
            });
        }
        if address >= USER_SPACE || USER_SPACE - address < size {
            return Err(SimError::AccessOutOfRange { address });
        }
        Ok(())
    }

    #[inline]
    fn page(&self, address: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.pages[(address >> PAGE_BITS) as usize].as_deref()
    }

    #[inline]
    fn page_mut(&mut self, address: u32) -> &mut [u8; PAGE_SIZE] {
        let index = (address >> PAGE_BITS) as usize;
        if self.pages[index].is_none() {
            self.pages[index] = Some(Box::new([0u8; PAGE_SIZE]));
            self.resident += PAGE_SIZE;
        }
        self.pages[index].as_deref_mut().expect("just allocated")
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AccessOutOfRange`] above user space.
    pub fn read_u8(&self, address: u32) -> Result<u8, SimError> {
        Self::check(address, 1)?;
        Ok(self
            .page(address)
            .map_or(0, |p| p[(address as usize) & (PAGE_SIZE - 1)]))
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AccessOutOfRange`] above user space.
    pub fn write_u8(&mut self, address: u32, value: u8) -> Result<(), SimError> {
        Self::check(address, 1)?;
        self.page_mut(address)[(address as usize) & (PAGE_SIZE - 1)] = value;
        Ok(())
    }

    /// Reads a little-endian halfword.
    ///
    /// # Errors
    ///
    /// [`SimError::UnalignedAccess`] if `address` is odd;
    /// [`SimError::AccessOutOfRange`] above user space.
    pub fn read_u16(&self, address: u32) -> Result<u16, SimError> {
        Self::check(address, 2)?;
        let offset = (address as usize) & (PAGE_SIZE - 1);
        Ok(self
            .page(address)
            .map_or(0, |p| u16::from_le_bytes([p[offset], p[offset + 1]])))
    }

    /// Writes a little-endian halfword.
    ///
    /// # Errors
    ///
    /// As [`Memory::read_u16`].
    pub fn write_u16(&mut self, address: u32, value: u16) -> Result<(), SimError> {
        Self::check(address, 2)?;
        let offset = (address as usize) & (PAGE_SIZE - 1);
        self.page_mut(address)[offset..offset + 2].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads a little-endian word.
    ///
    /// # Errors
    ///
    /// [`SimError::UnalignedAccess`] unless 4-aligned;
    /// [`SimError::AccessOutOfRange`] above user space.
    pub fn read_u32(&self, address: u32) -> Result<u32, SimError> {
        Self::check(address, 4)?;
        let offset = (address as usize) & (PAGE_SIZE - 1);
        Ok(self.page(address).map_or(0, |p| {
            u32::from_le_bytes([p[offset], p[offset + 1], p[offset + 2], p[offset + 3]])
        }))
    }

    /// Writes a little-endian word.
    ///
    /// # Errors
    ///
    /// As [`Memory::read_u32`].
    pub fn write_u32(&mut self, address: u32, value: u32) -> Result<(), SimError> {
        Self::check(address, 4)?;
        let offset = (address as usize) & (PAGE_SIZE - 1);
        self.page_mut(address)[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads a little-endian doubleword (used by `ldc1`).
    ///
    /// # Errors
    ///
    /// [`SimError::UnalignedAccess`] unless 8-aligned;
    /// [`SimError::AccessOutOfRange`] above user space.
    pub fn read_u64(&self, address: u32) -> Result<u64, SimError> {
        Self::check(address, 8)?;
        let lo = self.read_u32(address)? as u64;
        let hi = self.read_u32(address + 4)? as u64;
        Ok(hi << 32 | lo)
    }

    /// Writes a little-endian doubleword (used by `sdc1`).
    ///
    /// # Errors
    ///
    /// As [`Memory::read_u64`].
    pub fn write_u64(&mut self, address: u32, value: u64) -> Result<(), SimError> {
        Self::check(address, 8)?;
        self.write_u32(address, value as u32)?;
        self.write_u32(address + 4, (value >> 32) as u32)
    }

    /// Copies a byte slice into memory starting at `address`.
    ///
    /// # Errors
    ///
    /// [`SimError::AccessOutOfRange`] if the slice would cross the top of
    /// user space.
    pub fn write_bytes(&mut self, address: u32, bytes: &[u8]) -> Result<(), SimError> {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(address + i as u32, b)?;
        }
        Ok(())
    }

    /// Reads `len` bytes starting at `address`.
    ///
    /// # Errors
    ///
    /// [`SimError::AccessOutOfRange`] if the range crosses the top of user
    /// space.
    pub fn read_bytes(&self, address: u32, len: usize) -> Result<Vec<u8>, SimError> {
        (0..len).map(|i| self.read_u8(address + i as u32)).collect()
    }

    /// Reads a NUL-terminated string starting at `address` (for the
    /// `print_string` syscall). Invalid UTF-8 is replaced.
    ///
    /// # Errors
    ///
    /// [`SimError::AccessOutOfRange`] if the string runs past user space.
    pub fn read_cstring(&self, address: u32) -> Result<String, SimError> {
        let mut bytes = Vec::new();
        let mut cursor = address;
        loop {
            let b = self.read_u8(cursor)?;
            if b == 0 {
                break;
            }
            bytes.push(b);
            cursor += 1;
        }
        Ok(String::from_utf8_lossy(&bytes).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_and_round_trip() {
        let mut mem = Memory::new();
        assert_eq!(mem.read_u32(0x1000_0000).unwrap(), 0);
        mem.write_u64(0x1000_0000, 0x0123_4567_89AB_CDEF).unwrap();
        assert_eq!(mem.read_u64(0x1000_0000).unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(mem.read_u32(0x1000_0000).unwrap(), 0x89AB_CDEF);
        assert_eq!(mem.read_u32(0x1000_0004).unwrap(), 0x0123_4567);
        assert_eq!(mem.read_u16(0x1000_0002).unwrap(), 0x89AB);
        assert_eq!(mem.read_u8(0x1000_0007).unwrap(), 0x01);
    }

    #[test]
    fn cross_page_bytes() {
        let mut mem = Memory::new();
        let boundary = 0x1000_1000 - 2;
        mem.write_bytes(boundary, &[1, 2, 3, 4]).unwrap();
        assert_eq!(mem.read_bytes(boundary, 4).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn alignment_enforced() {
        let mut mem = Memory::new();
        assert_eq!(
            mem.read_u32(0x1000_0002),
            Err(SimError::UnalignedAccess {
                address: 0x1000_0002,
                alignment: 4
            })
        );
        assert_eq!(
            mem.write_u16(0x1000_0001, 0),
            Err(SimError::UnalignedAccess {
                address: 0x1000_0001,
                alignment: 2
            })
        );
        assert_eq!(
            mem.read_u64(0x1000_0004),
            Err(SimError::UnalignedAccess {
                address: 0x1000_0004,
                alignment: 8
            })
        );
    }

    #[test]
    fn user_space_boundary() {
        let mut mem = Memory::new();
        assert!(mem.write_u32(0x7FFF_FFFC, 7).is_ok());
        assert_eq!(
            mem.read_u32(0x8000_0000),
            Err(SimError::AccessOutOfRange {
                address: 0x8000_0000
            })
        );
        assert_eq!(
            mem.read_u8(0xFFFF_FFFF),
            Err(SimError::AccessOutOfRange {
                address: 0xFFFF_FFFF
            })
        );
    }

    #[test]
    fn cstring_reading() {
        let mut mem = Memory::new();
        mem.write_bytes(0x1001_0000, b"hello\0trailing").unwrap();
        assert_eq!(mem.read_cstring(0x1001_0000).unwrap(), "hello");
    }

    #[test]
    fn resident_accounting() {
        let mut mem = Memory::new();
        assert_eq!(mem.resident_bytes(), 0);
        mem.write_u8(0x1000_0000, 1).unwrap();
        mem.write_u8(0x1000_0001, 1).unwrap();
        assert_eq!(mem.resident_bytes(), 4096);
        mem.write_u8(0x2000_0000, 1).unwrap();
        assert_eq!(mem.resident_bytes(), 8192);
    }
}
