//! Dynamic instruction-mix statistics.
//!
//! The mix (how many fetches are ALU ops, loads, branches, FP, …) is the
//! standard way to characterise a workload; the paper's benchmarks are
//! loop-dominated DSP/numerical kernels, and the mix report makes that
//! visible (`imt profile` prints it).

use std::fmt;

use imt_isa::inst::Inst;
use imt_isa::program::Program;

/// Coarse instruction classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Integer ALU (add/sub/logic/slt/lui).
    IntAlu,
    /// Shifts.
    Shift,
    /// HI/LO multiply–divide unit (and SPECIAL2 `mul`).
    MulDiv,
    /// Memory loads (integer and FP).
    Load,
    /// Memory stores (integer and FP).
    Store,
    /// Conditional branches (including FP condition branches).
    Branch,
    /// Jumps, calls and returns.
    Jump,
    /// Double-precision arithmetic and compares.
    Fp,
    /// FP/integer register moves and conversions.
    FpMove,
    /// Syscall/break.
    System,
}

impl OpClass {
    /// All classes, in display order.
    pub const ALL: [OpClass; 10] = [
        OpClass::IntAlu,
        OpClass::Shift,
        OpClass::MulDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Jump,
        OpClass::Fp,
        OpClass::FpMove,
        OpClass::System,
    ];

    /// A short display name.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::IntAlu => "int-alu",
            OpClass::Shift => "shift",
            OpClass::MulDiv => "mul-div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Jump => "jump",
            OpClass::Fp => "fp",
            OpClass::FpMove => "fp-move",
            OpClass::System => "system",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Classifies a decoded instruction.
pub fn classify(inst: Inst) -> OpClass {
    use Inst::*;
    match inst {
        Add { .. }
        | Addu { .. }
        | Sub { .. }
        | Subu { .. }
        | And { .. }
        | Or { .. }
        | Xor { .. }
        | Nor { .. }
        | Slt { .. }
        | Sltu { .. }
        | Addi { .. }
        | Addiu { .. }
        | Slti { .. }
        | Sltiu { .. }
        | Andi { .. }
        | Ori { .. }
        | Xori { .. }
        | Lui { .. } => OpClass::IntAlu,
        Sll { .. } | Srl { .. } | Sra { .. } | Sllv { .. } | Srlv { .. } | Srav { .. } => {
            OpClass::Shift
        }
        Mult { .. }
        | Multu { .. }
        | Div { .. }
        | Divu { .. }
        | Mfhi { .. }
        | Mflo { .. }
        | Mthi { .. }
        | Mtlo { .. }
        | Mul { .. } => OpClass::MulDiv,
        Lb { .. } | Lbu { .. } | Lh { .. } | Lhu { .. } | Lw { .. } | Lwc1 { .. } | Ldc1 { .. } => {
            OpClass::Load
        }
        Sb { .. } | Sh { .. } | Sw { .. } | Swc1 { .. } | Sdc1 { .. } => OpClass::Store,
        Beq { .. }
        | Bne { .. }
        | Blez { .. }
        | Bgtz { .. }
        | Bltz { .. }
        | Bgez { .. }
        | Bc1t { .. }
        | Bc1f { .. } => OpClass::Branch,
        J { .. } | Jal { .. } | Jr { .. } | Jalr { .. } => OpClass::Jump,
        AddD { .. }
        | SubD { .. }
        | MulD { .. }
        | DivD { .. }
        | SqrtD { .. }
        | AbsD { .. }
        | NegD { .. }
        | CEqD { .. }
        | CLtD { .. }
        | CLeD { .. } => OpClass::Fp,
        MovD { .. } | CvtDW { .. } | CvtWD { .. } | Mfc1 { .. } | Mtc1 { .. } => OpClass::FpMove,
        Syscall | Break => OpClass::System,
    }
}

/// Dynamic instruction-mix counters.
///
/// ```
/// use imt_sim::stats::{InstructionMix, OpClass};
/// use imt_isa::asm::assemble;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = assemble(".text\nmain: lw $t0, 0($sp)\naddu $t1, $t0, $t0\n")?;
/// let mix = InstructionMix::from_profile(&program, &[3, 5])?;
/// assert_eq!(mix.count(OpClass::Load), 3);
/// assert_eq!(mix.count(OpClass::IntAlu), 5);
/// assert_eq!(mix.total(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstructionMix {
    counts: [u64; OpClass::ALL.len()],
}

impl InstructionMix {
    /// An empty mix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the dynamic mix from a program and its per-instruction
    /// execution profile — one static decode pass, no per-fetch cost.
    ///
    /// # Errors
    ///
    /// Returns the word's [`imt_isa::DecodeError`] if the text does not
    /// decode (cannot happen for assembler output).
    pub fn from_profile(program: &Program, profile: &[u64]) -> Result<Self, imt_isa::DecodeError> {
        let mut mix = InstructionMix::new();
        for (index, &word) in program.text.iter().enumerate() {
            let count = profile.get(index).copied().unwrap_or(0);
            if count > 0 {
                mix.observe_n(imt_isa::decode::decode(word)?, count);
            }
        }
        Ok(mix)
    }

    /// Records one executed instruction.
    pub fn observe(&mut self, inst: Inst) {
        self.observe_n(inst, 1);
    }

    /// Records `n` executions of an instruction.
    pub fn observe_n(&mut self, inst: Inst, n: u64) {
        let class = classify(inst);
        let slot = OpClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class in ALL");
        self.counts[slot] += n;
    }

    /// Executions recorded for `class`.
    pub fn count(&self, class: OpClass) -> u64 {
        let slot = OpClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class in ALL");
        self.counts[slot]
    }

    /// Total executions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Share of `class` in `[0, 1]` (0 for an empty mix).
    pub fn share(&self, class: OpClass) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.count(class) as f64 / total as f64
    }

    /// Publishes the mix into the `imt-obs` registry: one
    /// `sim.mix{label/class}` gauge per non-zero class plus
    /// `sim.mix.total`; no-op when disabled.
    pub fn publish_obs(&self, label: &str) {
        if !imt_obs::enabled() {
            return;
        }
        for &class in &OpClass::ALL {
            let count = self.count(class);
            if count > 0 {
                imt_obs::gauge_labeled("sim.mix", &format!("{label}/{}", class.name())).set(count);
            }
        }
        imt_obs::gauge_labeled("sim.mix.total", label).set(self.total());
    }

    /// Renders a percentage table, densest class first.
    pub fn render(&self) -> String {
        let mut rows: Vec<(OpClass, u64)> =
            OpClass::ALL.iter().map(|&c| (c, self.count(c))).collect();
        rows.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let mut out = String::new();
        for (class, count) in rows {
            if count == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:<8} {:>12}  {:>5.1}%\n",
                class.name(),
                count,
                self.share(class) * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imt_isa::asm::assemble;

    #[test]
    fn classification_covers_representative_instructions() {
        use imt_isa::reg::{FReg, Reg};
        let r = Reg::new(8);
        let f = FReg::new(2);
        assert_eq!(
            classify(Inst::Addu {
                rd: r,
                rs: r,
                rt: r
            }),
            OpClass::IntAlu
        );
        assert_eq!(
            classify(Inst::Sll {
                rd: r,
                rt: r,
                shamt: 1
            }),
            OpClass::Shift
        );
        assert_eq!(classify(Inst::Mult { rs: r, rt: r }), OpClass::MulDiv);
        assert_eq!(
            classify(Inst::Ldc1 {
                ft: f,
                base: r,
                offset: 0
            }),
            OpClass::Load
        );
        assert_eq!(
            classify(Inst::Sw {
                rt: r,
                base: r,
                offset: 0
            }),
            OpClass::Store
        );
        assert_eq!(
            classify(Inst::Bne {
                rs: r,
                rt: r,
                offset: 0
            }),
            OpClass::Branch
        );
        assert_eq!(classify(Inst::Jal { target: 0 }), OpClass::Jump);
        assert_eq!(
            classify(Inst::MulD {
                fd: f,
                fs: f,
                ft: f
            }),
            OpClass::Fp
        );
        assert_eq!(classify(Inst::Mtc1 { rt: r, fs: f }), OpClass::FpMove);
        assert_eq!(classify(Inst::Syscall), OpClass::System);
    }

    #[test]
    fn kernel_mix_is_loop_shaped() {
        let program = assemble(
            r#"
            .text
    main:   li $t0, 100
    loop:   lw $t1, 0($sp)
            addu $t2, $t1, $t0
            sw $t2, 0($sp)
            addiu $t0, $t0, -1
            bgtz $t0, loop
            li $v0, 10
            syscall
    "#,
        )
        .unwrap();
        let mut cpu = crate::Cpu::new(&program).unwrap();
        cpu.run(10_000).unwrap();
        let mix = InstructionMix::from_profile(&program, cpu.profile()).unwrap();
        assert_eq!(mix.total(), cpu.instructions());
        // One load, one store, one branch per iteration.
        assert_eq!(mix.count(OpClass::Load), 100);
        assert_eq!(mix.count(OpClass::Store), 100);
        assert_eq!(mix.count(OpClass::Branch), 100);
        assert!(mix.share(OpClass::IntAlu) > 0.3);
        let rendered = mix.render();
        assert!(rendered.contains("int-alu"));
        assert!(!rendered.contains("fp-move")); // zero rows are omitted
    }
}
