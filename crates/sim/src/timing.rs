//! First-order front-end timing model.
//!
//! The paper's headline hardware claim is that the restore logic — one
//! two-input gate selected by 3 control bits — adds **no stage** to the
//! fetch pipeline, in contrast to dictionary/decompression schemes whose
//! table lookup sits in the critical path. This model quantifies the
//! consequence: a deeper front end pays more bubble cycles on every
//! control-flow redirect, and an extra decode stage costs real time even
//! when every lookup hits.
//!
//! Cycle accounting (in-order, single issue):
//!
//! * 1 cycle per instruction;
//! * every *non-sequential* fetch (taken branch, jump, call, return)
//!   flushes the front end: `redirect_penalty` bubbles — the number of
//!   pipeline stages between fetch and the redirect resolution;
//! * an instruction-cache miss stalls for `miss_penalty` cycles.
//!
//! This is deliberately first-order (no branch predictor — the paper's
//! embedded cores of that era rarely had one), but it is the *same* model
//! for every configuration, so the comparisons are fair.

use crate::cpu::FetchSink;
use crate::icache::{CacheOutcome, ICache, ICacheConfig};

/// Timing parameters of a front-end configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontEndTiming {
    /// Bubble cycles per control-flow redirect (≈ front-end depth).
    pub redirect_penalty: u32,
    /// Stall cycles per instruction-cache miss.
    pub miss_penalty: u32,
    /// Optional instruction cache; `None` models a tightly-coupled memory
    /// with single-cycle access.
    pub icache: Option<ICacheConfig>,
}

impl FrontEndTiming {
    /// The paper's architecture: the restore gate lives inside the existing
    /// fetch stage, so the depth is unchanged from the baseline.
    pub fn imt_default() -> Self {
        FrontEndTiming {
            redirect_penalty: 2,
            miss_penalty: 20,
            icache: Some(ICacheConfig::SMALL_4K),
        }
    }

    /// A dictionary/decompression front end: the table lookup adds one
    /// stage, deepening every redirect by one cycle.
    pub fn dictionary_default() -> Self {
        FrontEndTiming {
            redirect_penalty: 3,
            ..Self::imt_default()
        }
    }
}

/// A fetch sink that accumulates cycles under a [`FrontEndTiming`].
///
/// ```
/// use imt_sim::timing::{FrontEndTiming, TimingSink};
/// use imt_sim::cpu::FetchSink;
///
/// let mut timing = TimingSink::new(FrontEndTiming {
///     redirect_penalty: 2,
///     miss_penalty: 0,
///     icache: None,
/// });
/// timing.on_fetch(0x0040_0000, 0);
/// timing.on_fetch(0x0040_0004, 0); // sequential: 1 cycle
/// timing.on_fetch(0x0040_0000, 0); // redirect: 1 + 2 bubbles
/// assert_eq!(timing.cycles(), 5);
/// assert_eq!(timing.redirects(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TimingSink {
    timing: FrontEndTiming,
    cache: Option<ICache>,
    cycles: u64,
    redirects: u64,
    expected_pc: Option<u32>,
    instructions: u64,
}

impl TimingSink {
    /// Creates the sink.
    pub fn new(timing: FrontEndTiming) -> Self {
        TimingSink {
            cache: timing.icache.map(ICache::new),
            timing,
            cycles: 0,
            redirects: 0,
            expected_pc: None,
            instructions: 0,
        }
    }

    /// Total cycles accumulated.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Control-flow redirects observed.
    pub fn redirects(&self) -> u64 {
        self.redirects
    }

    /// Instructions observed.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.cycles as f64 / self.instructions as f64
    }

    /// Cache hit rate, if a cache is modelled.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        self.cache.as_ref().map(ICache::hit_rate)
    }
}

impl FetchSink for TimingSink {
    fn on_fetch(&mut self, pc: u32, _word: u32) {
        self.instructions += 1;
        self.cycles += 1;
        if let Some(expected) = self.expected_pc {
            if pc != expected {
                self.redirects += 1;
                self.cycles += u64::from(self.timing.redirect_penalty);
            }
        }
        if let Some(cache) = &mut self.cache {
            if cache.access(pc) == CacheOutcome::Miss {
                self.cycles += u64::from(self.timing.miss_penalty);
            }
        }
        self.expected_pc = Some(pc.wrapping_add(4));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imt_isa::asm::assemble;

    #[test]
    fn straight_line_is_one_cpi() {
        let mut t = TimingSink::new(FrontEndTiming {
            redirect_penalty: 5,
            miss_penalty: 0,
            icache: None,
        });
        for i in 0..100u32 {
            t.on_fetch(i * 4, 0);
        }
        assert_eq!(t.cycles(), 100);
        assert_eq!(t.redirects(), 0);
        assert!((t.cpi() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deeper_front_ends_pay_more_per_loop_iteration() {
        let program = assemble(
            ".text\nmain: li $t0, 1000\nloop: addiu $t0, $t0, -1\nbgtz $t0, loop\nli $v0, 10\nsyscall\n",
        )
        .unwrap();
        let run = |penalty: u32| -> u64 {
            let mut cpu = crate::Cpu::new(&program).unwrap();
            let mut t = TimingSink::new(FrontEndTiming {
                redirect_penalty: penalty,
                miss_penalty: 0,
                icache: None,
            });
            cpu.run_with_sink(100_000, &mut t).unwrap();
            t.cycles()
        };
        let shallow = run(2);
        let deep = run(3);
        // One extra bubble per taken back edge: 999 of them.
        assert_eq!(deep - shallow, 999);
    }

    #[test]
    fn cache_misses_add_stalls() {
        let mut t = TimingSink::new(FrontEndTiming {
            redirect_penalty: 0,
            miss_penalty: 10,
            icache: Some(ICacheConfig::TINY_1K),
        });
        // 16 sequential fetches = 2 line misses on an 8-word line.
        for i in 0..16u32 {
            t.on_fetch(0x0040_0000 + i * 4, 0);
        }
        assert_eq!(t.cycles(), 16 + 2 * 10);
        assert!(t.cache_hit_rate().unwrap() > 0.8);
    }
}
