//! Execution tracing.
//!
//! A bounded recorder that hangs off the fetch hook and keeps the first
//! and most recent fetches in disassembled form — enough to answer "how
//! did it start" and "what was it doing when it stopped" without storing a
//! multi-million-entry trace.

use std::collections::VecDeque;

use imt_isa::disasm::disassemble_word;

use crate::cpu::FetchSink;

/// One traced fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Sequence number (0 = first fetch).
    pub index: u64,
    /// Fetch address.
    pub pc: u32,
    /// The machine word.
    pub word: u32,
}

impl TraceEntry {
    /// Renders one line: sequence, address, word, disassembly.
    pub fn render(&self) -> String {
        format!(
            "{:>10}  {:#010x}  {:08x}  {}",
            self.index,
            self.pc,
            self.word,
            disassemble_word(self.word)
        )
    }
}

/// Records the first `head` and last `tail` fetches of a run.
///
/// ```
/// use imt_sim::trace::TraceRecorder;
/// use imt_sim::cpu::FetchSink;
///
/// let mut trace = TraceRecorder::new(2, 2);
/// for i in 0..5u32 {
///     trace.on_fetch(0x0040_0000 + i * 4, 0);
/// }
/// assert_eq!(trace.head().len(), 2);
/// assert_eq!(trace.tail().len(), 2);
/// assert_eq!(trace.tail()[1].index, 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceRecorder {
    head_capacity: usize,
    tail_capacity: usize,
    head: Vec<TraceEntry>,
    tail: VecDeque<TraceEntry>,
    seen: u64,
}

impl TraceRecorder {
    /// Creates a recorder keeping the first `head` and last `tail`
    /// fetches.
    pub fn new(head: usize, tail: usize) -> Self {
        TraceRecorder {
            head_capacity: head,
            tail_capacity: tail,
            head: Vec::with_capacity(head),
            tail: VecDeque::with_capacity(tail + 1),
            seen: 0,
        }
    }

    /// The first fetches, in order.
    pub fn head(&self) -> &[TraceEntry] {
        &self.head
    }

    /// The most recent fetches, oldest first.
    pub fn tail(&self) -> &VecDeque<TraceEntry> {
        &self.tail
    }

    /// Total fetches observed.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Renders the trace with an elision marker if fetches were dropped.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for entry in &self.head {
            out.push_str(&entry.render());
            out.push('\n');
        }
        let tail_start = self.tail.front().map_or(self.seen, |e| e.index);
        let head_end = self.head.last().map_or(0, |e| e.index + 1);
        if tail_start > head_end {
            out.push_str(&format!(
                "       ...  ({} fetches elided)\n",
                tail_start - head_end
            ));
        }
        for entry in &self.tail {
            if entry.index >= head_end {
                out.push_str(&entry.render());
                out.push('\n');
            }
        }
        out
    }
}

impl FetchSink for TraceRecorder {
    fn on_fetch(&mut self, pc: u32, word: u32) {
        let entry = TraceEntry {
            index: self.seen,
            pc,
            word,
        };
        if self.head.len() < self.head_capacity {
            self.head.push(entry);
        } else if self.tail_capacity > 0 {
            if self.tail.len() == self.tail_capacity {
                self.tail.pop_front();
            }
            self.tail.push_back(entry);
        }
        self.seen += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imt_isa::asm::assemble;

    #[test]
    fn records_head_and_tail_with_elision() {
        let program = assemble(
            ".text\nmain: li $t0, 100\nloop: addiu $t0, $t0, -1\nbgtz $t0, loop\nli $v0, 10\nsyscall\n",
        )
        .unwrap();
        let mut cpu = crate::Cpu::new(&program).unwrap();
        let mut trace = TraceRecorder::new(3, 3);
        cpu.run_with_sink(10_000, &mut trace).unwrap();
        assert_eq!(trace.seen(), cpu.instructions());
        assert_eq!(trace.head().len(), 3);
        assert_eq!(trace.tail().len(), 3);
        let rendered = trace.render();
        assert!(rendered.contains("fetches elided"));
        assert!(rendered.contains("syscall"));
        assert!(rendered.lines().next().unwrap().contains("addiu")); // li expands
    }

    #[test]
    fn short_runs_have_no_elision() {
        let mut trace = TraceRecorder::new(10, 10);
        for i in 0..5u32 {
            trace.on_fetch(i * 4, 0);
        }
        assert!(!trace.render().contains("elided"));
        assert_eq!(trace.head().len(), 5);
        assert!(trace.tail().is_empty());
    }

    #[test]
    fn zero_capacity_recorder_counts_only() {
        let mut trace = TraceRecorder::new(0, 0);
        for i in 0..100u32 {
            trace.on_fetch(i, 0);
        }
        assert_eq!(trace.seen(), 100);
        assert!(trace.render().contains("elided"));
    }
}
