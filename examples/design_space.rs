//! Design-space exploration: sweep the block size and Transformation
//! Table capacity for one kernel and report the best operating point —
//! the §5.2/§7.2 trade-off (shorter blocks encode better but consume
//! more TT entries per loop) made concrete.
//!
//! Run with `cargo run --release --example design_space [kernel]`.

use imt::bitcode::TransformSet;
use imt::core::{encode_program, eval::evaluate, EncoderConfig};
use imt::kernels::Kernel;
use imt::sim::Cpu;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "tri".to_string());
    let kernel = Kernel::ALL
        .into_iter()
        .find(|k| k.name() == wanted)
        .ok_or_else(|| format!("unknown kernel {wanted}; pick one of mmul sor ej fft tri lu"))?;
    let spec = kernel.test_spec();
    println!("design space for {}\n", spec.name);

    let program = spec.assemble();
    let mut cpu = Cpu::new(&program)?;
    cpu.run(spec.max_steps)?;
    let profile = cpu.profile().to_vec();

    println!(
        "{:>7} {:>6} {:>12} {:>12} {:>10} {:>9}",
        "k", "TT", "baseline", "encoded", "saved(%)", "ctrl bits"
    );
    let mut best: Option<(f64, usize, usize)> = None;
    for k in 2..=8usize {
        for tt in [4usize, 8, 16, 32] {
            let config = EncoderConfig::default()
                .with_block_size(k)?
                .with_tt_capacity(tt);
            let encoded = encode_program(&program, &profile, &config)?;
            let eval = evaluate(&program, &encoded, spec.max_steps)?;
            // Hardware cost: control bits per TT entry (3 per line with the
            // canonical eight) times entries in use.
            let ctrl_bits =
                encoded.report.tt_used as u32 * 32 * TransformSet::CANONICAL_EIGHT.control_bits();
            println!(
                "{k:>7} {tt:>6} {:>12} {:>12} {:>9.1}% {:>9}",
                eval.baseline_transitions,
                eval.encoded_transitions,
                eval.reduction_percent(),
                ctrl_bits
            );
            if best.is_none_or(|(r, _, _)| eval.reduction_percent() > r) {
                best = Some((eval.reduction_percent(), k, tt));
            }
        }
    }
    let (reduction, k, tt) = best.expect("swept at least one point");
    println!("\nbest point: block size {k}, TT capacity {tt} -> {reduction:.1}% reduction");
    Ok(())
}
