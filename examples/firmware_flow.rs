//! The §7.1 firmware flow, end to end: a two-phase application (a filter
//! loop followed by a checksum loop) is profiled, both hot loops are
//! encoded into one TT/BBIT schedule, the tables are packed into the
//! bit-exact firmware image the hardware would load, unpacked again, and
//! the replay is verified against the unpacked tables.
//!
//! Run with `cargo run --example firmware_flow`.

use imt::core::tableimage::{pack_tables, unpack_tables};
use imt::core::{encode_program, eval::evaluate, EncodedProgram, EncoderConfig};
use imt::isa::asm::assemble;
use imt::sim::Cpu;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Phase 1: an IIR-ish integer filter; phase 2: a checksum sweep.
    let program = assemble(
        r#"
        .data
        .align 2
buffer: .space 2048
        .text
main:   # ---- fill the buffer with a quick integer recurrence ----
        la   $s0, buffer
        li   $s1, 512
        li   $t0, 2003
fill:   mul  $t0, $t0, $t0
        addiu $t0, $t0, 13
        sw   $t0, 0($s0)
        addiu $s0, $s0, 4
        addiu $s1, $s1, -1
        bgtz $s1, fill
        # ---- phase 1: filter 512 words in place ----
        la   $s0, buffer
        li   $s1, 512
        li   $t0, 0
phase1: lw   $t1, 0($s0)
        sra  $t2, $t0, 1
        addu $t0, $t1, $t2
        sw   $t0, 0($s0)
        addiu $s0, $s0, 4
        addiu $s1, $s1, -1
        bgtz $s1, phase1
        # ---- phase 2: fold the buffer into a checksum ----
        la   $s0, buffer
        li   $s1, 512
        li   $t0, 0
phase2: lw   $t1, 0($s0)
        xor  $t0, $t0, $t1
        sll  $t3, $t0, 1
        srl  $t4, $t0, 31
        or   $t0, $t3, $t4
        addiu $s0, $s0, 4
        addiu $s1, $s1, -1
        bgtz $s1, phase2
        move $a0, $t0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#,
    )?;

    // Profile, then encode BOTH hot loops into one schedule — the BBIT
    // holds one entry per loop body block, so a single table set covers
    // the whole application (the paper's multi-loop case).
    let mut cpu = Cpu::new(&program)?;
    cpu.run(1_000_000)?;
    let config = EncoderConfig::default().with_max_loops(2);
    let encoded = encode_program(&program, cpu.profile(), &config)?;
    println!(
        "schedule: {} encoded blocks across both phases, TT {} entries, BBIT {} entries",
        encoded.report.encoded.len(),
        encoded.report.tt_used,
        encoded.report.bbit_used
    );

    // Pack the firmware image that would ride along with the code upload.
    let image = pack_tables(&encoded)?;
    println!("packed table image: {} bytes", image.len());

    // The loader side: parse the image back and rebuild the hardware
    // state. A real chip would shift these bits straight into the SRAMs.
    let unpacked = unpack_tables(&image, config.transforms())?;
    assert_eq!(unpacked.tt, encoded.tt);
    assert_eq!(unpacked.bbit, encoded.bbit);
    let rebuilt = EncodedProgram {
        tt: unpacked.tt,
        bbit: unpacked.bbit,
        ..encoded
    };

    // Replay against the unpacked tables: decoder exact, both loops save.
    let eval = evaluate(&program, &rebuilt, 1_000_000)?;
    assert_eq!(eval.decode_mismatches, 0);
    println!(
        "verified replay through unpacked tables: {} -> {} transitions ({:.1}% reduction)",
        eval.baseline_transitions,
        eval.encoded_transitions,
        eval.reduction_percent()
    );
    println!("program output: {:?}", eval.stdout.trim_end());
    Ok(())
}
