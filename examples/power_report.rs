//! Power report for a paper benchmark: per-line transition profile and
//! switching-energy estimates for on-chip and off-chip instruction
//! memories.
//!
//! Run with `cargo run --release --example power_report [kernel]`.

use imt::core::{encode_program, eval::evaluate, EncoderConfig};
use imt::kernels::Kernel;
use imt::sim::bus::EnergyModel;
use imt::sim::Cpu;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "fft".to_string());
    let kernel = Kernel::ALL
        .into_iter()
        .find(|k| k.name() == wanted)
        .ok_or_else(|| format!("unknown kernel {wanted}; pick one of mmul sor ej fft tri lu"))?;

    // Test-scale instances keep this example snappy even in debug builds.
    let spec = kernel.test_spec();
    println!("kernel: {}", spec.name);
    let program = spec.assemble();
    let mut cpu = Cpu::new(&program)?;
    cpu.run(spec.max_steps)?;

    let encoded = encode_program(&program, cpu.profile(), &EncoderConfig::default())?;
    let eval = evaluate(&program, &encoded, spec.max_steps)?;
    assert_eq!(eval.decode_mismatches, 0);

    println!(
        "\nfetches: {}   transitions: {} -> {} ({:.1}% reduction)\n",
        eval.fetches,
        eval.baseline_transitions,
        eval.encoded_transitions,
        eval.reduction_percent()
    );

    // Per-line profile: instruction encodings make low lines (immediates)
    // busier than the opcode lines at the top.
    println!("per-line transitions (baseline -> encoded):");
    for (lane, (&before, &after)) in eval
        .per_lane_baseline
        .iter()
        .zip(&eval.per_lane_encoded)
        .enumerate()
    {
        let bar = "#"
            .repeat((before * 40 / eval.per_lane_baseline.iter().max().unwrap().max(&1)) as usize);
        println!("  line {lane:>2}: {before:>8} -> {after:>8}  {bar}");
    }

    // Energy at the two extremes the paper motivates: long on-die wires
    // vs off-chip flash through the package pins.
    println!("\nswitching energy of the instruction bus:");
    for (name, model) in [
        ("on-chip", EnergyModel::ON_CHIP),
        ("off-chip", EnergyModel::OFF_CHIP),
    ] {
        let before = model.energy_joules(eval.baseline_transitions);
        let after = model.energy_joules(eval.encoded_transitions);
        println!(
            "  {name:<8} {:>10.3} uJ -> {:>10.3} uJ (saved {:.3} uJ)",
            before * 1e6,
            after * 1e6,
            (before - after) * 1e6
        );
    }
    Ok(())
}
