//! Quickstart: encode a tight DSP-style loop and measure the bus savings.
//!
//! Run with `cargo run --example quickstart`.

use imt::core::{encode_program, eval::evaluate, EncoderConfig};
use imt::isa::asm::assemble;
use imt::sim::Cpu;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small fixed-point FIR-like loop: multiply-accumulate over a window.
    let program = assemble(
        r#"
        .data
        .align 2
coeffs: .word 3, -5, 7, -9, 11, -13, 17, -19
samples: .space 4096
        .text
main:   li   $s0, 1000            # outer repetitions
outer:  la   $t0, coeffs
        la   $t1, samples
        li   $t2, 8               # taps
        li   $t3, 0               # accumulator
mac:    lw   $t4, 0($t0)
        lw   $t5, 0($t1)
        mul  $t6, $t4, $t5
        addu $t3, $t3, $t6
        addiu $t0, $t0, 4
        addiu $t1, $t1, 4
        addiu $t2, $t2, -1
        bgtz $t2, mac
        addiu $s0, $s0, -1
        bgtz $s0, outer
        move $a0, $t3
        li   $v0, 1               # print the accumulator
        syscall
        li   $v0, 11
        li   $a0, 10
        syscall
        li   $v0, 10              # exit
        syscall
"#,
    )?;

    // Step 1 — profile: run once, counting executions per instruction.
    let mut cpu = Cpu::new(&program)?;
    cpu.run(10_000_000)?;
    println!(
        "profiled {} instructions, program printed {:?}",
        cpu.instructions(),
        cpu.stdout()
    );

    // Step 2 — encode the hot loop with the paper's default operating
    // point: 5-bit blocks, the canonical eight transformations, a
    // 16-entry Transformation Table.
    let config = EncoderConfig::default();
    let encoded = encode_program(&program, cpu.profile(), &config)?;
    println!(
        "encoded {} basic block(s) using {} TT entries and {} BBIT entries",
        encoded.report.encoded.len(),
        encoded.report.tt_used,
        encoded.report.bbit_used
    );

    // Step 3 — replay the real execution against the encoded image,
    // decoding every fetch through the hardware model.
    let eval = evaluate(&program, &encoded, 10_000_000)?;
    assert_eq!(eval.decode_mismatches, 0, "the fetch decoder must be exact");
    println!(
        "bus transitions: {} -> {} ({:.1}% reduction over {} fetches)",
        eval.baseline_transitions,
        eval.encoded_transitions,
        eval.reduction_percent(),
        eval.fetches
    );
    Ok(())
}
