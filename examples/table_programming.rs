//! Firmware view: dump the Transformation Table and BBIT contents a
//! loader (or the pre-loop setup code of §7.1) would program into the
//! fetch hardware, alongside the encoded memory image diff.
//!
//! Run with `cargo run --example table_programming`.

use imt::core::{encode_program, EncoderConfig};
use imt::isa::asm::assemble;
use imt::isa::disasm::disassemble_word;
use imt::sim::Cpu;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(
        r#"
        .text
main:   li   $s0, 100
loop:   andi $t0, $s0, 3
        xor  $t1, $t1, $t0
        sll  $t2, $t1, 2
        or   $t3, $t2, $s0
        addiu $s0, $s0, -1
        bgtz $s0, loop
        li   $v0, 10
        syscall
"#,
    )?;
    let mut cpu = Cpu::new(&program)?;
    cpu.run(100_000)?;
    let encoded = encode_program(&program, cpu.profile(), &EncoderConfig::default())?;

    println!("== BBIT (basic block identification table) ==");
    for entry in encoded.bbit.entries() {
        println!("  pc {:#010x} -> TT[{}]", entry.pc, entry.tt_index);
    }

    println!("\n== TT (transformation table, one tau per bus line) ==");
    for (i, entry) in encoded.tt.entries().iter().enumerate() {
        let lanes: Vec<&str> = entry
            .lane_transforms
            .iter()
            .map(|t| t.ascii_name())
            .collect();
        println!(
            "  TT[{i}]: E={} covers={} lanes[0..8]={:?}",
            entry.end as u8,
            entry.covers,
            &lanes[..8]
        );
    }

    println!("\n== memory image (original vs stored) ==");
    for (i, (&orig, &stored)) in program.text.iter().zip(&encoded.text).enumerate() {
        let pc = program.address_of_index(i);
        let marker = if orig == stored { " " } else { "*" };
        println!(
            "{marker} {pc:#010x}  {orig:08x} -> {stored:08x}   {}",
            disassemble_word(orig)
        );
    }
    println!("\nlines marked * are stored encoded; the fetch decoder restores them.");
    Ok(())
}
