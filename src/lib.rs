//! # imt — application-specific instruction memory transformations
//!
//! A complete, from-scratch reproduction of *“Power Efficiency through
//! Application-Specific Instruction Memory Transformations”* (P. Petrov and
//! A. Orailoglu, DATE 2003): an encoding technique that stores a program's
//! hot loops in a transformed form with fewer bit transitions on the
//! instruction-memory data bus, and restores the original instructions in
//! the fetch stage with a single reprogrammable two-input gate per bus
//! line.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`bitcode`] — the transformation algebra, optimal block codec, code
//!   tables (the paper's Figures 2–4), and chained stream encoding (§6);
//! * [`isa`] — a 32-bit MIPS-like instruction set with assembler and
//!   disassembler (the SimpleScalar substitute);
//! * [`sim`] — the in-order functional simulator with bus-transition
//!   monitoring and an energy model;
//! * `cfg` ([`imt_cfg`]) — control-flow recovery, dominators, natural loops and
//!   profile-driven hot-loop ranking;
//! * [`core`] — the paper's contribution: the encoding pipeline, the
//!   TT/BBIT fetch-hardware model, and the verified dynamic evaluation;
//! * [`baselines`] — bus-invert, T0 and Gray-code encodings for
//!   comparison;
//! * [`kernels`] — the six benchmark kernels (mmul, sor, ej, fft, tri,
//!   lu) as assembly programs with host golden models;
//! * [`obs`] — the zero-dependency observability layer: metrics registry,
//!   spans, and `imt-obs/v1` run manifests (`IMT_OBS=report|json`).
//!
//! ## End-to-end example
//!
//! ```
//! use imt::core::{encode_program, eval::evaluate, EncoderConfig};
//! use imt::isa::asm::assemble;
//! use imt::sim::Cpu;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(r#"
//!         .text
//! main:   li   $t0, 1000
//! loop:   xor  $t1, $t1, $t0
//!         sll  $t2, $t1, 3
//!         addiu $t0, $t0, -1
//!         bgtz $t0, loop
//!         li   $v0, 10
//!         syscall
//! "#)?;
//!
//! // 1. Profile the application.
//! let mut cpu = Cpu::new(&program)?;
//! cpu.run(1_000_000)?;
//!
//! // 2. Encode its hot loop for the default 5-bit blocks / 8 transforms.
//! let encoded = encode_program(&program, cpu.profile(), &EncoderConfig::default())?;
//!
//! // 3. Replay through the fetch-hardware model and measure.
//! let eval = evaluate(&program, &encoded, 1_000_000)?;
//! assert_eq!(eval.decode_mismatches, 0);
//! assert!(eval.reduction_percent() > 0.0);
//! # Ok(())
//! # }
//! ```

pub use imt_baselines as baselines;
pub use imt_bitcode as bitcode;
pub use imt_cfg as cfg;
pub use imt_core as core;
pub use imt_isa as isa;
pub use imt_kernels as kernels;
pub use imt_obs as obs;
pub use imt_sim as sim;
