//! Differential oracle suite for the encoder arena.
//!
//! Three layers of evidence that every competing scheme is scored
//! honestly:
//!
//! 1. **Codec round-trips** (proptest): on arbitrary words, each fast
//!    codec path restores exactly what it stored and agrees bit-for-bit
//!    with its in-crate naive oracle.
//! 2. **Replay ≡ full simulation**: for every memoryless scheme, on
//!    every paper kernel (TT at block sizes 4–7), the closed-form
//!    profile replay produces the *same* [`SchemeEvaluation`] as
//!    actually running the program — the replay shortcut buys time, not
//!    different numbers.
//! 3. **Cycle-state refusal**: bus-invert depends on per-cycle bus
//!    history a weighted edge multiset cannot carry; the replay path
//!    must refuse it with a typed error and the auto router must send
//!    it to full simulation.

use imt::bitcode::businvert::{BusInvertNaive, BusInvertState};
use imt::bitcode::gray::{gray_image, gray_word, gray_word_naive, ungray_word, ungray_word_naive};
use imt::bitcode::lowweight::{low_weight_codewords, low_weight_codewords_naive, LowWeightBook};
use imt::core::eval::{EvalNeeds, EvalPath, FullSimReason};
use imt::core::scheme::{
    build_scheme, evaluate_scheme_auto, evaluate_scheme_full, evaluate_scheme_replay, SchemeSpec,
};
use imt::core::{CoreError, EncoderConfig};
use imt::kernels::Kernel;
use imt::sim::edge::FetchEdgeProfile;
use proptest::prelude::*;

proptest! {
    /// Gray coding round-trips any word, and the fast paths agree with
    /// the naive shift-fold oracles.
    #[test]
    fn gray_roundtrips_and_matches_naive(words in proptest::collection::vec(any::<u32>(), 1..64)) {
        for &word in &words {
            let g = gray_word(word);
            prop_assert_eq!(g, gray_word_naive(word));
            prop_assert_eq!(ungray_word(g), word);
            prop_assert_eq!(ungray_word_naive(g), word);
        }
        let image = gray_image(&words);
        for (stored, &orig) in image.iter().zip(&words) {
            prop_assert_eq!(ungray_word(*stored), orig);
        }
    }

    /// A codebook built from arbitrary text round-trips every word of
    /// that text — CAM hits and passthrough misses alike — and the fast
    /// encode/decode agree with the linear-scan oracles.
    #[test]
    fn lowweight_roundtrips_and_matches_naive(
        text in proptest::collection::vec(any::<u32>(), 1..64),
        counts in proptest::collection::vec(1u64..1000, 1..64),
        entries in 1usize..24,
    ) {
        let per_index: Vec<u64> =
            text.iter().enumerate().map(|(i, _)| counts[i % counts.len()]).collect();
        let book = LowWeightBook::build(&text, &per_index, entries);
        for &word in &text {
            let stored = book.encode_word(word);
            prop_assert_eq!(stored, book.encode_word_naive(word));
            prop_assert_eq!(book.decode_word(stored), word);
            prop_assert_eq!(book.decode_word_naive(stored), word);
        }
    }

    /// The Gosper-walk codeword generator agrees with the recursive
    /// oracle for any forbidden set.
    #[test]
    fn lowweight_codewords_match_naive(
        forbidden in proptest::collection::vec(any::<u32>(), 0..40),
        count in 0usize..40,
    ) {
        prop_assert_eq!(
            low_weight_codewords(&forbidden, count),
            low_weight_codewords_naive(&forbidden, count)
        );
    }

    /// Bus-invert restores every word it drives, and the incremental
    /// state machine agrees with the naive recount at each step.
    #[test]
    fn businvert_roundtrips_and_matches_naive(
        words in proptest::collection::vec(any::<u32>(), 1..128),
    ) {
        let mut fast = BusInvertState::new();
        let mut naive = BusInvertNaive::new();
        for &word in &words {
            let a = fast.drive(word);
            let b = naive.drive(word);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(BusInvertState::restore(&a), word);
        }
    }
}

/// Profile one kernel at test scale.
fn kernel_fixture(kernel: Kernel) -> (imt::isa::Program, FetchEdgeProfile, u64) {
    let spec = kernel.test_spec();
    let program = spec.assemble();
    let profile =
        FetchEdgeProfile::record(&program, spec.max_steps).expect("kernel profiles cleanly");
    (program, profile, spec.max_steps)
}

/// Replay ≡ full simulation for every memoryless scheme on every paper
/// kernel; TT/BBIT swept over the paper's block sizes (the only scheme
/// `k` parameterises).
#[test]
fn replay_equals_full_sim_for_every_memoryless_scheme_on_every_kernel() {
    for &kernel in &Kernel::ALL {
        let (program, profile, max_steps) = kernel_fixture(kernel);
        let per_index = profile.per_index_counts();
        let mut cases: Vec<(String, SchemeSpec, EncoderConfig)> = vec![
            ("gray".into(), SchemeSpec::Gray, EncoderConfig::default()),
            (
                "lowweight".into(),
                SchemeSpec::LowWeight {
                    entries: SchemeSpec::DEFAULT_LOW_WEIGHT_ENTRIES,
                },
                EncoderConfig::default(),
            ),
        ];
        for k in 4..=7 {
            cases.push((
                format!("tt-k{k}"),
                SchemeSpec::TtBbit,
                EncoderConfig::default()
                    .with_block_size(k)
                    .expect("paper block sizes are valid"),
            ));
        }
        for (label, spec, config) in cases {
            let mut scheme = build_scheme(spec, &program, &per_index, &config)
                .unwrap_or_else(|e| panic!("{kernel:?}/{label}: build failed: {e}"));
            let replayed = evaluate_scheme_replay(scheme.as_ref(), &program, &profile)
                .unwrap_or_else(|e| panic!("{kernel:?}/{label}: replay failed: {e}"));
            let full = evaluate_scheme_full(scheme.as_mut(), &program, max_steps)
                .unwrap_or_else(|e| panic!("{kernel:?}/{label}: full sim failed: {e}"));
            assert_eq!(
                replayed, full,
                "{kernel:?}/{label}: replay diverged from full simulation"
            );
            assert_eq!(replayed.decode_mismatches, 0, "{kernel:?}/{label}");
        }
    }
}

/// The stateless replay path refuses the cycle-state scheme with a typed
/// error on every kernel, and the auto router sends it to full
/// simulation for the same reason.
#[test]
fn cycle_state_scheme_is_refused_by_replay_on_every_kernel() {
    for &kernel in &Kernel::ALL {
        let (program, profile, max_steps) = kernel_fixture(kernel);
        let per_index = profile.per_index_counts();
        let mut scheme = build_scheme(
            SchemeSpec::BusInvert,
            &program,
            &per_index,
            &EncoderConfig::default(),
        )
        .expect("bus-invert build is total");
        let refused = evaluate_scheme_replay(scheme.as_ref(), &program, &profile);
        assert!(
            matches!(refused, Err(CoreError::ReplayInfeasible { .. })),
            "{kernel:?}: cycle-state replay must be ReplayInfeasible, got {refused:?}"
        );
        let (evaluation, path) = evaluate_scheme_auto(
            scheme.as_mut(),
            &program,
            max_steps,
            Some(&profile),
            EvalNeeds::transitions_only(),
        )
        .unwrap_or_else(|e| panic!("{kernel:?}: auto eval failed: {e}"));
        assert_eq!(
            path,
            EvalPath::FullSim(FullSimReason::ReplayInfeasible),
            "{kernel:?}: the auto router must route bus-invert to full simulation"
        );
        assert_eq!(evaluation.decode_mismatches, 0, "{kernel:?}");
    }
}
