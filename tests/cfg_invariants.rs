//! Property tests for the control-flow analyses, driven by randomly
//! generated structured programs.

use imt::cfg::{block_weights, hot_loops, Cfg, Terminator};
use imt::isa::asm::assemble;
use imt::isa::Program;
use proptest::prelude::*;

/// Recursively renders a random structured body: arithmetic statements,
/// if/else diamonds, and counted loops, with unique labels.
fn render(structure: &[Stmt], label_counter: &mut usize, depth: usize, out: &mut String) {
    for stmt in structure {
        match stmt {
            Stmt::Arith(op) => {
                let line = match op % 4 {
                    0 => "        xor $t0, $t0, $t1\n",
                    1 => "        addu $t1, $t1, $t2\n",
                    2 => "        sll $t2, $t0, 2\n",
                    _ => "        nor $t3, $t1, $t0\n",
                };
                out.push_str(line);
            }
            Stmt::If(then_body, else_body) => {
                let id = *label_counter;
                *label_counter += 1;
                out.push_str(&format!("        beq $t0, $zero, else_{id}\n"));
                render(then_body, label_counter, depth + 1, out);
                out.push_str(&format!("        b endif_{id}\nelse_{id}:\n"));
                render(else_body, label_counter, depth + 1, out);
                out.push_str(&format!("endif_{id}:\n"));
            }
            Stmt::Loop(count, body) => {
                let id = *label_counter;
                *label_counter += 1;
                // Use a depth-specific counter register so nesting works.
                let reg = format!("$s{}", depth % 8);
                out.push_str(&format!("        li {reg}, {count}\nloop_{id}:\n"));
                render(body, label_counter, depth + 1, out);
                out.push_str(&format!(
                    "        addiu {reg}, {reg}, -1\n        bgtz {reg}, loop_{id}\n"
                ));
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Stmt {
    Arith(u8),
    If(Vec<Stmt>, Vec<Stmt>),
    Loop(u8, Vec<Stmt>),
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let leaf = any::<u8>().prop_map(Stmt::Arith);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                proptest::collection::vec(inner.clone(), 1..4),
                proptest::collection::vec(inner.clone(), 1..4)
            )
                .prop_map(|(a, b)| Stmt::If(a, b)),
            (1u8..6, proptest::collection::vec(inner, 1..4)).prop_map(|(n, b)| Stmt::Loop(n, b)),
        ]
    })
}

fn random_program(body: &[Stmt]) -> Program {
    let mut source = String::from(".text\nmain:\n");
    let mut label_counter = 0;
    render(body, &mut label_counter, 0, &mut source);
    source.push_str("        li $v0, 10\n        syscall\n");
    assemble(&source).expect("generated program must assemble")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn blocks_partition_the_text(body in proptest::collection::vec(stmt_strategy(), 1..6)) {
        let program = random_program(&body);
        let cfg = Cfg::build(&program).unwrap();
        // Exact cover of the text by blocks, in order.
        let mut cursor = 0usize;
        for block in cfg.blocks() {
            prop_assert_eq!(block.start, cursor);
            prop_assert!(block.len > 0);
            for i in block.range() {
                prop_assert_eq!(cfg.block_at(i), block.id);
            }
            cursor = block.end();
        }
        prop_assert_eq!(cursor, program.text.len());
        // Successor ids are valid; only terminal shapes allow empty
        // successor lists.
        for block in cfg.blocks() {
            for s in &block.successors {
                prop_assert!(s.0 < cfg.blocks().len());
            }
            if block.successors.is_empty() {
                prop_assert!(matches!(
                    block.terminator,
                    Terminator::Return | Terminator::End
                ));
            }
        }
    }

    #[test]
    fn dominators_agree_with_brute_force(body in proptest::collection::vec(stmt_strategy(), 1..5)) {
        let program = random_program(&body);
        let cfg = Cfg::build(&program).unwrap();
        let idom = cfg.immediate_dominators();

        // Brute force: a dominates b iff removing a disconnects b from
        // the entry.
        let n = cfg.blocks().len();
        let reachable_without = |skip: Option<usize>| -> Vec<bool> {
            let mut seen = vec![false; n];
            if skip == Some(cfg.entry().0) {
                return seen;
            }
            let mut stack = vec![cfg.entry()];
            seen[cfg.entry().0] = true;
            while let Some(node) = stack.pop() {
                for &s in &cfg.blocks()[node.0].successors {
                    if Some(s.0) != skip && !seen[s.0] {
                        seen[s.0] = true;
                        stack.push(s);
                    }
                }
            }
            seen
        };
        let reachable = reachable_without(None);
        for b in 0..n {
            if !reachable[b] {
                prop_assert_eq!(idom[b], None, "unreachable block {} has an idom", b);
                continue;
            }
            if b == cfg.entry().0 {
                continue;
            }
            let parent = idom[b].expect("reachable non-entry block needs an idom");
            // The immediate dominator must dominate: b unreachable without it.
            let without = reachable_without(Some(parent.0));
            prop_assert!(!without[b], "idom {} does not dominate {}", parent.0, b);
        }
    }

    #[test]
    fn loop_invariants(body in proptest::collection::vec(stmt_strategy(), 1..5)) {
        let program = random_program(&body);
        let cfg = Cfg::build(&program).unwrap();
        let idom = cfg.immediate_dominators();
        for l in cfg.natural_loops() {
            prop_assert!(l.body.contains(&l.header));
            for (latch, header) in &l.back_edges {
                prop_assert_eq!(*header, l.header);
                prop_assert!(l.body.contains(latch));
                prop_assert!(
                    cfg.blocks()[latch.0].successors.contains(header),
                    "back edge source must branch to the header"
                );
            }
            // The header dominates every body block.
            for b in &l.body {
                prop_assert!(cfg.dominates(&idom, l.header, *b));
            }
        }
    }

    #[test]
    fn profile_weights_are_consistent(body in proptest::collection::vec(stmt_strategy(), 1..4)) {
        let program = random_program(&body);
        let mut cpu = imt::sim::Cpu::new(&program).unwrap();
        cpu.run(5_000_000).unwrap();
        let cfg = Cfg::build(&program).unwrap();
        let weights = block_weights(&cfg, cpu.profile());
        prop_assert_eq!(weights.iter().sum::<u64>(), cpu.instructions());
        let hot = hot_loops(&cfg, cpu.profile());
        for h in &hot {
            prop_assert!(h.fetch_share >= 0.0 && h.fetch_share <= 1.0);
        }
    }
}
