//! End-to-end integration: the six paper kernels through the full
//! profile → encode → evaluate pipeline, across crates.

use imt::core::{encode_program, eval::evaluate, EncoderConfig};
use imt::kernels::Kernel;
use imt::sim::Cpu;

/// Runs one kernel spec through the whole stack and returns the measured
/// reduction.
fn pipeline_reduction(spec: &imt::kernels::KernelSpec, config: &EncoderConfig) -> f64 {
    let program = spec.assemble();
    let mut cpu = Cpu::new(&program).expect("load");
    cpu.run(spec.max_steps).expect("profiling run");
    assert_eq!(
        cpu.stdout(),
        spec.expected_output,
        "{}: golden mismatch",
        spec.name
    );

    let encoded = encode_program(&program, cpu.profile(), config).expect("encode");
    let eval = evaluate(&program, &encoded, spec.max_steps).expect("evaluate");
    assert_eq!(
        eval.decode_mismatches, 0,
        "{}: decoder corrupted the stream",
        spec.name
    );
    assert_eq!(
        eval.stdout, spec.expected_output,
        "{}: behaviour changed",
        spec.name
    );
    assert!(
        eval.encoded_transitions <= eval.baseline_transitions,
        "{}: encoding increased transitions",
        spec.name
    );
    eval.reduction_percent()
}

#[test]
fn all_kernels_all_block_sizes_verify_and_reduce() {
    for kernel in Kernel::ALL {
        let spec = kernel.test_spec();
        for k in 4..=7 {
            let config = EncoderConfig::default()
                .with_block_size(k)
                .expect("valid size");
            let reduction = pipeline_reduction(&spec, &config);
            assert!(
                reduction > 0.0,
                "{} at k={k}: no reduction at all ({reduction:.2}%)",
                spec.name
            );
        }
    }
}

#[test]
fn paper_scale_fft_meets_expectations() {
    // The paper-scale fft is small enough for an integration test and
    // exercises the complete 256-point pipeline with the twiddle ROM.
    let spec = Kernel::Fft.paper_spec();
    let reduction = pipeline_reduction(&spec, &EncoderConfig::default());
    assert!(reduction > 15.0, "fft-256 reduced only {reduction:.1}%");
}

#[test]
fn both_overlap_semantics_agree_on_correctness() {
    use imt::bitcode::block::OverlapHistory;
    let spec = Kernel::Sor.test_spec();
    for overlap in [OverlapHistory::Stored, OverlapHistory::Decoded] {
        let config = EncoderConfig::default().with_overlap(overlap);
        let reduction = pipeline_reduction(&spec, &config);
        assert!(reduction > 0.0, "{overlap:?}: {reduction:.2}%");
    }
}

#[test]
fn widened_transform_set_never_hurts() {
    use imt::bitcode::TransformSet;
    let spec = Kernel::Lu.test_spec();
    let eight = pipeline_reduction(&spec, &EncoderConfig::default());
    let sixteen = pipeline_reduction(
        &spec,
        &EncoderConfig::default()
            .with_transforms(TransformSet::ALL_SIXTEEN)
            .unwrap(),
    );
    assert!(
        sixteen >= eight - 1e-9,
        "16 transforms did worse: {sixteen} vs {eight}"
    );
}

#[test]
fn identity_only_configuration_is_a_no_op() {
    use imt::bitcode::TransformSet;
    let spec = Kernel::Tri.test_spec();
    let config = EncoderConfig::default()
        .with_transforms(TransformSet::IDENTITY_ONLY)
        .unwrap();
    let program = spec.assemble();
    let mut cpu = Cpu::new(&program).expect("load");
    cpu.run(spec.max_steps).expect("run");
    let encoded = encode_program(&program, cpu.profile(), &config).expect("encode");
    // With only the identity allowed, no block can save anything, so the
    // selector demotes everything and the image is untouched.
    assert_eq!(encoded.text, program.text);
    assert!(encoded.report.encoded.is_empty());
}

#[test]
fn baselines_ride_the_same_replay() {
    use imt::baselines::{BusInvert, T0};
    use imt::sim::cpu::Tee;
    let spec = Kernel::Ej.test_spec();
    let program = spec.assemble();
    let mut cpu = Cpu::new(&program).expect("load");
    let mut businv = BusInvert::new(32);
    let mut t0 = T0::new(4);
    let mut tee = Tee(&mut businv, &mut t0);
    cpu.run_with_sink(spec.max_steps, &mut tee).expect("run");
    assert!(businv.total_transitions() <= businv.raw_transitions());
    assert!(t0.total_transitions() < t0.raw_transitions());
}
