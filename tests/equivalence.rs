//! Equivalence tests for the fast paths: the memoized codebook, the
//! packed bit-lane representation, the parallel fan-outs, and the
//! closed-form replay evaluator must each be **bit-identical** to the
//! reference implementation they replace — the speedups are not allowed
//! to change a single artifact byte.

use imt::bitcode::bits::BitSeq;
use imt::bitcode::block::{
    encode_block_constrained, encode_block_constrained_exhaustive, BlockContext, OverlapHistory,
};
use imt::bitcode::lanes::encode_words;
use imt::bitcode::packed::PackedSeq;
use imt::bitcode::stream::{ChainStrategy, StreamCodec, StreamCodecConfig};
use imt::bitcode::{Transform, TransformSet};
use proptest::prelude::*;

fn overlap_strategy() -> impl Strategy<Value = OverlapHistory> {
    prop_oneof![Just(OverlapHistory::Stored), Just(OverlapHistory::Decoded)]
}

fn transform_set_strategy() -> impl Strategy<Value = TransformSet> {
    prop_oneof![
        Just(TransformSet::CANONICAL_EIGHT),
        Just(TransformSet::ALL_SIXTEEN),
        Just(TransformSet::IDENTITY_ONLY),
        // Any random set containing the identity is a valid universe.
        any::<u16>().prop_map(|mask| TransformSet::from_mask(mask).with(Transform::IDENTITY)),
    ]
}

fn context_strategy() -> impl Strategy<Value = BlockContext> {
    prop_oneof![
        Just(BlockContext::Initial),
        (any::<bool>(), any::<bool>(), overlap_strategy()).prop_map(
            |(prev_stored, prev_original, history)| BlockContext::Chained {
                prev_stored,
                prev_original,
                history,
            }
        ),
    ]
}

fn final_bit_strategy() -> impl Strategy<Value = Option<bool>> {
    prop_oneof![Just(None), Just(Some(false)), Just(Some(true))]
}

proptest! {
    /// (a) The memoized codebook answers every constrained block query
    /// exactly as the exhaustive solver does, across block sizes 2..=7,
    /// all context shapes, all final-bit constraints and arbitrary
    /// transform universes.
    #[test]
    fn codebook_matches_exhaustive_solver(
        bits in proptest::collection::vec(any::<bool>(), 2..=7),
        context in context_strategy(),
        final_bit in final_bit_strategy(),
        set in transform_set_strategy(),
    ) {
        let via_codebook = encode_block_constrained(&bits, context, set, final_bit);
        let via_search = encode_block_constrained_exhaustive(&bits, context, set, final_bit);
        prop_assert_eq!(via_codebook, via_search);
    }

    /// (b) The packed greedy encoder is bit-identical to the `Vec<bool>`
    /// reference encoder — stored bits, block schedule and transition
    /// accounting — and both round-trip through the decoder.
    #[test]
    fn packed_stream_matches_bool_reference(
        bits in proptest::collection::vec(any::<bool>(), 0..300),
        k in 2usize..=9,
        overlap in overlap_strategy(),
        set in transform_set_strategy(),
    ) {
        let original = BitSeq::from(bits);
        let codec = StreamCodec::new(
            StreamCodecConfig::block_size(k).unwrap()
                .with_overlap(overlap)
                .with_transforms(set)
                .unwrap(),
        );
        let reference = codec.encode_reference(&original);
        let packed = codec.encode_packed(&PackedSeq::from_bitseq(&original));
        prop_assert_eq!(&packed, &reference);
        prop_assert_eq!(codec.decode(&packed).unwrap(), original);
    }

    /// The packed strategy dispatch also holds under the optimal DP
    /// chain strategy (which routes through the codebook-backed
    /// constrained solver rather than the packed greedy loop).
    #[test]
    fn packed_stream_matches_reference_under_optimal_strategy(
        bits in proptest::collection::vec(any::<bool>(), 0..120),
        k in 2usize..=7,
    ) {
        let original = BitSeq::from(bits);
        let codec = StreamCodec::new(
            StreamCodecConfig::block_size(k).unwrap()
                .with_strategy(ChainStrategy::Optimal),
        );
        let reference = codec.encode_reference(&original);
        let packed = codec.encode_packed(&PackedSeq::from_bitseq(&original));
        prop_assert_eq!(&packed, &reference);
        prop_assert_eq!(codec.decode(&packed).unwrap(), original);
    }

    /// `PackedSeq` is a faithful bit container: round trip, random access
    /// and transition counts all agree with the `Vec<bool>` view.
    #[test]
    fn packed_seq_is_faithful(
        bits in proptest::collection::vec(any::<bool>(), 0..200),
        window in (0usize..200, 1usize..=16),
    ) {
        let packed: PackedSeq = bits.iter().copied().collect();
        let seq = BitSeq::from(bits.clone());
        prop_assert_eq!(packed.len(), bits.len());
        prop_assert_eq!(packed.to_bitseq(), seq.clone());
        prop_assert_eq!(packed.transitions(), seq.transitions());
        for (i, &bit) in bits.iter().enumerate() {
            prop_assert_eq!(packed.get(i), bit);
        }
        // extract() agrees with manual bit assembly wherever it fits.
        let (start, len) = window;
        if start + len <= bits.len() {
            let expected = bits[start..start + len]
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i));
            prop_assert_eq!(packed.extract(start, len), expected);
        }
    }
}

/// Forces the `IMT_THREADS` override for the duration of a closure.
///
/// The variable is read at every fan-out, so setting it around each encode
/// is enough; a lock serialises the harness's concurrently-running tests
/// so one test's override never leaks into another's measurement.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("IMT_THREADS", n.to_string());
    let result = f();
    std::env::remove_var("IMT_THREADS");
    result
}

/// (c) Lane encoding merges worker results by index: a forced 4-worker
/// fan-out produces byte-identical output to the forced-serial path.
#[test]
fn parallel_lane_encoding_matches_serial() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    // 400 words puts encode_words over its fan-out threshold.
    let words: Vec<u64> = (0..400).map(|_| u64::from(rng.gen::<u32>())).collect();
    for k in [4usize, 5, 7] {
        let codec = StreamCodec::new(StreamCodecConfig::block_size(k).unwrap());
        let serial = with_threads(1, || encode_words(&words, 32, &codec).unwrap());
        let parallel = with_threads(4, || encode_words(&words, 32, &codec).unwrap());
        assert_eq!(serial, parallel, "k = {k}");
    }
}

/// (c) The full program pipeline — text image, Transformation Table, BBIT
/// and selection report — is bit-identical between the forced-serial and a
/// forced 4-worker run, for every kernel.
#[test]
fn parallel_pipeline_matches_serial_on_all_kernels() {
    use imt::core::{encode_program, EncoderConfig};
    use imt_bench::runner::{profiled_run, Scale};
    use imt_kernels::Kernel;

    let config = EncoderConfig::default();
    for kernel in Kernel::ALL {
        let spec = Scale::Test.spec(kernel);
        let run = profiled_run(&spec);
        let serial = with_threads(1, || {
            encode_program(&run.program, &run.profile, &config).unwrap()
        });
        let parallel = with_threads(4, || {
            encode_program(&run.program, &run.profile, &config).unwrap()
        });
        assert_eq!(
            serial.text, parallel.text,
            "{}: text image diverged",
            spec.name
        );
        assert_eq!(serial.tt, parallel.tt, "{}: TT diverged", spec.name);
        assert_eq!(serial.bbit, parallel.bbit, "{}: BBIT diverged", spec.name);
        assert_eq!(
            serial.report, parallel.report,
            "{}: report diverged",
            spec.name
        );
        assert_eq!(serial, parallel, "{}: encoded program diverged", spec.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (d) The replay evaluator is bit-identical to full simulation on
    /// random programs and schedules: the whole `Evaluation` struct —
    /// **total and per-lane** transition counts, fetch split, exit code
    /// and output — must match exactly.
    #[test]
    fn replay_evaluation_matches_full_simulation(
        body_ops in proptest::collection::vec(0u8..6, 1..12),
        iterations in 1u32..300,
        k in 4usize..=7,
        overlap in overlap_strategy(),
    ) {
        use imt::core::eval::{evaluate, evaluate_replay};
        use imt::core::{encode_program, EncoderConfig};
        use imt::isa::asm::assemble;
        use imt::sim::edge::FetchEdgeProfile;

        // Random arithmetic loop body (the generator the pipeline
        // proptests use).
        let mut body = String::new();
        for (i, op) in body_ops.iter().enumerate() {
            let line = match op {
                0 => format!("        xor  $t{}, $t{}, $s0\n", i % 6, (i + 1) % 6),
                1 => format!("        addu $t{}, $t{}, $s0\n", i % 6, (i + 1) % 6),
                2 => format!("        sll  $t{}, $t{}, {}\n", i % 6, (i + 1) % 6, (i % 5) + 1),
                3 => format!("        nor  $t{}, $t{}, $s0\n", i % 6, (i + 1) % 6),
                4 => format!("        srl  $t{}, $t{}, {}\n", i % 6, (i + 1) % 6, (i % 7) + 1),
                _ => format!("        and  $t{}, $t{}, $s0\n", i % 6, (i + 1) % 6),
            };
            body.push_str(&line);
        }
        let source = format!(
            ".text\nmain:   li $s0, {iterations}\nloop:\n{body}        addiu $s0, $s0, -1\n        bgtz $s0, loop\n        li $v0, 10\n        syscall\n"
        );
        let program = assemble(&source).unwrap();
        let edges = FetchEdgeProfile::record(&program, 10_000_000).unwrap();
        let config = EncoderConfig::default()
            .with_block_size(k)
            .unwrap()
            .with_overlap(overlap);
        let encoded = encode_program(&program, &edges.per_index_counts(), &config).unwrap();
        let full = evaluate(&program, &encoded, 10_000_000).unwrap();
        let replay = evaluate_replay(&program, &encoded, &edges).unwrap();
        prop_assert_eq!(&replay, &full);
        // Spell the load-bearing fields out so a future `Evaluation` field
        // with looser equality cannot silently weaken this test.
        prop_assert_eq!(replay.baseline_transitions, full.baseline_transitions);
        prop_assert_eq!(replay.encoded_transitions, full.encoded_transitions);
        prop_assert_eq!(&replay.per_lane_baseline, &full.per_lane_baseline);
        prop_assert_eq!(&replay.per_lane_encoded, &full.per_lane_encoded);
    }
}

/// (d) Exhaustive replay-vs-simulation check over the experiment domain:
/// every kernel × block sizes 4..=7 at Test scale, one recording per
/// kernel exactly as the grid runners use it.
#[test]
fn replay_matches_full_simulation_on_all_kernels() {
    use imt::core::eval::{evaluate, evaluate_replay};
    use imt::core::{encode_program, EncoderConfig};
    use imt::sim::edge::FetchEdgeProfile;
    use imt_kernels::Kernel;

    for kernel in Kernel::ALL {
        let spec = kernel.test_spec();
        let program = spec.assemble();
        let edges = FetchEdgeProfile::record(&program, spec.max_steps)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(edges.stdout(), spec.expected_output, "{}", spec.name);
        let counts = edges.per_index_counts();
        for k in 4..=7 {
            let config = EncoderConfig::default().with_block_size(k).unwrap();
            let encoded = encode_program(&program, &counts, &config).unwrap();
            let full = evaluate(&program, &encoded, spec.max_steps).unwrap();
            let replay = evaluate_replay(&program, &encoded, &edges).unwrap();
            assert_eq!(replay, full, "{} k={k}", spec.name);
        }
    }
}

proptest! {
    /// (e) The bit-sliced streaming encoder is bit-identical to the
    /// per-lane packed oracle on **every SIMD path this CPU offers** —
    /// stored words, block schedule, per-block transforms and transition
    /// accounting — across ragged widths 1..=64, random lengths and all
    /// codebook block sizes, and the result still decodes to the input.
    #[test]
    fn sliced_encode_matches_per_lane_oracle(
        width in 1usize..=64,
        words in proptest::collection::vec(any::<u64>(), 0..180),
        k in 2usize..=9,
        overlap in overlap_strategy(),
    ) {
        use imt::bitcode::simd::{self, SimdPath};
        use imt::bitcode::slice::{encode_words_sliced_with, SlicedEncoding};

        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let words: Vec<u64> = words.into_iter().map(|w| w & mask).collect();
        let codec = StreamCodec::new(
            StreamCodecConfig::block_size(k).unwrap().with_overlap(overlap),
        );
        let oracle = SlicedEncoding::from_lanes(&encode_words(&words, width, &codec).unwrap());
        for path in SimdPath::ALL {
            if !simd::available(path) {
                continue;
            }
            let sliced = encode_words_sliced_with(&words, width, &codec, path).unwrap();
            prop_assert_eq!(&sliced, &oracle, "path {}", path.name());
            prop_assert_eq!(sliced.decode(&codec).unwrap(), words.clone());
        }
    }

    /// (e) The 64×64 bit transpose is an involution on every path, and
    /// every path produces the scalar butterfly's image.
    #[test]
    fn transpose_round_trips_on_every_path(
        tile in proptest::collection::vec(any::<u64>(), 64),
    ) {
        use imt::bitcode::simd::{self, SimdPath};

        let original: [u64; 64] = tile.try_into().unwrap();
        let mut scalar = original;
        simd::transpose64(SimdPath::Scalar, &mut scalar);
        for path in SimdPath::ALL {
            if !simd::available(path) {
                continue;
            }
            let mut t = original;
            simd::transpose64(path, &mut t);
            prop_assert_eq!(t, scalar, "path {} disagrees with scalar", path.name());
            simd::transpose64(path, &mut t);
            prop_assert_eq!(t, original, "path {} is not an involution", path.name());
        }
    }

    /// (e) Masked transition counting over packed words agrees across all
    /// paths (the popcount kernels vs the scalar window walk).
    #[test]
    fn word_transitions_agree_on_every_path(
        words in proptest::collection::vec(any::<u64>(), 0..96),
        width in 1usize..=64,
    ) {
        use imt::bitcode::simd::{self, SimdPath};

        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let words: Vec<u64> = words.into_iter().map(|w| w & mask).collect();
        let scalar = simd::word_transitions(SimdPath::Scalar, &words, mask);
        for path in SimdPath::ALL {
            if !simd::available(path) {
                continue;
            }
            prop_assert_eq!(
                simd::word_transitions(path, &words, mask),
                scalar,
                "path {}",
                path.name()
            );
        }
    }
}

/// (c) The experiment-grid fan-out (`figure6_grid`) is scheduling-
/// independent too: one kernel's sub-grid, serial vs 4 workers.
#[test]
fn parallel_experiment_grid_matches_serial() {
    use imt_bench::runner::{run_grid, Scale};
    use imt_core::EncoderConfig;
    use imt_kernels::Kernel;

    let cells: Vec<(Kernel, EncoderConfig)> = (4..=7)
        .map(|k| {
            (
                Kernel::Tri,
                EncoderConfig::default()
                    .with_block_size(k)
                    .expect("4..=7 is valid"),
            )
        })
        .collect();
    let serial = with_threads(1, || run_grid(&cells, Scale::Test));
    let parallel = with_threads(4, || run_grid(&cells, Scale::Test));
    assert_eq!(serial, parallel);
}
