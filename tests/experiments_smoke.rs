//! Smoke tests for the experiment harness at test scale, so `cargo test`
//! exercises the same code paths the paper-scale binaries run.

use imt_bench::runner::{figure6_grid, run_kernel_point, Scale};
use imt_core::EncoderConfig;
use imt_kernels::Kernel;

#[test]
fn figure6_grid_is_complete_and_verified() {
    let grid = figure6_grid(Scale::Test);
    assert_eq!(grid.len(), 6);
    for (points, kernel) in grid.iter().zip(Kernel::ALL) {
        assert_eq!(points.len(), 4);
        for (point, k) in points.iter().zip(4..=7) {
            assert_eq!(point.kernel, kernel.name());
            assert_eq!(point.config.block_size(), k);
            assert_eq!(point.evaluation.decode_mismatches, 0);
            assert!(point.evaluation.encoded_transitions <= point.evaluation.baseline_transitions);
            // The baseline is identical across block sizes for one kernel.
            assert_eq!(
                point.evaluation.baseline_transitions,
                points[0].evaluation.baseline_transitions
            );
        }
    }
}

#[test]
fn kernel_point_energy_and_budget_reporting() {
    use imt_core::hardware::HardwareBudget;
    use imt_sim::bus::EnergyModel;
    let point = run_kernel_point(Kernel::Lu, Scale::Test, &EncoderConfig::default());
    let budget = HardwareBudget::of_schedule(&point.encoded);
    assert!(budget.total_bytes() > 0);
    assert!(
        budget.total_bytes() < 4096,
        "tables should be far smaller than a cache"
    );
    let saved = EnergyModel::OFF_CHIP.energy_joules(point.evaluation.baseline_transitions)
        - EnergyModel::OFF_CHIP.energy_joules(point.evaluation.encoded_transitions);
    assert!(saved > 0.0);
}

#[test]
fn extra_kernels_run_through_the_harness() {
    use imt_kernels::extra::ExtraKernel;
    for kernel in ExtraKernel::ALL {
        let spec = kernel.test_spec();
        let run = spec.run().unwrap();
        assert_eq!(run.stdout, spec.expected_output, "{}", spec.name);
        let encoded =
            imt_core::encode_program(&run.program, &run.profile, &EncoderConfig::default())
                .unwrap();
        let eval = imt_core::eval::evaluate(&run.program, &encoded, spec.max_steps).unwrap();
        assert_eq!(eval.decode_mismatches, 0, "{}", spec.name);
        assert!(
            eval.encoded_transitions <= eval.baseline_transitions,
            "{}",
            spec.name
        );
    }
}

#[test]
fn bench_table_rendering_is_stable() {
    use imt_bench::table::{bar_chart, Table};
    let mut table = Table::new(vec!["a".into(), "b".into()]);
    table.row(vec!["1".into(), "22".into()]);
    table.row(vec!["333".into(), "4".into()]);
    let text = table.render();
    // Columns are aligned: every line has the same width.
    let widths: Vec<usize> = text.lines().map(|l| l.chars().count()).collect();
    assert_eq!(widths[0], widths[2]);
    assert_eq!(text.lines().count(), 4);
    let chart = bar_chart(&[("x".into(), 1.0)], 10, "u");
    assert!(chart.contains("1.0u"));
}

/// The full paper-scale Figure 6 grid — expensive, so opt-in:
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "paper-scale run (~30s release, minutes in debug)"]
fn figure6_grid_at_paper_scale() {
    let grid = figure6_grid(Scale::Paper);
    // The headline trend: k=4 beats k=7 on average.
    let mean = |ki: usize| -> f64 {
        grid.iter()
            .map(|points| points[ki].evaluation.reduction_percent())
            .sum::<f64>()
            / 6.0
    };
    assert!(
        mean(0) > mean(3),
        "k=4 mean {} <= k=7 mean {}",
        mean(0),
        mean(3)
    );
    for points in &grid {
        for p in points {
            assert_eq!(p.evaluation.decode_mismatches, 0, "{}", p.instance);
            assert!(p.evaluation.reduction_percent() > 0.0, "{}", p.instance);
        }
    }
}
