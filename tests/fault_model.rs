//! Integration tests for the fault model's decode-path edges: BBIT
//! misses at block boundaries, back-to-back blocks sharing the overlap
//! bit, CT tail exhaustion, and the protection guarantee that a detected
//! single-bit fault degrades to the fallback path — never to wrong
//! instructions.

use std::sync::OnceLock;

use imt_bitcode::block::OverlapHistory;
use imt_bitcode::transform::Transform;
use imt_core::hardware::{Bbit, BbitEntry, FetchDecoder, FetchKind, TransformationTable, TtEntry};
use imt_core::pipeline::BUS_WIDTH;
use imt_core::{encode_program, EncodedProgram, EncoderConfig, Protection};
use imt_fault::plan::{FaultPlan, FaultSurface, TargetClass};
use imt_fault::trace::{replay, FetchTrace};
use imt_isa::asm::assemble;
use imt_isa::program::Program;
use imt_sim::Cpu;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A hot loop whose 11-instruction body forces every schedule at the
/// default block sizes to chain multiple TT entries (back-to-back
/// blocks) and end on a partial CT tail.
const CHAIN_SRC: &str = r#"
        .text
main:   li   $t0, 400
loop:   xor  $t1, $t1, $t0
        sll  $t2, $t1, 3
        srl  $t3, $t1, 7
        addu $t4, $t2, $t3
        xor  $t5, $t4, $t1
        sll  $t6, $t5, 2
        srl  $t7, $t5, 5
        addu $t8, $t6, $t7
        xor  $t9, $t8, $t2
        addiu $t0, $t0, -1
        bgtz $t0, loop
        li   $v0, 10
        syscall
"#;

fn fixture(config: &EncoderConfig) -> (Program, EncodedProgram) {
    let program = assemble(CHAIN_SRC).expect("assemble");
    let mut cpu = Cpu::new(&program).expect("load");
    cpu.run(1_000_000).expect("run");
    let encoded = encode_program(&program, cpu.profile(), config).expect("encode");
    (program, encoded)
}

fn decoder(encoded: &EncodedProgram, protection: Protection) -> FetchDecoder {
    FetchDecoder::with_protection(
        &encoded.tt,
        &encoded.bbit,
        BUS_WIDTH,
        encoded.config.block_size(),
        encoded.config.overlap(),
        encoded.config.transforms(),
        protection,
    )
    .expect("schedule fits its own configuration")
}

fn word_at(image: &[u32], base: u32, pc: u32) -> u32 {
    image[(pc.wrapping_sub(base) / 4) as usize]
}

/// Walks a TT chain from `tt_first`: (entries in the chain, fetches it
/// covers).
fn chain(encoded: &EncodedProgram, tt_first: usize) -> (usize, usize) {
    let mut index = tt_first;
    let mut links = 0;
    let mut covers = 0;
    loop {
        let entry = encoded.tt.get(index).expect("chain stays inside the TT");
        links += 1;
        covers += entry.covers;
        if entry.end {
            return (links, covers);
        }
        index += 1;
    }
}

#[test]
fn bbit_miss_at_block_boundaries_passes_through() {
    let (program, encoded) = fixture(&EncoderConfig::default());
    let entry = encoded
        .bbit
        .entries()
        .first()
        .copied()
        .expect("the hot loop must be scheduled");
    let stored = |pc: u32| word_at(&encoded.text, encoded.text_base, pc);
    let original = |pc: u32| word_at(&program.text, encoded.text_base, pc);

    // One word before the block's tag: BBIT miss, the decoder stays idle
    // and the word passes through untouched.
    let before = entry.pc.wrapping_sub(4);
    if encoded.bbit.lookup(before).is_none() {
        let mut dec = decoder(&encoded, Protection::None);
        let (word, kind) = dec.on_fetch_classified(before, stored(before));
        assert_eq!(kind, FetchKind::Passthrough);
        assert_eq!(word, stored(before));
    }

    // Entering at an interior pc (no tag, fresh decoder): a BBIT miss
    // even though the pc lies inside an encoded block; the decoder must
    // not engage a schedule it was never pointed at.
    let mid = entry.pc + 4;
    assert!(
        encoded.bbit.lookup(mid).is_none(),
        "interior pcs carry no tag"
    );
    let mut dec = decoder(&encoded, Protection::None);
    let (word, kind) = dec.on_fetch_classified(mid, stored(mid));
    assert_eq!(kind, FetchKind::Passthrough);
    assert_eq!(word, stored(mid));
    assert_eq!(dec.decoded_fetches(), 0);

    // Walking from the tag restores originals for exactly the fetches
    // the chain covers, then the end boundary drops back to passthrough.
    let (_, covers) = chain(&encoded, entry.tt_index);
    let mut dec = decoder(&encoded, Protection::None);
    let mut pc = entry.pc;
    for i in 0..covers {
        let (word, kind) = dec.on_fetch_classified(pc, stored(pc));
        assert_eq!(kind, FetchKind::Decoded, "fetch {i}");
        assert_eq!(word, original(pc), "fetch {i} must restore the original");
        pc += 4;
    }
    if encoded.bbit.lookup(pc).is_none() {
        let (word, kind) = dec.on_fetch_classified(pc, stored(pc));
        assert_eq!(
            kind,
            FetchKind::Passthrough,
            "schedule ends at the boundary"
        );
        assert_eq!(word, stored(pc));
    }
}

#[test]
fn back_to_back_blocks_share_the_overlap_bit() {
    for overlap in [OverlapHistory::Stored, OverlapHistory::Decoded] {
        let config = EncoderConfig::default().with_overlap(overlap);
        let (program, encoded) = fixture(&config);
        let stored = |pc: u32| word_at(&encoded.text, encoded.text_base, pc);
        let original = |pc: u32| word_at(&program.text, encoded.text_base, pc);
        // A chained schedule: the first entry is not the last, so the
        // second block's first fetch decodes against the overlap bit.
        let entry = encoded
            .bbit
            .entries()
            .iter()
            .copied()
            .find(|e| {
                !encoded
                    .tt
                    .get(e.tt_index)
                    .expect("tag points into the TT")
                    .end
            })
            .expect("an 11-instruction body must chain blocks");
        let (links, covers) = chain(&encoded, entry.tt_index);
        assert!(links >= 2, "chain must span back-to-back blocks");
        let k = encoded.config.block_size();
        assert!(covers > k, "the chain must cross a block boundary");

        let mut dec = decoder(&encoded, Protection::None);
        let mut pc = entry.pc;
        for i in 0..covers {
            let (word, kind) = dec.on_fetch_classified(pc, stored(pc));
            assert_eq!(kind, FetchKind::Decoded, "{overlap:?} fetch {i}");
            assert_eq!(
                word,
                original(pc),
                "{overlap:?} fetch {i}: the overlap hand-off must agree \
                 between encoder and decoder"
            );
            pc += 4;
        }
        assert_eq!(dec.decoded_fetches(), covers as u64);
    }
}

#[test]
fn ct_tail_exhaustion_returns_to_passthrough() {
    // Hand-built schedule: one basic block of 7 instructions at k = 5 —
    // a full first block plus a CT tail of 2. Identity transforms make
    // the decoded word equal the stored word, so only the walker's
    // counters are under test.
    let lanes = BUS_WIDTH;
    let k = 5;
    let mut tt = TransformationTable::new();
    tt.push(TtEntry {
        lane_transforms: vec![Transform::IDENTITY; lanes],
        end: false,
        covers: k,
    });
    tt.push(TtEntry {
        lane_transforms: vec![Transform::IDENTITY; lanes],
        end: true,
        covers: 2,
    });
    let mut bbit = Bbit::new();
    bbit.push(BbitEntry {
        pc: 0x0040_0100,
        tt_index: 0,
    });
    let mut dec = FetchDecoder::new(&tt, &bbit, lanes, k, OverlapHistory::Stored);

    let mut pc = 0x0040_0100u32;
    for i in 0..7u32 {
        let stored = 0x1234_5678 ^ i;
        let (word, kind) = dec.on_fetch_classified(pc, stored);
        assert_eq!(kind, FetchKind::Decoded, "fetch {i}");
        assert_eq!(word, stored, "identity transforms restore the stored word");
        pc += 4;
    }
    // The CT counter ran out with `E` set mid-k: the schedule is over
    // and the next sequential fetch is plain memory.
    let (word, kind) = dec.on_fetch_classified(pc, 0xDEAD_BEEF);
    assert_eq!(kind, FetchKind::Passthrough);
    assert_eq!(word, 0xDEAD_BEEF);
    assert_eq!(dec.decoded_fetches(), 7);
    assert_eq!(dec.passthrough_fetches(), 1);

    // Branching back to the tag restarts the schedule from the top.
    let (_, kind) = dec.on_fetch_classified(0x0040_0100, 0x1234_5678);
    assert_eq!(kind, FetchKind::Decoded);
}

static TRACED: OnceLock<(EncodedProgram, FetchTrace)> = OnceLock::new();

fn traced() -> &'static (EncodedProgram, FetchTrace) {
    TRACED.get_or_init(|| {
        let (program, encoded) = fixture(&EncoderConfig::default());
        let trace = FetchTrace::record(&program, &encoded, 1_000_000, 4_000).expect("trace");
        assert!(trace.len() >= 1_000, "the loop must fill the window");
        (encoded, trace)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The protection guarantee: under parity or SEC, any single
    /// injected table upset is detected (or corrected) and the affected
    /// fetches degrade to the fallback path — the delivered stream never
    /// contains a wrong instruction.
    #[test]
    fn detected_single_fault_never_delivers_wrong_words(
        seed in any::<u64>(),
        at in 0u64..3_000,
        use_parity in any::<bool>(),
    ) {
        let (encoded, trace) = traced();
        let protection = if use_parity { Protection::Parity } else { Protection::Sec };
        let surface = FaultSurface::of(
            &decoder(encoded, protection),
            encoded.text.len(),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let target = surface
            .sample(&mut rng, TargetClass::Tables)
            .expect("schedule has table bits");
        let plan = FaultPlan::single(at % trace.len() as u64, target);
        let out = replay(trace, encoded, protection, &plan).unwrap();

        prop_assert_eq!(out.injected, 1);
        prop_assert_eq!(
            out.wrong_words, 0,
            "{} upset {} leaked wrong instructions", protection, target
        );
        // SEC repairs every single-bit upset in place: nothing degrades.
        if protection == Protection::Sec {
            prop_assert_eq!(out.detected, 0, "SEC must correct, not quarantine");
            prop_assert_eq!(out.degraded_fetches, 0);
            prop_assert_eq!(out.corrected, 1);
        } else {
            // Parity can only detect; whatever it flags must have been
            // quarantined before any use.
            prop_assert_eq!(out.corrected, 0);
        }
    }
}
