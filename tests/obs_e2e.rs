//! End-to-end observability: a real kernel through the full pipeline with
//! `IMT_OBS=json` semantics, cross-checking the emitted manifest against
//! the pipeline's own numbers, plus registry behaviour under the
//! `imt-bitcode::par` worker fan-out.
//!
//! All mode/env mutation lives in the single `json_mode_*` test — the
//! registry and `IMT_OBS_PATH` are process-global, and integration test
//! binaries run their `#[test]` fns on parallel threads.

use imt::obs;
use imt::obs::json::Json;
use imt_bench::runner::{run_kernel_point, Scale};

fn find_metric<'a>(metrics: &'a [Json], name: &str, label: &str) -> &'a Json {
    metrics
        .iter()
        .find(|m| {
            m.get("name").and_then(Json::as_str) == Some(name)
                && m.get("label").and_then(Json::as_str) == Some(label)
        })
        .unwrap_or_else(|| panic!("manifest is missing {name}{{{label}}}"))
}

fn gauge_value(metrics: &[Json], name: &str, label: &str) -> u64 {
    find_metric(metrics, name, label)
        .get("value")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("{name}{{{label}}} has no u64 value"))
}

#[test]
fn json_mode_emits_a_manifest_matching_the_pipeline() {
    let dir = std::env::temp_dir().join(format!("imt_obs_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("IMT_OBS_PATH", &dir);
    obs::set_mode(obs::Mode::Json);

    let config = imt::core::EncoderConfig::default();
    let point = run_kernel_point(imt::kernels::Kernel::Tri, Scale::Test, &config);
    imt_bench::finish_run("obs-e2e");

    obs::set_mode(obs::Mode::Off);
    std::env::remove_var("IMT_OBS_PATH");

    let text = std::fs::read_to_string(dir.join("obs-e2e.json")).expect("manifest written");
    let doc = Json::parse(&text).expect("manifest is valid JSON");
    obs::manifest::validate(&doc).expect("manifest validates against imt-obs/v1");
    assert_eq!(doc.get("run").and_then(Json::as_str), Some("obs-e2e"));
    assert!(
        doc.get("environment")
            .and_then(|e| e.get("threads"))
            .and_then(Json::as_u64)
            .is_some_and(|t| t >= 1),
        "environment section records the thread count"
    );

    // The per-cell gauges agree exactly with the pipeline's own numbers.
    let label = format!("{}/k{}", point.instance, config.block_size());
    let metrics = doc
        .get("metrics")
        .and_then(Json::as_array)
        .expect("metrics array");
    assert_eq!(
        gauge_value(metrics, "core.encode.static_saved_transitions", &label),
        point.encoded.static_saved_transitions(),
        "manifest gauge diverges from EncodedProgram::static_saved_transitions()"
    );
    assert_eq!(
        gauge_value(metrics, "core.eval.baseline_transitions", &label),
        point.evaluation.baseline_transitions
    );
    assert_eq!(
        gauge_value(metrics, "core.eval.encoded_transitions", &label),
        point.evaluation.encoded_transitions
    );
    assert_eq!(
        gauge_value(metrics, "sim.bus.transitions", &format!("{label}/encoded")),
        point.evaluation.encoded_transitions,
        "the DataBusMonitor gauge and the evaluation disagree"
    );

    // The eval event carries the per-lane anatomy, summing to the totals
    // (validate() already enforced the sum; here we pin the exact values).
    let events = doc.get("events").and_then(Json::as_array).expect("events");
    let eval_event = events
        .iter()
        .find(|e| {
            e.get("kind").and_then(Json::as_str) == Some("eval")
                && e.get("label").and_then(Json::as_str) == Some(label.as_str())
        })
        .expect("eval event recorded");
    let lanes = eval_event
        .get("fields")
        .and_then(|f| f.get("per_lane_encoded"))
        .and_then(Json::as_array)
        .expect("per-lane array");
    assert_eq!(lanes.len(), 32);
    let lane_sum: u64 = lanes.iter().map(|l| l.as_u64().unwrap()).sum();
    assert_eq!(lane_sum, point.evaluation.encoded_transitions);

    // Spans from all three layers nested correctly under the fan-out.
    for span in ["bench.encode", "core.encode_program", "bench.evaluate"] {
        let metric = find_metric(metrics, span, "");
        assert!(
            metric.get("count").and_then(Json::as_u64).unwrap_or(0) >= 1,
            "span {span} never closed"
        );
    }

    // The JSONL sidecar mirrors the manifest line-for-line.
    let jsonl = std::fs::read_to_string(dir.join("obs-e2e.jsonl")).expect("jsonl written");
    let mut metric_lines = 0;
    for line in jsonl.lines() {
        let line_doc = Json::parse(line).expect("every JSONL line parses");
        if line_doc.get("type").and_then(Json::as_str) == Some("metric") {
            metric_lines += 1;
        }
    }
    assert_eq!(metric_lines, metrics.len());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_counter_increments_under_par_are_lossless() {
    // Registry handles work regardless of mode; the gate lives at the
    // instrumentation sites. 8×1000 increments from the worker pool must
    // all land.
    let results = imt::bitcode::par::par_map_range(8, 1, |i| {
        for _ in 0..1000 {
            obs::counter_labeled("obs_e2e.concurrent", "lossless").inc();
        }
        i
    });
    assert_eq!(results.len(), 8);
    assert_eq!(
        obs::counter_labeled("obs_e2e.concurrent", "lossless").get(),
        8_000
    );
}

#[test]
fn labels_nest_and_unwind_on_one_thread() {
    let outer = obs::push_label("outer");
    {
        let inner = obs::push_label("inner");
        assert_eq!(obs::current_label(), "outer/inner");
        drop(inner);
    }
    assert_eq!(obs::current_label(), "outer");
    drop(outer);
    assert_eq!(obs::current_label(), "");
}
