//! The paper's theoretical claims, pinned as integration tests.

use imt::bitcode::tables::{minimal_optimal_subset, theoretical_ttn, CodeTable};
use imt::bitcode::{Transform, TransformSet};

#[test]
fn figure3_ttn_and_rtn_for_all_sizes() {
    // TTN follows (k-1)·2^(k-1); RTN values are the exhaustive optima.
    // (Paper prints 320/180 at k=6 — twice the closed form — and 234 at
    // k=7 where 236 is the provable optimum; see EXPERIMENTS.md.)
    let expected = [
        (2, 2, 0),
        (3, 8, 2),
        (4, 24, 10),
        (5, 64, 32),
        (6, 160, 90),
        (7, 384, 236),
    ];
    for (k, ttn, rtn) in expected {
        let table = CodeTable::build(k, TransformSet::ALL_SIXTEEN).unwrap();
        assert_eq!(table.total_transitions(), ttn, "TTN k={k}");
        assert_eq!(
            table.total_transitions(),
            theoretical_ttn(k),
            "closed form k={k}"
        );
        assert_eq!(table.reduced_transitions(), rtn, "RTN k={k}");
    }
}

#[test]
fn canonical_eight_suffices_for_global_optimality_up_to_seven() {
    // The §5.2 headline claim, exhaustively: restricting to the fixed
    // 8-function subset loses nothing at any block size up to 7 — not
    // just in total but for every single block word.
    for k in 2..=7 {
        let full = CodeTable::build(k, TransformSet::ALL_SIXTEEN).unwrap();
        let eight = CodeTable::build(k, TransformSet::CANONICAL_EIGHT).unwrap();
        for (a, b) in full.entries().iter().zip(eight.entries()) {
            assert_eq!(
                a.code_transitions,
                b.code_transitions,
                "k={k} word {} lost optimality under the 8-subset",
                a.word.to_paper_string()
            );
        }
    }
}

#[test]
fn exact_minimal_subset_is_six_and_unique_at_k7() {
    let minimal = minimal_optimal_subset(7);
    let expected: TransformSet = [
        Transform::IDENTITY,
        Transform::NOT_X,
        Transform::XOR,
        Transform::XNOR,
        Transform::NOR,
        Transform::NAND,
    ]
    .into_iter()
    .collect();
    assert_eq!(minimal.set, expected);
    assert_eq!(minimal.count_of_minimum_size, 1);
    // It is a strict subset of the paper's canonical eight.
    assert_eq!(
        minimal.set.intersection(TransformSet::CANONICAL_EIGHT),
        minimal.set
    );
    assert!(minimal.set.len() < TransformSet::CANONICAL_EIGHT.len());
}

#[test]
fn every_code_word_is_never_worse_than_its_block_word() {
    // The identity-transform worst-case guarantee (§5.1), table-wide.
    for k in 2..=7 {
        let table = CodeTable::build(k, TransformSet::CANONICAL_EIGHT).unwrap();
        for entry in table.entries() {
            assert!(entry.code_transitions <= entry.word_transitions);
        }
    }
}

#[test]
fn global_inversion_symmetry_on_all_sizes() {
    // §5.2: inverting every bit maps the optimum of word w onto the
    // optimum of ¬w with the same transition counts.
    for k in 2..=7 {
        let table = CodeTable::build(k, TransformSet::CANONICAL_EIGHT).unwrap();
        let n = table.entries().len();
        for i in 0..n {
            let a = &table.entries()[i];
            let b = &table.entries()[n - 1 - i];
            assert_eq!(a.word_transitions, b.word_transitions, "k={k} row {i}");
            assert_eq!(a.code_transitions, b.code_transitions, "k={k} row {i}");
        }
    }
}

#[test]
fn section6_random_streams_track_theory_within_one_percent() {
    use imt::bitcode::gen::uniform;
    use imt::bitcode::stream::{StreamCodec, StreamCodecConfig};
    use rand::SeedableRng;

    for k in [4usize, 5, 6] {
        let theory = CodeTable::build(k, TransformSet::CANONICAL_EIGHT)
            .unwrap()
            .improvement_percent();
        let codec = StreamCodec::new(StreamCodecConfig::block_size(k).unwrap());
        let mut rng = rand::rngs::StdRng::seed_from_u64(66);
        let (mut orig, mut enc) = (0u64, 0u64);
        for _ in 0..100 {
            let stream = uniform(&mut rng, 1000);
            let encoded = codec.encode(&stream);
            orig += encoded.original_transitions();
            enc += encoded.transitions();
        }
        let total = (orig - enc) as f64 / orig as f64 * 100.0;
        assert!(
            (total - theory).abs() < 1.0,
            "k={k}: aggregate {total:.2}% vs theory {theory:.1}%"
        );
    }
}

#[test]
fn figure2_and_figure4_tables_match_the_paper_exactly() {
    // Figure 2 (k=3), all rows.
    let fig2 = CodeTable::build(3, TransformSet::CANONICAL_EIGHT).unwrap();
    let expected2 = [
        ("000", "000", "id"),
        ("001", "111", "not_x"),
        ("010", "000", "not_y"),
        ("011", "011", "id"),
        ("100", "100", "id"),
        ("101", "111", "not_y"),
        ("110", "000", "not_x"),
        ("111", "111", "id"),
    ];
    for (entry, (w, c, t)) in fig2.entries().iter().zip(expected2) {
        assert_eq!(entry.word.to_paper_string(), w);
        assert_eq!(entry.code.to_paper_string(), c, "word {w}");
        assert_eq!(entry.transform.ascii_name(), t, "word {w}");
    }
    // Figure 4 (k=5), the printed first half: code words and transforms.
    let fig4 = CodeTable::build(5, TransformSet::CANONICAL_EIGHT).unwrap();
    let expected4 = [
        ("00000", "id"),
        ("11111", "not_x"),
        ("11100", "not_x"),
        ("00011", "id"),
        ("00100", "id"),
        ("01111", "xor"),
        ("11000", "not_x"),
        ("00111", "id"),
        ("11000", "xor"),
        ("00111", "nor"),
        ("00000", "not_y"),
        ("00011", "xnor"),
        ("01100", "id"),
        ("10011", "not_x"),
        ("10000", "not_x"),
        ("01111", "id"),
    ];
    for (i, (code, transform)) in expected4.into_iter().enumerate() {
        let entry = &fig4.entries()[i];
        assert_eq!(entry.code.to_paper_string(), code, "row {i}");
        assert_eq!(entry.transform.ascii_name(), transform, "row {i}");
    }
}

#[test]
fn control_cost_is_three_bits_per_block() {
    // §5.2's hardware point: eight transformations need 3 control bits
    // per block per line; the fixed-count means longer blocks amortise.
    assert_eq!(TransformSet::CANONICAL_EIGHT.control_bits(), 3);
    let per_entry_k5 = imt::core::hardware::TtEntry::storage_bits(32, 3, 3);
    let per_entry_k7 = per_entry_k5; // independent of k — that's the point
    assert_eq!(per_entry_k5, per_entry_k7);
    // Instructions covered per entry grow with k while entry size stays
    // flat: the overhead per instruction shrinks.
    assert!(per_entry_k5 / 7 < per_entry_k5 / 4);
}
