//! Property tests for the `IMTEPROF` fetch-edge profile serialisation.
//!
//! The profile cache persists [`FetchEdgeProfile`]s to disk and reads
//! them back across runs, so `from_bytes` is fed whatever a previous
//! process — or a corrupted filesystem — left behind. The contract under
//! test: round-trips are exact, and *any* malformed input (truncation,
//! header bit-flips, version skew, garbage) yields a typed
//! [`EdgeProfileFormatError`] — never a panic, never a silently wrong
//! profile.

use imt::sim::edge::{
    EdgeProfileFormatError, FetchEdgeProfile, FetchEdgeRecorder, PROFILE_FORMAT_VERSION,
};
use imt::sim::FetchSink;
use proptest::prelude::*;

const TEXT_BASE: u32 = 0x1000;

/// Builds a profile by driving a recorder with an arbitrary fetch walk.
///
/// `steps` holds jump offsets: from instruction `i` the walk visits
/// `(i + step) % text_len`, so it produces a mix of sequential edges
/// (step 1) and arbitrary non-sequential edges — the same shapes real
/// control flow produces, without needing a runnable program.
fn profile_from_walk(
    text_len: usize,
    start: usize,
    steps: &[usize],
    stdout: &str,
) -> FetchEdgeProfile {
    let mut recorder = FetchEdgeRecorder::new(TEXT_BASE, text_len);
    let mut index = start % text_len;
    recorder.on_fetch(TEXT_BASE + 4 * index as u32, 0);
    for &step in steps {
        index = (index + step) % text_len;
        recorder.on_fetch(TEXT_BASE + 4 * index as u32, 0);
    }
    recorder.finish(0, stdout.to_string())
}

fn stdout_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<bool>(), 0..24).prop_map(|bits| {
        bits.into_iter()
            .map(|b| if b { 'x' } else { '\n' })
            .collect()
    })
}

proptest! {
    /// Any recorded profile round-trips bit-exactly through bytes.
    #[test]
    fn roundtrip_is_exact(
        text_len in 1usize..40,
        start in 0usize..40,
        steps in proptest::collection::vec(0usize..40, 0..120),
        stdout in stdout_strategy(),
    ) {
        let profile = profile_from_walk(text_len, start, &steps, &stdout);
        let bytes = profile.to_bytes();
        let back = FetchEdgeProfile::from_bytes(&bytes);
        prop_assert_eq!(back, Ok(profile));
    }

    /// Every strict prefix of a valid serialisation is rejected with a
    /// typed error — truncation can never panic or half-parse.
    #[test]
    fn every_truncation_is_a_typed_error(
        text_len in 1usize..16,
        steps in proptest::collection::vec(0usize..16, 0..40),
    ) {
        let profile = profile_from_walk(text_len, 0, &steps, "out\n");
        let bytes = profile.to_bytes();
        for cut in 0..bytes.len() {
            let result = FetchEdgeProfile::from_bytes(&bytes[..cut]);
            prop_assert!(
                result.is_err(),
                "prefix of {cut}/{} bytes parsed successfully",
                bytes.len()
            );
        }
    }

    /// A single bit-flip anywhere in the 12-byte magic+version header is
    /// always rejected (the payload region may legitimately still parse,
    /// but the header is fully covered).
    #[test]
    fn header_bit_flips_are_rejected(
        text_len in 1usize..16,
        steps in proptest::collection::vec(0usize..16, 0..40),
        byte in 0usize..12,
        bit in 0u32..8,
    ) {
        let profile = profile_from_walk(text_len, 0, &steps, "");
        let mut bytes = profile.to_bytes();
        bytes[byte] ^= 1 << bit;
        let result = FetchEdgeProfile::from_bytes(&bytes);
        prop_assert!(result.is_err(), "header corruption at byte {byte} bit {bit} accepted");
        let detail = result.unwrap_err().detail;
        prop_assert!(
            detail == "bad magic" || detail == "unsupported format version",
            "unexpected detail {detail:?} for a header flip"
        );
    }

    /// Arbitrary bit-flips anywhere in the stream either fail with a
    /// typed error or decode to *some* structurally valid profile — they
    /// never panic. (Payload flips can be semantically silent; structural
    /// integrity is what the format layer owes its callers.)
    #[test]
    fn arbitrary_bit_flips_never_panic(
        text_len in 1usize..16,
        steps in proptest::collection::vec(0usize..16, 0..40),
        flips in proptest::collection::vec((0usize..4096, 0u32..8), 1..8),
        stdout in stdout_strategy(),
    ) {
        let profile = profile_from_walk(text_len, 0, &steps, &stdout);
        let mut bytes = profile.to_bytes();
        for (pos, bit) in flips {
            let pos = pos % bytes.len();
            bytes[pos] ^= 1 << bit;
        }
        // Either outcome is fine; reaching this line without a panic is
        // the property.
        let _ = FetchEdgeProfile::from_bytes(&bytes);
    }

    /// Random byte soup never panics the parser.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = FetchEdgeProfile::from_bytes(&bytes);
    }
}

/// A future format version is refused up front, not misparsed.
#[test]
fn version_mismatch_is_a_typed_error() {
    let profile = profile_from_walk(8, 0, &[1, 1, 3, 1], "hello\n");
    let mut bytes = profile.to_bytes();
    let next = (PROFILE_FORMAT_VERSION + 1).to_le_bytes();
    bytes[8..12].copy_from_slice(&next);
    assert_eq!(
        FetchEdgeProfile::from_bytes(&bytes),
        Err(EdgeProfileFormatError {
            detail: "unsupported format version"
        })
    );
}

/// The empty input is the smallest truncation; it gets the truncation error.
#[test]
fn empty_input_is_rejected() {
    let err = FetchEdgeProfile::from_bytes(&[]).unwrap_err();
    assert_eq!(err.detail, "truncated");
}

/// Trailing bytes after a well-formed profile are an error: a cache file
/// with appended junk is corrupt, not "valid plus extras".
#[test]
fn trailing_bytes_are_rejected() {
    let profile = profile_from_walk(4, 0, &[1, 1, 2], "");
    let mut bytes = profile.to_bytes();
    bytes.push(0);
    assert_eq!(
        FetchEdgeProfile::from_bytes(&bytes),
        Err(EdgeProfileFormatError {
            detail: "trailing bytes"
        })
    );
}

/// An out-of-range seed index (the first post-header field that carries
/// an invariant) is caught even when lengths are self-consistent.
#[test]
fn out_of_range_seed_is_rejected() {
    let profile = profile_from_walk(4, 2, &[1], "");
    let mut bytes = profile.to_bytes();
    // Bytes 16..20 hold the seed index (after magic, version, text_len).
    bytes[16..20].copy_from_slice(&100u32.to_le_bytes());
    assert_eq!(
        FetchEdgeProfile::from_bytes(&bytes).unwrap_err().detail,
        "seed index out of range"
    );
}
