//! Property-based tests over the codec, the lane encoder, the ISA and the
//! hardware model.

use imt::bitcode::bits::BitSeq;
use imt::bitcode::block::{decode_block, encode_block, BlockContext, OverlapHistory};
use imt::bitcode::lanes::{decode_words, encode_words, total_transitions};
use imt::bitcode::stream::{StreamCodec, StreamCodecConfig};
use imt::bitcode::TransformSet;
use proptest::prelude::*;

fn overlap_strategy() -> impl Strategy<Value = OverlapHistory> {
    prop_oneof![Just(OverlapHistory::Stored), Just(OverlapHistory::Decoded)]
}

fn transform_set_strategy() -> impl Strategy<Value = TransformSet> {
    prop_oneof![
        Just(TransformSet::CANONICAL_EIGHT),
        Just(TransformSet::ALL_SIXTEEN),
        Just(TransformSet::IDENTITY_ONLY),
        // Any random set that contains the identity is a valid universe.
        any::<u16>().prop_map(|mask| {
            TransformSet::from_mask(mask).with(imt::bitcode::Transform::IDENTITY)
        }),
    ]
}

proptest! {
    #[test]
    fn stream_roundtrip_and_never_worse(
        bits in proptest::collection::vec(any::<bool>(), 0..300),
        k in 2usize..=9,
        overlap in overlap_strategy(),
        set in transform_set_strategy(),
    ) {
        let original = BitSeq::from(bits);
        let codec = StreamCodec::new(
            StreamCodecConfig::block_size(k).unwrap()
                .with_overlap(overlap)
                .with_transforms(set)
                .unwrap(),
        );
        let encoded = codec.encode(&original);
        prop_assert_eq!(codec.decode(&encoded).unwrap(), original.clone());
        prop_assert!(encoded.transitions() <= original.transitions());
    }

    #[test]
    fn block_roundtrip_all_contexts(
        bits in proptest::collection::vec(any::<bool>(), 1..12),
        prev_stored in any::<bool>(),
        prev_original in any::<bool>(),
        overlap in overlap_strategy(),
    ) {
        let ctx = BlockContext::Chained { prev_stored, prev_original, history: overlap };
        let enc = encode_block(&bits, ctx, TransformSet::CANONICAL_EIGHT);
        prop_assert_eq!(decode_block(&enc.code, enc.transform, ctx), bits.clone());
        // Boundary accounting invariant.
        let mut chain = vec![prev_stored];
        chain.extend(&enc.code);
        prop_assert_eq!(
            chain.windows(2).filter(|w| w[0] != w[1]).count() as u64,
            enc.code_transitions
        );

        let enc = encode_block(&bits, BlockContext::Initial, TransformSet::CANONICAL_EIGHT);
        prop_assert_eq!(decode_block(&enc.code, enc.transform, BlockContext::Initial), bits);
        prop_assert!(enc.code_transitions <= enc.original_transitions);
    }

    #[test]
    fn sixteen_never_loses_to_eight(
        bits in proptest::collection::vec(any::<bool>(), 1..10),
    ) {
        let eight = encode_block(&bits, BlockContext::Initial, TransformSet::CANONICAL_EIGHT);
        let sixteen = encode_block(&bits, BlockContext::Initial, TransformSet::ALL_SIXTEEN);
        prop_assert!(sixteen.code_transitions <= eight.code_transitions);
    }

    #[test]
    fn lane_roundtrip_arbitrary_words(
        words in proptest::collection::vec(any::<u32>(), 0..60),
        k in 2usize..=8,
    ) {
        let wide: Vec<u64> = words.iter().map(|&w| w as u64).collect();
        let codec = StreamCodec::new(StreamCodecConfig::block_size(k).unwrap());
        let enc = encode_words(&wide, 32, &codec).unwrap();
        prop_assert_eq!(decode_words(&enc, &codec).unwrap(), wide.clone());
        prop_assert!(enc.transitions() <= total_transitions(&wide, 32));
    }

    #[test]
    fn isa_decode_encode_fixpoint(word in any::<u32>()) {
        // Any word that decodes must re-encode to itself (the decoder
        // normalises nothing).
        if let Ok(inst) = imt::isa::decode::decode(word) {
            let reencoded = imt::isa::encode::encode(inst);
            // Fields the decoder ignores (e.g. shamt of jr) may differ;
            // but re-decoding must be stable.
            prop_assert_eq!(imt::isa::decode::decode(reencoded).unwrap(), inst);
        }
    }

    #[test]
    fn fetch_decoder_is_exact_on_random_blocks(
        words in proptest::collection::vec(any::<u32>(), 1..40),
        k in 2usize..=8,
        overlap in overlap_strategy(),
    ) {
        use imt::core::hardware::{Bbit, BbitEntry, FetchDecoder, TransformationTable, TtEntry};
        // Build a schedule for one synthetic basic block, then decode the
        // sequential fetch stream through the hardware model.
        let codec = StreamCodec::new(
            StreamCodecConfig::block_size(k).unwrap().with_overlap(overlap),
        );
        let wide: Vec<u64> = words.iter().map(|&w| w as u64).collect();
        let enc = encode_words(&wide, 32, &codec).unwrap();
        let blocks = enc.lanes()[0].blocks().len();
        let mut tt = TransformationTable::new();
        for b in 0..blocks {
            tt.push(TtEntry {
                lane_transforms: (0..32)
                    .map(|lane| enc.lanes()[lane].blocks()[b].transform)
                    .collect(),
                end: b + 1 == blocks,
                covers: enc.lanes()[0].blocks()[b].len,
            });
        }
        let mut bbit = Bbit::new();
        bbit.push(BbitEntry { pc: 0x0040_0000, tt_index: 0 });
        let mut decoder = FetchDecoder::new(&tt, &bbit, 32, k, overlap);
        // Two consecutive traversals, as a loop would fetch them.
        for _ in 0..2 {
            for (i, &stored) in enc.words().iter().enumerate() {
                let pc = 0x0040_0000 + (i as u32) * 4;
                let decoded = decoder.on_fetch(pc, stored as u32);
                prop_assert_eq!(decoded, words[i], "index {}", i);
            }
        }
    }
}

proptest! {
    #[test]
    fn memory_model_matches_a_reference_map(
        ops in proptest::collection::vec(
            (0u32..0x2000u32, any::<u8>(), any::<bool>()),
            1..200,
        )
    ) {
        use std::collections::HashMap;
        let mut mem = imt::sim::mem::Memory::new();
        let mut reference: HashMap<u32, u8> = HashMap::new();
        let base = 0x1000_0000u32;
        for (offset, value, is_write) in ops {
            let address = base + offset;
            if is_write {
                mem.write_u8(address, value).unwrap();
                reference.insert(address, value);
            } else {
                let expected = reference.get(&address).copied().unwrap_or(0);
                prop_assert_eq!(mem.read_u8(address).unwrap(), expected);
            }
        }
        // Full sweep at the end.
        for (&address, &value) in &reference {
            prop_assert_eq!(mem.read_u8(address).unwrap(), value);
        }
    }

    #[test]
    fn memory_word_access_composes_from_bytes(
        address in (0x1000u32..0x7FFF_0000u32).prop_map(|a| a & !7),
        value in any::<u64>(),
    ) {
        let mut mem = imt::sim::mem::Memory::new();
        mem.write_u64(address, value).unwrap();
        prop_assert_eq!(mem.read_u64(address).unwrap(), value);
        prop_assert_eq!(mem.read_u32(address).unwrap(), value as u32);
        prop_assert_eq!(mem.read_u32(address + 4).unwrap(), (value >> 32) as u32);
        for i in 0..8u32 {
            prop_assert_eq!(
                mem.read_u8(address + i).unwrap(),
                (value >> (8 * i)) as u8
            );
        }
    }

    #[test]
    fn history_blocks_roundtrip(
        bits in proptest::collection::vec(any::<bool>(), 1..12),
        h in 1usize..=3,
    ) {
        use imt::bitcode::history::{decode_history_block, encode_history_block};
        let enc = encode_history_block(&bits, h).unwrap();
        prop_assert_eq!(decode_history_block(&enc.code, enc.transform), bits);
        prop_assert!(enc.code_transitions <= enc.original_transitions);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn scheduler_preserves_architectural_state(
        ops in proptest::collection::vec((0u8..10, 0u8..6, 0u8..6, 0u8..6, any::<i16>()), 3..20),
        seed in any::<u32>(),
    ) {
        // Build a random straight-line block over $t0..$t5 plus memory
        // traffic through $sp, ending in a syscall exit; run the original
        // and the reordered program and compare every register and the
        // touched memory — a differential test of the Effects model.
        use imt::isa::asm::assemble;
        use imt::isa::Reg;
        use imt::sim::Cpu;

        let mut body = String::new();
        for (op, a, b, c, imm) in &ops {
            let (a, b, c) = (8 + *a as u32, 8 + *b as u32, 8 + *c as u32);
            let imm16 = *imm as i32;
            let line = match op {
                0 => format!("        addu ${a}, ${b}, ${c}\n"),
                1 => format!("        subu ${a}, ${b}, ${c}\n"),
                2 => format!("        xor  ${a}, ${b}, ${c}\n"),
                3 => format!("        nor  ${a}, ${b}, ${c}\n"),
                4 => format!("        sll  ${a}, ${b}, {}\n", imm16.rem_euclid(32)),
                5 => format!("        addiu ${a}, ${b}, {imm16}\n"),
                6 => format!("        lw   ${a}, {}($sp)\n", (imm16.rem_euclid(16)) * 4),
                7 => format!("        sw   ${a}, {}($sp)\n", (imm16.rem_euclid(16)) * 4),
                8 => format!("        mult ${a}, ${b}\n"),
                _ => format!("        mflo ${a}\n"),
            };
            body.push_str(&line);
        }
        // Wrap the block in a short loop so the scheduler (which targets
        // hot-loop blocks) picks it up.
        let looped = format!(
            ".text\nmain:   li $s0, 3\n        li $t0, {seed}\n        li $t1, {}\nloop:\n{body}        addiu $s0, $s0, -1\n        bgtz $s0, loop\n        li $v0, 10\n        syscall\n",
            seed.wrapping_mul(7)
        );
        let looped_program = assemble(&looped).unwrap();
        let mut cpu = Cpu::new(&looped_program).unwrap();
        cpu.run(1_000_000).unwrap();
        let profile = cpu.profile().to_vec();
        let (scheduled, _) = imt::core::schedule::schedule_program(
            &looped_program,
            &profile,
            &imt::core::EncoderConfig::default(),
        )
        .unwrap();

        // Run both to completion and compare state.
        let mut a = Cpu::new(&looped_program).unwrap();
        a.run(1_000_000).unwrap();
        let mut b = Cpu::new(&scheduled).unwrap();
        b.run(1_000_000).unwrap();
        for r in 0..32u8 {
            prop_assert_eq!(
                a.reg(Reg::new(r)),
                b.reg(Reg::new(r)),
                "register ${} diverged",
                r
            );
        }
        for slot in 0..16u32 {
            let address = imt::isa::program::STACK_TOP + slot * 4;
            prop_assert_eq!(
                a.mem().read_u32(address).unwrap(),
                b.mem().read_u32(address).unwrap(),
                "memory slot {} diverged",
                slot
            );
        }
    }

    #[test]
    fn random_loop_programs_survive_the_pipeline(
        body_ops in proptest::collection::vec(0u8..6, 1..12),
        iterations in 1u32..300,
        k in 4usize..=7,
    ) {
        use imt::core::{encode_program, eval::evaluate, EncoderConfig};
        use imt::isa::asm::assemble;
        use imt::sim::Cpu;

        // Generate a random arithmetic loop body.
        let mut body = String::new();
        for (i, op) in body_ops.iter().enumerate() {
            let line = match op {
                0 => format!("        xor  $t{}, $t{}, $s0\n", i % 6, (i + 1) % 6),
                1 => format!("        addu $t{}, $t{}, $s0\n", i % 6, (i + 1) % 6),
                2 => format!("        sll  $t{}, $t{}, {}\n", i % 6, (i + 1) % 6, (i % 5) + 1),
                3 => format!("        nor  $t{}, $t{}, $s0\n", i % 6, (i + 1) % 6),
                4 => format!("        srl  $t{}, $t{}, {}\n", i % 6, (i + 1) % 6, (i % 7) + 1),
                _ => format!("        and  $t{}, $t{}, $s0\n", i % 6, (i + 1) % 6),
            };
            body.push_str(&line);
        }
        let source = format!(
            ".text\nmain:   li $s0, {iterations}\nloop:\n{body}        addiu $s0, $s0, -1\n        bgtz $s0, loop\n        li $v0, 10\n        syscall\n"
        );
        let program = assemble(&source).unwrap();
        let mut cpu = Cpu::new(&program).unwrap();
        cpu.run(10_000_000).unwrap();
        let config = EncoderConfig::default().with_block_size(k).unwrap();
        let encoded = encode_program(&program, cpu.profile(), &config).unwrap();
        let eval = evaluate(&program, &encoded, 10_000_000).unwrap();
        prop_assert_eq!(eval.decode_mismatches, 0);
        prop_assert!(eval.encoded_transitions <= eval.baseline_transitions);
    }
}
