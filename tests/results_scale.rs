//! Guard: every committed `results/BENCH_*.json` declares paper scale.
//!
//! Each benchmark binary stamps a top-level `"scale"` field into its JSON
//! artifact ([`imt_bench::runner::Scale::name`]). Committed artifacts must
//! be produced at paper scale; an artifact declaring `"test"` means a CI
//! smoke run (`--test-scale`) overwrote a published result — exactly the
//! incident this suite exists to catch. The same check runs as a CI step
//! so a bad artifact fails the build, not just a local `cargo test`.

use std::fs;
use std::path::PathBuf;

use imt_obs::json::Json;

/// The workspace root (this test lives in the root package).
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// All committed machine-readable benchmark artifacts.
fn bench_artifacts() -> Vec<PathBuf> {
    let results = repo_root().join("results");
    let mut paths: Vec<PathBuf> = fs::read_dir(&results)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", results.display()))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("BENCH_") && name.ends_with(".json")
        })
        .collect();
    paths.sort();
    paths
}

#[test]
fn the_expected_artifacts_are_present() {
    let names: Vec<String> = bench_artifacts()
        .iter()
        .filter_map(|p| p.file_name().and_then(|n| n.to_str()).map(String::from))
        .collect();
    for expected in [
        "BENCH_fault.json",
        "BENCH_net.json",
        "BENCH_pipeline.json",
        "BENCH_replay.json",
        "BENCH_serve.json",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing committed artifact results/{expected} (found: {names:?})"
        );
    }
}

#[test]
fn every_bench_artifact_declares_a_scale() {
    let artifacts = bench_artifacts();
    assert!(!artifacts.is_empty(), "no results/BENCH_*.json found");
    for path in &artifacts {
        let text = fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let doc = Json::parse(&text)
            .unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()));
        let scale = doc
            .get("scale")
            .unwrap_or_else(|| panic!("{}: no top-level \"scale\" field", path.display()));
        let scale = scale
            .as_str()
            .unwrap_or_else(|| panic!("{}: \"scale\" is not a string: {scale:?}", path.display()));
        assert!(
            matches!(scale, "paper" | "test"),
            "{}: unknown scale {scale:?} (expected \"paper\" or \"test\")",
            path.display()
        );
    }
}

#[test]
fn committed_artifacts_are_paper_scale() {
    for path in bench_artifacts() {
        let text = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let doc = Json::parse(&text)
            .unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()));
        let scale = doc.get("scale").and_then(Json::as_str).unwrap_or("missing");
        assert_eq!(
            scale,
            "paper",
            "{}: committed benchmark artifacts must be regenerated at paper \
             scale — a \"test\" scale here means a smoke run overwrote a \
             published result",
            path.display()
        );
    }
}
