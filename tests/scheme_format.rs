//! Property tests for the `IMTSCHEM` scheme-descriptor serialisation.
//!
//! Descriptors name an encoding scheme and its parameters across a file
//! or the wire ([`SchemeDescriptor::to_bytes`] / `from_bytes`), so the
//! parser is fed whatever the other side — or a corrupted transport —
//! produced. The contract under test mirrors `tests/profile_format.rs`:
//! round-trips are exact, and *any* malformed input (truncation, header
//! bit-flips, version skew, garbage, trailing bytes) yields a typed
//! [`SchemeFormatError`] — never a panic, never a silently wrong scheme.

use imt::core::scheme::{
    SchemeDescriptor, SchemeFormatError, MAX_LOW_WEIGHT_PAIRS, SCHEME_FORMAT_VERSION,
};
use proptest::prelude::*;

/// Every descriptor variant, driven from one compact seed tuple so a
/// single strategy covers the full tag space. The fields are folded into
/// range by construction — the strategy only produces *valid*
/// descriptors; the tests then corrupt their bytes.
fn descriptor_from_seed(
    tag: u8,
    a: u32,
    b: u32,
    pairs: &[(u32, u32)],
    lanes_seed: &[u8],
) -> SchemeDescriptor {
    match tag % 5 {
        0 => SchemeDescriptor::TtBbit {
            block_size: 2 + a % 31,
            overlap: (b % 2) as u8,
            // Bit 12 is Transform::IDENTITY, which valid masks carry.
            transform_mask: 0x1000 | (b % 0x1000) as u16,
            tt_capacity: a % (1 << 20),
            bbit_capacity: b % (1 << 20),
        },
        1 => SchemeDescriptor::Gray,
        2 => SchemeDescriptor::LowWeight {
            pairs: pairs
                .iter()
                .map(|&(orig, code)| {
                    // A self-mapping pair is format-invalid; nudge it.
                    if orig == code {
                        (orig, code ^ 1)
                    } else {
                        (orig, code)
                    }
                })
                .collect(),
        },
        3 => SchemeDescriptor::BusInvert {
            width: 1 + (a % 63) as u8,
        },
        _ => {
            let mut lanes = [0u8; 32];
            for (lane, &seed) in lanes.iter_mut().zip(lanes_seed.iter().cycle()) {
                *lane = seed % 3;
            }
            SchemeDescriptor::Composite { lanes }
        }
    }
}

fn descriptor_strategy() -> impl Strategy<Value = SchemeDescriptor> {
    (
        any::<u8>(),
        any::<u32>(),
        any::<u32>(),
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..32),
        proptest::collection::vec(any::<u8>(), 1..32),
    )
        .prop_map(|(tag, a, b, pairs, lanes)| descriptor_from_seed(tag, a, b, &pairs, &lanes))
}

proptest! {
    /// Any valid descriptor round-trips bit-exactly through bytes.
    #[test]
    fn roundtrip_is_exact(descriptor in descriptor_strategy()) {
        let bytes = descriptor.to_bytes();
        prop_assert_eq!(SchemeDescriptor::from_bytes(&bytes), Ok(descriptor));
    }

    /// Every strict prefix of a valid serialisation is rejected with a
    /// typed error — truncation can never panic or half-parse.
    #[test]
    fn every_truncation_is_a_typed_error(descriptor in descriptor_strategy()) {
        let bytes = descriptor.to_bytes();
        for cut in 0..bytes.len() {
            let result = SchemeDescriptor::from_bytes(&bytes[..cut]);
            prop_assert!(
                result.is_err(),
                "prefix of {cut}/{} bytes parsed successfully",
                bytes.len()
            );
        }
    }

    /// A single bit-flip anywhere in the 12-byte magic+version header is
    /// always rejected (the payload region may legitimately still parse,
    /// but the header is fully covered).
    #[test]
    fn header_bit_flips_are_rejected(
        descriptor in descriptor_strategy(),
        byte in 0usize..12,
        bit in 0u32..8,
    ) {
        let mut bytes = descriptor.to_bytes();
        bytes[byte] ^= 1 << bit;
        let result = SchemeDescriptor::from_bytes(&bytes);
        prop_assert!(result.is_err(), "header corruption at byte {byte} bit {bit} accepted");
        let detail = result.unwrap_err().detail;
        prop_assert!(
            detail == "bad magic" || detail == "unsupported scheme format version",
            "unexpected detail {detail:?} for a header flip"
        );
    }

    /// Arbitrary bit-flips anywhere in the stream either fail with a
    /// typed error or decode to *some* structurally valid descriptor —
    /// they never panic.
    #[test]
    fn arbitrary_bit_flips_never_panic(
        descriptor in descriptor_strategy(),
        flips in proptest::collection::vec((0usize..4096, 0u32..8), 1..8),
    ) {
        let mut bytes = descriptor.to_bytes();
        for (pos, bit) in flips {
            let pos = pos % bytes.len();
            bytes[pos] ^= 1 << bit;
        }
        // Either outcome is fine; reaching this line without a panic is
        // the property.
        let _ = SchemeDescriptor::from_bytes(&bytes);
    }

    /// Random byte soup never panics the parser.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = SchemeDescriptor::from_bytes(&bytes);
    }
}

/// A future format version is refused up front, not misparsed.
#[test]
fn version_mismatch_is_a_typed_error() {
    let mut bytes = SchemeDescriptor::Gray.to_bytes();
    let next = (SCHEME_FORMAT_VERSION + 1).to_le_bytes();
    bytes[8..12].copy_from_slice(&next);
    assert_eq!(
        SchemeDescriptor::from_bytes(&bytes),
        Err(SchemeFormatError {
            detail: "unsupported scheme format version"
        })
    );
}

/// The empty input is the smallest truncation.
#[test]
fn empty_input_is_rejected() {
    let err = SchemeDescriptor::from_bytes(&[]).unwrap_err();
    assert_eq!(err.detail, "truncated scheme descriptor");
}

/// Trailing bytes after a well-formed descriptor are an error: a frame
/// with appended junk is corrupt, not "valid plus extras".
#[test]
fn trailing_bytes_are_rejected() {
    let mut bytes = SchemeDescriptor::BusInvert { width: 32 }.to_bytes();
    bytes.push(0);
    assert_eq!(
        SchemeDescriptor::from_bytes(&bytes),
        Err(SchemeFormatError {
            detail: "trailing bytes"
        })
    );
}

/// Field invariants survive the trip through bytes: out-of-range values
/// a hostile peer could encode by hand are refused by name.
#[test]
fn out_of_range_fields_are_rejected() {
    // Block size 1 (below the encoder minimum).
    let mut bytes = SchemeDescriptor::TtBbit {
        block_size: 5,
        overlap: 0,
        transform_mask: 0x1000,
        tt_capacity: 16,
        bbit_capacity: 16,
    }
    .to_bytes();
    bytes[13..17].copy_from_slice(&1u32.to_le_bytes());
    assert_eq!(
        SchemeDescriptor::from_bytes(&bytes).unwrap_err().detail,
        "block size outside 2..=32"
    );

    // A transform set without the identity cannot decode anything.
    let mut bytes = SchemeDescriptor::TtBbit {
        block_size: 5,
        overlap: 0,
        transform_mask: 0x1000,
        tt_capacity: 16,
        bbit_capacity: 16,
    }
    .to_bytes();
    bytes[18..20].copy_from_slice(&0x0800u16.to_le_bytes());
    assert_eq!(
        SchemeDescriptor::from_bytes(&bytes).unwrap_err().detail,
        "transform set without identity"
    );

    // Bus width 0 makes no physical sense.
    let mut bytes = SchemeDescriptor::BusInvert { width: 32 }.to_bytes();
    bytes[13] = 0;
    assert_eq!(
        SchemeDescriptor::from_bytes(&bytes).unwrap_err().detail,
        "bus width outside 1..=63"
    );

    // A codebook larger than the format ceiling is refused before any
    // allocation of its claimed size.
    let mut bytes = SchemeDescriptor::LowWeight { pairs: vec![] }.to_bytes();
    bytes[13..17].copy_from_slice(&((MAX_LOW_WEIGHT_PAIRS as u32 + 1).to_le_bytes()));
    assert_eq!(
        SchemeDescriptor::from_bytes(&bytes).unwrap_err().detail,
        "codebook implausibly large"
    );

    // A pair mapping a word to itself would silently no-op the CAM.
    let mut bytes = SchemeDescriptor::LowWeight {
        pairs: vec![(7, 8)],
    }
    .to_bytes();
    bytes[21..25].copy_from_slice(&7u32.to_le_bytes());
    assert_eq!(
        SchemeDescriptor::from_bytes(&bytes).unwrap_err().detail,
        "codebook pair maps a word to itself"
    );

    // Composite lane tags stop at 2.
    let mut bytes = SchemeDescriptor::Composite { lanes: [1; 32] }.to_bytes();
    bytes[20] = 3;
    assert_eq!(
        SchemeDescriptor::from_bytes(&bytes).unwrap_err().detail,
        "composite lane tag outside 0..=2"
    );

    // An unknown scheme tag is named, not misparsed as the nearest one.
    let mut bytes = SchemeDescriptor::Gray.to_bytes();
    bytes[12] = 9;
    assert_eq!(
        SchemeDescriptor::from_bytes(&bytes).unwrap_err().detail,
        "unknown scheme tag"
    );
}
